#!/usr/bin/env python3
"""Validates a rangeamp Prometheus text-exposition export.

Stdlib-only (CI needs no extra packages).  Three layers of checks:

  1. syntax: every non-comment line must be `name{labels} value` with a
     metric name matching the Prometheus grammar, balanced/well-formed
     labels, and a finite numeric value;
  2. schema: every base metric name (labels stripped, `_bucket`/`_sum`/
     `_count` histogram suffixes folded onto their family) must appear in
     the catalogue documented in docs/observability.md, mirrored in
     KNOWN_METRICS below -- an unknown name means code and docs drifted;
  3. coverage: counters are non-negative integers, and every base name
     passed via --require is present with at least one series.

Usage: check_metrics.py METRICS.prom [--require name1,name2,...]
Exit 0 when every check passes, 1 otherwise.
"""

import argparse
import math
import re
import sys

# The metric catalogue of docs/observability.md.  Kept flat and sorted so a
# drift shows as a one-line diff here and in the doc.
KNOWN_METRICS = {
    "cdn_cache_admission_rejects_total",
    "cdn_cache_bytes",
    "cdn_cache_evictions_total",
    "cdn_cache_hits_total",
    "cdn_cache_misses_total",
    "cdn_coalesced_hits_total",
    "cdn_deadline_expired_total",
    "cdn_detection_alarms_total",
    "cdn_detection_quarantined_total",
    "cdn_gossip_detection_latency_seconds",
    "cdn_gossip_messages_dropped_total",
    "cdn_gossip_messages_sent_total",
    "cdn_gossip_signatures_expired_total",
    "cdn_gossip_signatures_held",
    "cdn_gossip_signatures_sent_total",
    "cdn_loop_rejected_total",
    "cdn_origin_fetch_attempts_total",
    "cdn_overload_degraded_total",
    "cdn_overload_shed_total",
    "cdn_requests_total",
    "cdn_retry_budget_denied_total",
    "cdn_shed_total",
    "cdn_validator_budget_overflows_total",
    "cdn_validator_store_suppressed_total",
    "cdn_validator_violations_total",
    "sbr_amplification_factor",
}

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABELS_RE = re.compile(
    r'^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$')
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def base_name(name, families):
    """Strips histogram suffixes when the bare family was declared."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return name


def parse(path):
    """Returns (series, families, errors); series maps base name -> values."""
    series = {}
    families = set()
    errors = []
    with open(path) as f:
        lines = f.readlines()

    # First pass: TYPE/HELP declarations name the families, which is what
    # lets _bucket/_sum/_count fold back onto their histogram.
    for line in lines:
        fields = line.split()
        if len(fields) >= 3 and fields[0] == "#" and fields[1] in ("TYPE", "HELP"):
            families.add(fields[2])

    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            metric, value_text = line.rsplit(None, 1)
        except ValueError:
            errors.append("line %d: not `name value`: %r" % (lineno, line))
            continue
        brace = metric.find("{")
        name = metric if brace < 0 else metric[:brace]
        labels = "" if brace < 0 else metric[brace:]
        if not NAME_RE.match(name):
            errors.append("line %d: bad metric name %r" % (lineno, name))
            continue
        if labels and not LABELS_RE.match(labels):
            errors.append("line %d: malformed labels %r" % (lineno, labels))
            continue
        try:
            value = float(value_text)
        except ValueError:
            value = math.nan
        if not math.isfinite(value):
            errors.append("line %d: non-finite value %r" % (lineno, value_text))
            continue
        if name.endswith("_total") and (value < 0 or value != int(value)):
            errors.append("line %d: counter %s has non-counter value %r"
                          % (lineno, name, value_text))
        series.setdefault(base_name(name, families), []).append(value)
    return series, families, errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help=".prom exposition file to validate")
    parser.add_argument("--require", default="",
                        help="comma-separated base metric names that must be "
                             "present with at least one series")
    args = parser.parse_args()

    series, families, errors = parse(args.metrics)
    if not series:
        errors.append("no metric samples found in %s" % args.metrics)

    for name in series:
        if name not in KNOWN_METRICS:
            errors.append("unknown metric %r -- update docs/observability.md "
                          "and KNOWN_METRICS together" % name)

    required = [n for n in args.require.split(",") if n]
    for name in required:
        if name not in series:
            errors.append("required metric %r has no series" % name)

    if errors:
        for error in errors[:50]:
            print("check_metrics: %s" % error, file=sys.stderr)
        if len(errors) > 50:
            print("check_metrics: ... and %d more" % (len(errors) - 50),
                  file=sys.stderr)
        return 1

    print("check_metrics: OK -- %d base metrics, %d series, %d required "
          "present" % (len(series), sum(len(v) for v in series.values()),
                       len(required)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
