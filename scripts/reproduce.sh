#!/usr/bin/env bash
# Full reproduction: build, run the test suite, regenerate every table and
# figure.  Outputs land in test_output.txt / bench_output.txt at the repo
# root and CSV/JSON series in the working directory.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fresh checkouts get Ninja; an existing build dir keeps whatever generator
# configured it (cmake refuses to switch generators in place).
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
else
  cmake -B build -G Ninja
fi
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
status=0
failed=()
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "==================== $b ====================" | tee -a bench_output.txt
  # Run every bench even after a failure, but never report overall success:
  # each step's exit code is checked and the script exits non-zero if any
  # bench (or the tee recording its output) failed.
  if ! "$b" 2>&1 | tee -a bench_output.txt; then
    rc=${PIPESTATUS[0]}
    status=1
    failed+=("$b")
    echo "FAILED: $b (exit $rc)" | tee -a bench_output.txt
  fi
done

if [ "$status" -ne 0 ]; then
  echo
  echo "Reproduction FAILED for: ${failed[*]}" >&2
  exit "$status"
fi

echo
echo "Done. See test_output.txt, bench_output.txt and EXPERIMENTS.md."
