#!/usr/bin/env bash
# Full reproduction: build, run the test suite, regenerate every table and
# figure.  Outputs land in test_output.txt / bench_output.txt at the repo
# root and CSV/JSON series in the working directory.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "==================== $b ====================" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "Done. See test_output.txt, bench_output.txt and EXPERIMENTS.md."
