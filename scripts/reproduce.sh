#!/usr/bin/env bash
# Full reproduction: build, run the test suite, regenerate every table and
# figure.  Outputs land in test_output.txt / bench_output.txt at the repo
# root and CSV/JSON series in the working directory.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fresh checkouts get Ninja; an existing build dir keeps whatever generator
# configured it (cmake refuses to switch generators in place).
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
else
  cmake -B build -G Ninja
fi
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
status=0
failed=()
# The glob includes bench_socket_fig6, the loopback-TCP smoke: it re-measures
# the Fig 6a 10 MB row on the socket transport backend and exits non-zero if
# any vendor's amplification diverges >20% from the in-memory reference (see
# docs/transport-model.md).  It writes no CSV -- wall-clock numbers must
# never feed the drift gate below.
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "==================== $b ====================" | tee -a bench_output.txt
  # Run every bench even after a failure, but never report overall success:
  # each step's exit code is checked and the script exits non-zero if any
  # bench (or the tee recording its output) failed.
  if ! "$b" 2>&1 | tee -a bench_output.txt; then
    rc=${PIPESTATUS[0]}
    status=1
    failed+=("$b")
    echo "FAILED: $b (exit $rc)" | tee -a bench_output.txt
  fi
done

if [ "$status" -ne 0 ]; then
  echo
  echo "Reproduction FAILED for: ${failed[*]}" >&2
  exit "$status"
fi

# Every CSV the harnesses must (re)generate.  A missing entry means a bench
# was dropped from the build (the bench/* glob above would skip it silently);
# a diff against the committed copy means the model drifted.  Both are
# failures, loudly.
expected_csvs=(
  ablation_mitigations.csv
  byzantine_origin_ablation.csv
  cache_pollution.csv
  collateral_damage.csv
  fault_mitigation_ablation.csv
  fault_retry_amplification.csv
  feasibility_corpus.csv
  fig6a_amplification.csv
  fig6b_client_traffic.csv
  fig6c_origin_traffic.csv
  fig7a_client_in_kbps.csv
  fig7b_origin_out_mbps.csv
  gossip_detection.csv
  http2_rangeamp.csv
  obr_node_exhaustion.csv
  origin_shield_ablation.csv
  overload_ablation.csv
  practicability_cost.csv
  table1_sbr_forwarding.csv
  table2_obr_forwarding.csv
  table3_obr_replying.csv
  table5_obr.csv
)
for csv in "${expected_csvs[@]}"; do
  if [ ! -f "$csv" ]; then
    echo "Reproduction FAILED: expected output $csv was not generated" >&2
    exit 1
  fi
done

if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  if ! git diff --exit-code -- '*.csv'; then
    echo "Reproduction FAILED: regenerated CSVs drifted from the committed copies (diff above)" >&2
    exit 1
  fi
fi

# Observability gate: re-run the Fig 6 harness with tracing + metrics on.
# The knobs must not change a single CSV byte, and the exported trace must
# validate against scripts/trace_schema.json -- including the cross-check
# that every measurement's wire-span byte sums equal its recorder totals.
echo "==================== traced Fig 6 re-run ====================" | tee -a bench_output.txt
RANGEAMP_TRACE=1 RANGEAMP_METRICS=1 \
  ./build/bench/bench_table4_fig6_sbr_amplification 2>&1 | tee -a bench_output.txt
python3 scripts/check_trace.py fig6_trace.jsonl
python3 scripts/check_metrics.py fig6_metrics.prom
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  if ! git diff --exit-code -- '*.csv'; then
    echo "Reproduction FAILED: the traced run perturbed committed CSVs (diff above)" >&2
    exit 1
  fi
fi

# Overload metrics gate: the storm's metrics-enabled re-run must export a
# .prom whose names are all in the documented catalogue with the four
# overload counters present, and must not perturb a committed CSV byte.
echo "==================== overload storm metrics re-run ====================" | tee -a bench_output.txt
RANGEAMP_METRICS=1 ./build/bench/bench_overload_storm 2>&1 | tee -a bench_output.txt
python3 scripts/check_metrics.py overload_metrics.prom \
  --require cdn_overload_shed_total,cdn_overload_degraded_total,cdn_deadline_expired_total,cdn_retry_budget_denied_total
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  if ! git diff --exit-code -- '*.csv'; then
    echo "Reproduction FAILED: the overload metrics re-run perturbed committed CSVs (diff above)" >&2
    exit 1
  fi
fi

# Cache metrics gate: the pollution bench re-runs one budgeted cell with
# metrics on; the cdn_cache_* catalogue must validate and the committed
# CSVs must stay byte-identical.
echo "==================== cache pollution metrics re-run ====================" | tee -a bench_output.txt
RANGEAMP_METRICS=1 ./build/bench/bench_cache_pollution 2>&1 | tee -a bench_output.txt
python3 scripts/check_metrics.py cache_pollution_metrics.prom \
  --require cdn_cache_evictions_total,cdn_cache_admission_rejects_total,cdn_cache_bytes
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  if ! git diff --exit-code -- '*.csv'; then
    echo "Reproduction FAILED: the cache metrics re-run perturbed committed CSVs (diff above)" >&2
    exit 1
  fi
fi

# Gossip-detection metrics gate: the distributed-detection bench re-runs the
# fanout-2 cell with metrics on; the cdn_gossip_*/cdn_detection_* catalogue
# must validate and the committed CSVs must stay byte-identical.
echo "==================== gossip detection metrics re-run ====================" | tee -a bench_output.txt
RANGEAMP_METRICS=1 ./build/bench/bench_gossip_detection 2>&1 | tee -a bench_output.txt
python3 scripts/check_metrics.py gossip_detection_metrics.prom \
  --require cdn_detection_alarms_total,cdn_detection_quarantined_total,cdn_gossip_messages_sent_total,cdn_gossip_signatures_held
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  if ! git diff --exit-code -- '*.csv'; then
    echo "Reproduction FAILED: the gossip metrics re-run perturbed committed CSVs (diff above)" >&2
    exit 1
  fi
fi

# Campaign-throughput gate: the bench glob above already ran
# bench_campaign_throughput (which exits non-zero if any sharded campaign
# diverges from the serial baseline); validate the JSON it wrote.  No
# speedup floor here -- wall-clock gains need real cores, and this script
# must pass on a 1-core box; CI layers --min-speedup on top.
python3 scripts/check_bench.py BENCH_campaign.json

# Parallel drift gate: re-run the CSV-writing harnesses with the `threads`
# knob wide open.  The sharding contract (docs/parallel-model.md) says
# thread count is unobservable in the results, so every committed CSV must
# regenerate byte-identically at 8 threads.
echo "==================== 8-thread drift re-run ====================" | tee -a bench_output.txt
RANGEAMP_THREADS=8 \
  ./build/bench/bench_table4_fig6_sbr_amplification 2>&1 | tee -a bench_output.txt
RANGEAMP_THREADS=8 ./build/bench/bench_practicability 2>&1 | tee -a bench_output.txt
RANGEAMP_THREADS=8 ./build/bench/bench_gossip_detection 2>&1 | tee -a bench_output.txt
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  if ! git diff --exit-code -- '*.csv'; then
    echo "Reproduction FAILED: the 8-thread re-run perturbed committed CSVs (diff above)" >&2
    exit 1
  fi
fi

echo
echo "Done. See test_output.txt, bench_output.txt and EXPERIMENTS.md."
