#!/usr/bin/env python3
"""Validate BENCH_campaign.json emitted by bench_campaign_throughput.

Checks the schema (keys, types, non-empty runs), the determinism contract
(every sharded run must match the serial baseline field-for-field, as
reported by the bench itself), and -- optionally -- a minimum speedup at a
given thread count, which CI enforces on its multi-core runners but local
single-core runs skip.

Usage:
    scripts/check_bench.py BENCH_campaign.json
    scripts/check_bench.py BENCH_campaign.json --min-speedup 3.0 --at-threads 8

Exit status: 0 = valid, 1 = violation (with a message on stderr).
Stdlib only.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_number(obj, key, ctx, minimum=None):
    require(key in obj, f"{ctx}: missing key '{key}'")
    value = obj[key]
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{ctx}: '{key}' must be a number, got {type(value).__name__}",
    )
    if minimum is not None:
        require(value >= minimum, f"{ctx}: '{key}' = {value} < {minimum}")
    return value


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="path to BENCH_campaign.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="require speedup_vs_serial >= this at --at-threads",
    )
    parser.add_argument(
        "--at-threads",
        type=int,
        default=8,
        help="thread count the --min-speedup requirement applies to",
    )
    args = parser.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot read {args.path}: {exc}")

    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("bench") == "campaign_throughput",
            f"'bench' must be 'campaign_throughput', got {doc.get('bench')!r}")
    require(isinstance(doc.get("vendor"), str) and doc["vendor"],
            "'vendor' must be a non-empty string")
    check_number(doc, "file_size_bytes", "top level", minimum=1)
    exchanges = check_number(doc, "exchanges", "top level", minimum=1)
    check_number(doc, "shards", "top level", minimum=2)
    check_number(doc, "hardware_threads", "top level", minimum=0)

    serial = doc.get("serial")
    require(isinstance(serial, dict), "'serial' must be an object")
    check_number(serial, "seconds", "serial", minimum=0)
    check_number(serial, "exchanges_per_sec", "serial", minimum=0)
    require(serial["exchanges_per_sec"] > 0, "serial exchanges_per_sec must be > 0")

    runs = doc.get("runs")
    require(isinstance(runs, list) and runs, "'runs' must be a non-empty array")
    seen_threads = set()
    for i, run in enumerate(runs):
        ctx = f"runs[{i}]"
        require(isinstance(run, dict), f"{ctx} must be an object")
        threads = check_number(run, "threads", ctx, minimum=1)
        require(threads not in seen_threads, f"{ctx}: duplicate thread count {threads}")
        seen_threads.add(threads)
        check_number(run, "seconds", ctx, minimum=0)
        eps = check_number(run, "exchanges_per_sec", ctx, minimum=0)
        require(eps > 0, f"{ctx}: exchanges_per_sec must be > 0")
        check_number(run, "speedup_vs_serial", ctx, minimum=0)
        require(run.get("matches_serial") is True,
                f"{ctx} (threads={run.get('threads')}): sharded run diverged "
                "from the serial baseline")

    require(doc.get("sharded_equals_serial") is True,
            "'sharded_equals_serial' must be true")

    if args.min_speedup is not None:
        matching = [r for r in runs if r["threads"] == args.at_threads]
        require(matching,
                f"no run at threads={args.at_threads} for --min-speedup check")
        speedup = matching[0]["speedup_vs_serial"]
        require(speedup >= args.min_speedup,
                f"speedup at {args.at_threads} threads is {speedup:.2f}x, "
                f"required >= {args.min_speedup:.2f}x")

    best = max(r["speedup_vs_serial"] for r in runs)
    print(f"check_bench: OK: {int(exchanges)} exchanges, "
          f"{len(runs)} sharded runs, all match serial, "
          f"best speedup {best:.2f}x")


if __name__ == "__main__":
    main()
