#!/usr/bin/env python3
"""Validates a rangeamp JSONL trace export.

Three layers of checks, all stdlib-only so CI needs no extra packages:

  1. schema: every line must parse as JSON and satisfy
     scripts/trace_schema.json (a draft-07 subset evaluated by the mini
     validator below -- type / required / properties / additionalProperties /
     enum / minimum / maximum / minLength);
  2. structure: span ids are unique and dense per file, parents precede their
     children and live in the same trace, end >= start;
  3. accounting: inside every `sbr.measure` span, the per-segment sums of the
     descendant wire spans must exactly equal the expect_* totals the
     measurement stamped from its TrafficRecorders -- the invariant that
     makes traces trustworthy as a traffic-accounting source.

Usage: check_trace.py TRACE.jsonl [--schema scripts/trace_schema.json]
Exit 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import os
import sys


def validate(instance, schema, path="$"):
    """Evaluates the subset of JSON Schema the trace schema uses.

    Returns a list of error strings (empty = valid).
    """
    errors = []
    expected = schema.get("type")
    if expected is not None:
        kinds = {
            "object": dict,
            "string": str,
            "number": (int, float),
            "integer": int,
            "array": list,
            "boolean": bool,
        }
        kind = kinds[expected]
        ok = isinstance(instance, kind) and not (
            expected in ("number", "integer") and isinstance(instance, bool)
        )
        if not ok:
            return ["%s: expected %s, got %s" % (path, expected, type(instance).__name__)]

    if "enum" in schema and instance not in schema["enum"]:
        errors.append("%s: %r not in enum %r" % (path, instance, schema["enum"]))
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append("%s: %r < minimum %r" % (path, instance, schema["minimum"]))
    if "maximum" in schema and isinstance(instance, (int, float)):
        if instance > schema["maximum"]:
            errors.append("%s: %r > maximum %r" % (path, instance, schema["maximum"]))
    if "minLength" in schema and isinstance(instance, str):
        if len(instance) < schema["minLength"]:
            errors.append("%s: length %d < minLength %d"
                          % (path, len(instance), schema["minLength"]))

    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append("%s: missing required key %r" % (path, key))
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            child = "%s.%s" % (path, key)
            if key in properties:
                errors.extend(validate(value, properties[key], child))
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, child))
            elif additional is False:
                errors.append("%s: unexpected key %r" % (path, key))
    return errors


def check_structure(spans):
    errors = []
    by_id = {}
    for span in spans:
        sid = span["span"]
        if sid in by_id:
            errors.append("span %d: duplicate id" % sid)
        by_id[sid] = span
        if span["end"] < span["start"]:
            errors.append("span %d: end %.6f < start %.6f"
                          % (sid, span["end"], span["start"]))
        parent = span["parent"]
        if parent == 0:
            continue
        if parent not in by_id:
            errors.append("span %d: parent %d not yet seen (dangling or "
                          "out of order)" % (sid, parent))
        elif by_id[parent]["trace"] != span["trace"]:
            errors.append("span %d (trace %d): parent %d belongs to trace %d"
                          % (sid, span["trace"], parent, by_id[parent]["trace"]))
    return errors


def check_accounting(spans):
    """expect_* totals on sbr.measure spans vs descendant wire-span sums."""
    errors = []
    by_id = {span["span"]: span for span in spans}

    def is_descendant_of(span, root_id):
        parent = span["parent"]
        while parent:
            if parent == root_id:
                return True
            parent = by_id[parent]["parent"]
        return False

    checked = 0
    for root in spans:
        notes = root.get("notes", {})
        if root["name"] != "sbr.measure" or "expect_client_request_bytes" not in notes:
            continue
        checked += 1
        sums = {}
        for span in spans:
            segment = span.get("segment")
            if segment is None or not is_descendant_of(span, root["span"]):
                continue
            totals = sums.setdefault(segment, [0, 0])
            totals[0] += span["request_bytes"]
            totals[1] += span["response_bytes"]
        client = sums.get("client-cdn", [0, 0])
        origin = sums.get("cdn-origin", [0, 0])
        expected = [
            ("expect_client_request_bytes", client[0]),
            ("expect_client_response_bytes", client[1]),
            ("expect_origin_request_bytes", origin[0]),
            ("expect_origin_response_bytes", origin[1]),
        ]
        for key, actual in expected:
            want = int(notes[key])
            if actual != want:
                errors.append(
                    "span %d (%s %s): %s=%d but descendant wire spans sum to %d"
                    % (root["span"], notes.get("vendor", "?"),
                       notes.get("file_size", "?"), key, want, actual))
    return errors, checked


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="JSONL trace file to validate")
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "trace_schema.json"))
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    spans = []
    errors = []
    with open(args.trace) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append("line %d: not JSON: %s" % (lineno, e))
                continue
            for error in validate(span, schema):
                errors.append("line %d: %s" % (lineno, error))
            spans.append(span)

    if not spans:
        errors.append("no spans found in %s" % args.trace)
    if not errors:
        errors.extend(check_structure(spans))
    accounting_checked = 0
    if not errors:
        accounting_errors, accounting_checked = check_accounting(spans)
        errors.extend(accounting_errors)

    if errors:
        for error in errors[:50]:
            print("check_trace: %s" % error, file=sys.stderr)
        if len(errors) > 50:
            print("check_trace: ... and %d more" % (len(errors) - 50),
                  file=sys.stderr)
        return 1

    traces = len({span["trace"] for span in spans})
    print("check_trace: OK -- %d spans, %d traces, schema + parentage valid, "
          "%d measurement span(s) byte-checked against recorder totals"
          % (len(spans), traces, accounting_checked))
    return 0


if __name__ == "__main__":
    sys.exit(main())
