#include "http/serialize.h"

#include <charconv>

namespace rangeamp::http {
namespace {

// Parses the header block starting after the start line.  `cursor` points at
// the first header line; on success it is advanced past the blank line.
bool parse_header_block(std::string_view bytes, std::size_t& cursor, Headers& out) {
  while (true) {
    const auto eol = bytes.find("\r\n", cursor);
    if (eol == std::string_view::npos) return false;
    if (eol == cursor) {  // blank line: end of headers
      cursor = eol + 2;
      return true;
    }
    const std::string_view line = bytes.substr(cursor, eol - cursor);
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    out.add(std::string{name}, std::string{value});
    cursor = eol + 2;
  }
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  if (s.empty()) return std::nullopt;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::uint64_t serialized_size(const Request& req) noexcept {
  return req.request_line_size() + 2 + req.headers.serialized_size() + 2 +
         req.body.size();
}

std::uint64_t serialized_size(const Response& resp) noexcept {
  const std::size_t status_line =
      resp.version.size() + 1 + 3 + 1 + reason_phrase(resp.status).size();
  return status_line + 2 + resp.headers.serialized_size() + 2 + resp.body.size();
}

std::uint64_t serialized_size_truncated(const Response& resp,
                                        std::uint64_t body_bytes_received) noexcept {
  const std::uint64_t full = serialized_size(resp);
  const std::uint64_t body = resp.body.size();
  const std::uint64_t received = std::min(body, body_bytes_received);
  return full - body + received;
}

std::string to_bytes(const Request& req) {
  std::string out;
  out.reserve(static_cast<std::size_t>(serialized_size(req)));
  out.append(method_name(req.method));
  out.push_back(' ');
  out.append(req.target);
  out.push_back(' ');
  out.append(req.version);
  out.append("\r\n");
  for (const auto& f : req.headers) {
    out.append(f.name).append(": ").append(f.value).append("\r\n");
  }
  out.append("\r\n");
  out.append(req.body.materialize());
  return out;
}

std::string to_bytes(const Response& resp) {
  std::string out;
  out.reserve(static_cast<std::size_t>(serialized_size(resp)));
  out.append(resp.version);
  out.push_back(' ');
  out.append(std::to_string(resp.status));
  out.push_back(' ');
  out.append(reason_phrase(resp.status));
  out.append("\r\n");
  for (const auto& f : resp.headers) {
    out.append(f.name).append(": ").append(f.value).append("\r\n");
  }
  out.append("\r\n");
  out.append(resp.body.materialize());
  return out;
}

std::optional<RequestHead> parse_request_head(std::string_view bytes) {
  const auto eol = bytes.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  const std::string_view line = bytes.substr(0, eol);
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const auto sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;

  RequestHead head;
  Request& req = head.request;
  const std::string_view method = line.substr(0, sp1);
  bool known = false;
  for (Method m : {Method::GET, Method::HEAD, Method::POST, Method::PUT,
                   Method::DELETE, Method::OPTIONS}) {
    if (method == method_name(m)) {
      req.method = m;
      known = true;
      break;
    }
  }
  if (!known) return std::nullopt;
  req.target = std::string{line.substr(sp1 + 1, sp2 - sp1 - 1)};
  req.version = std::string{line.substr(sp2 + 1)};
  if (req.target.empty() || !req.version.starts_with("HTTP/")) return std::nullopt;

  std::size_t cursor = eol + 2;
  if (!parse_header_block(bytes, cursor, req.headers)) return std::nullopt;
  head.header_bytes = cursor;

  if (auto cl = req.headers.get("Content-Length")) {
    auto v = parse_u64(*cl);
    if (!v) return std::nullopt;
    head.content_length = *v;
  }
  return head;
}

std::optional<ResponseHead> parse_response_head(std::string_view bytes) {
  const auto eol = bytes.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  const std::string_view line = bytes.substr(0, eol);
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const auto sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;

  ResponseHead head;
  Response& resp = head.response;
  resp.version = std::string{line.substr(0, sp1)};
  if (!resp.version.starts_with("HTTP/")) return std::nullopt;
  const auto status = parse_u64(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (!status || *status < 100 || *status > 599) return std::nullopt;
  resp.status = static_cast<int>(*status);

  std::size_t cursor = eol + 2;
  if (!parse_header_block(bytes, cursor, resp.headers)) return std::nullopt;
  head.header_bytes = cursor;

  if (auto cl = resp.headers.get("Content-Length")) {
    auto v = parse_u64(*cl);
    if (!v) return std::nullopt;
    head.content_length = *v;
  }
  return head;
}

std::optional<Request> parse_request(std::string_view bytes) {
  auto head = parse_request_head(bytes);
  if (!head) return std::nullopt;
  const std::uint64_t cursor = head->header_bytes;
  if (bytes.size() - cursor < head->content_length) return std::nullopt;
  Request req = std::move(head->request);
  req.body = Body::literal(std::string{bytes.substr(
      static_cast<std::size_t>(cursor),
      static_cast<std::size_t>(head->content_length))});
  return req;
}

std::optional<Response> parse_response(std::string_view bytes) {
  auto head = parse_response_head(bytes);
  if (!head) return std::nullopt;
  const std::uint64_t cursor = head->header_bytes;
  Response resp = std::move(head->response);
  if (head->content_length) {
    if (bytes.size() - cursor < *head->content_length) return std::nullopt;
    resp.body = Body::literal(std::string{bytes.substr(
        static_cast<std::size_t>(cursor),
        static_cast<std::size_t>(*head->content_length))});
  } else {
    resp.body = Body::literal(
        std::string{bytes.substr(static_cast<std::size_t>(cursor))});
  }
  return resp;
}

}  // namespace rangeamp::http
