#include "http/validate.h"

#include <algorithm>
#include <charconv>

#include "http/chunked.h"
#include "http/headers.h"
#include "http/multipart.h"

namespace rangeamp::http {
namespace {

std::optional<std::uint64_t> parse_u64(std::string_view token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() || token.empty()) {
    return std::nullopt;
  }
  return value;
}

// Lax Content-Range split: extracts first/last/total without the bounds
// checks parse_content_range applies, so a lying "bytes 100-199/50" is
// reported as a bounds violation rather than silently unparsable.
struct LaxContentRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::uint64_t total = 0;
};

std::optional<LaxContentRange> split_content_range(std::string_view value) {
  constexpr std::string_view kUnit = "bytes ";
  while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
  if (!value.starts_with(kUnit)) return std::nullopt;
  value.remove_prefix(kUnit.size());
  const auto dash = value.find('-');
  const auto slash = value.find('/');
  if (dash == std::string_view::npos || slash == std::string_view::npos ||
      dash > slash) {
    return std::nullopt;
  }
  const auto first = parse_u64(value.substr(0, dash));
  const auto last = parse_u64(value.substr(dash + 1, slash - dash - 1));
  const auto total = parse_u64(value.substr(slash + 1));
  if (!first || !last || !total) return std::nullopt;
  return LaxContentRange{*first, *last, *total};
}

class ReportBuilder {
 public:
  explicit ReportBuilder(ValidationReport& report) : report_(report) {}

  void violate(ValidationCheck check, std::string detail) {
    report_.violations.push_back({check, std::move(detail)});
  }

 private:
  ValidationReport& report_;
};

}  // namespace

std::string_view validation_check_name(ValidationCheck check) noexcept {
  switch (check) {
    case ValidationCheck::kStatusRangeAgreement: return "status-range-agreement";
    case ValidationCheck::kContentRangeBounds: return "content-range-bounds";
    case ValidationCheck::kContentLengthMismatch: return "content-length-mismatch";
    case ValidationCheck::kDuplicateContentLength: return "duplicate-content-length";
    case ValidationCheck::kContentLengthWithChunked: return "cl-te-conflict";
    case ValidationCheck::kChunkedFraming: return "chunked-framing";
    case ValidationCheck::kMultipartFraming: return "multipart-framing";
    case ValidationCheck::kMultipartPartCount: return "multipart-part-count";
    case ValidationCheck::kBodyBudget: return "body-budget";
    case ValidationCheck::kMultipartBudget: return "multipart-budget";
  }
  return "unknown";
}

ValidationSeverity validation_check_severity(ValidationCheck check) noexcept {
  switch (check) {
    case ValidationCheck::kDuplicateContentLength:
    case ValidationCheck::kContentLengthWithChunked:
    case ValidationCheck::kChunkedFraming:
    case ValidationCheck::kMultipartFraming:
    case ValidationCheck::kBodyBudget:
    case ValidationCheck::kMultipartBudget:
      return ValidationSeverity::kFatal;
    case ValidationCheck::kStatusRangeAgreement:
    case ValidationCheck::kContentRangeBounds:
    case ValidationCheck::kContentLengthMismatch:
    case ValidationCheck::kMultipartPartCount:
      return ValidationSeverity::kSoft;
  }
  return ValidationSeverity::kFatal;
}

bool ValidationReport::has(ValidationCheck check) const noexcept {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const ValidationViolation& v) { return v.check == check; });
}

bool ValidationReport::any_fatal() const noexcept {
  return std::any_of(violations.begin(), violations.end(),
                     [](const ValidationViolation& v) {
                       return validation_check_severity(v.check) ==
                              ValidationSeverity::kFatal;
                     });
}

std::string ValidationReport::summary() const {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += ",";
    out += validation_check_name(v.check);
  }
  return out;
}

ValidationReport ResponseValidator::validate(
    const Response& response, const std::optional<RangeSet>& requested) const {
  ValidationReport report;
  ReportBuilder rb(report);

  // --- Smuggling shapes (header-only, checked before any body work). ------
  const auto cl_values = response.headers.get_all("Content-Length");
  std::optional<std::uint64_t> declared;
  if (!cl_values.empty()) {
    declared = parse_u64(cl_values.front());
    bool divergent = !declared.has_value();
    for (std::size_t i = 1; i < cl_values.size(); ++i) {
      const auto other = parse_u64(cl_values[i]);
      if (!other || !declared || *other != *declared) divergent = true;
    }
    if (cl_values.size() > 1 && divergent) {
      rb.violate(ValidationCheck::kDuplicateContentLength,
                 std::to_string(cl_values.size()) +
                     " differing Content-Length fields");
      declared.reset();  // no single authoritative length exists
    } else if (!declared) {
      rb.violate(ValidationCheck::kContentLengthMismatch,
                 "unparsable Content-Length \"" +
                     std::string{cl_values.front()} + "\"");
    }
  }
  report.declared_content_length = declared;

  const bool chunked = is_chunked(response);
  if (chunked && !cl_values.empty()) {
    rb.violate(ValidationCheck::kContentLengthWithChunked,
               "Content-Length alongside Transfer-Encoding: chunked");
  }

  // --- Budgets (on the raw received bytes, before any materialization). ---
  const std::uint64_t raw_size = response.body.size();
  if (limits_.max_body_bytes != 0 && raw_size > limits_.max_body_bytes) {
    rb.violate(ValidationCheck::kBodyBudget,
               "body of " + std::to_string(raw_size) +
                   " bytes exceeds budget of " +
                   std::to_string(limits_.max_body_bytes));
    // Refuse to buffer further: every remaining check would materialize.
    return report;
  }

  // --- Transfer framing: the chunked stream must decode completely. -------
  std::uint64_t entity_size = raw_size;
  std::optional<std::string> decoded;  // materialized entity when chunked
  if (chunked) {
    auto entity = decode_chunked(response.body.materialize());
    if (!entity) {
      rb.violate(ValidationCheck::kChunkedFraming,
                 "chunked stream fails to decode");
      return report;  // nothing below can reason about an unframed body
    }
    decoded = entity->materialize();
    entity_size = decoded->size();
  }

  // --- Content-Length vs actual bytes (identity framing only). ------------
  if (!chunked && declared && *declared != entity_size) {
    rb.violate(ValidationCheck::kContentLengthMismatch,
               "declared " + std::to_string(*declared) + " bytes, received " +
                   std::to_string(entity_size));
  }

  // --- Status / Content-Range agreement and bounds. ------------------------
  const auto content_range = response.headers.get("Content-Range");
  const auto content_type = response.headers.get_or("Content-Type", "");
  const bool multipart_type =
      content_type.starts_with("multipart/byteranges");

  if (response.status == kPartialContent) {
    if (multipart_type) {
      if (content_range) {
        rb.violate(ValidationCheck::kStatusRangeAgreement,
                   "multipart 206 carries a top-level Content-Range");
      }
      const auto boundary = boundary_from_content_type(content_type);
      if (!boundary) {
        rb.violate(ValidationCheck::kMultipartFraming,
                   "multipart Content-Type without a usable boundary");
        return report;
      }
      if (limits_.max_multipart_bytes != 0 &&
          entity_size > limits_.max_multipart_bytes) {
        rb.violate(ValidationCheck::kMultipartBudget,
                   "multipart body of " + std::to_string(entity_size) +
                       " bytes exceeds assembly budget of " +
                       std::to_string(limits_.max_multipart_bytes));
        return report;
      }
      const std::string body =
          decoded ? std::move(*decoded) : response.body.materialize();
      const auto parts = parse_multipart_byteranges(body, *boundary);
      if (!parts) {
        rb.violate(ValidationCheck::kMultipartFraming,
                   "multipart body fails to parse against boundary \"" +
                       *boundary + "\"");
        return report;
      }
      std::optional<std::uint64_t> total;
      bool bounds_ok = true;
      for (const auto& part : *parts) {
        if (part.range.last >= part.resource_size) bounds_ok = false;
        if (total && *total != part.resource_size) bounds_ok = false;
        total = part.resource_size;
      }
      if (!bounds_ok) {
        rb.violate(ValidationCheck::kContentRangeBounds,
                   "part Content-Range out of bounds or inconsistent totals");
      }
      if (requested && parts->size() > requested->count()) {
        rb.violate(ValidationCheck::kMultipartPartCount,
                   std::to_string(parts->size()) + " parts for " +
                       std::to_string(requested->count()) +
                       " requested range(s)");
      }
      if (!requested && !parts->empty()) {
        rb.violate(ValidationCheck::kStatusRangeAgreement,
                   "multipart 206 answer to a request without a Range");
      }
    } else {
      if (!content_range) {
        rb.violate(ValidationCheck::kStatusRangeAgreement,
                   "single-part 206 without a Content-Range");
      } else {
        const auto cr = split_content_range(*content_range);
        if (!cr) {
          rb.violate(ValidationCheck::kContentRangeBounds,
                     "unparsable Content-Range \"" +
                         std::string{*content_range} + "\"");
        } else {
          if (cr->first > cr->last || cr->last >= cr->total) {
            rb.violate(ValidationCheck::kContentRangeBounds,
                       "Content-Range bytes " + std::to_string(cr->first) +
                           "-" + std::to_string(cr->last) +
                           " outside declared total " +
                           std::to_string(cr->total));
          } else if (cr->last - cr->first + 1 != entity_size) {
            rb.violate(ValidationCheck::kContentRangeBounds,
                       "Content-Range spans " +
                           std::to_string(cr->last - cr->first + 1) +
                           " bytes, body carries " +
                           std::to_string(entity_size));
          }
        }
      }
      if (!requested) {
        rb.violate(ValidationCheck::kStatusRangeAgreement,
                   "206 answer to a request without a Range");
      }
    }
  } else if (content_range && response.status != kRangeNotSatisfiable) {
    // Only 206 and 416 ("bytes */size") may carry Content-Range.
    rb.violate(ValidationCheck::kStatusRangeAgreement,
               "status " + std::to_string(response.status) +
                   " carries a Content-Range");
  }

  return report;
}

}  // namespace rangeamp::http
