// multipart/byteranges framing (RFC 7233 appendix A).
//
// A multi-part 206 body looks like:
//
//   --BOUNDARY\r\n
//   Content-Type: image/jpeg\r\n
//   Content-Range: bytes 1-1/1000\r\n
//   \r\n
//   <payload bytes>\r\n
//   --BOUNDARY\r\n
//   ...
//   --BOUNDARY--\r\n
//
// The per-part framing overhead (~100-160 bytes depending on the boundary
// string and the Content-Range digits) is why the OBR attack's measured
// amplification in Table V exceeds n * resource_size by a few percent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/body.h"
#include "http/range.h"

namespace rangeamp::http {

/// One part of a multipart/byteranges payload.
struct BytesRangePart {
  ResolvedRange range;
  std::uint64_t resource_size = 0;
  std::string content_type;
  Body payload;
};

/// Builds the multipart body for the given resolved ranges over `entity`
/// (the full representation).  `content_type` is the part-level type;
/// `boundary` must not occur in the payload (synthetic payloads make
/// collisions astronomically unlikely; callers use fixed vendor-flavored
/// boundaries).
Body build_multipart_byteranges(const Body& entity,
                                const std::vector<ResolvedRange>& ranges,
                                std::uint64_t resource_size,
                                std::string_view content_type,
                                std::string_view boundary);

/// Exact size of the body build_multipart_byteranges() would produce,
/// computed without touching payload bytes.
std::uint64_t multipart_byteranges_size(const std::vector<ResolvedRange>& ranges,
                                        std::uint64_t resource_size,
                                        std::string_view content_type,
                                        std::string_view boundary);

/// The Content-Type header value announcing the multipart body.
std::string multipart_content_type(std::string_view boundary);

/// Extracts the boundary parameter from a Content-Type value like
/// "multipart/byteranges; boundary=XYZ".  RFC 2046 quoted boundaries
/// (boundary="X") are accepted and unquoted.  Returns nullopt when the value
/// is not a multipart/byteranges type or the boundary falls outside the
/// RFC 2046 grammar (over 70 chars, characters outside bchars, trailing
/// space) -- a malformed boundary is an injection vector, not a parameter.
std::optional<std::string> boundary_from_content_type(std::string_view value);

/// Parses a materialized multipart/byteranges body back into parts.
/// Test/verification helper; returns nullopt on framing errors.
std::optional<std::vector<BytesRangePart>> parse_multipart_byteranges(
    std::string_view body, std::string_view boundary);

}  // namespace rangeamp::http
