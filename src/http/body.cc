#include "http/body.h"

#include <cassert>

namespace rangeamp::http {

std::uint8_t synthetic_byte(std::uint64_t seed, std::uint64_t offset) noexcept {
  // splitmix64-style mix of (seed, offset): cheap, well distributed, and
  // stable across platforms so serialized byte counts are reproducible.
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + offset + 0xD1B54A32D192ED03ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::uint8_t>(x & 0xFF);
}

Body Body::literal(std::string bytes) {
  Body b;
  if (!bytes.empty()) b.chunks_.emplace_back(std::move(bytes));
  return b;
}

Body Body::synthetic(std::uint64_t seed, std::uint64_t offset, std::uint64_t length) {
  Body b;
  if (length > 0) b.chunks_.emplace_back(SyntheticSpan{seed, offset, length});
  return b;
}

void Body::append(BodyChunk chunk) {
  if (auto* s = std::get_if<std::string>(&chunk)) {
    if (s->empty()) return;
    if (!chunks_.empty()) {
      if (auto* prev = std::get_if<std::string>(&chunks_.back())) {
        prev->append(*s);
        return;
      }
    }
  } else if (auto* span = std::get_if<SyntheticSpan>(&chunk)) {
    if (span->length == 0) return;
    if (!chunks_.empty()) {
      if (auto* prev = std::get_if<SyntheticSpan>(&chunks_.back())) {
        if (prev->seed == span->seed && prev->offset + prev->length == span->offset) {
          prev->length += span->length;
          return;
        }
      }
    }
  }
  chunks_.push_back(std::move(chunk));
}

void Body::append_literal(std::string_view bytes) { append(std::string{bytes}); }

void Body::append_synthetic(std::uint64_t seed, std::uint64_t offset, std::uint64_t length) {
  append(SyntheticSpan{seed, offset, length});
}

void Body::append_body(const Body& other) {
  for (const auto& c : other.chunks_) append(c);
}

std::uint64_t Body::size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : chunks_) {
    if (const auto* s = std::get_if<std::string>(&c)) {
      total += s->size();
    } else {
      total += std::get<SyntheticSpan>(c).length;
    }
  }
  return total;
}

Body Body::slice(std::uint64_t first, std::uint64_t length) const {
  assert(first + length <= size());
  Body out;
  std::uint64_t pos = 0;  // absolute position of current chunk start
  std::uint64_t remaining = length;
  for (const auto& c : chunks_) {
    if (remaining == 0) break;
    const std::uint64_t chunk_len =
        std::holds_alternative<std::string>(c)
            ? std::get<std::string>(c).size()
            : std::get<SyntheticSpan>(c).length;
    const std::uint64_t chunk_end = pos + chunk_len;
    if (chunk_end > first) {
      const std::uint64_t begin_in_chunk = first > pos ? first - pos : 0;
      const std::uint64_t take =
          std::min<std::uint64_t>(chunk_len - begin_in_chunk, remaining);
      if (const auto* s = std::get_if<std::string>(&c)) {
        out.append_literal(std::string_view{*s}.substr(begin_in_chunk, take));
      } else {
        const auto& span = std::get<SyntheticSpan>(c);
        out.append_synthetic(span.seed, span.offset + begin_in_chunk, take);
      }
      first += take;
      remaining -= take;
    }
    pos = chunk_end;
  }
  return out;
}

void Body::truncate(std::uint64_t max_bytes) {
  if (size() <= max_bytes) return;
  *this = slice(0, max_bytes);
}

std::string Body::materialize() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(size()));
  for (const auto& c : chunks_) {
    if (const auto* s = std::get_if<std::string>(&c)) {
      out.append(*s);
    } else {
      const auto& span = std::get<SyntheticSpan>(c);
      for (std::uint64_t i = 0; i < span.length; ++i) {
        out.push_back(static_cast<char>(synthetic_byte(span.seed, span.offset + i)));
      }
    }
  }
  return out;
}

std::uint8_t Body::at(std::uint64_t pos) const {
  assert(pos < size());
  std::uint64_t chunk_start = 0;
  for (const auto& c : chunks_) {
    const std::uint64_t chunk_len =
        std::holds_alternative<std::string>(c)
            ? std::get<std::string>(c).size()
            : std::get<SyntheticSpan>(c).length;
    if (pos < chunk_start + chunk_len) {
      const std::uint64_t off = pos - chunk_start;
      if (const auto* s = std::get_if<std::string>(&c)) {
        return static_cast<std::uint8_t>((*s)[static_cast<std::size_t>(off)]);
      }
      const auto& span = std::get<SyntheticSpan>(c);
      return synthetic_byte(span.seed, span.offset + off);
    }
    chunk_start += chunk_len;
  }
  assert(false && "position out of range");
  return 0;
}

bool Body::operator==(const Body& other) const {
  const std::uint64_t n = size();
  if (n != other.size()) return false;
  // Chunk layouts may differ; compare logical bytes.  Fast path: identical
  // chunk vectors.
  if (chunks_ == other.chunks_) return true;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (at(i) != other.at(i)) return false;
  }
  return true;
}

}  // namespace rangeamp::http
