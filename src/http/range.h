// RFC 7233 byte-range grammar, resolution and range-set properties.
//
// Everything the RangeAmp attacks exploit is expressed in this vocabulary:
//
//   byte-ranges-specifier = bytes-unit "=" byte-range-set
//   byte-range-set  = 1#( byte-range-spec / suffix-byte-range-spec )
//   byte-range-spec = first-byte-pos "-" [ last-byte-pos ]
//   suffix-byte-range-spec = "-" suffix-length
//
// A ByteRangeSpec is one element of the set; a RangeSet is the whole header
// value.  resolve() implements the satisfiability rules of RFC 7233 section
// 2.1; overlap/coalesce implement the security recommendations of section 6.1
// that vulnerable CDNs in the paper ignore.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rangeamp::http {

/// One element of a byte-range-set.
///
/// Exactly one of the three RFC 7233 spellings:
///   * first && last   : "first-last"   (closed range)
///   * first && !last  : "first-"       (open-ended range)
///   * suffix          : "-suffix"      (suffix range, last `suffix` bytes)
struct ByteRangeSpec {
  std::optional<std::uint64_t> first;
  std::optional<std::uint64_t> last;
  std::optional<std::uint64_t> suffix;

  static ByteRangeSpec closed(std::uint64_t first, std::uint64_t last) {
    return {first, last, std::nullopt};
  }
  static ByteRangeSpec open(std::uint64_t first) {
    return {first, std::nullopt, std::nullopt};
  }
  static ByteRangeSpec suffix_of(std::uint64_t suffix) {
    return {std::nullopt, std::nullopt, suffix};
  }

  bool is_closed() const noexcept { return first && last; }
  bool is_open() const noexcept { return first && !last; }
  bool is_suffix() const noexcept { return !first && suffix.has_value(); }

  /// RFC 7233 spelling of this spec, e.g. "0-0", "500-", "-2".
  std::string to_string() const;

  bool operator==(const ByteRangeSpec&) const = default;
};

/// A resolved (satisfiable) range: inclusive absolute byte positions.
struct ResolvedRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;  ///< inclusive; first <= last

  std::uint64_t length() const noexcept { return last - first + 1; }
  bool overlaps(const ResolvedRange& o) const noexcept {
    return first <= o.last && o.first <= last;
  }
  /// True when the ranges overlap or are directly adjacent (coalescable).
  bool touches(const ResolvedRange& o) const noexcept {
    return first <= o.last + 1 && o.first <= last + 1;
  }
  bool operator==(const ResolvedRange&) const = default;
};

/// A parsed Range header value ("bytes=..." only; other units are rejected).
struct RangeSet {
  std::vector<ByteRangeSpec> specs;

  bool empty() const noexcept { return specs.empty(); }
  std::size_t count() const noexcept { return specs.size(); }

  /// Header value spelling: "bytes=spec1,spec2,...".
  std::string to_string() const;

  bool operator==(const RangeSet&) const = default;
};

/// Default cap on the Range header value length parse_range_header accepts.
/// A guard in the spirit of Envoy's range-header length limit: the parser
/// allocates one ByteRangeSpec per list element, so an attacker-controlled
/// header must not drive unbounded work/memory.  The default is deliberately
/// generous -- the longest header any RangeAmp experiment emits (StackPath's
/// ~81 KB OBR case) stays well inside it.
inline constexpr std::size_t kMaxRangeHeaderBytes = 256 * 1024;

/// Parses a Range header value.  Returns nullopt when the value does not
/// match the RFC 7233 grammar (unknown unit, empty set, first > last,
/// non-numeric positions, ...).  Per the RFC, a recipient MUST ignore a
/// malformed Range header, so callers treat nullopt as "no Range".
/// Values longer than `max_value_bytes` are rejected without being parsed
/// (0 disables the guard).
std::optional<RangeSet> parse_range_header(
    std::string_view value, std::size_t max_value_bytes = kMaxRangeHeaderBytes);

/// Resolves one spec against a representation of `resource_size` bytes.
/// Returns nullopt when the spec is unsatisfiable for that size
/// (first >= size, suffix of 0, any range against an empty resource).
std::optional<ResolvedRange> resolve(const ByteRangeSpec& spec,
                                     std::uint64_t resource_size) noexcept;

/// Resolves a whole set: unsatisfiable members are dropped (RFC 7233
/// section 4.1: the server generates parts only for satisfiable ranges).
/// An empty result means the whole set is unsatisfiable -> 416.
std::vector<ResolvedRange> resolve_all(const RangeSet& set,
                                       std::uint64_t resource_size);

/// True when any two resolved ranges overlap.
bool any_overlap(const std::vector<ResolvedRange>& ranges);

/// Number of overlapping pairs among the resolved ranges (RFC 7233 section
/// 6.1 recommends special treatment for "more than two overlapping ranges").
std::size_t overlapping_pair_count(const std::vector<ResolvedRange>& ranges);

/// True when the ranges are in strictly ascending, non-touching order --
/// i.e. the shape a legitimate multi-threaded downloader produces.
bool is_ascending_disjoint(const std::vector<ResolvedRange>& ranges);

/// Merges overlapping/adjacent ranges into the minimal disjoint cover,
/// sorted ascending.  This is the "coalesce" mitigation of RFC 7233 §6.1.
std::vector<ResolvedRange> coalesce(std::vector<ResolvedRange> ranges);

/// Total body bytes the ranges select (sum of lengths, overlaps counted
/// multiply -- exactly what a vulnerable multi-part responder transmits).
std::uint64_t total_selected_bytes(const std::vector<ResolvedRange>& ranges);

/// Formats a Content-Range value: "bytes first-last/size".
std::string content_range(const ResolvedRange& r, std::uint64_t resource_size);

/// Formats an unsatisfied Content-Range value: "bytes */size" (416 responses).
std::string content_range_unsatisfied(std::uint64_t resource_size);

/// Parses a Content-Range value of the form "bytes first-last/size".
struct ContentRange {
  ResolvedRange range;
  std::uint64_t resource_size = 0;
  bool operator==(const ContentRange&) const = default;
};
std::optional<ContentRange> parse_content_range(std::string_view value);

}  // namespace rangeamp::http
