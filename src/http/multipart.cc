#include "http/multipart.h"

#include <cassert>

#include "http/headers.h"

namespace rangeamp::http {
namespace {

std::string part_header(const ResolvedRange& r, std::uint64_t resource_size,
                        std::string_view content_type, std::string_view boundary) {
  std::string out;
  out.append("--").append(boundary).append("\r\n");
  out.append("Content-Type: ").append(content_type).append("\r\n");
  out.append("Content-Range: ").append(content_range(r, resource_size)).append("\r\n");
  out.append("\r\n");
  return out;
}

std::string closing_delimiter(std::string_view boundary) {
  std::string out;
  out.append("--").append(boundary).append("--\r\n");
  return out;
}

// RFC 2046 section 5.1.1: boundary := 0*69<bchars> bcharsnospace, i.e. at
// most 70 characters from a fixed alphabet, not ending in a space.  A
// boundary outside the grammar is an injection vector (a crafted one can
// alias part delimiters), so it is rejected rather than used.
bool is_bchar(char c) noexcept {
  if ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
      (c >= 'A' && c <= 'Z')) {
    return true;
  }
  constexpr std::string_view kSpecials = "'()+_,-./:=? ";
  return kSpecials.find(c) != std::string_view::npos;
}

bool valid_boundary(std::string_view b) noexcept {
  if (b.empty() || b.size() > 70 || b.back() == ' ') return false;
  for (const char c : b) {
    if (!is_bchar(c)) return false;
  }
  return true;
}

}  // namespace

Body build_multipart_byteranges(const Body& entity,
                                const std::vector<ResolvedRange>& ranges,
                                std::uint64_t resource_size,
                                std::string_view content_type,
                                std::string_view boundary) {
  assert(entity.size() == resource_size);
  Body body;
  for (const auto& r : ranges) {
    body.append_literal(part_header(r, resource_size, content_type, boundary));
    body.append_body(entity.slice(r.first, r.length()));
    body.append_literal("\r\n");
  }
  body.append_literal(closing_delimiter(boundary));
  return body;
}

std::uint64_t multipart_byteranges_size(const std::vector<ResolvedRange>& ranges,
                                        std::uint64_t resource_size,
                                        std::string_view content_type,
                                        std::string_view boundary) {
  std::uint64_t total = 0;
  for (const auto& r : ranges) {
    total += part_header(r, resource_size, content_type, boundary).size();
    total += r.length();
    total += 2;  // CRLF after payload
  }
  total += closing_delimiter(boundary).size();
  return total;
}

std::string multipart_content_type(std::string_view boundary) {
  std::string out = "multipart/byteranges; boundary=";
  out.append(boundary);
  return out;
}

std::optional<std::string> boundary_from_content_type(std::string_view value) {
  constexpr std::string_view kType = "multipart/byteranges";
  if (!value.starts_with(kType)) return std::nullopt;
  const auto pos = value.find("boundary=");
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view b = value.substr(pos + 9);
  // Strip optional quotes and trailing parameters.
  if (!b.empty() && b.front() == '"') {
    b.remove_prefix(1);
    const auto q = b.find('"');
    if (q == std::string_view::npos) return std::nullopt;
    b = b.substr(0, q);
  } else {
    const auto sc = b.find(';');
    if (sc != std::string_view::npos) b = b.substr(0, sc);
  }
  if (!valid_boundary(b)) return std::nullopt;
  return std::string{b};
}

std::optional<std::vector<BytesRangePart>> parse_multipart_byteranges(
    std::string_view body, std::string_view boundary) {
  const std::string delim = "--" + std::string{boundary};
  const std::string closing = delim + "--";
  std::vector<BytesRangePart> parts;

  std::size_t cursor = 0;
  while (true) {
    const auto start = body.find(delim, cursor);
    if (start == std::string_view::npos) return std::nullopt;
    // Closing delimiter?
    if (body.compare(start, closing.size(), closing) == 0) break;
    std::size_t line_end = body.find("\r\n", start);
    if (line_end == std::string_view::npos) return std::nullopt;
    std::size_t pos = line_end + 2;

    BytesRangePart part;
    std::optional<ContentRange> cr;
    // Part headers until blank line.
    while (true) {
      const auto eol = body.find("\r\n", pos);
      if (eol == std::string_view::npos) return std::nullopt;
      if (eol == pos) {  // blank line
        pos = eol + 2;
        break;
      }
      const std::string_view line = body.substr(pos, eol - pos);
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) return std::nullopt;
      std::string_view name = line.substr(0, colon);
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      if (iequals(name, "Content-Type")) {
        part.content_type = std::string{value};
      } else if (iequals(name, "Content-Range")) {
        cr = parse_content_range(value);
        if (!cr) return std::nullopt;
      }
      pos = eol + 2;
    }
    if (!cr) return std::nullopt;
    part.range = cr->range;
    part.resource_size = cr->resource_size;
    const std::uint64_t len = part.range.length();
    if (body.size() - pos < len + 2) return std::nullopt;
    part.payload = Body::literal(std::string{body.substr(pos, len)});
    pos += len;
    if (body.compare(pos, 2, "\r\n") != 0) return std::nullopt;
    parts.push_back(std::move(part));
    cursor = pos + 2;
  }
  return parts;
}

}  // namespace rangeamp::http
