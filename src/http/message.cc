#include "http/message.h"

namespace rangeamp::http {

std::string_view method_name(Method m) noexcept {
  switch (m) {
    case Method::GET: return "GET";
    case Method::HEAD: return "HEAD";
    case Method::POST: return "POST";
    case Method::PUT: return "PUT";
    case Method::DELETE: return "DELETE";
    case Method::OPTIONS: return "OPTIONS";
  }
  return "GET";
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 413: return "Payload Too Large";
    case 416: return "Range Not Satisfiable";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 508: return "Loop Detected";
    default: return "Unknown";
  }
}

std::string_view Request::path() const noexcept {
  const auto q = target.find('?');
  return std::string_view{target}.substr(0, q);
}

std::string_view Request::query() const noexcept {
  const auto q = target.find('?');
  if (q == std::string::npos) return {};
  return std::string_view{target}.substr(q + 1);
}

std::size_t Request::request_line_size() const noexcept {
  return method_name(method).size() + 1 + target.size() + 1 + version.size();
}

Request make_get(std::string host, std::string target) {
  Request req;
  req.method = Method::GET;
  req.target = std::move(target);
  req.headers.add("Host", std::move(host));
  return req;
}

Response make_response(int status, Body body) {
  Response resp;
  resp.status = status;
  resp.headers.set("Content-Length", std::to_string(body.size()));
  resp.body = std::move(body);
  return resp;
}

}  // namespace rangeamp::http
