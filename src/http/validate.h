// Upstream response validation: the consistency checks a hardened CDN runs
// on what its origin (or back-CDN) actually returned before trusting it.
//
// The paper's root cause is CDNs forwarding rewritten ranges upstream and
// ingesting the reply unchecked (sections IV-V); its countermeasures call
// for exactly these cross-checks.  A ResponseValidator inspects one upstream
// response against the Range set that was requested and reports every
// violation it finds:
//
//   * status / Content-Range agreement (a 206 must carry a Content-Range or
//     a multipart/byteranges type; nothing else may carry a Content-Range);
//   * Content-Range bounds against the declared total (first <= last < total)
//     and against the body actually received;
//   * Content-Length against the actual body byte count;
//   * multipart framing: parsable boundary, part headers, per-part
//     Content-Range bounds, one total size across parts, and no more parts
//     than ranges were requested;
//   * chunked-framing totals (the stream must decode completely);
//   * request-smuggling shapes: duplicate differing Content-Length fields,
//     Content-Length alongside Transfer-Encoding: chunked (RFC 7230 §3.3.3);
//   * resource budgets: per-exchange body bytes and multipart assembly bytes
//     (Envoy-style per-stream buffer limits).
//
// Validation never mutates the response; enforcement (502-synthesize,
// truncate-and-drop, never-cache) is the caller's policy -- see
// cdn::ConformancePolicy and docs/adversarial-model.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"
#include "http/range.h"

namespace rangeamp::http {

/// One validated property of an upstream response.
enum class ValidationCheck {
  kStatusRangeAgreement,      ///< status vs Content-Range presence
  kContentRangeBounds,        ///< Content-Range vs declared total / body
  kContentLengthMismatch,     ///< declared Content-Length vs actual bytes
  kDuplicateContentLength,    ///< differing Content-Length fields (smuggle)
  kContentLengthWithChunked,  ///< Content-Length + Transfer-Encoding conflict
  kChunkedFraming,            ///< chunked stream fails to decode
  kMultipartFraming,          ///< multipart/byteranges body fails to parse
  kMultipartPartCount,        ///< more parts than ranges were requested
  kBodyBudget,                ///< body exceeds the per-exchange buffer budget
  kMultipartBudget,           ///< multipart body exceeds the assembly budget
};

inline constexpr std::size_t kValidationCheckCount = 10;

/// Stable label used in metrics and CSV output ("content-length-mismatch").
std::string_view validation_check_name(ValidationCheck check) noexcept;

/// How dangerous an accepted violation of this check would be.  Fatal checks
/// (smuggling shapes, undecodable framing, blown budgets) are rejected even
/// under lenient conformance; soft checks (consistency lies a downstream
/// could tolerate) are passed through uncached in lenient mode.
enum class ValidationSeverity { kFatal, kSoft };

ValidationSeverity validation_check_severity(ValidationCheck check) noexcept;

struct ValidationViolation {
  ValidationCheck check;
  std::string detail;
};

/// Resource budgets the validator enforces (0 = unlimited).
struct ValidationLimits {
  /// Max response body bytes buffered for one exchange.
  std::uint64_t max_body_bytes = 0;
  /// Max bytes of a multipart/byteranges body (part framing included).
  std::uint64_t max_multipart_bytes = 0;
};

struct ValidationReport {
  std::vector<ValidationViolation> violations;

  /// The declared Content-Length when one parsed unambiguously (the
  /// truncate-and-drop enforcement needs it).
  std::optional<std::uint64_t> declared_content_length;

  bool ok() const noexcept { return violations.empty(); }
  bool has(ValidationCheck check) const noexcept;
  bool any_fatal() const noexcept;

  /// Comma-joined check names ("" when ok) for traces and error notes.
  std::string summary() const;
};

class ResponseValidator {
 public:
  explicit ResponseValidator(ValidationLimits limits = {}) : limits_(limits) {}

  /// Validates one upstream response.  `requested` is the Range set the
  /// validating hop sent upstream (nullopt = no Range header was sent, so a
  /// partial reply is itself suspect).  Budget checks run before any body
  /// materialization, so a response that blows its budget is refused without
  /// the validator itself buffering it.
  ValidationReport validate(const Response& response,
                            const std::optional<RangeSet>& requested) const;

  const ValidationLimits& limits() const noexcept { return limits_; }

 private:
  ValidationLimits limits_;
};

}  // namespace rangeamp::http
