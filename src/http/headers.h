// HTTP header field collection.
//
// Header fields are kept in insertion order (the serialized byte count of a
// message depends on the exact order and spelling of its fields), while
// lookups are case-insensitive as required by RFC 7230 section 3.2.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rangeamp::http {

/// ASCII case-insensitive string equality (header field names).
bool iequals(std::string_view a, std::string_view b) noexcept;

/// A single header field, e.g. {"Content-Type", "image/jpeg"}.
struct HeaderField {
  std::string name;
  std::string value;

  /// Serialized size of the field line "Name: value" WITHOUT the trailing
  /// CRLF.  Several CDN request-header limits in the paper are expressed on
  /// this quantity (e.g. CDN77/CDNsun's 16 KB single-header limit).
  std::size_t line_size() const noexcept { return name.size() + 2 + value.size(); }
};

/// Ordered, case-insensitively searchable header collection.
class Headers {
 public:
  Headers() = default;
  Headers(std::initializer_list<HeaderField> fields) : fields_(fields) {}

  /// Appends a field, keeping any existing fields with the same name.
  void add(std::string name, std::string value);

  /// Replaces the first field with this name (appends if absent) and removes
  /// any further duplicates.
  void set(std::string name, std::string value);

  /// Removes every field with this name. Returns the number removed.
  std::size_t remove(std::string_view name);

  /// First value for the name, if present.
  std::optional<std::string_view> get(std::string_view name) const;

  /// First value for the name, or `fallback` when absent.
  std::string_view get_or(std::string_view name, std::string_view fallback) const;

  bool has(std::string_view name) const { return get(name).has_value(); }

  /// Every value carried by fields with this name, in order.
  std::vector<std::string_view> get_all(std::string_view name) const;

  const std::vector<HeaderField>& fields() const noexcept { return fields_; }
  std::size_t size() const noexcept { return fields_.size(); }
  bool empty() const noexcept { return fields_.empty(); }
  void clear() { fields_.clear(); }

  /// Total serialized size of the header block: each field as
  /// "Name: value\r\n".  Excludes the blank line that ends the block.
  std::size_t serialized_size() const noexcept;

  auto begin() const { return fields_.begin(); }
  auto end() const { return fields_.end(); }

 private:
  std::vector<HeaderField> fields_;
};

}  // namespace rangeamp::http
