// Deterministic generator of valid Range header values.
//
// The paper's first experiment feeds "a large number of valid range requests
// automatically generated based on the ABNF rules described in the RFCs" to
// each CDN.  This generator produces that corpus: every value it emits
// matches the RFC 7233 grammar (parse_range_header() accepts it), while the
// shapes cover the attack-relevant space -- tiny closed ranges, suffix
// ranges, open-ended ranges, many-small-range sets and overlapping sets.
//
// Determinism matters: scanners and property tests must be reproducible, so
// the generator runs on an explicit seeded xorshift state, never on global
// randomness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/range.h"

namespace rangeamp::http {

/// Small deterministic PRNG (xorshift64*).  Value type; copyable so callers
/// can fork streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x2545F4914F6CDD1DULL) {}

  std::uint64_t next() noexcept {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform value in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  bool chance(double p) noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  std::uint64_t state_;
};

/// The structural shape of a generated range set.
enum class RangeShape {
  kSingleClosed,     ///< bytes=first-last
  kSingleOpen,       ///< bytes=first-
  kSingleSuffix,     ///< bytes=-suffix
  kTinyClosed,       ///< bytes=k-k (one byte), the SBR attack shape
  kMultiDisjoint,    ///< ascending non-overlapping closed ranges
  kMultiOverlapping, ///< overlapping closed/open mix, the OBR attack shape
  kManySmall,        ///< many one-byte ranges (RFC 7233 §6.1 abuse shape)
};

/// A generated case: the set plus the shape label used by scanners to group
/// results into the categories of Tables I and II.
struct GeneratedRange {
  RangeShape shape;
  RangeSet set;
};

/// Generates one random valid range set of the given shape for a resource of
/// `resource_size` bytes.
GeneratedRange generate_range(Rng& rng, RangeShape shape,
                              std::uint64_t resource_size);

/// Generates a corpus of `count` valid range sets mixing all shapes
/// round-robin, for a resource of `resource_size` bytes.
std::vector<GeneratedRange> generate_corpus(std::uint64_t seed, std::size_t count,
                                            std::uint64_t resource_size);

/// Human-readable shape label.
std::string_view shape_name(RangeShape shape) noexcept;

}  // namespace rangeamp::http
