// HTTP/1.1 message serialization and parsing.
//
// serialized_size() is the ground truth for every traffic measurement in the
// reproduction: it is exactly the number of bytes to_bytes() would produce,
// but computed without materializing synthetic payloads.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"

namespace rangeamp::http {

/// Exact wire size of the request: request line + CRLF + header block +
/// blank line + body.
std::uint64_t serialized_size(const Request& req) noexcept;

/// Exact wire size of the response: status line + CRLF + header block +
/// blank line + body.
std::uint64_t serialized_size(const Response& resp) noexcept;

/// Wire size of a response when the transfer is cut off after
/// `body_bytes_received` body bytes (headers always count in full).
std::uint64_t serialized_size_truncated(const Response& resp,
                                        std::uint64_t body_bytes_received) noexcept;

/// Materializes the full request on the wire.  Test/debug helper.
std::string to_bytes(const Request& req);

/// Materializes the full response on the wire.  Test/debug helper.
std::string to_bytes(const Response& resp);

/// Parses a serialized request.  Returns nullopt on malformed input.
/// Body extent is taken from Content-Length (0 when absent).
std::optional<Request> parse_request(std::string_view bytes);

/// Parses a serialized response.  Returns nullopt on malformed input.
/// Body extent is taken from Content-Length; when absent the remainder of
/// `bytes` is the body (connection-close framing).
std::optional<Response> parse_response(std::string_view bytes);

/// A parsed message head: everything up to and including the blank line,
/// with the body left empty.  `header_bytes` is the exact wire size of the
/// head -- the incremental socket reader uses it to know where the body
/// starts, and the declared content length to know when (or whether) to stop
/// reading.  Unlike parse_request/parse_response, the head parsers succeed
/// on buffers whose body is missing or truncated, which is exactly the state
/// a receiver that aborts mid-body is in.
struct RequestHead {
  Request request;  ///< body empty
  std::uint64_t header_bytes = 0;
  std::uint64_t content_length = 0;  ///< declared body size (0 when absent)
};

struct ResponseHead {
  Response response;  ///< body empty
  std::uint64_t header_bytes = 0;
  /// Declared body size; nullopt = connection-close framing (read to EOF).
  std::optional<std::uint64_t> content_length;
};

/// Parses a request head from a buffer that contains at least the blank
/// line.  Returns nullopt on malformed input or when the head is incomplete
/// (callers typically wait for "\r\n\r\n" before calling).
std::optional<RequestHead> parse_request_head(std::string_view bytes);

/// Parses a response head; same contract as parse_request_head.
std::optional<ResponseHead> parse_response_head(std::string_view bytes);

}  // namespace rangeamp::http
