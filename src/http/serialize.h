// HTTP/1.1 message serialization and parsing.
//
// serialized_size() is the ground truth for every traffic measurement in the
// reproduction: it is exactly the number of bytes to_bytes() would produce,
// but computed without materializing synthetic payloads.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"

namespace rangeamp::http {

/// Exact wire size of the request: request line + CRLF + header block +
/// blank line + body.
std::uint64_t serialized_size(const Request& req) noexcept;

/// Exact wire size of the response: status line + CRLF + header block +
/// blank line + body.
std::uint64_t serialized_size(const Response& resp) noexcept;

/// Wire size of a response when the transfer is cut off after
/// `body_bytes_received` body bytes (headers always count in full).
std::uint64_t serialized_size_truncated(const Response& resp,
                                        std::uint64_t body_bytes_received) noexcept;

/// Materializes the full request on the wire.  Test/debug helper.
std::string to_bytes(const Request& req);

/// Materializes the full response on the wire.  Test/debug helper.
std::string to_bytes(const Response& resp);

/// Parses a serialized request.  Returns nullopt on malformed input.
/// Body extent is taken from Content-Length (0 when absent).
std::optional<Request> parse_request(std::string_view bytes);

/// Parses a serialized response.  Returns nullopt on malformed input.
/// Body extent is taken from Content-Length; when absent the remainder of
/// `bytes` is the body (connection-close framing).
std::optional<Response> parse_response(std::string_view bytes);

}  // namespace rangeamp::http
