#include "http/range.h"

#include <algorithm>
#include <charconv>

namespace rangeamp::http {
namespace {

// Trims optional whitespace (RFC 7230 OWS: SP / HTAB) from both ends.
std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::optional<std::uint64_t> parse_pos(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

// Parses one byte-range-spec / suffix-byte-range-spec.
std::optional<ByteRangeSpec> parse_spec(std::string_view s) {
  s = trim_ows(s);
  const auto dash = s.find('-');
  if (dash == std::string_view::npos) return std::nullopt;
  const std::string_view before = s.substr(0, dash);
  const std::string_view after = s.substr(dash + 1);

  if (before.empty()) {
    // suffix-byte-range-spec: "-suffix"
    const auto suffix = parse_pos(after);
    if (!suffix) return std::nullopt;
    return ByteRangeSpec::suffix_of(*suffix);
  }
  const auto first = parse_pos(before);
  if (!first) return std::nullopt;
  if (after.empty()) return ByteRangeSpec::open(*first);
  const auto last = parse_pos(after);
  if (!last) return std::nullopt;
  if (*last < *first) return std::nullopt;  // RFC 7233 §2.1: invalid spec
  return ByteRangeSpec::closed(*first, *last);
}

}  // namespace

std::string ByteRangeSpec::to_string() const {
  if (is_suffix()) return "-" + std::to_string(*suffix);
  std::string out = std::to_string(*first) + "-";
  if (last) out += std::to_string(*last);
  return out;
}

std::string RangeSet::to_string() const {
  std::string out = "bytes=";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i) out.push_back(',');
    out += specs[i].to_string();
  }
  return out;
}

std::optional<RangeSet> parse_range_header(std::string_view value,
                                           std::size_t max_value_bytes) {
  if (max_value_bytes != 0 && value.size() > max_value_bytes) {
    return std::nullopt;
  }
  value = trim_ows(value);
  constexpr std::string_view kUnit = "bytes=";
  if (value.size() <= kUnit.size()) return std::nullopt;
  // The bytes-unit is case-insensitive per RFC 7233 (range units are tokens
  // compared case-insensitively).
  for (std::size_t i = 0; i < kUnit.size(); ++i) {
    const char a = value[i] >= 'A' && value[i] <= 'Z'
                       ? static_cast<char>(value[i] - 'A' + 'a')
                       : value[i];
    if (a != kUnit[i]) return std::nullopt;
  }
  value.remove_prefix(kUnit.size());

  RangeSet set;
  std::size_t start = 0;
  while (start <= value.size()) {
    const auto comma = value.find(',', start);
    const std::string_view piece =
        value.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                            : comma - start);
    // RFC 7230 #rule allows empty list elements; skip them.
    if (!trim_ows(piece).empty()) {
      auto spec = parse_spec(piece);
      if (!spec) return std::nullopt;
      set.specs.push_back(*spec);
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (set.specs.empty()) return std::nullopt;  // byte-range-set is 1#(...)
  return set;
}

std::optional<ResolvedRange> resolve(const ByteRangeSpec& spec,
                                     std::uint64_t resource_size) noexcept {
  if (resource_size == 0) return std::nullopt;
  if (spec.is_suffix()) {
    if (*spec.suffix == 0) return std::nullopt;  // "-0" selects nothing
    const std::uint64_t len = std::min(*spec.suffix, resource_size);
    return ResolvedRange{resource_size - len, resource_size - 1};
  }
  if (!spec.first) return std::nullopt;
  if (*spec.first >= resource_size) return std::nullopt;
  const std::uint64_t last =
      spec.last ? std::min(*spec.last, resource_size - 1) : resource_size - 1;
  return ResolvedRange{*spec.first, last};
}

std::vector<ResolvedRange> resolve_all(const RangeSet& set,
                                       std::uint64_t resource_size) {
  std::vector<ResolvedRange> out;
  out.reserve(set.specs.size());
  for (const auto& spec : set.specs) {
    if (auto r = resolve(spec, resource_size)) out.push_back(*r);
  }
  return out;
}

bool any_overlap(const std::vector<ResolvedRange>& ranges) {
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    for (std::size_t j = i + 1; j < ranges.size(); ++j) {
      if (ranges[i].overlaps(ranges[j])) return true;
    }
  }
  return false;
}

std::size_t overlapping_pair_count(const std::vector<ResolvedRange>& ranges) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    for (std::size_t j = i + 1; j < ranges.size(); ++j) {
      if (ranges[i].overlaps(ranges[j])) ++n;
    }
  }
  return n;
}

bool is_ascending_disjoint(const std::vector<ResolvedRange>& ranges) {
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].first <= ranges[i - 1].last) return false;
  }
  return true;
}

std::vector<ResolvedRange> coalesce(std::vector<ResolvedRange> ranges) {
  if (ranges.empty()) return ranges;
  std::sort(ranges.begin(), ranges.end(),
            [](const ResolvedRange& a, const ResolvedRange& b) {
              return a.first < b.first || (a.first == b.first && a.last < b.last);
            });
  std::vector<ResolvedRange> out;
  out.push_back(ranges.front());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    if (out.back().touches(ranges[i])) {
      out.back().last = std::max(out.back().last, ranges[i].last);
    } else {
      out.push_back(ranges[i]);
    }
  }
  return out;
}

std::uint64_t total_selected_bytes(const std::vector<ResolvedRange>& ranges) {
  std::uint64_t total = 0;
  for (const auto& r : ranges) total += r.length();
  return total;
}

std::string content_range(const ResolvedRange& r, std::uint64_t resource_size) {
  return "bytes " + std::to_string(r.first) + "-" + std::to_string(r.last) + "/" +
         std::to_string(resource_size);
}

std::string content_range_unsatisfied(std::uint64_t resource_size) {
  return "bytes */" + std::to_string(resource_size);
}

std::optional<ContentRange> parse_content_range(std::string_view value) {
  value = trim_ows(value);
  constexpr std::string_view kUnit = "bytes ";
  if (!value.starts_with(kUnit)) return std::nullopt;
  value.remove_prefix(kUnit.size());
  const auto dash = value.find('-');
  const auto slash = value.find('/');
  if (dash == std::string_view::npos || slash == std::string_view::npos ||
      dash > slash) {
    return std::nullopt;
  }
  const auto first = parse_pos(value.substr(0, dash));
  const auto last = parse_pos(value.substr(dash + 1, slash - dash - 1));
  const auto size = parse_pos(value.substr(slash + 1));
  if (!first || !last || !size || *last < *first || *last >= *size) {
    return std::nullopt;
  }
  return ContentRange{ResolvedRange{*first, *last}, *size};
}

}  // namespace rangeamp::http
