#include "http/chunked.h"

#include <charconv>
#include <cstdio>

#include "http/headers.h"

namespace rangeamp::http {
namespace {

std::string chunk_size_line(std::uint64_t size) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%llx\r\n",
                              static_cast<unsigned long long>(size));
  return std::string(buf, static_cast<std::size_t>(n));
}

// Finds the next CRLF within the first `cap` bytes after `pos`.  An
// adversarial upstream that never sends the CRLF (an endless chunk-size
// line, a giant chunk extension, an unterminated trailer) would otherwise
// make the decoder scan -- and the caller buffer -- without bound; past the
// cap the stream is treated as undecodable instead.
std::optional<std::size_t> find_crlf_capped(std::string_view framed,
                                            std::size_t pos, std::size_t cap) {
  const std::size_t window =
      std::min(framed.size() - pos, cap + 2);  // +2: the CRLF itself
  const auto eol = framed.substr(pos, window).find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  return pos + eol;
}

}  // namespace

Body encode_chunked(const Body& body, std::uint64_t chunk_size) {
  Body out;
  const std::uint64_t total = body.size();
  std::uint64_t offset = 0;
  while (offset < total) {
    const std::uint64_t piece = std::min(chunk_size, total - offset);
    out.append_literal(chunk_size_line(piece));
    out.append_body(body.slice(offset, piece));
    out.append_literal("\r\n");
    offset += piece;
  }
  out.append_literal("0\r\n\r\n");
  return out;
}

std::uint64_t chunked_size(std::uint64_t body_size,
                           std::uint64_t chunk_size) noexcept {
  std::uint64_t total = 5;  // "0\r\n\r\n"
  std::uint64_t offset = 0;
  while (offset < body_size) {
    const std::uint64_t piece = std::min(chunk_size, body_size - offset);
    total += chunk_size_line(piece).size() + piece + 2;
    offset += piece;
  }
  return total;
}

std::optional<Body> decode_chunked(std::string_view framed) {
  Body out;
  std::size_t pos = 0;
  while (true) {
    const auto eol = find_crlf_capped(framed, pos, kMaxChunkLineBytes);
    if (!eol) return std::nullopt;
    std::string_view size_token = framed.substr(pos, *eol - pos);
    // Chunk extensions (";ext=...") are permitted and ignored.
    if (const auto semi = size_token.find(';'); semi != std::string_view::npos) {
      size_token = size_token.substr(0, semi);
    }
    if (size_token.size() > kMaxChunkSizeDigits) return std::nullopt;
    std::uint64_t size = 0;
    const auto [ptr, ec] = std::from_chars(
        size_token.data(), size_token.data() + size_token.size(), size, 16);
    if (ec != std::errc{} || ptr != size_token.data() + size_token.size()) {
      return std::nullopt;
    }
    pos = *eol + 2;
    if (size == 0) {
      // Optional trailers until the final blank line.
      while (true) {
        const auto trailer_eol =
            find_crlf_capped(framed, pos, kMaxChunkLineBytes);
        if (!trailer_eol) return std::nullopt;
        if (*trailer_eol == pos) return out;  // blank line: done
        pos = *trailer_eol + 2;
      }
    }
    if (framed.size() - pos < size + 2) return std::nullopt;
    out.append_literal(framed.substr(pos, static_cast<std::size_t>(size)));
    pos += static_cast<std::size_t>(size);
    if (framed.compare(pos, 2, "\r\n") != 0) return std::nullopt;
    pos += 2;
  }
}

bool is_chunked(const Response& response) noexcept {
  const auto te = response.headers.get("Transfer-Encoding");
  return te && iequals(*te, "chunked");
}

void apply_chunked_coding(Response& response, std::uint64_t chunk_size) {
  response.body = encode_chunked(response.body, chunk_size);
  response.headers.remove("Content-Length");
  response.headers.set("Transfer-Encoding", "chunked");
}

bool remove_chunked_coding(Response& response) {
  if (!is_chunked(response)) return true;
  auto decoded = decode_chunked(response.body.materialize());
  if (!decoded) return false;
  response.body = std::move(*decoded);
  response.headers.remove("Transfer-Encoding");
  response.headers.set("Content-Length", std::to_string(response.body.size()));
  return true;
}

}  // namespace rangeamp::http
