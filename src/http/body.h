// Message body representation.
//
// The experiments in the paper move resources of up to 25 MB through several
// network segments thousands of times.  The metric is always *bytes on the
// wire*, so materializing those payloads would be pure waste.  A Body is a
// sequence of chunks; a chunk is either a literal string (multipart framing,
// small test payloads) or a *synthetic span*: a (resource seed, offset,
// length) triple whose bytes are produced by a deterministic function on
// demand.  Sizes -- the quantity every experiment measures -- are always O(1).
//
// Synthetic bytes are deterministic in (seed, absolute offset), so a slice of
// a synthetic body equals the corresponding substring of the materialized
// whole; tests rely on this to verify range semantics byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rangeamp::http {

/// The deterministic content byte of synthetic resource `seed` at `offset`.
std::uint8_t synthetic_byte(std::uint64_t seed, std::uint64_t offset) noexcept;

/// A contiguous run of synthetic resource bytes.
struct SyntheticSpan {
  std::uint64_t seed = 0;    ///< identifies the resource's content stream
  std::uint64_t offset = 0;  ///< absolute offset within that stream
  std::uint64_t length = 0;

  bool operator==(const SyntheticSpan&) const = default;
};

/// A body chunk: literal bytes or a synthetic span.
using BodyChunk = std::variant<std::string, SyntheticSpan>;

/// A message body as an ordered chunk list.
class Body {
 public:
  Body() = default;

  /// A body holding literal bytes.
  static Body literal(std::string bytes);

  /// A body holding `length` synthetic bytes of resource `seed`, starting at
  /// absolute offset `offset` within the resource.
  static Body synthetic(std::uint64_t seed, std::uint64_t offset, std::uint64_t length);

  /// Appends a chunk (merging adjacent compatible chunks when possible).
  void append(BodyChunk chunk);
  void append_literal(std::string_view bytes);
  void append_synthetic(std::uint64_t seed, std::uint64_t offset, std::uint64_t length);
  void append_body(const Body& other);

  /// Total size in bytes. O(number of chunks).
  std::uint64_t size() const noexcept;

  bool empty() const noexcept { return size() == 0; }

  /// The sub-body covering byte positions [first, first+length).
  /// Requires first + length <= size().
  Body slice(std::uint64_t first, std::uint64_t length) const;

  /// Truncates the body to at most `max_bytes` (used to model aborted
  /// transfers, e.g. Azure closing its first back-to-origin connection once
  /// 8 MB of payload have arrived).
  void truncate(std::uint64_t max_bytes);

  /// Materializes the full byte string.  Intended for tests and small bodies;
  /// asserts nothing but obviously costs O(size()).
  std::string materialize() const;

  /// The byte at position `pos` without materializing. Requires pos < size().
  std::uint8_t at(std::uint64_t pos) const;

  const std::vector<BodyChunk>& chunks() const noexcept { return chunks_; }

  bool operator==(const Body& other) const;

 private:
  std::vector<BodyChunk> chunks_;
};

}  // namespace rangeamp::http
