#include "http/date.h"

#include <array>
#include <cstdio>

namespace rangeamp::http {
namespace {

constexpr std::array<std::string_view, 7> kDays = {
    "Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"};
constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

// Howard Hinnant's civil-date algorithms: days since 1970-01-01 <-> y/m/d.
constexpr std::int64_t days_from_civil(std::int64_t y, unsigned m, unsigned d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr void civil_from_days(std::int64_t z, std::int64_t& y, unsigned& m,
                               unsigned& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp + (mp < 10 ? 3 : -9);
  y += m <= 2;
}

}  // namespace

std::string format_http_date(std::int64_t unix_seconds) {
  std::int64_t days = unix_seconds / 86400;
  std::int64_t secs = unix_seconds % 86400;
  if (secs < 0) {
    secs += 86400;
    --days;
  }
  std::int64_t year;
  unsigned month, day;
  civil_from_days(days, year, month, day);
  // 1970-01-01 was a Thursday (weekday index 4 with Sun=0).
  const unsigned weekday = static_cast<unsigned>(((days % 7) + 7 + 4) % 7);

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s, %02u %s %04lld %02lld:%02lld:%02lld GMT",
                std::string{kDays[weekday]}.c_str(), day,
                std::string{kMonths[month - 1]}.c_str(),
                static_cast<long long>(year),
                static_cast<long long>(secs / 3600),
                static_cast<long long>((secs / 60) % 60),
                static_cast<long long>(secs % 60));
  return buf;
}

std::optional<std::int64_t> parse_http_date(std::string_view value) {
  // "Sun, 06 Nov 1994 08:49:37 GMT" -- exactly 29 bytes.
  if (value.size() != 29) return std::nullopt;
  if (value.substr(3, 2) != ", " || value[7] != ' ' || value[11] != ' ' ||
      value[16] != ' ' || value[19] != ':' || value[22] != ':' ||
      value.substr(25) != " GMT") {
    return std::nullopt;
  }
  bool day_ok = false;
  for (const auto day_name : kDays) {
    if (value.substr(0, 3) == day_name) day_ok = true;
  }
  if (!day_ok) return std::nullopt;

  const auto digits = [&](std::size_t pos, std::size_t n) -> std::optional<std::int64_t> {
    std::int64_t out = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const char c = value[pos + i];
      if (c < '0' || c > '9') return std::nullopt;
      out = out * 10 + (c - '0');
    }
    return out;
  };
  const auto day = digits(5, 2);
  const auto year = digits(12, 4);
  const auto hour = digits(17, 2);
  const auto minute = digits(20, 2);
  const auto second = digits(23, 2);
  if (!day || !year || !hour || !minute || !second) return std::nullopt;
  if (*day < 1 || *day > 31 || *hour > 23 || *minute > 59 || *second > 60) {
    return std::nullopt;
  }
  unsigned month = 0;
  for (unsigned i = 0; i < kMonths.size(); ++i) {
    if (value.substr(8, 3) == kMonths[i]) month = i + 1;
  }
  if (month == 0) return std::nullopt;

  const std::int64_t days =
      days_from_civil(*year, month, static_cast<unsigned>(*day));
  const std::int64_t ts = days * 86400 + *hour * 3600 + *minute * 60 + *second;
  // Weekday consistency check (a malformed-but-plausible date is rejected).
  const unsigned weekday = static_cast<unsigned>(((days % 7) + 7 + 4) % 7);
  if (value.substr(0, 3) != kDays[weekday]) return std::nullopt;
  return ts;
}

}  // namespace rangeamp::http
