// HTTP-date (RFC 7231 section 7.1.1.1): IMF-fixdate formatting and parsing.
//
// Validators (Last-Modified, If-Modified-Since, date-form If-Range) compare
// as instants, not strings; this module supplies the conversion.  Only the
// preferred IMF-fixdate form ("Sun, 06 Nov 1994 08:49:37 GMT") is emitted
// and parsed -- the obsolete RFC 850 and asctime forms are rejected, which
// a recipient MAY do for anything it does not generate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rangeamp::http {

/// Formats a Unix timestamp (seconds, UTC) as IMF-fixdate.
std::string format_http_date(std::int64_t unix_seconds);

/// Parses an IMF-fixdate into a Unix timestamp. Returns nullopt on any
/// deviation from the fixed 29-byte layout.
std::optional<std::int64_t> parse_http_date(std::string_view value);

}  // namespace rangeamp::http
