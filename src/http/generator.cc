#include "http/generator.h"

#include <algorithm>

namespace rangeamp::http {
namespace {

ByteRangeSpec random_closed(Rng& rng, std::uint64_t resource_size) {
  const std::uint64_t first = rng.below(resource_size);
  const std::uint64_t last = rng.between(first, resource_size - 1);
  return ByteRangeSpec::closed(first, last);
}

}  // namespace

GeneratedRange generate_range(Rng& rng, RangeShape shape,
                              std::uint64_t resource_size) {
  // The generator targets a valid (non-empty) resource.
  const std::uint64_t size = std::max<std::uint64_t>(resource_size, 1);
  RangeSet set;
  switch (shape) {
    case RangeShape::kSingleClosed:
      set.specs.push_back(random_closed(rng, size));
      break;
    case RangeShape::kSingleOpen:
      set.specs.push_back(ByteRangeSpec::open(rng.below(size)));
      break;
    case RangeShape::kSingleSuffix:
      set.specs.push_back(ByteRangeSpec::suffix_of(rng.between(1, size)));
      break;
    case RangeShape::kTinyClosed: {
      const std::uint64_t k = rng.below(size);
      set.specs.push_back(ByteRangeSpec::closed(k, k));
      break;
    }
    case RangeShape::kMultiDisjoint: {
      const std::size_t n = static_cast<std::size_t>(rng.between(2, 6));
      // Pick ascending disjoint ranges by walking a cursor forward.
      std::uint64_t cursor = 0;
      for (std::size_t i = 0; i < n && cursor < size; ++i) {
        const std::uint64_t first = rng.between(cursor, size - 1);
        const std::uint64_t last = rng.between(first, size - 1);
        set.specs.push_back(ByteRangeSpec::closed(first, last));
        if (last + 2 > size) break;
        cursor = last + 2;
      }
      break;
    }
    case RangeShape::kMultiOverlapping: {
      const std::size_t n = static_cast<std::size_t>(rng.between(3, 16));
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.chance(0.5)) {
          set.specs.push_back(ByteRangeSpec::open(rng.below(std::min<std::uint64_t>(size, 4))));
        } else {
          const std::uint64_t first = rng.below(std::min<std::uint64_t>(size, 8));
          set.specs.push_back(
              ByteRangeSpec::closed(first, rng.between(first, size - 1)));
        }
      }
      break;
    }
    case RangeShape::kManySmall: {
      const std::size_t n = static_cast<std::size_t>(rng.between(8, 64));
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t k = rng.below(size);
        set.specs.push_back(ByteRangeSpec::closed(k, k));
      }
      break;
    }
  }
  if (set.specs.empty()) set.specs.push_back(ByteRangeSpec::closed(0, 0));
  return GeneratedRange{shape, std::move(set)};
}

std::vector<GeneratedRange> generate_corpus(std::uint64_t seed, std::size_t count,
                                            std::uint64_t resource_size) {
  static constexpr RangeShape kShapes[] = {
      RangeShape::kSingleClosed,  RangeShape::kSingleOpen,
      RangeShape::kSingleSuffix,  RangeShape::kTinyClosed,
      RangeShape::kMultiDisjoint, RangeShape::kMultiOverlapping,
      RangeShape::kManySmall,
  };
  Rng rng{seed};
  std::vector<GeneratedRange> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    corpus.push_back(
        generate_range(rng, kShapes[i % std::size(kShapes)], resource_size));
  }
  return corpus;
}

std::string_view shape_name(RangeShape shape) noexcept {
  switch (shape) {
    case RangeShape::kSingleClosed: return "bytes=first-last";
    case RangeShape::kSingleOpen: return "bytes=first-";
    case RangeShape::kSingleSuffix: return "bytes=-suffix";
    case RangeShape::kTinyClosed: return "bytes=k-k";
    case RangeShape::kMultiDisjoint: return "bytes=f1-l1,...,fn-ln (disjoint)";
    case RangeShape::kMultiOverlapping: return "bytes=s1-,s2-,... (overlapping)";
    case RangeShape::kManySmall: return "bytes=k1-k1,...,kn-kn (many small)";
  }
  return "?";
}

}  // namespace rangeamp::http
