// Chunked transfer coding (RFC 7230 section 4.1).
//
// Origins commonly stream dynamically generated (or just unsized) responses
// as Transfer-Encoding: chunked.  The coding matters to this library for two
// reasons: chunk framing changes the exact on-wire byte counts the
// experiments measure, and a CDN that caches a chunked 200 must de-chunk it
// before it can serve ranges from the entity.
#pragma once

#include <cstdint>
#include <optional>

#include "http/body.h"
#include "http/message.h"

namespace rangeamp::http {

/// Default chunk size used when encoding (typical server buffer size).
inline constexpr std::uint64_t kDefaultChunkSize = 8 * 1024;

/// Decoder hardening against adversarial framing: a chunk-size line
/// (extensions included) or trailer line longer than this is a decode error,
/// not a reason to keep scanning (nginx/h2o cap these lines similarly).
inline constexpr std::size_t kMaxChunkLineBytes = 4096;

/// Max hex digits of a chunk size (16 digits already spans 2^64).
inline constexpr std::size_t kMaxChunkSizeDigits = 16;

/// Wraps `body` in chunked framing: hex-size lines, CRLFs and the final
/// "0\r\n\r\n".  Synthetic payload spans are preserved (framing is literal,
/// payload stays O(1)).
Body encode_chunked(const Body& body, std::uint64_t chunk_size = kDefaultChunkSize);

/// Exact size of encode_chunked(body, chunk_size) without materializing.
std::uint64_t chunked_size(std::uint64_t body_size,
                           std::uint64_t chunk_size = kDefaultChunkSize) noexcept;

/// Decodes a chunked payload back to the original bytes.  Returns nullopt on
/// framing errors, including size/trailer lines over kMaxChunkLineBytes and
/// size tokens over kMaxChunkSizeDigits.  Trailers are accepted and
/// discarded.
std::optional<Body> decode_chunked(std::string_view framed);

/// True when the message declares chunked transfer coding.
bool is_chunked(const Response& response) noexcept;

/// Converts a fixed-length response into a chunked one (drops
/// Content-Length, adds Transfer-Encoding, frames the body).
void apply_chunked_coding(Response& response,
                          std::uint64_t chunk_size = kDefaultChunkSize);

/// Reverses apply_chunked_coding: de-chunks the body and restores
/// Content-Length.  Returns false on framing errors (response untouched).
bool remove_chunked_coding(Response& response);

}  // namespace rangeamp::http
