#include "http/headers.h"

#include <algorithm>
#include <cctype>

namespace rangeamp::http {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void Headers::add(std::string name, std::string value) {
  fields_.push_back({std::move(name), std::move(value)});
}

void Headers::set(std::string name, std::string value) {
  bool replaced = false;
  for (auto it = fields_.begin(); it != fields_.end();) {
    if (iequals(it->name, name)) {
      if (!replaced) {
        it->value = std::move(value);
        replaced = true;
        ++it;
      } else {
        it = fields_.erase(it);
      }
    } else {
      ++it;
    }
  }
  if (!replaced) fields_.push_back({std::move(name), std::move(value)});
}

std::size_t Headers::remove(std::string_view name) {
  const auto before = fields_.size();
  std::erase_if(fields_, [&](const HeaderField& f) { return iequals(f.name, name); });
  return before - fields_.size();
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (iequals(f.name, name)) return std::string_view{f.value};
  }
  return std::nullopt;
}

std::string_view Headers::get_or(std::string_view name, std::string_view fallback) const {
  auto v = get(name);
  return v ? *v : fallback;
}

std::vector<std::string_view> Headers::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& f : fields_) {
    if (iequals(f.name, name)) out.emplace_back(f.value);
  }
  return out;
}

std::size_t Headers::serialized_size() const noexcept {
  std::size_t total = 0;
  for (const auto& f : fields_) total += f.line_size() + 2;  // CRLF
  return total;
}

}  // namespace rangeamp::http
