// HTTP/1.1 message model: Request and Response values.
//
// Messages are plain values.  Serialization (and therefore the byte counts
// every experiment in the paper is built on) lives in serialize.h.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "http/body.h"
#include "http/headers.h"

namespace rangeamp::http {

enum class Method { GET, HEAD, POST, PUT, DELETE, OPTIONS };

std::string_view method_name(Method m) noexcept;

/// Common status codes used throughout the library.
enum Status : int {
  kOk = 200,
  kPartialContent = 206,
  kBadRequest = 400,
  kNotFound = 404,
  kRangeNotSatisfiable = 416,
  kTooManyRequests = 429,
  kRequestHeaderFieldsTooLarge = 431,
  kBadGateway = 502,
  kServiceUnavailable = 503,
  kGatewayTimeout = 504,
  kLoopDetected = 508,
};

/// Canonical reason phrase for a status code ("Partial Content", ...).
std::string_view reason_phrase(int status) noexcept;

/// An HTTP/1.1 request.
struct Request {
  Method method = Method::GET;
  std::string target = "/";  ///< origin-form request target incl. query
  std::string version = "HTTP/1.1";
  Headers headers;
  Body body;

  /// Path component of the target (everything before '?').
  std::string_view path() const noexcept;
  /// Query component (everything after the first '?', or "").
  std::string_view query() const noexcept;

  /// Serialized size of the request line "METHOD target HTTP/1.1" WITHOUT the
  /// trailing CRLF.  Cloudflare's published Range-header limit formula
  /// (RL + 2*HHL + RHL <= 32411) is expressed on this quantity.
  std::size_t request_line_size() const noexcept;
};

/// An HTTP/1.1 response.
struct Response {
  int status = kOk;
  std::string version = "HTTP/1.1";
  Headers headers;
  Body body;

  bool ok() const noexcept { return status >= 200 && status < 300; }
};

/// Convenience: a minimal GET request for `target` with a Host header.
Request make_get(std::string host, std::string target);

/// Convenience: a response with status, reason-matched, body and
/// Content-Length header set.
Response make_response(int status, Body body = {});

}  // namespace rangeamp::http
