#include "http2/session.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace rangeamp::http2 {
namespace {

std::string lowercase(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// RFC 7540 section 8.1.2.2: connection-specific headers must not appear.
bool connection_specific(std::string_view lower_name) {
  return lower_name == "connection" || lower_name == "keep-alive" ||
         lower_name == "proxy-connection" || lower_name == "transfer-encoding" ||
         lower_name == "upgrade" || lower_name == "te";
}

}  // namespace

std::vector<HeaderEntry> request_header_list(const http::Request& request) {
  std::vector<HeaderEntry> list;
  list.push_back({":method", std::string{http::method_name(request.method)}});
  list.push_back({":scheme", "https"});
  list.push_back({":authority", std::string{request.headers.get_or("Host", "")}});
  list.push_back({":path", request.target});
  for (const auto& f : request.headers) {
    const std::string name = lowercase(f.name);
    if (name == "host" || connection_specific(name)) continue;
    list.push_back({name, f.value});
  }
  return list;
}

std::vector<HeaderEntry> response_header_list(const http::Response& response) {
  std::vector<HeaderEntry> list;
  list.push_back({":status", std::to_string(response.status)});
  for (const auto& f : response.headers) {
    const std::string name = lowercase(f.name);
    if (connection_specific(name)) continue;
    list.push_back({name, f.value});
  }
  return list;
}

std::vector<Frame> Http2Session::frame_message(const std::string& header_block,
                                               const http::Body& body,
                                               std::uint32_t stream_id) const {
  std::vector<Frame> frames;
  const bool has_body = body.size() > 0;

  // HEADERS (+ CONTINUATION) carrying the block in max-frame-size pieces.
  std::size_t offset = 0;
  bool first = true;
  do {
    const std::size_t piece =
        std::min<std::size_t>(header_block.size() - offset, max_frame_size_);
    Frame frame;
    frame.type = first ? FrameType::kHeaders : FrameType::kContinuation;
    frame.stream_id = stream_id;
    frame.payload = http::Body::literal(header_block.substr(offset, piece));
    offset += piece;
    if (offset >= header_block.size()) frame.flags |= kFlagEndHeaders;
    if (first && !has_body) frame.flags |= kFlagEndStream;
    frames.push_back(std::move(frame));
    first = false;
  } while (offset < header_block.size());

  // DATA frames.
  std::uint64_t sent = 0;
  const std::uint64_t total = body.size();
  while (sent < total) {
    const std::uint64_t piece = std::min<std::uint64_t>(total - sent, max_frame_size_);
    Frame frame;
    frame.type = FrameType::kData;
    frame.stream_id = stream_id;
    frame.payload = body.slice(sent, piece);
    sent += piece;
    if (sent >= total) frame.flags |= kFlagEndStream;
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<Frame> Http2Session::encode_request(const http::Request& request,
                                                std::uint32_t stream_id) {
  return frame_message(request_encoder_.encode(request_header_list(request)),
                       request.body, stream_id);
}

std::vector<Frame> Http2Session::encode_response(const http::Response& response,
                                                 std::uint32_t stream_id) {
  return frame_message(response_encoder_.encode(response_header_list(response)),
                       response.body, stream_id);
}

std::optional<std::pair<std::vector<HeaderEntry>, http::Body>> Http2Peer::collect(
    const std::vector<Frame>& frames, Decoder& decoder) {
  std::string header_block;
  http::Body body;
  bool headers_done = false;
  for (const Frame& frame : frames) {
    switch (frame.type) {
      case FrameType::kHeaders:
      case FrameType::kContinuation:
        if (headers_done) return std::nullopt;
        header_block += frame.payload.materialize();
        if (frame.end_headers()) headers_done = true;
        break;
      case FrameType::kData:
        if (!headers_done) return std::nullopt;
        body.append_body(frame.payload);
        break;
      default:
        break;  // control frames are transparent here
    }
  }
  if (!headers_done) return std::nullopt;
  auto headers = decoder.decode(header_block);
  if (!headers) return std::nullopt;
  return std::make_pair(std::move(*headers), std::move(body));
}

std::optional<http::Request> Http2Peer::decode_request(
    const std::vector<Frame>& frames) {
  auto collected = collect(frames, request_decoder_);
  if (!collected) return std::nullopt;
  auto& [headers, body] = *collected;

  http::Request request;
  request.version = "HTTP/2.0";
  request.body = std::move(body);
  bool saw_method = false, saw_path = false;
  for (const auto& h : headers) {
    if (h.name == ":method") {
      saw_method = true;
      bool known = false;
      for (const http::Method m :
           {http::Method::GET, http::Method::HEAD, http::Method::POST,
            http::Method::PUT, http::Method::DELETE, http::Method::OPTIONS}) {
        if (h.value == http::method_name(m)) {
          request.method = m;
          known = true;
        }
      }
      if (!known) return std::nullopt;
    } else if (h.name == ":path") {
      saw_path = true;
      request.target = h.value;
    } else if (h.name == ":authority") {
      request.headers.add("Host", h.value);
    } else if (h.name == ":scheme") {
      // carried implicitly
    } else {
      request.headers.add(h.name, h.value);
    }
  }
  if (!saw_method || !saw_path) return std::nullopt;
  return request;
}

std::optional<http::Response> Http2Peer::decode_response(
    const std::vector<Frame>& frames) {
  auto collected = collect(frames, response_decoder_);
  if (!collected) return std::nullopt;
  auto& [headers, body] = *collected;

  http::Response response;
  response.version = "HTTP/2.0";
  response.body = std::move(body);
  bool saw_status = false;
  for (const auto& h : headers) {
    if (h.name == ":status") {
      int status = 0;
      const auto [ptr, ec] =
          std::from_chars(h.value.data(), h.value.data() + h.value.size(), status);
      if (ec != std::errc{} || ptr != h.value.data() + h.value.size()) {
        return std::nullopt;
      }
      response.status = status;
      saw_status = true;
    } else {
      response.headers.add(h.name, h.value);
    }
  }
  if (!saw_status) return std::nullopt;
  return response;
}

}  // namespace rangeamp::http2
