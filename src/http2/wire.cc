#include "http2/wire.h"

namespace rangeamp::http2 {
namespace {

// Empty SETTINGS frame (9 bytes) and SETTINGS ACK (9 bytes).
constexpr std::uint64_t kSettingsFrame = 9;
constexpr std::uint64_t kRstStreamFrame = 9 + 4;

}  // namespace

std::uint64_t Http2Wire::connection_setup_request_bytes() noexcept {
  // Client: preface + SETTINGS + ACK of the server's SETTINGS.
  return kConnectionPreface.size() + kSettingsFrame + kSettingsFrame;
}

std::uint64_t Http2Wire::connection_setup_response_bytes() noexcept {
  // Server: SETTINGS + ACK of the client's SETTINGS.
  return kSettingsFrame + kSettingsFrame;
}

net::TransferOutcome Http2Wire::do_transfer_outcome(
    const http::Request& request, const net::TransferOptions& options) {
  const std::optional<net::FaultSpec> fault = decide_fault(request);

  net::ExchangeScope exchange(*this, request, "h2");
  net::TransferOutcome outcome;

  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;
  if (!connected_) {
    request_bytes += connection_setup_request_bytes();
    response_bytes += connection_setup_response_bytes();
    connected_ = true;
  }

  const std::uint32_t stream_id = next_stream_id_;
  next_stream_id_ += 2;

  request_bytes += frames_size(session_.encode_request(request, stream_id));

  const auto fail_without_response = [&](net::TransferErrorKind kind) {
    exchange.record.faulted = true;
    exchange.record.bytes.request_bytes = request_bytes;
    exchange.record.bytes.response_bytes = response_bytes;
    exchange.finish();
    outcome.error = net::TransferError{kind, 0};
    return std::move(outcome);
  };

  // Connection reset after the request frames left, before any response
  // frame: RFC 7540 offers no partial-response recovery, the stream is dead.
  if (fault && fault->action == net::FaultAction::kConnectionReset) {
    return fail_without_response(net::TransferErrorKind::kConnectionReset);
  }
  if (fault && fault->action == net::FaultAction::kLatency) {
    outcome.latency_seconds = fault->latency_seconds;
    if (options.timeout_seconds &&
        fault->latency_seconds > *options.timeout_seconds) {
      outcome.latency_seconds = *options.timeout_seconds;
      return fail_without_response(net::TransferErrorKind::kTimeout);
    }
  }

  http::Response response =
      fault && fault->action == net::FaultAction::kStatus
          ? net::synthesized_fault_response(fault->status)
          : callee_->handle(request);
  exchange.record.status = response.status;

  std::optional<std::uint64_t> body_cap;
  if (options.head_only) {
    body_cap = 0;
  } else if (options.abort_after_body_bytes) {
    body_cap = *options.abort_after_body_bytes;
  }
  bool fault_cut = false;
  if (fault && fault->action == net::FaultAction::kTruncateBody &&
      fault->truncate_body_at < response.body.size() &&
      (!body_cap || fault->truncate_body_at < *body_cap)) {
    body_cap = fault->truncate_body_at;
    fault_cut = true;
  }

  const auto frames = session_.encode_response(response, stream_id);
  std::uint64_t body_received = 0;
  if (body_cap && *body_cap < response.body.size()) {
    // Header frames and DATA until the cap cross the wire.  A partially-read
    // DATA frame counts what actually arrived.
    std::uint64_t body_seen = 0;
    for (const Frame& frame : frames) {
      if (frame.type != FrameType::kData) {
        response_bytes += frame.serialized_size();
        continue;
      }
      if (body_seen >= *body_cap) break;
      const std::uint64_t take =
          std::min<std::uint64_t>(frame.payload.size(), *body_cap - body_seen);
      response_bytes += 9 + take;
      body_seen += take;
    }
    body_received = body_seen;
    if (fault_cut) {
      // The sender died mid-stream: its RST_STREAM travels in the response
      // direction, and the receiver is left with an incomplete message.
      response_bytes += kRstStreamFrame;
      exchange.record.faulted = true;
      outcome.error = net::TransferError{net::TransferErrorKind::kTruncatedBody,
                                         body_seen};
    } else {
      request_bytes += kRstStreamFrame;  // the receiver's deliberate abort
    }
    exchange.record.response_truncated = true;
    response.body.truncate(*body_cap);
  } else {
    response_bytes += frames_size(frames);
    body_received = response.body.size();
  }
  // Flow control: the receiver replenished the 64 KB window once per window
  // of DATA it accepted (WINDOW_UPDATE, 13 bytes, request direction).  An
  // aborting receiver stops granting credit past its cap.
  request_bytes += (body_received / kInitialWindow) * (9 + 4);

  exchange.record.bytes.request_bytes = request_bytes;
  exchange.record.bytes.response_bytes = response_bytes;
  exchange.finish();
  outcome.response = std::move(response);
  return outcome;
}

}  // namespace rangeamp::http2
