#include "http2/wire.h"

namespace rangeamp::http2 {
namespace {

// Empty SETTINGS frame (9 bytes) and SETTINGS ACK (9 bytes).
constexpr std::uint64_t kSettingsFrame = 9;
constexpr std::uint64_t kRstStreamFrame = 9 + 4;

}  // namespace

std::uint64_t Http2Wire::connection_setup_request_bytes() noexcept {
  // Client: preface + SETTINGS + ACK of the server's SETTINGS.
  return kConnectionPreface.size() + kSettingsFrame + kSettingsFrame;
}

std::uint64_t Http2Wire::connection_setup_response_bytes() noexcept {
  // Server: SETTINGS + ACK of the client's SETTINGS.
  return kSettingsFrame + kSettingsFrame;
}

http::Response Http2Wire::transfer(const http::Request& request,
                                   const net::TransferOptions& options) {
  net::ExchangeRecord record;
  record.target = request.target;
  record.range_header = std::string{request.headers.get_or("Range", "")};

  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;
  if (!connected_) {
    request_bytes += connection_setup_request_bytes();
    response_bytes += connection_setup_response_bytes();
    connected_ = true;
  }

  const std::uint32_t stream_id = next_stream_id_;
  next_stream_id_ += 2;

  request_bytes += frames_size(session_.encode_request(request, stream_id));

  http::Response response = callee_->handle(request);
  record.status = response.status;

  std::optional<std::uint64_t> body_cap;
  if (options.head_only) {
    body_cap = 0;
  } else if (options.abort_after_body_bytes) {
    body_cap = *options.abort_after_body_bytes;
  }

  const auto frames = session_.encode_response(response, stream_id);
  std::uint64_t body_received = 0;
  if (body_cap && *body_cap < response.body.size()) {
    // The receiver reads header frames and DATA until the cap, then resets
    // the stream.  A partially-read DATA frame counts what actually arrived.
    std::uint64_t body_seen = 0;
    for (const Frame& frame : frames) {
      if (frame.type != FrameType::kData) {
        response_bytes += frame.serialized_size();
        continue;
      }
      if (body_seen >= *body_cap) break;
      const std::uint64_t take =
          std::min<std::uint64_t>(frame.payload.size(), *body_cap - body_seen);
      response_bytes += 9 + take;
      body_seen += take;
    }
    body_received = body_seen;
    request_bytes += kRstStreamFrame;  // the abort itself
    record.response_truncated = true;
    response.body.truncate(*body_cap);
  } else {
    response_bytes += frames_size(frames);
    body_received = response.body.size();
  }
  // Flow control: the receiver replenished the 64 KB window once per window
  // of DATA it accepted (WINDOW_UPDATE, 13 bytes, request direction).  An
  // aborting receiver stops granting credit past its cap.
  request_bytes += (body_received / kInitialWindow) * (9 + 4);

  record.request_bytes = request_bytes;
  record.response_bytes = response_bytes;
  recorder_->record(std::move(record));
  return response;
}

}  // namespace rangeamp::http2
