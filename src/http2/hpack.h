// HPACK header compression (RFC 7541), without Huffman string coding.
//
// The paper's section VI-B observes that HTTP/2 changes nothing about the
// RangeAmp attacks: RFC 7540 section 8.1 defers range semantics entirely to
// RFC 7233.  This module exists to demonstrate that end-to-end -- the same
// messages, framed over h2 streams with HPACK-compressed header blocks,
// produce the same (in fact slightly larger, since the tiny 206 responses
// compress well) amplification factors.
//
// Implemented: the full RFC 7541 static table, a size-managed dynamic table
// with eviction, prefix integer coding (section 5.1), indexed and literal
// representations (section 6), and dynamic-table-size updates on decode.
// Omitted: Huffman string coding -- it is optional per the RFC (H bit = 0)
// and orthogonal to everything measured here.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rangeamp::http2 {

struct HeaderEntry {
  std::string name;   ///< lowercase, per RFC 7540 section 8.1.2
  std::string value;

  /// RFC 7541 section 4.1 entry size: name + value + 32.
  std::size_t hpack_size() const noexcept {
    return name.size() + value.size() + 32;
  }

  bool operator==(const HeaderEntry&) const = default;
};

/// The 61-entry static table of RFC 7541 appendix A.  1-based index.
const HeaderEntry& static_table_entry(std::size_t index) noexcept;
inline constexpr std::size_t kStaticTableSize = 61;

/// Prefix integer coding (RFC 7541 section 5.1).  `prefix_bits` in [1,8];
/// `first_byte_flags` holds the representation's flag bits above the prefix.
void encode_integer(std::uint64_t value, int prefix_bits,
                    std::uint8_t first_byte_flags, std::string& out);

/// Decodes a prefix integer at `pos`; advances pos past it.  Returns nullopt
/// on truncation or overflow.
std::optional<std::uint64_t> decode_integer(std::string_view bytes,
                                            std::size_t& pos, int prefix_bits);

/// The encoder/decoder dynamic table (RFC 7541 section 2.3.2).
class DynamicTable {
 public:
  explicit DynamicTable(std::size_t max_size = 4096) : max_size_(max_size) {}

  void insert(HeaderEntry entry);
  void set_max_size(std::size_t max_size);

  /// Entry by HPACK index (62 = most recent). nullptr when out of range.
  const HeaderEntry* lookup(std::size_t index) const noexcept;

  /// Finds an exact (name, value) match; returns the HPACK index (>= 62).
  std::optional<std::size_t> find(std::string_view name,
                                  std::string_view value) const noexcept;

  /// Finds a name-only match; returns the HPACK index.
  std::optional<std::size_t> find_name(std::string_view name) const noexcept;

  std::size_t entry_count() const noexcept { return entries_.size(); }
  std::size_t size() const noexcept { return size_; }
  std::size_t max_size() const noexcept { return max_size_; }

 private:
  void evict();

  std::size_t max_size_;
  std::size_t size_ = 0;
  std::deque<HeaderEntry> entries_;  ///< front = most recent
};

/// Stateful HPACK encoder (one per connection direction).
class Encoder {
 public:
  explicit Encoder(std::size_t dynamic_table_size = 4096)
      : table_(dynamic_table_size) {}

  /// Encodes a header list into one header block fragment.
  std::string encode(const std::vector<HeaderEntry>& headers);

  const DynamicTable& table() const noexcept { return table_; }

 private:
  DynamicTable table_;
};

/// Stateful HPACK decoder (mirror of the peer's encoder).
class Decoder {
 public:
  explicit Decoder(std::size_t dynamic_table_size = 4096)
      : table_(dynamic_table_size) {}

  /// Decodes a header block fragment.  Returns nullopt on malformed input.
  std::optional<std::vector<HeaderEntry>> decode(std::string_view block);

  const DynamicTable& table() const noexcept { return table_; }

 private:
  DynamicTable table_;
};

}  // namespace rangeamp::http2
