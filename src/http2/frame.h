// HTTP/2 framing layer (RFC 7540 section 4).
//
// Frames carry their payload as an http::Body so DATA frames over synthetic
// resources stay O(1) in memory; serialized sizes are exact (9-byte frame
// header + payload).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "http/body.h"

namespace rangeamp::http2 {

enum class FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kPriority = 0x2,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPushPromise = 0x5,
  kPing = 0x6,
  kGoAway = 0x7,
  kWindowUpdate = 0x8,
  kContinuation = 0x9,
};

std::string_view frame_type_name(FrameType type) noexcept;

// Frame flags (the ones this library uses).
inline constexpr std::uint8_t kFlagEndStream = 0x1;
inline constexpr std::uint8_t kFlagAck = 0x1;  // SETTINGS
inline constexpr std::uint8_t kFlagEndHeaders = 0x4;

/// RFC 7540 default SETTINGS_MAX_FRAME_SIZE.
inline constexpr std::uint32_t kDefaultMaxFrameSize = 16384;

/// The 24-byte client connection preface (RFC 7540 section 3.5).
inline constexpr std::string_view kConnectionPreface =
    "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;  ///< 31-bit
  http::Body payload;

  bool end_stream() const noexcept { return flags & kFlagEndStream; }
  bool end_headers() const noexcept { return flags & kFlagEndHeaders; }

  /// Exact wire size: 9-byte header + payload length.
  std::uint64_t serialized_size() const noexcept { return 9 + payload.size(); }
};

/// Serializes one frame (materializes the payload; test/debug helper -- the
/// byte-accounting path uses serialized_size()).
std::string to_bytes(const Frame& frame);

/// Total wire size of a frame sequence.
std::uint64_t frames_size(const std::vector<Frame>& frames) noexcept;

/// Parses a single frame at `pos`; advances pos past it.  Returns nullopt on
/// truncation or a payload exceeding `max_frame_size`.
std::optional<Frame> parse_frame(std::string_view bytes, std::size_t& pos,
                                 std::uint32_t max_frame_size = kDefaultMaxFrameSize);

/// Parses a whole frame sequence (no preface).  Returns nullopt when any
/// frame is malformed or trailing bytes remain.
std::optional<std::vector<Frame>> parse_frames(
    std::string_view bytes, std::uint32_t max_frame_size = kDefaultMaxFrameSize);

}  // namespace rangeamp::http2
