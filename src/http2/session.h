// HTTP/2 message <-> frame mapping (RFC 7540 section 8).
//
// A session owns the HPACK state of one connection: requests and responses
// encoded through the same session share dynamic tables, exactly like frames
// on one TCP connection.  This is what makes repeated attack requests cheap
// on the wire -- and it is measurable: the second identical SBR request's
// HEADERS frame is a handful of bytes.
#pragma once

#include <optional>
#include <vector>

#include "http/message.h"
#include "http2/frame.h"
#include "http2/hpack.h"

namespace rangeamp::http2 {

/// Converts an http::Request/Response into the frame sequence a peer would
/// send on a stream: HEADERS (+ CONTINUATIONs when the block exceeds the max
/// frame size) followed by DATA frames chunked at the max frame size.
class Http2Session {
 public:
  explicit Http2Session(std::uint32_t max_frame_size = kDefaultMaxFrameSize)
      : max_frame_size_(max_frame_size) {}

  std::vector<Frame> encode_request(const http::Request& request,
                                    std::uint32_t stream_id);
  std::vector<Frame> encode_response(const http::Response& response,
                                     std::uint32_t stream_id);

  const Encoder& request_encoder() const noexcept { return request_encoder_; }
  const Encoder& response_encoder() const noexcept { return response_encoder_; }

 private:
  std::vector<Frame> frame_message(const std::string& header_block,
                                   const http::Body& body,
                                   std::uint32_t stream_id) const;

  std::uint32_t max_frame_size_;
  Encoder request_encoder_;
  Encoder response_encoder_;
};

/// The decoding end of a session (a test double for the peer): rebuilds
/// messages from frame sequences.
class Http2Peer {
 public:
  std::optional<http::Request> decode_request(const std::vector<Frame>& frames);
  std::optional<http::Response> decode_response(const std::vector<Frame>& frames);

 private:
  std::optional<std::pair<std::vector<HeaderEntry>, http::Body>> collect(
      const std::vector<Frame>& frames, Decoder& decoder);

  Decoder request_decoder_;
  Decoder response_decoder_;
};

/// Header-list translation helpers (exposed for tests).
std::vector<HeaderEntry> request_header_list(const http::Request& request);
std::vector<HeaderEntry> response_header_list(const http::Response& response);

}  // namespace rangeamp::http2
