#include "http2/hpack.h"

#include <array>

namespace rangeamp::http2 {
namespace {

// RFC 7541 appendix A, entries 1..61.
const std::array<HeaderEntry, kStaticTableSize>& static_table() {
  static const std::array<HeaderEntry, kStaticTableSize> kTable = {{
      {":authority", ""},
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":path", "/index.html"},
      {":scheme", "http"},
      {":scheme", "https"},
      {":status", "200"},
      {":status", "204"},
      {":status", "206"},
      {":status", "304"},
      {":status", "400"},
      {":status", "404"},
      {":status", "500"},
      {"accept-charset", ""},
      {"accept-encoding", "gzip, deflate"},
      {"accept-language", ""},
      {"accept-ranges", ""},
      {"accept", ""},
      {"access-control-allow-origin", ""},
      {"age", ""},
      {"allow", ""},
      {"authorization", ""},
      {"cache-control", ""},
      {"content-disposition", ""},
      {"content-encoding", ""},
      {"content-language", ""},
      {"content-length", ""},
      {"content-location", ""},
      {"content-range", ""},
      {"content-type", ""},
      {"cookie", ""},
      {"date", ""},
      {"etag", ""},
      {"expect", ""},
      {"expires", ""},
      {"from", ""},
      {"host", ""},
      {"if-match", ""},
      {"if-modified-since", ""},
      {"if-none-match", ""},
      {"if-range", ""},
      {"if-unmodified-since", ""},
      {"last-modified", ""},
      {"link", ""},
      {"location", ""},
      {"max-forwards", ""},
      {"proxy-authenticate", ""},
      {"proxy-authorization", ""},
      {"range", ""},
      {"referer", ""},
      {"refresh", ""},
      {"retry-after", ""},
      {"server", ""},
      {"set-cookie", ""},
      {"strict-transport-security", ""},
      {"transfer-encoding", ""},
      {"user-agent", ""},
      {"vary", ""},
      {"via", ""},
      {"www-authenticate", ""},
  }};
  return kTable;
}

// Raw string literal (H = 0), RFC 7541 section 5.2.
void encode_string(std::string_view s, std::string& out) {
  encode_integer(s.size(), 7, 0x00, out);
  out.append(s);
}

std::optional<std::string> decode_string(std::string_view bytes,
                                         std::size_t& pos) {
  if (pos >= bytes.size()) return std::nullopt;
  const bool huffman = (static_cast<std::uint8_t>(bytes[pos]) & 0x80) != 0;
  const auto length = decode_integer(bytes, pos, 7);
  if (!length || huffman) return std::nullopt;  // Huffman not supported
  if (bytes.size() - pos < *length) return std::nullopt;
  std::string out{bytes.substr(pos, static_cast<std::size_t>(*length))};
  pos += static_cast<std::size_t>(*length);
  return out;
}

}  // namespace

const HeaderEntry& static_table_entry(std::size_t index) noexcept {
  return static_table()[index - 1];
}

void encode_integer(std::uint64_t value, int prefix_bits,
                    std::uint8_t first_byte_flags, std::string& out) {
  const std::uint64_t max_prefix = (1u << prefix_bits) - 1;
  if (value < max_prefix) {
    out.push_back(static_cast<char>(first_byte_flags | value));
    return;
  }
  out.push_back(static_cast<char>(first_byte_flags | max_prefix));
  value -= max_prefix;
  while (value >= 128) {
    out.push_back(static_cast<char>((value % 128) | 0x80));
    value /= 128;
  }
  out.push_back(static_cast<char>(value));
}

std::optional<std::uint64_t> decode_integer(std::string_view bytes,
                                            std::size_t& pos, int prefix_bits) {
  if (pos >= bytes.size()) return std::nullopt;
  const std::uint64_t max_prefix = (1u << prefix_bits) - 1;
  std::uint64_t value = static_cast<std::uint8_t>(bytes[pos]) & max_prefix;
  ++pos;
  if (value < max_prefix) return value;
  std::uint64_t shift = 0;
  while (true) {
    if (pos >= bytes.size() || shift > 56) return std::nullopt;
    const std::uint8_t byte = static_cast<std::uint8_t>(bytes[pos]);
    ++pos;
    value += static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

void DynamicTable::insert(HeaderEntry entry) {
  const std::size_t entry_size = entry.hpack_size();
  if (entry_size > max_size_) {
    // RFC 7541 section 4.4: too-large entries empty the table.
    entries_.clear();
    size_ = 0;
    return;
  }
  entries_.push_front(std::move(entry));
  size_ += entry_size;
  evict();
}

void DynamicTable::set_max_size(std::size_t max_size) {
  max_size_ = max_size;
  evict();
}

void DynamicTable::evict() {
  while (size_ > max_size_ && !entries_.empty()) {
    size_ -= entries_.back().hpack_size();
    entries_.pop_back();
  }
}

const HeaderEntry* DynamicTable::lookup(std::size_t index) const noexcept {
  if (index <= kStaticTableSize) return nullptr;
  const std::size_t offset = index - kStaticTableSize - 1;
  if (offset >= entries_.size()) return nullptr;
  return &entries_[offset];
}

std::optional<std::size_t> DynamicTable::find(std::string_view name,
                                              std::string_view value) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name && entries_[i].value == value) {
      return kStaticTableSize + 1 + i;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> DynamicTable::find_name(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return kStaticTableSize + 1 + i;
  }
  return std::nullopt;
}

std::string Encoder::encode(const std::vector<HeaderEntry>& headers) {
  std::string out;
  for (const HeaderEntry& h : headers) {
    // Exact match: indexed representation (section 6.1).
    std::optional<std::size_t> exact;
    std::optional<std::size_t> name_only;
    for (std::size_t i = 1; i <= kStaticTableSize; ++i) {
      const HeaderEntry& e = static_table_entry(i);
      if (e.name == h.name) {
        if (!name_only) name_only = i;
        if (e.value == h.value) {
          exact = i;
          break;
        }
      }
    }
    if (!exact) {
      if (const auto dyn = table_.find(h.name, h.value)) exact = dyn;
    }
    if (exact) {
      encode_integer(*exact, 7, 0x80, out);
      continue;
    }
    if (!name_only) name_only = table_.find_name(h.name);

    // Literal with incremental indexing (section 6.2.1).
    if (name_only) {
      encode_integer(*name_only, 6, 0x40, out);
    } else {
      out.push_back(0x40);
      encode_string(h.name, out);
    }
    encode_string(h.value, out);
    table_.insert(h);
  }
  return out;
}

std::optional<std::vector<HeaderEntry>> Decoder::decode(std::string_view block) {
  std::vector<HeaderEntry> out;
  std::size_t pos = 0;
  while (pos < block.size()) {
    const std::uint8_t first = static_cast<std::uint8_t>(block[pos]);
    if (first & 0x80) {
      // Indexed header field.
      const auto index = decode_integer(block, pos, 7);
      if (!index || *index == 0) return std::nullopt;
      if (*index <= kStaticTableSize) {
        out.push_back(static_table_entry(static_cast<std::size_t>(*index)));
      } else {
        const HeaderEntry* e = table_.lookup(static_cast<std::size_t>(*index));
        if (!e) return std::nullopt;
        out.push_back(*e);
      }
      continue;
    }
    if ((first & 0xE0) == 0x20) {
      // Dynamic table size update (section 6.3).
      const auto new_size = decode_integer(block, pos, 5);
      if (!new_size) return std::nullopt;
      table_.set_max_size(static_cast<std::size_t>(*new_size));
      continue;
    }
    // Literal representations: with incremental indexing (0x40), without
    // indexing (0x00) or never indexed (0x10).
    const bool incremental = (first & 0xC0) == 0x40;
    const int prefix = incremental ? 6 : 4;
    const auto name_index = decode_integer(block, pos, prefix);
    if (!name_index) return std::nullopt;
    HeaderEntry entry;
    if (*name_index == 0) {
      auto name = decode_string(block, pos);
      if (!name) return std::nullopt;
      entry.name = std::move(*name);
    } else if (*name_index <= kStaticTableSize) {
      entry.name = static_table_entry(static_cast<std::size_t>(*name_index)).name;
    } else {
      const HeaderEntry* e = table_.lookup(static_cast<std::size_t>(*name_index));
      if (!e) return std::nullopt;
      entry.name = e->name;
    }
    auto value = decode_string(block, pos);
    if (!value) return std::nullopt;
    entry.value = std::move(*value);
    if (incremental) table_.insert(entry);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace rangeamp::http2
