#include "http2/frame.h"

namespace rangeamp::http2 {

std::string_view frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kPriority: return "PRIORITY";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPushPromise: return "PUSH_PROMISE";
    case FrameType::kPing: return "PING";
    case FrameType::kGoAway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
    case FrameType::kContinuation: return "CONTINUATION";
  }
  return "?";
}

std::string to_bytes(const Frame& frame) {
  std::string out;
  const std::uint64_t length = frame.payload.size();
  out.reserve(static_cast<std::size_t>(9 + length));
  out.push_back(static_cast<char>((length >> 16) & 0xFF));
  out.push_back(static_cast<char>((length >> 8) & 0xFF));
  out.push_back(static_cast<char>(length & 0xFF));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.flags));
  out.push_back(static_cast<char>((frame.stream_id >> 24) & 0x7F));
  out.push_back(static_cast<char>((frame.stream_id >> 16) & 0xFF));
  out.push_back(static_cast<char>((frame.stream_id >> 8) & 0xFF));
  out.push_back(static_cast<char>(frame.stream_id & 0xFF));
  out.append(frame.payload.materialize());
  return out;
}

std::uint64_t frames_size(const std::vector<Frame>& frames) noexcept {
  std::uint64_t total = 0;
  for (const Frame& f : frames) total += f.serialized_size();
  return total;
}

std::optional<Frame> parse_frame(std::string_view bytes, std::size_t& pos,
                                 std::uint32_t max_frame_size) {
  if (bytes.size() - pos < 9) return std::nullopt;
  const auto u8 = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + i]));
  };
  const std::uint32_t length = (u8(0) << 16) | (u8(1) << 8) | u8(2);
  if (length > max_frame_size) return std::nullopt;
  const std::uint8_t type = static_cast<std::uint8_t>(u8(3));
  if (type > static_cast<std::uint8_t>(FrameType::kContinuation)) {
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.flags = static_cast<std::uint8_t>(u8(4));
  frame.stream_id = ((u8(5) & 0x7F) << 24) | (u8(6) << 16) | (u8(7) << 8) | u8(8);
  if (bytes.size() - pos - 9 < length) return std::nullopt;
  frame.payload = http::Body::literal(std::string{bytes.substr(pos + 9, length)});
  pos += 9 + length;
  return frame;
}

std::optional<std::vector<Frame>> parse_frames(std::string_view bytes,
                                               std::uint32_t max_frame_size) {
  std::vector<Frame> frames;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    auto frame = parse_frame(bytes, pos, max_frame_size);
    if (!frame) return std::nullopt;
    frames.push_back(std::move(*frame));
  }
  return frames;
}

}  // namespace rangeamp::http2
