// An HTTP/2-framed connection segment with exact byte accounting.
//
// The h2 implementation of net::Transport: the request and response cross
// the segment as h2 frame sequences (preface + SETTINGS exchange on first
// use, then HEADERS/CONTINUATION/DATA per exchange), and the TrafficRecorder
// sees the exact framed sizes.  Receiver-side aborts are modelled as reading
// DATA frames until the cap and answering with RST_STREAM, per RFC 7540.
// In-memory and deterministic, like net::InMemoryTransport; there is no h2
// socket backend (see the matrix in docs/transport-model.md).
#pragma once

#include "http2/session.h"
#include "net/transport.h"

namespace rangeamp::http2 {

class Http2Wire final : public net::Transport {
 public:
  Http2Wire(net::TrafficRecorder& recorder, net::HttpHandler& callee,
            std::uint32_t max_frame_size = kDefaultMaxFrameSize)
      : net::Transport(recorder), callee_(&callee), session_(max_frame_size) {}

  /// Frames the connection setup would add (preface + SETTINGS exchange);
  /// exposed so tests can assert the first-transfer overhead.
  static std::uint64_t connection_setup_request_bytes() noexcept;
  static std::uint64_t connection_setup_response_bytes() noexcept;

  /// RFC 7540 section 6.9: the receiver grants flow-control credit with
  /// WINDOW_UPDATE frames as DATA arrives; one 13-byte frame per replenished
  /// window.  This is HTTP/2's explicit form of the TCP receive-window
  /// throttle the OBR attacker abuses (paper section IV-C): an aborting
  /// receiver simply stops granting credit.
  static constexpr std::uint32_t kInitialWindow = 65535;

 protected:
  /// One h2-framed exchange.  Stream ids follow the client convention (odd,
  /// increasing); a reset mid-stream is framed as an RST_STREAM from the
  /// peer, partial DATA still counted.
  net::TransferOutcome do_transfer_outcome(
      const http::Request& request,
      const net::TransferOptions& options) override;

 private:
  net::HttpHandler* callee_;
  Http2Session session_;
  std::uint32_t next_stream_id_ = 1;
  bool connected_ = false;
};

/// Adapter presenting an Http2Wire as an HttpHandler.
class Http2WireHandler final : public net::HttpHandler {
 public:
  Http2WireHandler(net::TrafficRecorder& recorder, net::HttpHandler& callee)
      : wire_(recorder, callee) {}

  http::Response handle(const http::Request& request) override {
    return wire_.transfer(request);
  }

  Http2Wire& wire() noexcept { return wire_; }

 private:
  Http2Wire wire_;
};

}  // namespace rangeamp::http2
