// An HTTP/2-framed connection segment with exact byte accounting.
//
// Drop-in analogue of net::Wire: the request and response cross the segment
// as h2 frame sequences (preface + SETTINGS exchange on first use, then
// HEADERS/CONTINUATION/DATA per exchange), and the TrafficRecorder sees the
// exact framed sizes.  Receiver-side aborts are modelled as reading DATA
// frames until the cap and answering with RST_STREAM, per RFC 7540.
#pragma once

#include "http2/session.h"
#include "net/handler.h"
#include "net/traffic.h"
#include "net/wire.h"

namespace rangeamp::http2 {

class Http2Wire {
 public:
  Http2Wire(net::TrafficRecorder& recorder, net::HttpHandler& callee,
            std::uint32_t max_frame_size = kDefaultMaxFrameSize)
      : recorder_(&recorder), callee_(&callee), session_(max_frame_size) {}

  /// Performs one exchange, HTTP/2-framed.  Stream ids follow the client
  /// convention (odd, increasing).  The returned response body is truncated
  /// to what the receiver accepted.  Injected transfer failures are folded
  /// into a response via net::response_for_failed_outcome().
  http::Response transfer(const http::Request& request,
                          const net::TransferOptions& options = {});

  /// Failure-aware exchange (see net::Wire::transfer_outcome): injected
  /// faults surface as typed TransferErrors; a reset mid-stream is framed as
  /// an RST_STREAM from the peer, partial DATA still counted.
  net::TransferOutcome transfer_outcome(const http::Request& request,
                                        const net::TransferOptions& options = {});

  /// Attaches a fault schedule to this segment (non-owning; nullptr
  /// detaches).  The injector must outlive the wire.
  void set_fault_injector(net::FaultInjector* injector) { injector_ = injector; }
  net::FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Attaches a tracer (non-owning; nullptr detaches): every transfer opens
  /// a "net.transfer" span with this segment's id and the exact framed byte
  /// counts, annotated proto=h2.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const noexcept { return tracer_; }

  net::TrafficRecorder& recorder() noexcept { return *recorder_; }

  /// Frames the connection setup would add (preface + SETTINGS exchange);
  /// exposed so tests can assert the first-transfer overhead.
  static std::uint64_t connection_setup_request_bytes() noexcept;
  static std::uint64_t connection_setup_response_bytes() noexcept;

  /// RFC 7540 section 6.9: the receiver grants flow-control credit with
  /// WINDOW_UPDATE frames as DATA arrives; one 13-byte frame per replenished
  /// window.  This is HTTP/2's explicit form of the TCP receive-window
  /// throttle the OBR attacker abuses (paper section IV-C): an aborting
  /// receiver simply stops granting credit.
  static constexpr std::uint32_t kInitialWindow = 65535;

 private:
  net::TrafficRecorder* recorder_;
  net::HttpHandler* callee_;
  Http2Session session_;
  net::FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t next_stream_id_ = 1;
  bool connected_ = false;
};

/// Adapter presenting an Http2Wire as an HttpHandler.
class Http2WireHandler final : public net::HttpHandler {
 public:
  Http2WireHandler(net::TrafficRecorder& recorder, net::HttpHandler& callee)
      : wire_(recorder, callee) {}

  http::Response handle(const http::Request& request) override {
    return wire_.transfer(request);
  }

  Http2Wire& wire() noexcept { return wire_; }

 private:
  Http2Wire wire_;
};

}  // namespace rangeamp::http2
