// Hop-level tracing: one crafted request yields a causally-ordered span tree.
//
// Every component that participates in a request's path (net::Wire,
// http2::Http2Wire, cdn::CdnNode, cdn::EdgeCluster, the campaign drivers)
// accepts a non-owning Tracer pointer.  A null tracer -- the default
// everywhere -- is a complete no-op: not a single byte of any experiment
// changes, which is what keeps the seed CSVs byte-identical while the
// subsystem is off.
//
// With a tracer attached, the synchronous call nesting of a transfer
// (client wire -> CdnNode::handle -> fetch -> upstream wire -> ...) becomes
// span parentage: Tracer keeps a stack of open spans, and a span opened
// while another is open becomes its child.  Each wire transfer stamps its
// span with the segment id and the exact serialized byte counts of the
// exchange, so summing a trace's wire spans per segment reproduces the
// TrafficRecorder totals for the same run -- the invariant
// scripts/check_trace.py and tests/integration/obs_cascade_test.cc enforce.
//
// Time is simulation time: the tracer reads the same clock the CDN nodes do
// (0 forever when none is installed).  Exports are JSONL (one span object
// per line, schema in scripts/trace_schema.json); scripts/trace2txt renders
// the tree for humans.  See docs/observability.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/accounting.h"

namespace rangeamp::obs {

using SpanId = std::uint64_t;  ///< 1-based; 0 means "no span"

/// One node of the trace tree.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;      ///< 0 = root of its trace
  std::uint64_t trace = 0;  ///< groups one request's tree; 1-based
  std::string name;       ///< e.g. "net.transfer", "cdn.handle", "cdn.fetch"
  net::SegmentId segment = net::SegmentId::kNone;  ///< wire spans only
  double start = 0;       ///< simulation seconds
  double end = 0;
  int status = 0;         ///< HTTP status this span resolved to (0 = n/a)
  net::TrafficTotals bytes;  ///< wire spans: exact serialized exchange sizes
  /// Ordered key/value annotations: cache verdict, range rewrite, breaker
  /// state, fill-lock role, fault hits, expected totals...
  std::vector<std::pair<std::string, std::string>> notes;
};

class Tracer {
 public:
  /// Installs a (simulation) time source; spans then carry start/end
  /// timestamps.  Without one every timestamp is 0.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// Opens a span as a child of the innermost open span; a span opened with
  /// an empty stack roots a new trace.  Returns its id.
  SpanId begin_span(std::string_view name,
                    net::SegmentId segment = net::SegmentId::kNone);

  /// Closes `id`, stamping its end time.  Out-of-order closes are tolerated
  /// (everything opened after `id` is closed with it) so an early return
  /// inside a traced scope cannot corrupt the stack.
  void end_span(SpanId id);

  /// The innermost open span (0 when none).
  SpanId current() const noexcept {
    return open_.empty() ? 0 : open_.back();
  }

  void note(SpanId id, std::string_view key, std::string_view value);
  void set_status(SpanId id, int status);
  void add_bytes(SpanId id, const net::TrafficTotals& bytes);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  std::uint64_t trace_count() const noexcept { return traces_; }

  /// Sums the byte totals of every *wire* span (segment != kNone) recorded
  /// for `segment`, across all traces.  This is the tracer-side view of a
  /// TrafficRecorder's totals.
  net::TrafficTotals segment_totals(net::SegmentId segment) const noexcept;

  /// One JSON object per span, one per line (see scripts/trace_schema.json).
  std::string to_jsonl() const;

  /// Deterministic ordered reduction of a per-shard tracer into this one:
  /// `other`'s spans are appended with span and trace ids rebased past this
  /// tracer's, preserving parentage, segments, bytes, and notes -- so
  /// segment_totals() of the merged tracer is the sum of the parts and the
  /// check_trace.py invariants keep holding.  `other` must have no open
  /// spans (a shard merges its tracer after its last exchange completed).
  /// Merge shards in shard-index order.
  void merge_from(const Tracer& other);

  void clear();

 private:
  Span* find(SpanId id);
  double now() const { return clock_ ? clock_() : 0.0; }

  std::function<double()> clock_;
  std::vector<Span> spans_;
  std::vector<SpanId> open_;  ///< stack of open span ids
  std::uint64_t traces_ = 0;
};

/// RAII span handle, null-tracer-safe: every operation on a scope whose
/// tracer is null is a no-op, so call sites read straight-line without
/// `if (tracer_)` guards.  Destruction closes the span.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, std::string_view name,
            net::SegmentId segment = net::SegmentId::kNone)
      : tracer_(tracer),
        id_(tracer ? tracer->begin_span(name, segment) : 0) {}
  ~SpanScope() {
    if (tracer_) tracer_->end_span(id_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  explicit operator bool() const noexcept { return tracer_ != nullptr; }
  SpanId id() const noexcept { return id_; }

  void note(std::string_view key, std::string_view value) {
    if (tracer_) tracer_->note(id_, key, value);
  }
  void set_status(int status) {
    if (tracer_) tracer_->set_status(id_, status);
  }
  void add_bytes(const net::TrafficTotals& bytes) {
    if (tracer_) tracer_->add_bytes(id_, bytes);
  }

 private:
  Tracer* tracer_;
  SpanId id_;
};

}  // namespace rangeamp::obs
