#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace rangeamp::obs {

namespace {

std::string format_value(double value) {
  // Integral values print without a fraction so counter exposition matches
  // Prometheus conventions; everything else keeps six significant decimals.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// Splits `name{labels}` so histogram suffixes can be spliced before the
/// label set (`x_bucket{vendor=...,le=...}`).
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  // name{a="b"} -> base "name", inner labels without braces: a="b"
  std::string inner = name.substr(brace + 1);
  if (!inner.empty() && inner.back() == '}') inner.pop_back();
  return {name.substr(0, brace), inner};
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size(), 0);
}

void Histogram::observe(double value) noexcept {
  ++count_;
  sum_ += value;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      ++buckets_[i];
      return;
    }
  }
  ++overflow_;
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument(
        "Histogram::merge_from: bucket bounds differ");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size() + 1);
  std::uint64_t running = 0;
  for (const std::uint64_t b : buckets_) {
    running += b;
    out.push_back(running);
  }
  out.push_back(running + overflow_);  // +Inf
  return out;
}

std::vector<double> amplification_buckets() {
  return {1, 10, 100, 1000, 10000, 100000};
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  if (!help.empty()) help_.emplace(name, help);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  if (!help.empty()) help_.emplace(name, help);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  if (!help.empty()) help_.emplace(name, help);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram{std::move(bounds)}).first->second;
}

void MetricsRegistry::sample(double sim_seconds) {
  for (const auto& [name, c] : counters_) {
    series_.push_back({sim_seconds, name, static_cast<double>(c.value())});
  }
  for (const auto& [name, g] : gauges_) {
    series_.push_back({sim_seconds, name, g.value()});
  }
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  const auto emit_help = [&](const std::string& name, std::string_view type) {
    const std::string base = split_labels(name).first;
    if (const auto it = help_.find(name); it != help_.end()) {
      out += "# HELP " + base + " " + it->second + "\n";
    }
    out += "# TYPE " + base + " ";
    out += type;
    out += "\n";
  };
  for (const auto& [name, c] : counters_) {
    emit_help(name, "counter");
    out += name + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    emit_help(name, "gauge");
    out += name + " " + format_value(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    emit_help(name, "histogram");
    const auto [base, labels] = split_labels(name);
    const auto join = [&](const std::string& le) {
      std::string l = labels;
      if (!l.empty()) l += ",";
      l += "le=\"" + le + "\"";
      return base + "_bucket{" + l + "}";
    };
    const auto cumulative = h.cumulative_counts();
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      out += join(format_value(h.bounds()[i])) + " " +
             std::to_string(cumulative[i]) + "\n";
    }
    out += join("+Inf") + " " + std::to_string(cumulative.back()) + "\n";
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    out += base + "_sum" + suffix + " " + format_value(h.sum()) + "\n";
    out += base + "_count" + suffix + " " + std::to_string(h.count()) + "\n";
  }
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, help] : other.help_) help_.emplace(name, help);
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].add(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge_from(h);
    }
  }
  series_.insert(series_.end(), other.series_.begin(), other.series_.end());
  std::stable_sort(series_.begin(), series_.end(),
                   [](const SeriesPoint& a, const SeriesPoint& b) {
                     return a.t < b.t;
                   });
}

std::string MetricsRegistry::series_csv() const {
  std::string out = "t_s,metric,value\n";
  for (const auto& point : series_) {
    char t[32];
    std::snprintf(t, sizeof(t), "%.3f", point.t);
    out += std::string{t} + "," + point.name + "," + format_value(point.value) +
           "\n";
  }
  return out;
}

std::size_t MetricsRegistry::metric_count() const noexcept {
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace rangeamp::obs
