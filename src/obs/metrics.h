// Metrics: named counters, gauges, and histograms with a Prometheus-text
// exporter and a sim-clock time-series sampler.
//
// The registry is deterministic end to end: metric families are kept in a
// sorted map, histograms use explicit bucket bounds, and the sampler records
// snapshots at *simulation* timestamps -- a DES campaign emits the same
// time-series on every run because no wall clock is ever consulted.
//
// Like the tracer, the registry is opt-in by pointer: components hold a
// non-owning MetricsRegistry* that defaults to null, and a null registry
// costs nothing.  See docs/observability.md for the metric name catalogue.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rangeamp::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram (Prometheus semantics: `le` upper bounds are
/// cumulative, an implicit +Inf bucket catches the tail).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double value) noexcept;

  /// Adds `other`'s observations bucket-wise (sharded campaigns merge
  /// per-shard histograms this way).  Throws std::invalid_argument when the
  /// bucket bounds differ -- merging those would misbucket observations.
  void merge_from(const Histogram& other);

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// counts()[i] = observations <= bounds()[i]; counts().back() = all.
  std::vector<std::uint64_t> cumulative_counts() const;
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }

 private:
  std::vector<double> bounds_;        ///< ascending upper bounds
  std::vector<std::uint64_t> buckets_;  ///< per-bucket (non-cumulative) counts
  std::uint64_t overflow_ = 0;        ///< observations above the last bound
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Default amplification-factor buckets: decades from 1x to 100000x, the
/// range Table IV/V spans.
std::vector<double> amplification_buckets();

class MetricsRegistry {
 public:
  /// Looks up or creates a metric.  `name` may carry Prometheus-style labels
  /// (`sbr_amplification_factor{vendor="Cloudflare"}`); the registry treats
  /// the whole string as the identity.  `help` is recorded on first sight.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Snapshots every counter and gauge at simulation time `sim_seconds`,
  /// appending to the internal time series.
  void sample(double sim_seconds);

  /// Prometheus text exposition of the current values (counters, gauges,
  /// histograms with _bucket/_sum/_count).
  std::string to_prometheus() const;

  /// The sampled time series as CSV: `t_s,metric,value` rows in sample
  /// order.
  std::string series_csv() const;

  /// Deterministic ordered reduction of a per-shard registry into this one:
  /// counters and histograms add, gauges add (per-shard gauges are partial
  /// sums of a deployment-wide quantity), help strings are adopted on first
  /// sight, and `other`'s time series is appended then the whole series is
  /// stable-sorted by timestamp -- per-shard samples interleave into one
  /// time-ordered stream whose order depends only on merge order, never on
  /// thread scheduling.  Merge shards in shard-index order.
  void merge_from(const MetricsRegistry& other);

  std::size_t metric_count() const noexcept;
  std::size_t sample_count() const noexcept { return series_.size(); }

 private:
  struct SeriesPoint {
    double t;
    std::string name;
    double value;
  };

  // std::map keeps exposition and sampling order deterministic.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> help_;
  std::vector<SeriesPoint> series_;
};

}  // namespace rangeamp::obs
