#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace rangeamp::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

}  // namespace

SpanId Tracer::begin_span(std::string_view name, net::SegmentId segment) {
  Span span;
  span.id = spans_.size() + 1;
  span.parent = current();
  if (span.parent == 0) ++traces_;
  // Children inherit the trace of the root that was open when they began.
  span.trace = span.parent == 0 ? traces_ : spans_[span.parent - 1].trace;
  span.name = std::string{name};
  span.segment = segment;
  span.start = now();
  span.end = span.start;
  spans_.push_back(std::move(span));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::end_span(SpanId id) {
  const auto it = std::find(open_.begin(), open_.end(), id);
  if (it == open_.end()) return;  // already closed (or never opened)
  const double t = now();
  // Close everything opened after `id` too: a traced scope that returned
  // early must not leave descendants dangling on the stack.
  for (auto open = it; open != open_.end(); ++open) {
    spans_[*open - 1].end = t;
  }
  open_.erase(it, open_.end());
}

Span* Tracer::find(SpanId id) {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

void Tracer::note(SpanId id, std::string_view key, std::string_view value) {
  if (Span* span = find(id)) {
    span->notes.emplace_back(std::string{key}, std::string{value});
  }
}

void Tracer::set_status(SpanId id, int status) {
  if (Span* span = find(id)) span->status = status;
}

void Tracer::add_bytes(SpanId id, const net::TrafficTotals& bytes) {
  if (Span* span = find(id)) span->bytes += bytes;
}

net::TrafficTotals Tracer::segment_totals(net::SegmentId segment) const noexcept {
  net::TrafficTotals totals;
  for (const Span& span : spans_) {
    if (span.segment == segment && segment != net::SegmentId::kNone) {
      totals += span.bytes;
    }
  }
  return totals;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const Span& span : spans_) {
    out += "{\"trace\":" + std::to_string(span.trace);
    out += ",\"span\":" + std::to_string(span.id);
    out += ",\"parent\":" + std::to_string(span.parent);
    out += ",\"name\":\"";
    append_json_escaped(out, span.name);
    out += "\"";
    if (span.segment != net::SegmentId::kNone) {
      out += ",\"segment\":\"";
      out += net::segment_id_name(span.segment);
      out += "\"";
    }
    out += ",\"start\":";
    append_double(out, span.start);
    out += ",\"end\":";
    append_double(out, span.end);
    if (span.status != 0) out += ",\"status\":" + std::to_string(span.status);
    out += ",\"request_bytes\":" + std::to_string(span.bytes.request_bytes);
    out += ",\"response_bytes\":" + std::to_string(span.bytes.response_bytes);
    if (!span.notes.empty()) {
      out += ",\"notes\":{";
      bool first = true;
      for (const auto& [key, value] : span.notes) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        append_json_escaped(out, key);
        out += "\":\"";
        append_json_escaped(out, value);
        out += "\"";
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

void Tracer::merge_from(const Tracer& other) {
  const SpanId id_offset = spans_.size();
  const std::uint64_t trace_offset = traces_;
  spans_.reserve(spans_.size() + other.spans_.size());
  for (Span span : other.spans_) {
    span.id += id_offset;
    if (span.parent != 0) span.parent += id_offset;
    span.trace += trace_offset;
    spans_.push_back(std::move(span));
  }
  traces_ += other.traces_;
}

void Tracer::clear() {
  spans_.clear();
  open_.clear();
  traces_ = 0;
}

}  // namespace rangeamp::obs
