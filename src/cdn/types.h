// Shared vocabulary for the CDN model.
//
// Tables I-III of the paper are, in effect, a catalogue of per-vendor values
// for the types in this header: how a Range header is rewritten before going
// back to origin (ForwardPolicy), how a multi-range request is answered
// (MultiRangeReplyPolicy), and what ingress header limits bound the OBR
// attack's n (RequestHeaderLimits in limits.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.h"
#include "http/headers.h"

namespace rangeamp::cdn {

/// How a CDN rewrites the Range header of a back-to-origin request
/// (section III-B of the paper).  Used both as configuration for generic
/// logic and as the classification emitted by the policy scanner.
enum class ForwardPolicy {
  kLaziness,   ///< forward the Range header unchanged
  kDeletion,   ///< remove the Range header (fetch the full entity)
  kExpansion,  ///< replace with a larger byte range
};

std::string_view forward_policy_name(ForwardPolicy p) noexcept;

/// How a CDN answers a multi-range request once it holds the entity.
enum class MultiRangeReplyPolicy {
  /// Generate one part per requested range with no overlap checks -- the
  /// behaviour Table III flags as OBR-vulnerable (Akamai, Azure, StackPath).
  kHonorOverlapping,
  /// Coalesce overlapping/adjacent ranges first (RFC 7233 §6.1 guard).
  kCoalesce,
  /// Honor disjoint sets but reject any overlapping set with 416 (the
  /// "reject" option of RFC 7233 §6.1; CDN77's post-disclosure fix).
  kRejectOverlapping416,
  /// Answer with the first satisfiable range only, single-part.
  kFirstRangeOnly,
  /// Ignore the Range header, answer 200 with the full entity.
  kIgnoreRange,
  /// Reject the request with 416.
  kReject416,
};

std::string_view reply_policy_name(MultiRangeReplyPolicy p) noexcept;

/// What a CDN serves once its upstream retry budget is exhausted.
enum class DegradationPolicy {
  /// Synthesize a gateway error: 504 for timeouts, 502 for resets and
  /// truncated entities; a real upstream 5xx is relayed as-is.
  kSynthesizeError,
  /// Serve the stale cached copy when one exists (nginx
  /// proxy_cache_use_stale / RFC 5861 stale-if-error); fall back to the
  /// synthesized error otherwise.
  kServeStale,
  /// Negative-cache the failure: subsequent misses for the same key are
  /// answered 502 from the edge, without touching the origin, until the
  /// negative entry expires.
  kNegativeCache,
};

std::string_view degradation_policy_name(DegradationPolicy p) noexcept;

/// Back-to-origin resilience: what a CDN node does when an upstream fetch
/// fails (connection reset, truncated entity, timeout, retryable 5xx).
/// The defaults -- no retries, no timeout, synthesized errors -- reproduce
/// the paper-testbed behaviour exactly: with no faults injected, every
/// exchange is byte-identical to a resilience-unaware node.
struct ResiliencePolicy {
  /// Upstream re-attempts after the first failed try.  Every attempt is a
  /// full Wire transfer, so each one is counted by the segment's
  /// TrafficRecorder -- the retry-amplification effect under measurement.
  int max_retries = 0;

  /// Backoff schedule between attempts: the gap before retry k is
  /// backoff_initial_seconds * backoff_multiplier^(k-1).  Only accounted in
  /// FetchResult::elapsed_seconds (wires carry no clock).
  double backoff_initial_seconds = 0.5;
  double backoff_multiplier = 2.0;

  /// Per-attempt timeout budget: an attempt whose (injected) latency
  /// exceeds this fails with a timeout.  0 = wait forever.
  double attempt_timeout_seconds = 0;

  /// Treat upstream 5xx responses as retryable failures.
  bool retry_on_5xx = true;

  /// Policy once the budget is exhausted.
  DegradationPolicy degradation = DegradationPolicy::kSynthesizeError;

  /// Freshness lifetime of negative-cache entries (kNegativeCache only).
  double negative_cache_ttl_seconds = 30;

  /// With kServeStale: when a stale copy is already in cache, give up after
  /// the first failed attempt instead of burning the retry budget -- the
  /// origin-protective half of stale-if-error.
  bool serve_stale_skips_retries = true;
};

// ---------------------------------------------------------------------------
// Origin shielding (the second line of defense real CDNs run behind the
// section VI-C header rewrites).  Every knob defaults to OFF so that a
// profile without explicit shield configuration produces byte-identical
// traffic to a shield-unaware node.
// ---------------------------------------------------------------------------

/// RFC 8586 CDN-Loop defense: emit our cdn-id on every forwarded request and
/// reject requests whose CDN-Loop already names us (self-recurrence) or
/// carries more entries than the hop cap.  Terminates forwarding cycles
/// (FCDN -> BCDN -> FCDN) with 508 instead of amplifying until the stack
/// overflows.
struct LoopDefensePolicy {
  bool enabled = false;

  /// Our cdn-id as it appears in CDN-Loop (RFC 8586 section 2).  Empty =
  /// derived from the vendor name at profile construction.
  std::string token;

  /// Reject when the incoming CDN-Loop already lists this many hops
  /// (0 = no cap; self-recurrence is still rejected).
  std::size_t max_hops = 8;
};

/// Per-cache-key fill collapsing (Varnish request coalescing / nginx
/// proxy_cache_lock): concurrent misses for the same key share one origin
/// fetch, the followers replay the leader's response.
struct CoalescingPolicy {
  bool enabled = false;

  /// How long a completed fill keeps absorbing same-key misses (simulation
  /// seconds -- the fill-lock hold time).  Without a clock on the node the
  /// simulation instant never advances, so every same-key miss coalesces.
  double window_seconds = 1.0;
};

/// Envoy-style upstream circuit breaking + admission control, fed by the
/// typed TransferOutcomes of the resilience layer.
struct CircuitBreakerPolicy {
  bool enabled = false;

  /// Consecutive upstream failures (transport error or 5xx) that trip the
  /// breaker open.
  int consecutive_failures_trip = 5;

  /// How long the breaker stays open before probing (simulation seconds).
  double open_seconds = 30.0;

  /// Upstream probes admitted in half-open state; one success closes the
  /// breaker, one failure re-opens it.
  int half_open_probes = 1;

  /// Admission control: shed when this many upstream transfers are already
  /// in flight (busy = injected latency not yet elapsed).  0 = unlimited.
  int max_connections = 0;

  /// Extra queue allowance on top of max_connections (Envoy max_pending).
  int max_pending = 0;

  /// Retry-After value attached to shed 503s.
  double retry_after_seconds = 30.0;
};

/// The full shielding layer of one node.  Defaults are all off: traffic is
/// byte-identical to a node without the subsystem.
struct OriginShieldPolicy {
  LoopDefensePolicy loop;
  CoalescingPolicy coalescing;
  CircuitBreakerPolicy breaker;
};

// ---------------------------------------------------------------------------
// Overload control (the third defense layer: Envoy-style overload manager).
// Watermark-based load shedding, deadline propagation along the forwarding
// chain, and cross-hop retry budgets.  Every knob defaults to OFF so a
// profile without explicit overload configuration produces byte-identical
// traffic to an overload-unaware node.  Semantics: docs/overload-model.md.
// ---------------------------------------------------------------------------

/// Watermark-based admission control.  Three pressure dimensions are tracked
/// over a sliding window; each has a low and a high watermark.  Below every
/// low watermark a miss is admitted.  Between low and high the node degrades:
/// serve the stale copy when one exists, otherwise answer 503 + Retry-After.
/// At or above any high watermark the miss is hard-rejected (503), no stale
/// fallback.  A watermark pair with high == 0 disables that dimension.
struct WatermarkPolicy {
  bool enabled = false;

  /// Sliding window over which pressure is measured (simulation seconds).
  double window_seconds = 1.0;

  /// Upstream transfers still in flight (injected latency not yet elapsed).
  int concurrency_low = 0;
  int concurrency_high = 0;

  /// Misses admitted to the fill path inside the window (queue depth proxy).
  int queue_low = 0;
  int queue_high = 0;

  /// Upstream response-body bytes buffered inside the window.
  std::uint64_t body_bytes_low = 0;
  std::uint64_t body_bytes_high = 0;

  /// Retry-After value attached to overload 503s.
  double retry_after_seconds = 30.0;
};

/// Per-exchange deadline propagation (gRPC/Envoy timeout semantics projected
/// onto the synchronous testbed).  The first hop stamps a time budget on the
/// forwarded request; each hop decrements it by the latency and backoff it
/// observes, refuses work whose remaining budget is below the per-hop
/// minimum (504, never cached), and caps each attempt's timeout at the
/// remaining budget so a slow upstream leg is cancelled -- costing only
/// request-header bytes -- instead of completing work the client-facing
/// deadline has already made useless.
struct DeadlinePolicy {
  bool enabled = false;

  /// Budget stamped when a request arrives without a deadline header.
  double default_budget_seconds = 10.0;

  /// Minimum budget worth starting a leg for: below this, the hop answers
  /// 504 immediately (ingress) or cancels before the wire (egress).
  double per_hop_min_seconds = 0.05;

  /// Forward the remaining budget to the next hop (kDeadlineBudgetHeader).
  /// Off = enforce locally but strip the header (chain-edge behaviour).
  bool propagate = true;
};

/// Envoy-style retry budget: retries are admitted only up to a bounded ratio
/// of the first attempts seen inside the window, with a small fixed floor so
/// a quiet node can still retry at all.  With count_chain_attempts on, a
/// forwarded request that is itself a retry (attempt-count header > 1)
/// consumes this hop's budget too -- the cross-hop guard that keeps chained
/// vendors from multiplying attempts geometrically.
struct RetryBudgetPolicy {
  bool enabled = false;

  /// Retries admitted per first attempt inside the window.
  double ratio = 0.2;

  /// Floor: retries always admitted regardless of the ratio.
  int min_retries = 3;

  /// Sliding window over which attempts are counted (simulation seconds).
  double window_seconds = 10.0;

  /// Count upstream hops' retries (kAttemptCountHeader > 1) against this
  /// hop's budget.
  bool count_chain_attempts = true;
};

/// The full overload-control layer of one node.  Defaults are all off:
/// traffic is byte-identical to a node without the subsystem.
struct OverloadPolicy {
  WatermarkPolicy watermarks;
  DeadlinePolicy deadline;
  RetryBudgetPolicy retry_budget;
};

// ---------------------------------------------------------------------------
// Byzantine-origin hardening (the paper's section VI consistency checks):
// validate what the upstream leg actually returned before trusting it.
// ---------------------------------------------------------------------------

/// How strictly a node validates upstream responses (origin -> CDN and
/// BCDN -> FCDN legs alike).
enum class ConformanceMode {
  /// No validation at all -- the paper-testbed behaviour.  The default, so
  /// every seed CSV stays byte-identical.
  kOff,
  /// Fatal violations (smuggling shapes, undecodable framing, blown memory
  /// budgets) are rejected with a synthesized 502; soft violations
  /// (consistency lies a downstream could tolerate) are relayed but never
  /// cached -- the cache-poison guard.
  kLenient,
  /// Any violation is rejected with a synthesized 502 and never cached.
  kStrict,
};

std::string_view conformance_mode_name(ConformanceMode m) noexcept;

/// Upstream response validation + per-exchange resource budgets.
struct ConformancePolicy {
  ConformanceMode mode = ConformanceMode::kOff;

  /// Max upstream response body bytes buffered for one exchange (0 = no
  /// limit).  A response over budget is refused with 502 before the node
  /// materializes it -- the Envoy per-stream buffer-limit analogue.
  std::uint64_t max_body_bytes = 64ull * 1024 * 1024;

  /// Max bytes of one multipart/byteranges body this node will assemble or
  /// ingest, part framing included (0 = no limit).  Bounds the OBR
  /// node-exhaustion scenario.
  std::uint64_t max_multipart_assembly_bytes = 256ull * 1024 * 1024;
};

/// Counters of the validation layer (all zero while conformance is off).
struct ValidationStats {
  std::uint64_t upstream_responses_validated = 0;
  std::uint64_t violations = 0;           ///< individual failed checks
  std::uint64_t rejected_502 = 0;         ///< responses replaced by a 502
  std::uint64_t passed_uncached = 0;      ///< soft violations relayed uncached
  std::uint64_t store_suppressed = 0;     ///< cache writes blocked by taint
  std::uint64_t budget_overflows = 0;     ///< body/multipart budget trips
  std::uint64_t assembly_overflows = 0;   ///< client-facing assembly over budget
};

// ---------------------------------------------------------------------------
// Distributed detection (the section VI-C alerting gap, docs/detection-model.md).
// Per-node RangeAmp detectors fed inline at ingress, attack signatures
// gossiped between the nodes of an EdgeCluster, and optional quarantine
// enforcement (429) on signature match.  Every knob defaults to OFF so a
// profile without explicit detection configuration produces byte-identical
// traffic to a detection-unaware node.
// ---------------------------------------------------------------------------

/// Seeded anti-entropy gossip between the nodes of one EdgeCluster.
struct GossipPolicy {
  bool enabled = false;

  /// Peers each node pushes its signature table to per round (capped at
  /// cluster size - 1; 0 with gossip enabled = detection stays node-local,
  /// the gossip-off ablation arm).
  std::size_t fanout = 2;

  /// Simulation seconds between gossip rounds.
  double round_seconds = 0.5;

  /// Seed of the peer-selection and message-loss streams.  Rounds derive
  /// per-(round, node) SplitMix64 streams from it, so the exchange schedule
  /// is deterministic regardless of thread count.
  std::uint64_t seed = 1;

  /// Probability an individual node->peer message is dropped, drawn from a
  /// seeded net::FaultInjector rate rule (0 = lossless).
  double message_loss_rate = 0;
};

/// Per-node inline detection + signature table + quarantine.
struct DetectionPolicy {
  bool enabled = false;

  /// Detector tuning shared by every per-client detector instance.  The
  /// decay_clean_windows knob is what lets a node recover after a rotating
  /// attacker moves on.
  core::DetectorConfig detector;

  /// Per-client detector instances a node keeps (FIFO eviction of the
  /// oldest non-alarmed client past the cap; 0 = unbounded).
  std::size_t max_tracked_clients = 4096;

  /// Lifetime of an attack signature from its last refresh (simulation
  /// seconds).  Expired signatures are swept each gossip round and on
  /// lookup.
  double signature_ttl_seconds = 1.5;

  /// Bounded signature-table size (fresh inserts are rejected once full
  /// after an expiry sweep; 0 = unbounded).
  std::size_t max_signatures = 65536;

  /// Enforce: answer 429 + Retry-After at ingress for requests matching an
  /// active signature.  Off = detect-and-report only (shadow mode).
  bool quarantine_enabled = false;

  /// Retry-After value attached to quarantine 429s.
  double quarantine_retry_after_seconds = 30.0;

  /// Also quarantine by (base cache key, tiny-closed range shape) pattern,
  /// catching an attacker who rotates client identity as well as ingress
  /// node -- at the cost of collateral on legitimate tiny probes of the
  /// same URL (the false-positive arm the bench measures).
  bool pattern_quarantine = false;

  /// Gossip transport for the cluster this node joins.
  GossipPolicy gossip;
};

// ---------------------------------------------------------------------------
// Cache engine configuration (src/cdn/cache.h, docs/cache-model.md).
// Every knob defaults to "unbounded, single shard" so a profile without
// explicit cache configuration behaves exactly like the historic unbounded
// map and every committed CSV regenerates byte-identically.
// ---------------------------------------------------------------------------

/// Eviction policy of the byte-budgeted cache engine.
enum class CacheEvictionPolicy {
  /// Single FIFO queue: evict strictly in insertion order.  The naive
  /// baseline a random-query pollution flood flushes trivially.
  kFifoNaive,
  /// S3-FIFO (Yang et al., SOSP'23 shape): a small probationary queue
  /// absorbs new inserts, one-hit wonders are evicted from it without ever
  /// touching the main queue, re-accessed entries are promoted, and a ghost
  /// list of recently evicted key hashes readmits returning keys straight
  /// to main.  This is what keeps a 1-byte-range random-query flood from
  /// displacing the legit working set.
  kS3Fifo,
};

std::string_view cache_policy_name(CacheEvictionPolicy p) noexcept;

/// Byte-budgeted sharded cache knobs.  All entries -- full entities,
/// `#vary` variant markers, per-variant copies, `#neg` negative entries,
/// slice parts -- are charged against the budget.
struct CacheTraits {
  /// Total byte budget across all shards (key + entity bytes + fixed
  /// per-entry overhead).  0 = unbounded: no eviction, no admission
  /// control, identical behaviour to the historic unbounded cache.
  std::uint64_t max_bytes = 0;

  /// Independent shards (each with its own lock, queues and budget slice
  /// max_bytes / shards).  Entries shard by the hash of the *base* key
  /// (everything before the first '#'), so a URL's entity, variants,
  /// negative entry and slices always land in the same shard.
  std::size_t shards = 1;

  CacheEvictionPolicy policy = CacheEvictionPolicy::kS3Fifo;

  /// Fraction of a shard's budget given to the S3-FIFO small queue.
  double small_fraction = 0.10;

  /// Ghost list length per shard (recently evicted key hashes).
  std::size_t ghost_entries = 4096;

  /// Memory-pressure watermarks, as fractions of a shard's budget.  An
  /// insert that would push the shard past the high watermark first evicts
  /// down to the low watermark; if eviction cannot make room the insert is
  /// shed (admission reject) before the budget is ever exceeded.
  double low_watermark = 0.90;
  double high_watermark = 0.98;
};

/// Ingress request-header limits (section V-C: these bound the OBR n).
struct RequestHeaderLimits {
  /// Max total size of all header fields, counted as the serialized header
  /// block ("Name: value\r\n" per field).  Akamai: 32 KB; StackPath: ~81 KB.
  std::optional<std::size_t> total_header_bytes;

  /// Max size of a single header line "Name: value" (no CRLF).
  /// CDN77 / CDNsun: 16 KB.
  std::optional<std::size_t> single_header_line_bytes;

  /// Cloudflare's published constraint on the Range header:
  ///   RL + 2*HHL + RHL <= budget   (budget = 32411 bytes)
  /// where RL is the request-line size, HHL the Host header line size and
  /// RHL the Range header line size (all without CRLF).
  std::optional<std::size_t> cloudflare_range_budget;
};

/// Static identity and calibration data for one vendor.
struct VendorTraits {
  std::string name;

  /// Ingress limits applied before any processing.
  RequestHeaderLimits limits;

  /// Identity headers this vendor adds to every client-facing response
  /// (Server banner, trace ids, cache status...).  Order is preserved.
  std::vector<http::HeaderField> response_identity_headers;

  /// Calibration: total serialized size (status line + headers + 1-byte
  /// body) of this vendor's canonical single-range 206 response, fitted so
  /// the SBR amplification factors land on Table IV.  0 disables padding.
  std::size_t client_response_target_bytes = 0;

  /// Headers added to every back-to-origin request (Via, X-Forwarded-For,
  /// ...).  Their size participates in the *next* hop's ingress limits,
  /// which is what differentiates the max n per FCDN in Table V.
  std::vector<http::HeaderField> forward_headers;

  /// Boundary string used for multipart/byteranges responses built by this
  /// vendor.  Lengths are calibrated so the per-part framing overhead matches
  /// the fcdn-bcdn traffic of Table V.
  std::string multipart_boundary = "rangeamp_boundary";

  /// Extra headers this vendor writes into every part of a multipart
  /// response (Azure's verbose per-part framing).
  std::vector<http::HeaderField> multipart_part_extra_headers;

  /// How multi-range requests are answered from a held entity.
  MultiRangeReplyPolicy multi_reply = MultiRangeReplyPolicy::kCoalesce;

  /// Max ranges honored by kHonorOverlapping before falling back to
  /// kIgnoreRange (Azure: 64; 0 = unlimited).
  std::size_t multi_reply_max_ranges = 0;

  /// Ingress guard: reject requests whose Range header carries more than
  /// this many ranges (0 = off).  The range-count-cap mitigation of
  /// section VI-C.
  std::size_t ingress_max_range_count = 0;

  /// Whether full-entity responses are cached (Cloudflare "Bypass" page
  /// rules and similar configurations disable caching).
  bool cache_enabled = true;

  /// Cache freshness lifetime in (simulation) seconds; 0 = entries never
  /// expire.  Expired entries are revalidated with a conditional GET
  /// (If-None-Match) instead of refetched.  Requires a clock on the node.
  double cache_ttl_seconds = 0;

  /// Upstream failure handling (retry/backoff/timeout/degradation).  The
  /// defaults change nothing while no faults are injected.
  ResiliencePolicy resilience;

  /// Origin shielding: loop defense, request coalescing, circuit breaking.
  /// All off by default (no byte or behaviour change).
  OriginShieldPolicy shield;

  /// Byzantine-origin hardening: upstream response validation + memory
  /// budgets.  Mode defaults to kOff (no byte or behaviour change).
  ConformancePolicy conformance;

  /// Overload control: watermark shedding, deadline propagation, retry
  /// budgets.  All off by default (no byte or behaviour change).
  OverloadPolicy overload;

  /// Cache engine: byte budget, sharding, eviction policy.  Defaults to
  /// unbounded / single shard (no byte or behaviour change).
  CacheTraits cache;

  /// Inline RangeAmp detection, gossip signature propagation and quarantine.
  /// All off by default (no byte or behaviour change).
  DetectionPolicy detection;

  /// Emit "Via: 1.1 <node_id>" on forwarded upstream requests AND on every
  /// client-facing response (RFC 7230 section 5.7.1).  Off by default: the
  /// vendors' *canonical* Via lines already live in forward_headers /
  /// response_identity_headers where the paper documents them, and the
  /// calibrated byte counts must not move underneath the Table IV fit.
  /// When on, the Via line participates in byte accounting like any other
  /// serialized header (see DESIGN.md section 5).
  bool emit_via = false;

  /// Hop identity used by emit_via and as the Via pseudonym.  Empty =
  /// derived from the vendor name at profile construction; EdgeCluster
  /// suffixes it with the node index so multi-node Via chains are
  /// distinguishable.
  std::string node_id;

  /// Exclude the query string from the cache key -- the customer-side
  /// mitigation Cloudflare and Azure recommended in the paper's disclosure
  /// (section VII): it defeats the attacker's cache-busting query rotation.
  bool cache_ignore_query = false;

  /// Fixed Date header for deterministic byte counts.
  std::string date = "Tue, 07 Jul 2020 03:14:16 GMT";

  /// Computed at profile construction: padding applied to client-facing
  /// responses so the canonical 206 hits client_response_target_bytes.
  std::size_t response_pad_bytes = 0;
};

}  // namespace rangeamp::cdn
