#include "cdn/overload.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rangeamp::cdn {

std::string_view overload_verdict_name(OverloadVerdict v) noexcept {
  switch (v) {
    case OverloadVerdict::kAdmit: return "admit";
    case OverloadVerdict::kDegrade: return "degrade";
    case OverloadVerdict::kShed: return "shed";
  }
  return "unknown";
}

std::string_view pressure_dim_name(PressureDim d) noexcept {
  switch (d) {
    case PressureDim::kNone: return "none";
    case PressureDim::kConcurrency: return "concurrency";
    case PressureDim::kQueue: return "queue";
    case PressureDim::kBodyBytes: return "body-bytes";
  }
  return "unknown";
}

void OverloadManager::prune(std::deque<Entry>& entries, double now) {
  while (!entries.empty() && entries.front().until <= now) entries.pop_front();
}

std::uint64_t OverloadManager::window_sum(std::deque<Entry>& entries,
                                          double now) {
  prune(entries, now);
  std::uint64_t sum = 0;
  for (const Entry& e : entries) sum += e.amount;
  return sum;
}

OverloadVerdict OverloadManager::admit(double now) {
  const WatermarkPolicy& wp = policy_.watermarks;
  last_dim_ = PressureDim::kNone;
  if (!wp.enabled) return OverloadVerdict::kAdmit;

  // Evaluate every enabled dimension; the most severe verdict wins, and
  // last_dim_ names the dimension that drove it.
  OverloadVerdict verdict = OverloadVerdict::kAdmit;
  const auto consider = [&](PressureDim dim, std::uint64_t level,
                            std::uint64_t low, std::uint64_t high) {
    if (high == 0) return;  // dimension disabled
    if (level >= high) {
      verdict = OverloadVerdict::kShed;
      last_dim_ = dim;
    } else if (low != 0 && level >= low && verdict == OverloadVerdict::kAdmit) {
      verdict = OverloadVerdict::kDegrade;
      last_dim_ = dim;
    }
  };
  consider(PressureDim::kConcurrency, inflight(now),
           static_cast<std::uint64_t>(std::max(0, wp.concurrency_low)),
           static_cast<std::uint64_t>(std::max(0, wp.concurrency_high)));
  consider(PressureDim::kQueue, queued(now),
           static_cast<std::uint64_t>(std::max(0, wp.queue_low)),
           static_cast<std::uint64_t>(std::max(0, wp.queue_high)));
  consider(PressureDim::kBodyBytes, body_bytes(now), wp.body_bytes_low,
           wp.body_bytes_high);
  return verdict;
}

void OverloadManager::note_queued(double now) {
  if (!policy_.watermarks.enabled) return;
  queued_.push_back({now + policy_.watermarks.window_seconds, 1});
}

void OverloadManager::note_inflight(double now, double until) {
  if (!policy_.watermarks.enabled) return;
  // A zero-latency transfer still occupies its slot for the instant it runs;
  // entries expire strictly after `until` so same-instant arrivals see it.
  inflight_.push_back({std::max(until, now), 1});
  // Keep expiry-ordering under variable latencies.
  std::push_heap(inflight_.begin(), inflight_.end(),
                 [](const Entry& a, const Entry& b) { return a.until > b.until; });
}

void OverloadManager::note_body_bytes(double now, std::uint64_t bytes) {
  if (!policy_.watermarks.enabled || bytes == 0) return;
  body_bytes_.push_back({now + policy_.watermarks.window_seconds, bytes});
}

std::size_t OverloadManager::inflight(double now) {
  // Inflight entries expire at their own `until`, not a fixed window, so the
  // deque is heap-ordered (see note_inflight); prune from the heap front.
  const auto later = [](const Entry& a, const Entry& b) {
    return a.until > b.until;
  };
  while (!inflight_.empty() && inflight_.front().until < now) {
    std::pop_heap(inflight_.begin(), inflight_.end(), later);
    inflight_.pop_back();
  }
  return inflight_.size();
}

std::size_t OverloadManager::queued(double now) {
  return static_cast<std::size_t>(window_sum(queued_, now));
}

std::uint64_t OverloadManager::body_bytes(double now) {
  return window_sum(body_bytes_, now);
}

void OverloadManager::note_first_attempt(double now) {
  if (!policy_.retry_budget.enabled) return;
  first_attempts_.push_back({now + policy_.retry_budget.window_seconds, 1});
}

void OverloadManager::note_chain_attempt(double now) {
  if (!policy_.retry_budget.enabled) return;
  retries_.push_back({now + policy_.retry_budget.window_seconds, 1});
}

int OverloadManager::retry_allowance(double now) {
  const RetryBudgetPolicy& rb = policy_.retry_budget;
  const auto firsts = static_cast<double>(window_sum(first_attempts_, now));
  const int allowed = std::max(
      rb.min_retries, static_cast<int>(std::floor(rb.ratio * firsts)));
  const auto used = static_cast<int>(window_sum(retries_, now));
  return std::max(0, allowed - used);
}

bool OverloadManager::try_start_retry(double now) {
  const RetryBudgetPolicy& rb = policy_.retry_budget;
  if (!rb.enabled) return true;
  if (retry_allowance(now) <= 0) return false;
  retries_.push_back({now + rb.window_seconds, 1});
  return true;
}

std::size_t OverloadManager::first_attempts_in_window(double now) {
  return static_cast<std::size_t>(window_sum(first_attempts_, now));
}

std::size_t OverloadManager::retries_in_window(double now) {
  return static_cast<std::size_t>(window_sum(retries_, now));
}

std::optional<double> parse_deadline_budget(std::string_view value) {
  if (value.empty() || value.size() > 32) return std::nullopt;
  // Accept "<int>[.<frac>]" only -- no signs, exponents, or stray bytes.
  std::uint64_t whole = 0;
  const char* begin = value.data();
  const char* end = value.data() + value.size();
  auto [ptr, ec] = std::from_chars(begin, end, whole);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;
  double result = static_cast<double>(whole);
  if (ptr != end) {
    if (*ptr != '.' || ptr + 1 == end) return std::nullopt;
    double scale = 0.1;
    for (const char* p = ptr + 1; p != end; ++p) {
      if (*p < '0' || *p > '9') return std::nullopt;
      result += static_cast<double>(*p - '0') * scale;
      scale *= 0.1;
    }
  }
  if (!std::isfinite(result)) return std::nullopt;
  return result;
}

std::string format_deadline_budget(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", std::max(0.0, seconds));
  return buffer;
}

std::optional<int> parse_attempt_count(std::string_view value) {
  if (value.empty() || value.size() > 9) return std::nullopt;
  int count = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), count);
  if (ec != std::errc{} || ptr != value.data() + value.size() || count < 1) {
    return std::nullopt;
  }
  return count;
}

}  // namespace rangeamp::cdn
