#include "cdn/cluster.h"

namespace rangeamp::cdn {

EdgeCluster::EdgeCluster(std::function<VendorProfile()> profile_factory,
                         std::size_t node_count, net::HttpHandler& upstream,
                         NodeSelection selection,
                         const net::TransportSpec& transport)
    : selection_(selection) {
  // A cluster with zero ingress nodes cannot route anything; the selection
  // arithmetic (and any pin) would divide by zero.  Clamp to one node.
  if (node_count == 0) node_count = 1;
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    VendorProfile profile = profile_factory();
    // Distinct per-node hop identity, so Via chains and CDN-Loop parameters
    // emitted by different surrogates of one deployment are tellable apart.
    if (profile.traits.node_id.empty()) {
      profile.traits.node_id = default_cdn_loop_token(profile.traits.name);
    }
    profile.traits.node_id += "-n" + std::to_string(i);
    nodes_.push_back(std::make_unique<CdnNode>(
        std::move(profile), upstream, "cdn-origin[" + std::to_string(i) + "]",
        SegmentFraming::kHttp11, transport));
    ingress_recorders_.push_back(std::make_unique<net::TrafficRecorder>(
        "client-cdn[" + std::to_string(i) + "]"));
    ingress_recorders_.back()->set_keep_log(false);
    ingress_wires_.push_back(net::make_transport(
        transport, *ingress_recorders_.back(), *nodes_.back()));
  }
  // Wire the per-node detection layers into one gossip fabric when the
  // profile enables both.  Node indices are stamped here -- the cluster is
  // the only scope that knows them.
  std::vector<NodeDetection*> detections;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeDetection* detection = nodes_[i]->detection();
    if (detection == nullptr) continue;
    detection->set_node_index(i);
    detections.push_back(detection);
  }
  if (!detections.empty() && detections.size() == nodes_.size() &&
      detections.front()->policy().gossip.enabled) {
    const GossipPolicy policy = detections.front()->policy().gossip;
    gossip_ = std::make_unique<GossipFabric>(std::move(detections), policy);
    for (const auto& n : nodes_) n->set_gossip_fabric(gossip_.get());
  }
}

std::size_t EdgeCluster::select(const http::Request& request) noexcept {
  switch (selection_) {
    case NodeSelection::kRoundRobin:
      return next_++ % nodes_.size();
    case NodeSelection::kPinned:
      return pinned_ % nodes_.size();
    case NodeSelection::kHashByHost: {
      // FNV-1a over the Host header: the stable client->surrogate mapping a
      // DNS-based load balancer produces.
      std::uint64_t h = 0xCBF29CE484222325ULL;
      for (const char c : request.headers.get_or("Host", "")) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
      }
      return static_cast<std::size_t>(h % nodes_.size());
    }
  }
  return 0;
}

http::Response EdgeCluster::handle(const http::Request& request) {
  // Gossip rounds are driven by the simulation clock at ingress: every due
  // round runs before the request is routed, so a signature gossiped "at"
  // t is visible to any exchange at t' >= round time.
  if (gossip_ && clock_) gossip_->advance(clock_());
  return ingress_wires_[select(request)]->transfer(request);
}

std::uint64_t EdgeCluster::total_ingress_response_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : ingress_recorders_) total += r->response_bytes();
  return total;
}

std::uint64_t EdgeCluster::total_upstream_response_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->upstream_traffic().response_bytes();
  return total;
}

std::size_t EdgeCluster::nodes_touched() const noexcept {
  std::size_t count = 0;
  for (const auto& r : ingress_recorders_) {
    if (r->exchange_count() > 0) ++count;
  }
  return count;
}

ShieldStats EdgeCluster::total_shield_stats() const noexcept {
  ShieldStats total;
  for (const auto& n : nodes_) {
    const ShieldStats& s = n->shield_stats();
    total.loop_rejected += s.loop_rejected;
    total.hop_cap_rejected += s.hop_cap_rejected;
    total.coalesced_hits += s.coalesced_hits;
    total.fill_fetches += s.fill_fetches;
    total.shed_breaker_open += s.shed_breaker_open;
    total.shed_admission += s.shed_admission;
    total.breaker_trips += s.breaker_trips;
    total.half_open_probes += s.half_open_probes;
    total.shed_responses += s.shed_responses;
  }
  return total;
}

void EdgeCluster::set_clock(std::function<double()> clock) {
  clock_ = clock;
  for (const auto& n : nodes_) n->set_clock(clock);
}

void EdgeCluster::restart_node_detection(std::size_t i) {
  if (i >= nodes_.size()) return;
  if (NodeDetection* detection = nodes_[i]->detection()) detection->restart();
}

void EdgeCluster::set_tracer(obs::Tracer* tracer) {
  for (const auto& n : nodes_) n->set_tracer(tracer);
  for (const auto& w : ingress_wires_) w->set_tracer(tracer);
}

void EdgeCluster::set_metrics(obs::MetricsRegistry* metrics) {
  for (const auto& n : nodes_) n->set_metrics(metrics);
  if (gossip_) {
    gossip_->set_metrics(metrics,
                         nodes_.empty() ? "" : nodes_.front()->traits().name);
  }
}

}  // namespace rangeamp::cdn
