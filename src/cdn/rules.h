// Declarative, rule-based vendor behaviour.
//
// The 13 built-in profiles encode the paper's measurements; this module
// lets a user model a *new* middlebox without writing C++: a profile spec
// is a small text document of identity fields, limits and forwarding rules.
//
//   name: ExampleCDN
//   limit.single_header_line_bytes: 16384
//   reply: coalesce
//   cache: on
//   rule: single-closed if first<1024 -> delete
//   rule: single-suffix -> delete
//   rule: single-closed if size>=10485760 -> delete
//   rule: multi -> lazy
//   rule: default -> lazy
//
// Rules are evaluated top-down; the first match wins.  A size condition
// triggers a HEAD probe toward the origin (exactly how the Huawei Cloud
// profile realizes its file-size-conditional rows).  Actions map onto the
// policy vocabulary of section III-B: lazy, delete, expand:<slack-bytes>,
// slice:<slice-bytes>.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cdn/node.h"

namespace rangeamp::cdn {

/// The request-shape classes a rule can match.
enum class RuleShape {
  kSingleClosed,  ///< bytes=first-last
  kSingleOpen,    ///< bytes=first-
  kSingleSuffix,  ///< bytes=-suffix
  kMulti,         ///< more than one spec
  kAny,           ///< matches every ranged request ("default")
};

/// What to do with a matched request.
struct RuleAction {
  enum class Kind { kLazy, kDelete, kExpand, kSlice } kind = Kind::kLazy;
  std::uint64_t parameter = 0;  ///< expand slack / slice size
};

/// One forwarding rule.
struct PolicyRule {
  RuleShape shape = RuleShape::kAny;
  /// Optional guard on the first spec's first-byte position.
  std::optional<std::uint64_t> first_below;
  std::optional<std::uint64_t> first_at_least;
  /// Optional guard on the resource size (forces a HEAD probe).
  std::optional<std::uint64_t> size_below;
  std::optional<std::uint64_t> size_at_least;

  RuleAction action;

  bool needs_size() const noexcept {
    return size_below.has_value() || size_at_least.has_value();
  }
};

/// VendorLogic driven by an ordered rule list.  Requests with no Range
/// header always fetch-and-cache the full entity; ranged requests take the
/// first matching rule (falling back to Laziness when none matches).
class RuleBasedLogic final : public VendorLogic {
 public:
  explicit RuleBasedLogic(std::vector<PolicyRule> rules)
      : rules_(std::move(rules)) {}

  http::Response on_miss(CdnNode& node, const http::Request& request,
                         const std::optional<http::RangeSet>& range) override;

  const std::vector<PolicyRule>& rules() const noexcept { return rules_; }

 private:
  std::vector<PolicyRule> rules_;
};

/// Parses a profile spec document.  On error returns nullopt and, when
/// `error` is non-null, a line-numbered message.
std::optional<VendorProfile> parse_profile_spec(std::string_view text,
                                                std::string* error = nullptr);

}  // namespace rangeamp::cdn
