// Ingress request-header limit enforcement.
//
// Section V-C of the paper: "the maximum length of the Range header finally
// determines the upperbound of the amplification factor".  These checks are
// that upper bound.
#pragma once

#include <optional>
#include <string>

#include "cdn/types.h"
#include "http/message.h"

namespace rangeamp::cdn {

/// Returns a human-readable violation description when `request` exceeds
/// `limits`, or nullopt when the request is acceptable.
std::optional<std::string> check_request_limits(const RequestHeaderLimits& limits,
                                                const http::Request& request);

}  // namespace rangeamp::cdn
