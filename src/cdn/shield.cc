#include "cdn/shield.h"

#include <algorithm>
#include <cctype>

#include "http/headers.h"

namespace rangeamp::cdn {

namespace {

bool is_ows(char c) noexcept { return c == ' ' || c == '\t'; }

std::string_view trim_ows(std::string_view s) noexcept {
  while (!s.empty() && is_ows(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_ows(s.back())) s.remove_suffix(1);
  return s;
}

// cdn-id = ( uri-host [ ":" port ] ) / pseudonym.  Both alternatives are
// token-ish; accept RFC 7230 tcharset plus the '.', ':' and '[' ']' needed
// for host literals, reject everything else (control bytes, separators,
// 8-bit garbage) so mutated values fail cleanly.
bool is_cdn_id_char(char c) noexcept {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '-': case '.': case '_': case '~': case ':':
    case '[': case ']': case '!': case '$': case '&':
    case '\'': case '*': case '+':
      return true;
    default:
      return false;
  }
}

// Splits on top-level `sep`, honoring double-quoted strings with backslash
// escapes (parameters may carry quoted-string values).  Returns false on an
// unbalanced quote or a trailing backslash.
bool split_quoted(std::string_view value, char sep,
                  std::vector<std::string_view>& out) {
  std::size_t start = 0;
  bool quoted = false;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const char c = value[i];
    if (quoted) {
      if (c == '\\') {
        if (i + 1 >= value.size()) return false;
        ++i;
      } else if (c == '"') {
        quoted = false;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == sep) {
      out.push_back(value.substr(start, i - start));
      start = i + 1;
    }
  }
  if (quoted) return false;
  out.push_back(value.substr(start));
  return true;
}

}  // namespace

std::optional<std::vector<CdnLoopEntry>> parse_cdn_loop(std::string_view value) {
  std::vector<std::string_view> elements;
  if (!split_quoted(value, ',', elements)) return std::nullopt;

  std::vector<CdnLoopEntry> entries;
  entries.reserve(elements.size());
  for (std::string_view element : elements) {
    element = trim_ows(element);
    if (element.empty()) return std::nullopt;

    std::vector<std::string_view> pieces;
    if (!split_quoted(element, ';', pieces)) return std::nullopt;

    const std::string_view id = trim_ows(pieces.front());
    if (id.empty() ||
        !std::all_of(id.begin(), id.end(), is_cdn_id_char)) {
      return std::nullopt;
    }

    CdnLoopEntry entry;
    entry.id = std::string{id};
    for (std::size_t i = 1; i < pieces.size(); ++i) {
      const std::string_view param = trim_ows(pieces[i]);
      if (param.empty()) return std::nullopt;
      if (!entry.params.empty()) entry.params += ";";
      entry.params += std::string{param};
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string cdn_loop_to_string(const std::vector<CdnLoopEntry>& entries) {
  std::string out;
  for (const CdnLoopEntry& entry : entries) {
    if (!out.empty()) out += ", ";
    out += entry.id;
    if (!entry.params.empty()) {
      out += ";";
      out += entry.params;
    }
  }
  return out;
}

bool cdn_loop_contains(const std::vector<CdnLoopEntry>& entries,
                       std::string_view token) {
  return std::any_of(entries.begin(), entries.end(),
                     [&](const CdnLoopEntry& entry) {
                       return http::iequals(entry.id, token);
                     });
}

std::string default_cdn_loop_token(std::string_view vendor_name) {
  std::string token;
  token.reserve(vendor_name.size());
  for (const char c : vendor_name) {
    if (c == ' ') {
      if (!token.empty() && token.back() != '-') token.push_back('-');
    } else {
      token.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return token;
}

std::string_view shed_cause_name(ShedCause cause) noexcept {
  switch (cause) {
    case ShedCause::kNone: return "none";
    case ShedCause::kBreakerOpen: return "breaker-open";
    case ShedCause::kAdmission: return "admission";
    case ShedCause::kOverloadHigh: return "overload-high-watermark";
    case ShedCause::kOverloadLow: return "overload-degraded";
    case ShedCause::kDeadline: return "deadline-expired";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// UpstreamBreaker.
// ---------------------------------------------------------------------------

ShedCause UpstreamBreaker::admit(double now) {
  if (!policy_.enabled) return ShedCause::kNone;

  if (state_ == State::kOpen) {
    if (now < open_until_) return ShedCause::kBreakerOpen;
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
  }
  if (state_ == State::kHalfOpen) {
    if (probes_in_flight_ >= policy_.half_open_probes) {
      return ShedCause::kBreakerOpen;
    }
    ++probes_in_flight_;
    // Probe admitted; connection limits still apply below.
  }
  if (policy_.max_connections > 0) {
    const std::size_t limit = static_cast<std::size_t>(policy_.max_connections) +
                              static_cast<std::size_t>(policy_.max_pending);
    if (busy_connections(now) >= limit) {
      if (state_ == State::kHalfOpen && probes_in_flight_ > 0) {
        --probes_in_flight_;  // the probe never started
      }
      return ShedCause::kAdmission;
    }
  }
  return ShedCause::kNone;
}

void UpstreamBreaker::on_success() {
  if (!policy_.enabled) return;
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    probes_in_flight_ = 0;
  }
}

void UpstreamBreaker::on_failure(double now) {
  if (!policy_.enabled) return;
  if (state_ == State::kHalfOpen) {
    trip(now);  // the probe failed: straight back to open
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= policy_.consecutive_failures_trip) {
    trip(now);
  }
}

void UpstreamBreaker::trip(double now) {
  state_ = State::kOpen;
  open_until_ = now + policy_.open_seconds;
  consecutive_failures_ = 0;
  probes_in_flight_ = 0;
  ++trips_;
}

void UpstreamBreaker::occupy_connection(double until) {
  if (!policy_.enabled || policy_.max_connections <= 0) return;
  busy_until_.push_back(until);
}

std::size_t UpstreamBreaker::busy_connections(double now) {
  busy_until_.erase(
      std::remove_if(busy_until_.begin(), busy_until_.end(),
                     [now](double until) { return until <= now; }),
      busy_until_.end());
  return busy_until_.size();
}

// ---------------------------------------------------------------------------
// FillLockTable.
// ---------------------------------------------------------------------------

const http::Response* FillLockTable::find(const std::string& key,
                                          double now) const {
  const auto it = fills_.find(key);
  if (it == fills_.end()) return nullptr;
  if (now >= it->second.until) return nullptr;
  return &it->second.response;
}

void FillLockTable::record(std::string key, const http::Response& response,
                           double now) {
  Fill fill;
  fill.response = response;
  fill.until = now + policy_.window_seconds;
  fills_[std::move(key)] = std::move(fill);
}

}  // namespace rangeamp::cdn
