// Overload-control machinery: watermark-based load shedding, cross-hop
// retry budgets, and the deadline-propagation header vocabulary.
//
// The policies (all-off defaults) live in types.h as part of VendorTraits;
// this header holds the runtime state a CdnNode instantiates when the knobs
// are turned on.  Everything is deterministic and clock-driven: pressure is
// measured over sliding windows of the node's simulation clock (0 forever
// when no clock is installed), so overload experiments replay
// byte-identically.  Semantics and the admission precedence order are
// documented in docs/overload-model.md.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "cdn/types.h"
#include "net/accounting.h"

namespace rangeamp::cdn {

/// Verdict of the watermark layer for one cache miss.
enum class OverloadVerdict {
  kAdmit,    ///< every enabled dimension below its low watermark
  kDegrade,  ///< between watermarks: serve stale if available, else 503
  kShed,     ///< a dimension at/above its high watermark: hard 503
};

std::string_view overload_verdict_name(OverloadVerdict v) noexcept;

/// Which pressure dimension drove the last non-admit verdict.
enum class PressureDim { kNone, kConcurrency, kQueue, kBodyBytes };

std::string_view pressure_dim_name(PressureDim d) noexcept;

/// Counters one node's overload layer accumulates (all zero while the
/// overload knobs are off).  Counted by the CdnNode at its decision points,
/// not by the manager -- the manager's queries are side-effect free.
struct OverloadStats {
  std::uint64_t admitted = 0;           ///< misses past the watermark gate
  std::uint64_t degraded = 0;           ///< verdicts in the low..high band
  std::uint64_t shed_high_watermark = 0;///< hard 503s at the high watermark
  std::uint64_t stale_under_pressure = 0;///< degraded misses a stale copy absorbed
  std::uint64_t deadline_rejected_ingress = 0;///< 504 before any processing
  std::uint64_t deadline_cancelled_legs = 0;  ///< upstream legs cut by the budget
  net::AttemptTotals attempts;          ///< first attempts vs granted retries
  std::uint64_t retries_denied = 0;     ///< retries refused by the budget
  std::uint64_t chain_attempts = 0;     ///< upstream-hop retries charged here

  std::uint64_t shed_total() const noexcept {
    return shed_high_watermark + (degraded - stale_under_pressure);
  }
};

/// Per-node overload manager.  Pressure dimensions are tracked as
/// (expiry, amount) entries in sliding windows; every query prunes expired
/// entries first, so the manager needs no periodic tick.  All queries are
/// pure observations -- the owning node records admissions/denials itself,
/// which keeps the "consult twice, act once" call sites (stale-hit path and
/// miss path) from double counting.
class OverloadManager {
 public:
  explicit OverloadManager(OverloadPolicy policy) : policy_(std::move(policy)) {}

  // --- watermark admission -----------------------------------------------

  /// Classifies one would-be miss against the watermarks at `now`.
  /// kAdmit whenever the policy is disabled.
  OverloadVerdict admit(double now);

  /// The dimension behind the most recent non-admit verdict.
  PressureDim last_pressure_dim() const noexcept { return last_dim_; }

  /// Records an admitted miss in the queue-depth window.
  void note_queued(double now);

  /// Records an upstream transfer occupying a slot until `until`.
  void note_inflight(double now, double until);

  /// Records upstream response-body bytes buffered at `now`.
  void note_body_bytes(double now, std::uint64_t bytes);

  // --- retry budget -------------------------------------------------------

  /// Records a first upstream attempt (the denominator of the budget).
  void note_first_attempt(double now);

  /// Charges an upstream hop's retry (attempt-count header > 1) against
  /// this hop's budget.
  void note_chain_attempt(double now);

  /// Asks to start one retry at `now`.  True consumes one unit of budget;
  /// false means the window's allowance is spent.  Always true when the
  /// policy is disabled.
  bool try_start_retry(double now);

  /// Retries the window's allowance would still admit at `now`.
  int retry_allowance(double now);

  // --- introspection (tests and benches) ---------------------------------

  std::size_t inflight(double now);
  std::size_t queued(double now);
  std::uint64_t body_bytes(double now);
  std::size_t first_attempts_in_window(double now);
  std::size_t retries_in_window(double now);

  const OverloadPolicy& policy() const noexcept { return policy_; }

 private:
  struct Entry {
    double until;
    std::uint64_t amount;
  };

  void prune(std::deque<Entry>& entries, double now);
  std::uint64_t window_sum(std::deque<Entry>& entries, double now);

  OverloadPolicy policy_;
  PressureDim last_dim_ = PressureDim::kNone;
  // Sliding-window pressure entries, expiry-ordered (appends are monotone in
  // `until` because windows are fixed-width and the clock never goes back).
  std::deque<Entry> inflight_;
  std::deque<Entry> queued_;
  std::deque<Entry> body_bytes_;
  std::deque<Entry> first_attempts_;
  std::deque<Entry> retries_;
};

// ---------------------------------------------------------------------------
// Deadline propagation vocabulary.
// ---------------------------------------------------------------------------

/// Internal hop-by-hop header carrying the exchange's remaining time budget
/// in seconds (fixed 6-decimal spelling, so forwarded bytes are
/// deterministic).  Stripped from every forwarded request and re-stamped per
/// attempt when DeadlinePolicy.propagate is on -- a client-supplied value is
/// honored at ingress but never relayed verbatim.
inline constexpr std::string_view kDeadlineBudgetHeader =
    "X-Rangeamp-Deadline-Budget";

/// Internal hop-by-hop header counting the exchange's attempt number along
/// the chain (1 = first attempt; the x-envoy-attempt-count analogue).  A
/// value > 1 at ingress marks the request as an upstream hop's retry and is
/// charged against this hop's retry budget.
inline constexpr std::string_view kAttemptCountHeader =
    "X-Rangeamp-Attempt-Count";

/// Parses a deadline-budget header value.  Total: any input yields either a
/// finite non-negative seconds value or nullopt.
std::optional<double> parse_deadline_budget(std::string_view value);

/// Canonical spelling of a budget value (clamped at 0, 6 decimals).
std::string format_deadline_budget(double seconds);

/// Parses an attempt-count header value (>= 1, or nullopt).
std::optional<int> parse_attempt_count(std::string_view value);

}  // namespace rangeamp::cdn
