// CDN edge cache of full entities: sharded, byte-budgeted, with S3-FIFO or
// FIFO eviction under memory pressure.  Semantics: docs/cache-model.md.
//
// Only complete 200 entities are cached (the vendors in the paper do not
// cache partial responses -- Cloudflare explicitly told the authors so in
// the disclosure exchange).  The cache key includes the query string, which
// is exactly why the attacker's random-query trick forces a miss on every
// request (section II-A) -- and, on a real edge, also an *insert* per
// request.  The byte budget is what keeps that flood from growing the cache
// without limit; the S3-FIFO small/main/ghost structure is what keeps it
// from displacing the legit working set.
//
// Sharding & threads: entries shard by the hash of the *base* key
// (everything before the first '#'), so a URL's entity, `#vary` marker,
// per-variant copies, `#neg` negative entry and `#slice` parts always land
// in the same shard.  Each shard has its own mutex; structural operations
// are safe from concurrent threads.  A pointer returned by find() stays
// valid only until that key is evicted, erased or replaced -- concurrent
// writers must therefore work disjoint shards (the per-shard ownership rule
// of docs/parallel-model.md).
//
// Determinism: with the default CacheTraits (max_bytes = 0) there is no
// eviction and no admission control -- behaviour and byte counts are
// identical to the historic unbounded map, which is what keeps every
// committed CSV regenerating byte-identically.  Shard selection uses FNV-1a
// (not std::hash) so sharded layouts are reproducible across platforms.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdn/types.h"
#include "http/body.h"

namespace rangeamp::cdn {

/// A cached full representation.
struct CachedEntity {
  http::Body entity;
  std::string content_type;
  std::string etag;
  std::string last_modified;

  /// Freshness horizon (simulation seconds); infinity = never expires.
  /// A stale entry is revalidated with a conditional GET, not discarded.
  double expires_at = std::numeric_limits<double>::infinity();

  /// The upstream's Vary header ("" = response does not vary).  Entities
  /// with a Vary are stored per variant; see CdnNode::resolve_cache_key.
  std::string vary;

  std::uint64_t size() const noexcept { return entity.size(); }
  bool fresh_at(double now) const noexcept { return now < expires_at; }
};

/// What touch() did with the entry (revalidation outcome).
enum class TouchResult {
  kAbsent,       ///< no such key
  kRefreshed,    ///< freshness horizon moved forward
  kPurgedStale,  ///< entry was stale and the new horizon is not in the
                 ///< future: purged instead of silently resurrected
};

class Cache {
 public:
  /// Aggregate statistics across all shards, read in one locked pass.
  struct Stats {
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t admission_rejects = 0;
  };

  /// Default: unbounded, single shard -- the historic cache, byte for byte.
  Cache() : Cache(CacheTraits{}) {}
  explicit Cache(const CacheTraits& traits);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;
  Cache(Cache&&) = default;
  Cache& operator=(Cache&&) = default;

  /// Cache key for a request: host + target (path incl. query).
  static std::string key(std::string_view host, std::string_view target);

  /// Base key: everything before the first '#' suffix (`#vary`, `#neg`,
  /// `#variant=`, `#slice=`...).  Shard selection hashes this, so all
  /// entries of one URL co-locate.
  static std::string_view base_of(std::string_view key) noexcept;

  /// Bytes an entry is charged against the budget: key + entity body +
  /// metadata strings + a fixed per-entry overhead (so zero-byte markers
  /// like `#vary` and `#neg` entries are still accountable).
  static std::uint64_t charge_of(std::string_view key,
                                 const CachedEntity& entity) noexcept;

  /// Counts a hit or miss.  The returned pointer is valid until this key is
  /// evicted, erased or replaced (see the threading contract above).
  const CachedEntity* find(const std::string& key) const;

  /// Inserts or replaces.  Under a byte budget, may evict down to the low
  /// watermark first and may shed the insert entirely (admission reject)
  /// when eviction cannot make room -- the cache never exceeds its budget.
  void put(std::string key, CachedEntity entity);

  /// Revalidation outcome for an existing entry: refreshes the freshness
  /// horizon, unless the entry is already stale at `now` AND the new
  /// horizon is not in the future -- then the entry is purged instead of
  /// being resurrected as stale (TouchResult::kPurgedStale).  The default
  /// `now` makes every touch a pure refresh (legacy semantics).
  TouchResult touch(const std::string& key, double expires_at,
                    double now = -std::numeric_limits<double>::infinity());

  /// Removes one entry.  Removing a `#vary` marker also purges that base
  /// key's `#variant=` entries -- without the marker they are unreachable
  /// and would otherwise be stranded against the budget.
  bool erase(const std::string& key);

  /// Returns the cache to its freshly constructed state: entries, queues,
  /// ghost lists AND statistics (hits/misses/evictions/rejects) all reset.
  void clear();

  std::size_t size() const;
  /// Total charged bytes across shards (always <= max_bytes when budgeted).
  std::uint64_t bytes() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::uint64_t admission_rejects() const;
  Stats stats() const;

  const CacheTraits& traits() const noexcept { return traits_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Which shard a key lands in (tests pin disjoint-shard workloads).
  std::size_t shard_of(std::string_view key) const noexcept;

  /// Visits every entry (per-shard lock held during that shard's sweep).
  /// Replaces the historic `entries()` map accessor; the chaos harnesses
  /// walk the cache this way to prove no tainted response ever entered it.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [key, slot] : shard->map) fn(key, slot.entity);
    }
  }

 private:
  /// Access frequency saturates at 3 (two bits in the reference S3-FIFO).
  static constexpr std::uint8_t kMaxFreq = 3;

  struct QueueEntry {
    std::string key;
    std::uint64_t gen = 0;  ///< matches Slot::gen, else the entry is stale
  };

  struct Slot {
    CachedEntity entity;
    std::uint64_t charge = 0;
    std::uint64_t gen = 0;
    std::uint8_t freq = 0;    ///< saturating access count (find/touch)
    bool in_main = false;     ///< queue membership (FIFO-naive: always main)
  };

  /// Queues hold (key, gen) pairs and are cleaned lazily: a popped entry
  /// whose gen no longer matches the live slot (replaced key, cascaded
  /// variant purge, promotion) is simply skipped.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Slot> map;
    std::deque<QueueEntry> small_q;  ///< S3-FIFO probationary queue
    std::deque<QueueEntry> main_q;   ///< S3-FIFO main / FIFO-naive queue
    std::deque<std::uint64_t> ghost_q;  ///< recently evicted key hashes
    std::unordered_map<std::uint64_t, std::uint32_t> ghost_count;
    std::uint64_t gen_counter = 0;
    std::uint64_t bytes = 0;        ///< charged bytes resident in this shard
    std::uint64_t small_bytes = 0;  ///< subset resident in the small queue
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t admission_rejects = 0;
  };

  enum class RemovalKind {
    kReplace,  ///< put() over an existing key (no variant cascade)
    kErase,    ///< explicit erase (cascades, not counted as eviction)
    kEvict,    ///< budget eviction (cascades, counted)
    kExpire,   ///< touch() purge of a stale entry (cascades, not counted)
  };

  Shard& shard_for(std::string_view key) const;
  bool evict_one(Shard& s);
  void remove_slot(Shard& s,
                   std::unordered_map<std::string, Slot>::iterator it,
                   RemovalKind kind);
  void purge_variants(Shard& s, const std::string& base, RemovalKind kind);
  void ghost_insert(Shard& s, std::uint64_t hash);
  bool ghost_contains(const Shard& s, std::uint64_t hash) const;

  CacheTraits traits_;
  std::uint64_t shard_budget_ = 0;  ///< max_bytes / shards; 0 = unbounded
  std::uint64_t small_capacity_ = 0;
  std::uint64_t low_mark_ = 0;
  std::uint64_t high_mark_ = 0;
  // unique_ptr keeps Shard (with its mutex) address-stable and the Cache
  // movable; const methods reach mutable per-shard state through it.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rangeamp::cdn
