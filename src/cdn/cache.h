// CDN edge cache of full entities.
//
// Only complete 200 entities are cached (the vendors in the paper do not
// cache partial responses -- Cloudflare explicitly told the authors so in
// the disclosure exchange).  The cache key includes the query string, which
// is exactly why the attacker's random-query trick forces a miss on every
// request (section II-A).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>

#include "http/body.h"

namespace rangeamp::cdn {

/// A cached full representation.
struct CachedEntity {
  http::Body entity;
  std::string content_type;
  std::string etag;
  std::string last_modified;

  /// Freshness horizon (simulation seconds); infinity = never expires.
  /// A stale entry is revalidated with a conditional GET, not discarded.
  double expires_at = std::numeric_limits<double>::infinity();

  /// The upstream's Vary header ("" = response does not vary).  Entities
  /// with a Vary are stored per variant; see CdnNode::resolve_cache_key.
  std::string vary;

  std::uint64_t size() const noexcept { return entity.size(); }
  bool fresh_at(double now) const noexcept { return now < expires_at; }
};

class Cache {
 public:
  /// Cache key for a request: host + target (path incl. query).
  static std::string key(std::string_view host, std::string_view target);

  const CachedEntity* find(const std::string& key) const;
  void put(std::string key, CachedEntity entity);

  /// Refreshes the freshness horizon of an existing entry (revalidation
  /// result).  No-op when the key is absent.
  void touch(const std::string& key, double expires_at);
  void clear() { entries_.clear(); }
  std::size_t size() const noexcept { return entries_.size(); }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Full contents, for invariant checks (the chaos harness walks every
  /// entry to prove no validator-flagged response ever entered a cache).
  const std::unordered_map<std::string, CachedEntity>& entries() const noexcept {
    return entries_;
  }

 private:
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::unordered_map<std::string, CachedEntity> entries_;
};

}  // namespace rangeamp::cdn
