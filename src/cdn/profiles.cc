#include "cdn/profiles.h"

#include <algorithm>
#include <charconv>
#include <unordered_map>

#include "cdn/logic.h"

namespace rangeamp::cdn {

using http::ByteRangeSpec;
using http::HeaderField;
using http::RangeSet;
using http::Request;
using http::Response;

namespace {

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  if (s.empty()) return std::nullopt;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

// Appends a trace header so the serialized size of the forward header set
// hits `target_bytes` exactly.  The forward header footprint of the FCDN is
// what differentiates the max n per cascade in Table V, so it is calibrated
// like the response pad.
void pad_forward_headers(VendorTraits& traits, std::size_t target_bytes) {
  std::size_t current = 0;
  for (const auto& f : traits.forward_headers) current += f.line_size() + 2;
  constexpr std::string_view kName = "X-Edge-Req-Trace";
  const std::size_t overhead = kName.size() + 4;  // ": " + CRLF
  if (current + overhead >= target_bytes) return;
  traits.forward_headers.push_back(
      {std::string{kName}, std::string(target_bytes - current - overhead, 'r')});
}

// Appends extra per-part headers so each multipart part carries
// `target_bytes` of framing beyond boundary/Content-Type/Content-Range
// (Azure's verbose part framing, calibrated to Table V).
void pad_part_headers(VendorTraits& traits, std::size_t target_bytes) {
  std::size_t current = 0;
  for (const auto& f : traits.multipart_part_extra_headers) {
    current += f.line_size() + 2;
  }
  constexpr std::string_view kName = "X-Part-Trace";
  const std::size_t overhead = kName.size() + 4;
  if (current + overhead >= target_bytes) return;
  traits.multipart_part_extra_headers.push_back(
      {std::string{kName}, std::string(target_bytes - current - overhead, 'p')});
}

// ---------------------------------------------------------------------------
// Vendor logics.  Each class is the executable form of that vendor's rows in
// Tables I-III; the comments cite the row being implemented.
// ---------------------------------------------------------------------------

// Akamai (Table I): "bytes=first-last -> None", "bytes=-suffix -> None".
// Table III: n-part response with overlapping ranges honored (via the
// traits' kHonorOverlapping reply policy after a Deletion fetch).
class AkamaiLogic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!range) return deletion_miss(node, request, range);
    if (range->count() == 1 && range->specs[0].is_open()) {
      return laziness_miss(node, request, range);
    }
    return deletion_miss(node, request, range);
  }
};

// Alibaba Cloud (Table I): "bytes=-suffix -> None (*)" -- conditional on the
// customer's Range origin-pull option being disabled.  Closed and open
// ranges are forwarded unchanged; multi-range sets are fetched full and
// answered coalesced (not in Table II/III).
class AlibabaLogic final : public VendorLogic {
 public:
  explicit AlibabaLogic(bool range_option_disabled)
      : vulnerable_(range_option_disabled) {}

  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!vulnerable_ || !range) {
      return !range ? deletion_miss(node, request, range)
                    : laziness_miss(node, request, range);
    }
    if (range->count() == 1) {
      if (range->specs[0].is_suffix()) return deletion_miss(node, request, range);
      return laziness_miss(node, request, range);
    }
    return deletion_miss(node, request, range);
  }

 private:
  bool vulnerable_;
};

// Azure (Table I): Deletion for small files; for files beyond 8 MB the first
// back-to-origin connection is closed once a little over 8 MB of payload
// arrived, and a range inside [8388608, 16777215] triggers a second fetch of
// exactly that window ("None & bytes=8388608-16777215").
// Table III: n-part overlapping responses honored up to n = 64 (the reply
// cap lives in the traits).
class AzureLogic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    net::TransferOptions abort_options;
    abort_options.abort_after_body_bytes = kAzureWindowStart + kAzureAbortOvershoot;
    const Response first = node.fetch(request, std::nullopt, abort_options);
    if (first.status != http::kOk) return node.relay(first);

    const std::uint64_t total =
        parse_u64(first.headers.get_or("Content-Length", "")).value_or(0);
    const std::uint64_t received = first.body.size();
    if (total == 0 || received >= total) {
      // Entire entity received: plain Deletion behaviour.
      auto entity = CdnNode::entity_from_response(first);
      node.store(request, *entity);
      return node.respond_entity(*entity, range);
    }

    // F > 8 MB; we hold the prefix [0, received).
    EntityWindow prefix;
    prefix.body = first.body;
    prefix.offset = 0;
    prefix.total_size = total;
    prefix.content_type =
        std::string{first.headers.get_or("Content-Type", "application/octet-stream")};
    prefix.etag = std::string{first.headers.get_or("ETag", "")};
    prefix.last_modified = std::string{first.headers.get_or("Last-Modified", "")};

    if (!range) {
      // UNDOCUMENTED: a plain GET of a large file; refetch without abort.
      const Response full = node.fetch(request, std::nullopt);
      return serve_upstream_result(node, request, full, range);
    }

    const auto resolved = http::resolve_all(*range, total);
    if (resolved.empty()) {
      return node.respond_window(prefix, *range);  // resolves again -> 416
    }
    // The documented window fetch takes precedence over the prefix: Azure
    // opens the second connection whenever the range sits in the second
    // 8 MiB window, even though the aborted prefix slightly overshoots into
    // it ("None & bytes=8388608-16777215", Table I).
    const bool window_covers =
        resolved.size() == 1 && resolved[0].first >= kAzureWindowStart &&
        resolved[0].last <= kAzureWindowEnd;
    const bool prefix_covers = std::all_of(
        resolved.begin(), resolved.end(),
        [&](const auto& r) { return r.last < received; });
    if (window_covers) {
      // The documented second connection: "bytes=8388608-16777215".
      RangeSet window_range;
      window_range.specs.push_back(
          ByteRangeSpec::closed(kAzureWindowStart, kAzureWindowEnd));
      const Response second = node.fetch(request, window_range);
      return serve_upstream_result(node, request, second, range);
    }
    if (prefix_covers) return node.respond_window(prefix, *range);
    // UNDOCUMENTED: range beyond 16 MiB or unservable multi -- forward the
    // client's range lazily.
    const Response fallback = node.fetch(request, range);
    return serve_upstream_result(node, request, fallback, range);
  }
};

// CDN77 (Table I): "bytes=first-last (first < 1024) -> None"; everything
// else, including multi-range sets, is forwarded unchanged (Table II).
class Cdn77Logic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!range) return deletion_miss(node, request, range);
    if (range->count() == 1) {
      const auto& s = range->specs[0];
      if (s.is_closed() && *s.first < kCdn77FirstByteThreshold) {
        return deletion_miss(node, request, range);
      }
    }
    return laziness_miss(node, request, range);
  }
};

// CDNsun (Table I): "bytes=0-last -> None" -- any set whose first spec
// starts at byte 0 is fetched full; sets starting at byte >= 1 are forwarded
// unchanged (Table II: "bytes=start1-,... (start1 >= 1) -> Unchanged").
class CdnsunLogic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!range) return deletion_miss(node, request, range);
    const auto& s0 = range->specs[0];
    if (!s0.is_suffix() && *s0.first == 0) {
      return deletion_miss(node, request, range);
    }
    return laziness_miss(node, request, range);
  }
};

// Cloudflare, cacheable page rule (Table I): "bytes=first-last -> None (*)",
// "bytes=-suffix -> None (*)".  Multi-range requests are answered 200 with
// the full entity (kIgnoreRange reply policy).  The Bypass mode of Table II
// is a separate pure-passthrough profile (see make_profile).
class CloudflareCacheableLogic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!range) return deletion_miss(node, request, range);
    if (range->count() == 1 && range->specs[0].is_open()) {
      return laziness_miss(node, request, range);
    }
    return deletion_miss(node, request, range);
  }
};

// CloudFront (Table I): full Expansion policy.  Single closed ranges are
// widened to MiB blocks: first' = (first >> 20) << 20,
// last' = (((last >> 20) + 1) << 20) - 1.  Multi-range sets whose expanded
// span is at most 10 MiB become the single range first'-last'.
class CloudFrontLogic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!range) return deletion_miss(node, request, range);

    const auto block_floor = [](std::uint64_t v) {
      return (v >> 20) << 20;
    };
    const auto block_ceil_last = [](std::uint64_t last) {
      return (((last >> 20) + 1) << 20) - 1;
    };

    if (range->count() == 1) {
      const auto& s = range->specs[0];
      if (s.is_suffix()) {
        // UNDOCUMENTED: suffix ranges are not in CloudFront's Table I rows;
        // forwarded unchanged.
        return laziness_miss(node, request, range);
      }
      RangeSet forward;
      if (s.is_open()) {
        forward.specs.push_back(ByteRangeSpec::open(block_floor(*s.first)));
      } else {
        forward.specs.push_back(ByteRangeSpec::closed(block_floor(*s.first),
                                                      block_ceil_last(*s.last)));
      }
      const Response upstream = node.fetch(request, forward);
      return serve_upstream_result(node, request, upstream, range);
    }

    bool all_closed = true;
    std::uint64_t min_first = UINT64_MAX, max_last = 0;
    bool any_suffix = false;
    for (const auto& s : range->specs) {
      if (s.is_suffix()) {
        any_suffix = true;
        all_closed = false;
      } else {
        min_first = std::min(min_first, *s.first);
        if (s.is_closed()) {
          max_last = std::max(max_last, *s.last);
        } else {
          all_closed = false;
        }
      }
    }
    if (all_closed) {
      const std::uint64_t f = block_floor(min_first);
      const std::uint64_t l = block_ceil_last(max_last);
      if (l - f + 1 <= kCloudFrontMultiSpanCap) {
        RangeSet forward;
        forward.specs.push_back(ByteRangeSpec::closed(f, l));
        const Response upstream = node.fetch(request, forward);
        return serve_upstream_result(node, request, upstream, range);
      }
      // UNDOCUMENTED: expanded span above the cap; fetch the full entity
      // (the most conservative behaviour that still satisfies every range).
      return deletion_miss(node, request, range);
    }
    if (any_suffix) {
      // UNDOCUMENTED: mixed suffix multi-range; fetch full.
      return deletion_miss(node, request, range);
    }
    // Open-ended members: cover from the smallest block-aligned first.
    RangeSet forward;
    forward.specs.push_back(ByteRangeSpec::open(block_floor(min_first)));
    const Response upstream = node.fetch(request, forward);
    return serve_upstream_result(node, request, upstream, range);
  }
};

// Fastly (Table I): "bytes=first-last -> None", "bytes=-suffix -> None".
// Multi-range requests are fetched full and answered with the first range
// only (kFirstRangeOnly) -- not OBR-vulnerable on either side.
class FastlyLogic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!range) return deletion_miss(node, request, range);
    if (range->count() == 1 && range->specs[0].is_open()) {
      return laziness_miss(node, request, range);
    }
    return deletion_miss(node, request, range);
  }
};

// G-Core Labs (Table I): same Deletion rows as Akamai, but multi-range
// replies are coalesced (not in Table III).
using GcoreLogic = FastlyLogic;

// Huawei Cloud (Table I): "bytes=-suffix (F < 10MB) -> None (*)",
// "bytes=first-last (F >= 10MB) -> None & None (*)".  The node learns F via
// a HEAD probe; the probe plus the full GET is exactly the "None & None"
// request pair the origin observes.  Vulnerable only when the customer's
// Range option is enabled.
class HuaweiLogic final : public VendorLogic {
 public:
  explicit HuaweiLogic(bool range_option_enabled)
      : vulnerable_(range_option_enabled) {}

  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!vulnerable_ || !range) {
      return !range ? deletion_miss(node, request, range)
                    : laziness_miss(node, request, range);
    }
    if (range->count() == 1) {
      const auto& s = range->specs[0];
      if (s.is_open()) return laziness_miss(node, request, range);
      const Response head =
          node.fetch(request, std::nullopt, {}, http::Method::HEAD);
      const std::uint64_t total =
          parse_u64(head.headers.get_or("Content-Length", "")).value_or(0);
      const bool small = total < kHuaweiSizeThreshold;
      if ((s.is_suffix() && small) || (s.is_closed() && !small)) {
        return deletion_miss(node, request, range);
      }
      return laziness_miss(node, request, range);
    }
    return deletion_miss(node, request, range);
  }

 private:
  bool vulnerable_;
};

// KeyCDN (Table I): "bytes=first-last (& bytes=first-last) ->
// bytes=first-last (& None)".  The first sighting of a closed-range request
// is forwarded lazily and NOT cached; the second identical request triggers
// Deletion.  An SBR attacker therefore sends every request twice.
class KeyCdnLogic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (range && range->count() == 1 && range->specs[0].is_closed()) {
      const auto key =
          Cache::key(request.headers.get_or("Host", ""), request.target);
      if (++seen_[key] == 1) {
        const Response upstream = node.fetch(request, range);
        if (upstream.status == http::kOk) {
          // Range-serve a 200 but do not cache on first sight.
          if (auto entity = CdnNode::entity_from_response(upstream)) {
            return node.respond_entity(*entity, range);
          }
        }
        return node.relay(upstream);
      }
      return deletion_miss(node, request, range);
    }
    if (!range) return deletion_miss(node, request, range);
    // Multi-range sets are fetched full and answered coalesced -- KeyCDN is
    // absent from Table II, so it must not forward them unchanged.
    if (range->count() > 1) return deletion_miss(node, request, range);
    return laziness_miss(node, request, range);
  }

 private:
  std::unordered_map<std::string, std::uint64_t> seen_;
};

// StackPath (Table I): "bytes=... -> bytes=... [& None]".  Every ranged miss
// is first forwarded unchanged; a 206 answer triggers a second, Range-less
// fetch of the full entity, which is cached and used to answer the client.
// Combined with the kHonorOverlapping reply policy this also realizes its
// Table II (FCDN) and Table III (BCDN) rows.
class StackPathLogic final : public VendorLogic {
 public:
  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!range) return deletion_miss(node, request, range);
    const Response first = node.fetch(request, range);
    if (first.status == http::kPartialContent) {
      const Response second = node.fetch(request, std::nullopt);
      if (auto entity = CdnNode::entity_from_response(second)) {
        node.store(request, *entity);
        return node.respond_entity(*entity, range);
      }
      return node.relay(first);
    }
    if (auto entity = CdnNode::entity_from_response(first)) {
      node.store(request, *entity);
      return node.respond_entity(*entity, range);
    }
    return node.relay(first);
  }
};

// Tencent Cloud (Table I): "bytes=first-last -> None (*)" -- conditional on
// the Range origin-pull option being disabled.
class TencentLogic final : public VendorLogic {
 public:
  explicit TencentLogic(bool range_option_disabled)
      : vulnerable_(range_option_disabled) {}

  Response on_miss(CdnNode& node, const Request& request,
                   const std::optional<RangeSet>& range) override {
    if (!vulnerable_ || !range) {
      return !range ? deletion_miss(node, request, range)
                    : laziness_miss(node, request, range);
    }
    if (range->count() == 1) {
      if (range->specs[0].is_closed()) return deletion_miss(node, request, range);
      return laziness_miss(node, request, range);
    }
    return deletion_miss(node, request, range);
  }

 private:
  bool vulnerable_;
};

// ---------------------------------------------------------------------------
// Traits.  client_response_target_bytes values are fitted from Table IV
// (25 MB column): target = (25 MiB + origin header overhead) / AF_25MB.
// Forward-header footprints and multipart part overheads are fitted from the
// max-n and fcdn-bcdn traffic columns of Table V.
// ---------------------------------------------------------------------------

VendorTraits akamai_traits() {
  VendorTraits t;
  t.name = "Akamai";
  t.limits.total_header_bytes = 32 * 1024;  // section V-C
  t.response_identity_headers = {
      {"Server", "AkamaiGHost"},
      {"Mime-Version", "1.0"},
  };
  t.client_response_target_bytes = 608;
  t.forward_headers = {
      {"Via", "1.1 akamai.net(ghost) (AkamaiGHost)"},
      {"X-Forwarded-For", "198.51.100.23"},
  };
  pad_forward_headers(t, 200);
  // Boundary length calibrated so a 1 KB part costs ~1160 B (Table V).
  t.multipart_boundary = "aka_3d6b0396d67c8e4f0a2b9c1d8e7f6a5b4c3d2e1f0a9b8c7d6e";
  t.multi_reply = MultiRangeReplyPolicy::kHonorOverlapping;  // Table III
  return t;
}

VendorTraits alibaba_traits() {
  VendorTraits t;
  t.name = "Alibaba Cloud";
  t.response_identity_headers = {
      {"Server", "Tengine"},
      {"Via", "cache13.l2et2[11,206-0,M], cache8.cn1731[12,0]"},
      {"Timing-Allow-Origin", "*"},
      {"EagleId", "2ff6139916036887396266377e"},
  };
  // 985 + the longer Content-Range of the exploited suffix range
  // "bytes 26214399-26214399/26214400" lands the response at ~999 B.
  t.client_response_target_bytes = 985;
  t.forward_headers = {
      {"Via", "cache8.cn1731[11,0]"},
      {"X-Forwarded-For", "198.51.100.24"},
  };
  pad_forward_headers(t, 200);
  t.multipart_boundary = "ali_2b9c1d8e7f6a5b4c";
  t.multi_reply = MultiRangeReplyPolicy::kCoalesce;
  return t;
}

VendorTraits azure_traits() {
  VendorTraits t;
  t.name = "Azure";
  t.response_identity_headers = {
      {"Server", "ECAcc (sed/58AA)"},
      {"X-Cache", "HIT"},
  };
  // 702 + the extra Content-Range digits of the exploited window range
  // "bytes 8388608-8388608/26214400" lands the on-wire response at ~714 B.
  t.client_response_target_bytes = 702;
  t.forward_headers = {
      {"Via", "1.1 azure-cdn-edge"},
      {"X-Forwarded-For", "198.51.100.25"},
  };
  pad_forward_headers(t, 220);
  t.multipart_boundary = "batchresponse_9f63aa5b-4f21-47e5-ae0c-9f63aa5b4f21";
  t.multi_reply = MultiRangeReplyPolicy::kHonorOverlapping;  // Table III
  t.multi_reply_max_ranges = 64;                             // section V-C
  // Azure writes verbose per-part framing; calibrated to the ~1340 B/part
  // fcdn-bcdn traffic of Table V.
  t.multipart_part_extra_headers = {
      {"X-Ms-Request-Id", "9f63aa5b-4f21-47e5-ae0c-0123456789ab"},
  };
  pad_part_headers(t, 184);
  return t;
}

VendorTraits cdn77_traits() {
  VendorTraits t;
  t.name = "CDN77";
  t.limits.single_header_line_bytes = 16 * 1024;  // section V-C
  t.response_identity_headers = {
      {"Server", "CDN77-Turbo"},
      {"X-77-Cache", "MISS"},
      {"X-77-Pop", "frankfurtDE"},
  };
  t.client_response_target_bytes = 649;
  t.forward_headers = {
      {"Via", "1.1 cdn77-edge-fra01"},
      {"X-Forwarded-For", "198.51.100.26"},
  };
  pad_forward_headers(t, 180);
  t.multipart_boundary = "cdn77_5b4c3d2e1f0a9b8c";
  t.multi_reply = MultiRangeReplyPolicy::kCoalesce;
  return t;
}

VendorTraits cdnsun_traits() {
  VendorTraits t;
  t.name = "CDNsun";
  t.limits.single_header_line_bytes = 16 * 1024;  // section V-C
  t.response_identity_headers = {
      {"Server", "CDNsun"},
      {"X-Cache", "MISS"},
      {"X-Edge-Location", "praguecz"},
  };
  t.client_response_target_bytes = 677;
  t.forward_headers = {
      {"Via", "1.1 cdnsun-edge-prg01"},
      {"X-Forwarded-For", "198.51.100.27"},
  };
  pad_forward_headers(t, 180);
  t.multipart_boundary = "cdnsun_0a9b8c7d6e5f4a3b";
  t.multi_reply = MultiRangeReplyPolicy::kCoalesce;
  return t;
}

VendorTraits cloudflare_traits(ProfileOptions::CloudflareMode mode) {
  VendorTraits t;
  t.name = "Cloudflare";
  t.limits.cloudflare_range_budget = 32411;  // section V-C formula
  t.response_identity_headers = {
      {"Server", "cloudflare"},
      {"CF-RAY", "5aeb2d1f3c0004e1-FRA"},
      {"CF-Cache-Status", "MISS"},
      {"Expect-CT", "max-age=604800"},
  };
  t.client_response_target_bytes = 823;
  t.forward_headers = {
      {"CF-Connecting-IP", "198.51.100.28"},
      {"CF-Ray", "5aeb2d1f3c0004e1-FRA"},
      {"CF-Visitor", "{\"scheme\":\"https\"}"},
      {"X-Forwarded-For", "198.51.100.28"},
      {"X-Forwarded-Proto", "https"},
      {"CDN-Loop", "cloudflare"},
  };
  pad_forward_headers(t, 350);
  t.multipart_boundary = "cf_8c7d6e5f4a3b2c1d";
  t.multi_reply = MultiRangeReplyPolicy::kIgnoreRange;  // 200 + full entity
  t.cache_enabled = mode == ProfileOptions::CloudflareMode::kCacheable;
  return t;
}

VendorTraits cloudfront_traits() {
  VendorTraits t;
  t.name = "CloudFront";
  t.response_identity_headers = {
      {"Via", "1.1 2af08dad59e25761e19e9c26e41a7b14.cloudfront.net (CloudFront)"},
      {"X-Cache", "Miss from cloudfront"},
      {"X-Amz-Cf-Pop", "FRA53-C1"},
      {"X-Amz-Cf-Id", "k5J7x0V9cQ2TqoVS6wZxM1vGg0F3aVvC0hYQsJt9QmXlG1G8aA=="},
  };
  t.client_response_target_bytes = 773;
  t.forward_headers = {
      {"Via", "1.1 2af08dad59e25761e19e9c26e41a7b14.cloudfront.net (CloudFront)"},
      {"X-Amz-Cf-Id", "k5J7x0V9cQ2TqoVS6wZxM1vGg0F3aVvC0hYQsJt9QmXlG1G8aA=="},
      {"X-Forwarded-For", "198.51.100.29"},
  };
  pad_forward_headers(t, 300);
  // 46-char boundary: the two-part multipart answer to the exploited
  // "bytes=0-0,9437184-9437184" case lands at ~1130 B (Table IV).
  t.multipart_boundary = "cfr_6e5f4a3b2c1d0e9f8a7b6c5d4e3f2a1b0c9d8e7f6a";
  // Disjoint multi-range requests are honored as multipart; overlapping
  // members are merged first (not in Table III).
  t.multi_reply = MultiRangeReplyPolicy::kCoalesce;
  return t;
}

VendorTraits fastly_traits() {
  VendorTraits t;
  t.name = "Fastly";
  t.response_identity_headers = {
      {"Via", "1.1 varnish"},
      {"X-Served-By", "cache-fra19128-FRA"},
      {"X-Cache", "MISS"},
      {"X-Timer", "S1594091655.312461,VS0,VE112"},
  };
  t.client_response_target_bytes = 824;
  t.forward_headers = {
      {"Fastly-FF", "Vpnm0h(...)!FRA!cache-fra19128"},
      {"X-Varnish", "3366261930"},
      {"X-Forwarded-For", "198.51.100.30"},
  };
  pad_forward_headers(t, 250);
  t.multipart_boundary = "fst_4a3b2c1d0e9f8a7b";
  t.multi_reply = MultiRangeReplyPolicy::kFirstRangeOnly;
  return t;
}

VendorTraits gcore_traits() {
  VendorTraits t;
  t.name = "G-Core Labs";
  t.response_identity_headers = {
      {"Server", "nginx"},
  };
  t.client_response_target_bytes = 605;
  t.forward_headers = {
      {"Via", "1.1 gcore-edge-fra"},
      {"X-Forwarded-For", "198.51.100.31"},
  };
  pad_forward_headers(t, 160);
  t.multipart_boundary = "gc_2c1d0e9f8a7b6c5d";
  t.multi_reply = MultiRangeReplyPolicy::kCoalesce;
  return t;
}

VendorTraits huawei_traits() {
  VendorTraits t;
  t.name = "Huawei Cloud";
  t.response_identity_headers = {
      {"Server", "CDN"},
      {"X-Ccdn-Cachettl", "86400"},
      {"X-Ccdn-Origin-Time", "112"},
  };
  t.client_response_target_bytes = 721;
  t.forward_headers = {
      {"Via", "1.1 huawei-cdn-edge"},
      {"X-Forwarded-For", "198.51.100.32"},
  };
  pad_forward_headers(t, 200);
  t.multipart_boundary = "hw_0e9f8a7b6c5d4e3f";
  t.multi_reply = MultiRangeReplyPolicy::kCoalesce;
  return t;
}

VendorTraits keycdn_traits() {
  VendorTraits t;
  t.name = "KeyCDN";
  t.response_identity_headers = {
      {"Server", "keycdn-engine"},
      {"X-Cache", "MISS"},
      {"X-Edge-Location", "defra1"},
  };
  t.client_response_target_bytes = 738;
  t.forward_headers = {
      {"Via", "1.1 keycdn-defra1"},
      {"X-Forwarded-For", "198.51.100.33"},
  };
  pad_forward_headers(t, 180);
  t.multipart_boundary = "key_8a7b6c5d4e3f2a1b";
  t.multi_reply = MultiRangeReplyPolicy::kCoalesce;
  return t;
}

VendorTraits stackpath_traits() {
  VendorTraits t;
  t.name = "StackPath";
  t.limits.total_header_bytes = 81 * 1024;  // "about 81KB", section V-C
  t.response_identity_headers = {
      {"Server", "StackPath/1.0"},
      {"X-Hw", "1594091655.dop101.fr2.t,1594091655.cds058.fr2.c"},
  };
  t.client_response_target_bytes = 807;
  t.forward_headers = {
      {"Via", "1.1 sp-edge-cache-01 (StackPath)"},
      {"X-Forwarded-For", "203.0.113.77"},
      {"X-SP-Request-Id", "9f63aa5b-4f21-47e5-ae0c-0123456789ab"},
      {"X-SP-Edge", "iad-edge-7"},
      {"X-Forwarded-Proto", "https"},
      {"CDN-Loop", "stackpath"},
  };
  // Fitted so the Akamai-bound max n lands at Table V's 10801 (see
  // bench_table5): total baggage = 318 bytes.
  pad_forward_headers(t, 318);
  // ~69-char boundary: 1 KB part costs ~1175 B (Table V, StackPath BCDN).
  t.multipart_boundary =
      "sp_6c5d4e3f2a1b0c9d8e7f6a5b4c3d2e1f0a9b8c7d6e5f4a3b2c1d0e9f8a7b6c5d4e";
  t.multi_reply = MultiRangeReplyPolicy::kHonorOverlapping;  // Table III
  return t;
}

VendorTraits tencent_traits() {
  VendorTraits t;
  t.name = "Tencent Cloud";
  t.response_identity_headers = {
      {"Server", "NWS_SPMid"},
      {"X-Cache-Lookup", "Cache Miss"},
      {"X-NWS-LOG-UUID", "5600413182280441423"},
  };
  t.client_response_target_bytes = 808;
  t.forward_headers = {
      {"Via", "1.1 tencent-cdn-edge"},
      {"X-Forwarded-For", "198.51.100.34"},
  };
  pad_forward_headers(t, 200);
  t.multipart_boundary = "tc_4e3f2a1b0c9d8e7f";
  t.multi_reply = MultiRangeReplyPolicy::kCoalesce;
  return t;
}

}  // namespace

std::string_view vendor_name(Vendor v) noexcept {
  switch (v) {
    case Vendor::kAkamai: return "Akamai";
    case Vendor::kAlibabaCloud: return "Alibaba Cloud";
    case Vendor::kAzure: return "Azure";
    case Vendor::kCdn77: return "CDN77";
    case Vendor::kCdnsun: return "CDNsun";
    case Vendor::kCloudflare: return "Cloudflare";
    case Vendor::kCloudFront: return "CloudFront";
    case Vendor::kFastly: return "Fastly";
    case Vendor::kGcoreLabs: return "G-Core Labs";
    case Vendor::kHuaweiCloud: return "Huawei Cloud";
    case Vendor::kKeyCdn: return "KeyCDN";
    case Vendor::kStackPath: return "StackPath";
    case Vendor::kTencentCloud: return "Tencent Cloud";
  }
  return "?";
}

VendorProfile make_profile(Vendor v, const ProfileOptions& options) {
  VendorProfile profile;
  switch (v) {
    case Vendor::kAkamai:
      profile.traits = akamai_traits();
      profile.logic = std::make_unique<AkamaiLogic>();
      break;
    case Vendor::kAlibabaCloud:
      profile.traits = alibaba_traits();
      profile.logic =
          std::make_unique<AlibabaLogic>(options.origin_range_option_disabled);
      break;
    case Vendor::kAzure:
      profile.traits = azure_traits();
      profile.logic = std::make_unique<AzureLogic>();
      break;
    case Vendor::kCdn77:
      profile.traits = cdn77_traits();
      profile.logic = std::make_unique<Cdn77Logic>();
      break;
    case Vendor::kCdnsun:
      profile.traits = cdnsun_traits();
      profile.logic = std::make_unique<CdnsunLogic>();
      break;
    case Vendor::kCloudflare:
      profile.traits = cloudflare_traits(options.cloudflare_mode);
      if (options.cloudflare_mode == ProfileOptions::CloudflareMode::kBypass) {
        // Bypass page rule: pure pass-through, no caching (Table II).
        profile.logic = std::make_unique<LazinessLogic>(/*serve_range_on_200=*/false);
      } else {
        profile.logic = std::make_unique<CloudflareCacheableLogic>();
      }
      break;
    case Vendor::kCloudFront:
      profile.traits = cloudfront_traits();
      profile.logic = std::make_unique<CloudFrontLogic>();
      break;
    case Vendor::kFastly:
      profile.traits = fastly_traits();
      profile.logic = std::make_unique<FastlyLogic>();
      break;
    case Vendor::kGcoreLabs:
      profile.traits = gcore_traits();
      profile.logic = std::make_unique<GcoreLogic>();
      break;
    case Vendor::kHuaweiCloud:
      profile.traits = huawei_traits();
      profile.logic =
          std::make_unique<HuaweiLogic>(options.huawei_range_option_enabled);
      break;
    case Vendor::kKeyCdn:
      profile.traits = keycdn_traits();
      profile.logic = std::make_unique<KeyCdnLogic>();
      break;
    case Vendor::kStackPath:
      profile.traits = stackpath_traits();
      profile.logic = std::make_unique<StackPathLogic>();
      break;
    case Vendor::kTencentCloud:
      profile.traits = tencent_traits();
      profile.logic =
          std::make_unique<TencentLogic>(options.origin_range_option_disabled);
      break;
  }
  profile.traits.response_pad_bytes = calibrate_response_pad(profile.traits);
  return profile;
}

}  // namespace rangeamp::cdn
