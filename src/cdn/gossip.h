// Distributed RangeAmp detection: per-node detectors, attack signatures,
// and gossip propagation across the nodes of an EdgeCluster.
//
// Section V-D of the paper observes that vulnerable CDNs raised no alert
// under their default configuration; section VI-C argues the attacks are
// detectable from their traffic signatures.  The campaign-level replay
// detector (core/detector.h) already proves that -- but a single latched
// detector is trivially defeated by an attacker who rotates ingress nodes:
// each node sees only 1/N of the attack stream and never crosses its
// thresholds, or alarms long after the attacker has moved on.
//
// The fix, following "Mitigation of Random Query String DoS via Gossip"
// (arXiv 1109.4404), is to make one node's detection cluster-wide
// protection:
//
//   * every node runs per-client RangeAmpDetector instances fed inline at
//     ingress (NodeDetection),
//   * an alarm mints an AttackSignature -- (client key, base cache-key
//     pattern, range shape) with a TTL -- into the node's bounded
//     SignatureTable,
//   * a seeded push-gossip fabric (GossipFabric) exchanges signature tables
//     between nodes every round_seconds of *simulation* time, with
//     configurable fanout, deterministic peer selection, duplicate
//     suppression, and injected message loss via net::FaultInjector,
//   * nodes enforce quarantine (429) on signature match at ingress; a
//     client-key match refreshes the signature's TTL so an ongoing attack
//     stays quarantined even though quarantined requests never reach the
//     detectors.
//
// Everything is sim-clock driven and seeded: the same configuration
// produces the same gossip schedule, the same losses, and the same
// convergence exchange on every run, independent of thread count.
// Semantics and the quarantine precedence order: docs/detection-model.md.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdn/types.h"
#include "core/detector.h"
#include "net/fault.h"
#include "obs/metrics.h"

namespace rangeamp::http {
struct Request;
struct Response;
}  // namespace rangeamp::http

namespace rangeamp::cdn {

/// Header a client stamps to attribute its requests to an identity the
/// ingress can key detectors on (the testbed stand-in for client IP /
/// TLS fingerprint).  Requests without it fall into one anonymous bucket.
inline constexpr std::string_view kClientKeyHeader = "X-Client-Key";

/// The cache-key *pattern* detection keys on: "host|path" with the query
/// string stripped.  An attacker's cache-busting query rotation changes the
/// cache key every request but never this pattern.
std::string detection_base_key(const http::Request& request);

/// Resource size implied by a client-facing response: the complete-length of
/// a 206 Content-Range ("bytes a-b/N" -> N), the body size of a 200, else 0
/// (unknown).  Feeds DetectorSample::resource_bytes without the ingress
/// having to know the origin catalog.
std::uint64_t resource_bytes_from_response(const http::Response& response);

/// One gossiped attack signature.
struct AttackSignature {
  std::string client_key;  ///< attributed client identity (table key)
  std::string base_key;    ///< detection_base_key() pattern under attack
  core::RangeClass shape = core::RangeClass::kNone;  ///< dominant range shape
  double detected_at = 0;  ///< sim time of the first alarm, cluster-wide
  double expires_at = 0;   ///< last refresh + signature_ttl_seconds
  std::size_t origin_node = 0;  ///< node index that first alarmed
};

/// Bounded TTL'd signature store, keyed by client identity.  Upserts
/// suppress duplicates (keeping the earliest detected_at and the latest
/// expires_at, so re-detections extend rather than reset a signature's
/// history); expired entries are swept on demand.
class SignatureTable {
 public:
  /// `max_signatures` bounds the table (0 = unbounded): once full after an
  /// expiry sweep, fresh inserts are rejected -- an attacker minting client
  /// identities cannot grow node memory without bound.
  explicit SignatureTable(std::size_t max_signatures)
      : max_signatures_(max_signatures) {}

  /// Inserts or merges a signature.  Returns true when the client key was
  /// not previously held (a *fresh* insert -- what the detection-latency
  /// histogram observes); false for suppressed duplicates and rejects.
  bool upsert(const AttackSignature& sig, double now);

  /// Drops signatures with expires_at <= now.  Returns how many.
  std::size_t expire(double now);

  /// Active signature for this exact client key, or nullptr.
  const AttackSignature* find_client(const std::string& client_key,
                                     double now) const;

  /// Active signature matching the (base_key, shape) pattern, or nullptr.
  const AttackSignature* find_pattern(const std::string& base_key,
                                      core::RangeClass shape,
                                      double now) const;

  /// Extends the TTL of a held signature (quarantine refresh-on-match).
  /// Returns false when the key is not held.
  bool refresh(const std::string& client_key, double expires_at);

  /// Snapshot of signatures active at `now`, in insertion order (the
  /// deterministic payload of one gossip push).
  std::vector<AttackSignature> active(double now) const;

  std::size_t size() const noexcept { return order_.size(); }
  void clear();

  std::uint64_t expired_total = 0;        ///< signatures dropped by TTL
  std::uint64_t duplicates_suppressed = 0;  ///< upserts merged, not inserted
  std::uint64_t rejected_full = 0;        ///< fresh inserts refused at cap

 private:
  std::size_t max_signatures_;
  std::unordered_map<std::string, AttackSignature> by_client_;
  std::deque<std::string> order_;  ///< insertion order, for active() payloads
};

/// Counters of one node's detection layer.
struct DetectionStats {
  std::uint64_t samples = 0;           ///< exchanges fed to detectors
  std::uint64_t alarms = 0;            ///< detector alarm transitions
  std::uint64_t clients_evicted = 0;   ///< tracked-client FIFO evictions
};

/// The per-node detection layer: a bounded map of per-client detectors plus
/// the node's signature table.  Owned by CdnNode, wired together by
/// GossipFabric at cluster construction.
class NodeDetection {
 public:
  NodeDetection(const DetectionPolicy& policy, std::size_t node_index);

  /// Feeds one exchange to the sample's client detector.  On an alarm
  /// transition, mints a signature into the table and returns a pointer to
  /// it (valid until the next table mutation); nullptr otherwise.
  const AttackSignature* observe(const core::DetectorSample& sample,
                                 double now);

  /// What (if anything) quarantines this request.
  enum class Match {
    kNone,
    kClient,   ///< exact client-key signature match
    kPattern,  ///< (base_key, tiny-closed shape) pattern match
  };
  Match match(const std::string& client_key, const std::string& base_key,
              core::RangeClass shape, double now) const;

  /// TTL refresh on a client-key quarantine hit: the attack is still live,
  /// so its signature must not expire out from under the quarantine.
  void refresh_client(const std::string& client_key, double now);

  /// Node churn: the process restarts and loses all soft state (detector
  /// windows and signature table).  Gossip re-populates the table.
  void restart();

  SignatureTable& table() noexcept { return table_; }
  const SignatureTable& table() const noexcept { return table_; }
  const DetectionPolicy& policy() const noexcept { return policy_; }
  std::size_t node_index() const noexcept { return node_index_; }
  /// EdgeCluster stamps the cluster-local index after construction (a
  /// standalone node keeps 0); it labels AttackSignature::origin_node.
  void set_node_index(std::size_t index) noexcept { node_index_ = index; }
  const DetectionStats& stats() const noexcept { return stats_; }
  std::size_t tracked_clients() const noexcept { return detectors_.size(); }

 private:
  void evict_excess_clients();

  DetectionPolicy policy_;
  std::size_t node_index_;
  SignatureTable table_;
  std::unordered_map<std::string, core::RangeAmpDetector> detectors_;
  std::deque<std::string> detector_order_;  ///< insertion order for eviction
  DetectionStats stats_;
};

/// Counters of the gossip fabric.
struct GossipStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages_sent = 0;      ///< node->peer pushes attempted
  std::uint64_t messages_dropped = 0;   ///< pushes lost to injected faults
  std::uint64_t signatures_sent = 0;    ///< signatures carried by sent pushes
  std::uint64_t signatures_accepted = 0;  ///< fresh inserts at receivers
};

/// Seeded push-gossip between the NodeDetection instances of one cluster.
///
/// Every `round_seconds` of simulation time each node pushes its active
/// signatures to `fanout` deterministically chosen peers.  Peer choice for
/// (round r, node i) draws from an http::Rng seeded with
/// splitmix64(splitmix64(seed ^ r) ^ i) -- a pure function of configuration,
/// so the schedule is identical across runs and thread counts.  Message
/// loss, when configured, consults a seeded net::FaultInjector rate rule
/// once per push; a dropped push costs nothing but latency, because the
/// next round retries from scratch (anti-entropy, not reliable delivery).
class GossipFabric {
 public:
  GossipFabric(std::vector<NodeDetection*> nodes, const GossipPolicy& policy);

  /// Runs every round due at or before `now`.  Called by EdgeCluster on
  /// each ingress exchange (and by tests directly).
  void advance(double now);

  /// Churn hook: node `index` restarts, losing detectors and signatures.
  void restart_node(std::size_t index);

  /// Replaces the loss injector (chaos tests schedule bespoke loss).
  void set_fault_injector(std::unique_ptr<net::FaultInjector> injector);

  /// Attaches metrics (cdn_gossip_* catalogue, docs/observability.md).
  void set_metrics(obs::MetricsRegistry* registry, std::string_view vendor);

  /// Nodes currently holding an *active* signature for `client_key`.
  std::size_t coverage(const std::string& client_key, double now) const;

  /// True when every node holds an active signature for `client_key` --
  /// the cluster-wide quarantine the detection-latency metric measures.
  bool converged(const std::string& client_key, double now) const {
    return !nodes_.empty() && coverage(client_key, now) == nodes_.size();
  }

  const GossipStats& stats() const noexcept { return stats_; }
  const GossipPolicy& policy() const noexcept { return policy_; }
  std::uint64_t rounds_run() const noexcept { return stats_.rounds; }

  /// Called by a node when its local detector mints a fresh signature, so
  /// the latency histogram sees exchange-driven detections too.
  void note_fresh_signature(const AttackSignature& sig, double now);

 private:
  void run_round(std::uint64_t round, double now);
  void publish_metrics();

  std::vector<NodeDetection*> nodes_;
  GossipPolicy policy_;
  std::unique_ptr<net::FaultInjector> loss_;
  std::uint64_t next_round_ = 0;  ///< rounds [0, next_round_) have run
  GossipStats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_messages_sent_ = nullptr;
  obs::Counter* m_messages_dropped_ = nullptr;
  obs::Counter* m_signatures_sent_ = nullptr;
  obs::Counter* m_signatures_expired_ = nullptr;
  obs::Gauge* m_signatures_held_ = nullptr;
  obs::Histogram* m_detection_latency_ = nullptr;
  std::uint64_t published_expired_ = 0;  ///< delta-publishing watermark
};

}  // namespace rangeamp::cdn
