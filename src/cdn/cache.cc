#include "cdn/cache.h"

namespace rangeamp::cdn {

std::string Cache::key(std::string_view host, std::string_view target) {
  std::string k;
  k.reserve(host.size() + 1 + target.size());
  k.append(host).push_back('|');
  k.append(target);
  return k;
}

const CachedEntity* Cache::find(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void Cache::put(std::string key, CachedEntity entity) {
  entries_.insert_or_assign(std::move(key), std::move(entity));
}

void Cache::touch(const std::string& key, double expires_at) {
  if (const auto it = entries_.find(key); it != entries_.end()) {
    it->second.expires_at = expires_at;
  }
}

}  // namespace rangeamp::cdn
