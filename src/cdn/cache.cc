#include "cdn/cache.h"

#include <algorithm>
#include <utility>

namespace rangeamp::cdn {
namespace {

/// Fixed accounting overhead per entry: map node, queue slots, metadata.
/// Keeps zero-byte markers (`#vary`) and negative entries budget-visible.
constexpr std::uint64_t kEntryOverhead = 64;

/// FNV-1a 64-bit.  Deterministic across platforms, unlike std::hash --
/// sharded layouts (and therefore sharded campaign CSVs) must not depend on
/// the standard library's hash choice.
std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string_view cache_policy_name(CacheEvictionPolicy p) noexcept {
  switch (p) {
    case CacheEvictionPolicy::kFifoNaive: return "fifo-naive";
    case CacheEvictionPolicy::kS3Fifo: return "s3-fifo";
  }
  return "?";
}

Cache::Cache(const CacheTraits& traits) : traits_(traits) {
  if (traits_.shards == 0) traits_.shards = 1;
  traits_.high_watermark = std::clamp(traits_.high_watermark, 0.0, 1.0);
  traits_.low_watermark =
      std::clamp(traits_.low_watermark, 0.0, traits_.high_watermark);
  traits_.small_fraction = std::clamp(traits_.small_fraction, 0.0, 1.0);
  if (traits_.max_bytes != 0) {
    shard_budget_ = std::max<std::uint64_t>(
        traits_.max_bytes / traits_.shards, kEntryOverhead);
    small_capacity_ = static_cast<std::uint64_t>(
        static_cast<double>(shard_budget_) * traits_.small_fraction);
    high_mark_ = static_cast<std::uint64_t>(
        static_cast<double>(shard_budget_) * traits_.high_watermark);
    low_mark_ = static_cast<std::uint64_t>(
        static_cast<double>(shard_budget_) * traits_.low_watermark);
  }
  shards_.reserve(traits_.shards);
  for (std::size_t i = 0; i < traits_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string Cache::key(std::string_view host, std::string_view target) {
  std::string k;
  k.reserve(host.size() + 1 + target.size());
  k.append(host).push_back('|');
  k.append(target);
  return k;
}

std::string_view Cache::base_of(std::string_view key) noexcept {
  const auto pos = key.find('#');
  return pos == std::string_view::npos ? key : key.substr(0, pos);
}

std::uint64_t Cache::charge_of(std::string_view key,
                               const CachedEntity& entity) noexcept {
  return key.size() + entity.size() + entity.content_type.size() +
         entity.etag.size() + entity.last_modified.size() +
         entity.vary.size() + kEntryOverhead;
}

Cache::Shard& Cache::shard_for(std::string_view key) const {
  if (shards_.size() == 1) return *shards_[0];
  return *shards_[fnv1a(base_of(key)) % shards_.size()];
}

std::size_t Cache::shard_of(std::string_view key) const noexcept {
  if (shards_.size() == 1) return 0;
  return fnv1a(base_of(key)) % shards_.size();
}

const CachedEntity* Cache::find(const std::string& key) const {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    ++s.misses;
    return nullptr;
  }
  Slot& slot = it->second;
  if (slot.freq < kMaxFreq) ++slot.freq;
  ++s.hits;
  return &slot.entity;
}

void Cache::put(std::string key, CachedEntity entity) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t charge = charge_of(key, entity);

  if (const auto it = s.map.find(key); it != s.map.end()) {
    // Replacement: retire the old slot (no variant cascade -- the caller is
    // re-writing this key, not removing it) and fall through to a fresh
    // insert, so the entry re-enters the queues at the tail.
    remove_slot(s, it, RemovalKind::kReplace);
  }

  if (shard_budget_ != 0) {
    if (charge > shard_budget_) {
      ++s.admission_rejects;
      return;
    }
    if (s.bytes + charge > high_mark_) {
      while (s.bytes + charge > low_mark_ && evict_one(s)) {
      }
    }
    if (s.bytes + charge > shard_budget_) {
      ++s.admission_rejects;
      return;
    }
  }

  const std::uint64_t gen = ++s.gen_counter;
  const bool to_main = traits_.policy == CacheEvictionPolicy::kFifoNaive ||
                       ghost_contains(s, fnv1a(key));
  if (to_main) {
    s.main_q.push_back({key, gen});
  } else {
    s.small_q.push_back({key, gen});
    s.small_bytes += charge;
  }
  s.bytes += charge;
  Slot slot;
  slot.entity = std::move(entity);
  slot.charge = charge;
  slot.gen = gen;
  slot.in_main = to_main;
  s.map.emplace(std::move(key), std::move(slot));
}

TouchResult Cache::touch(const std::string& key, double expires_at,
                         double now) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) return TouchResult::kAbsent;
  Slot& slot = it->second;
  if (!slot.entity.fresh_at(now) && expires_at <= now) {
    // The entry is stale and revalidation produced no future horizon:
    // purge it rather than resurrect a stale copy under a stale lifetime.
    remove_slot(s, it, RemovalKind::kExpire);
    return TouchResult::kPurgedStale;
  }
  slot.entity.expires_at = expires_at;
  if (slot.freq < kMaxFreq) ++slot.freq;  // a revalidation is an access
  return TouchResult::kRefreshed;
}

bool Cache::erase(const std::string& key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) return false;
  remove_slot(s, it, RemovalKind::kErase);
  return true;
}

void Cache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->small_q.clear();
    shard->main_q.clear();
    shard->ghost_q.clear();
    shard->ghost_count.clear();
    shard->bytes = 0;
    shard->small_bytes = 0;
    shard->hits = 0;
    shard->misses = 0;
    shard->evictions = 0;
    shard->admission_rejects = 0;
  }
}

Cache::Stats Cache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.entries += shard->map.size();
    out.bytes += shard->bytes;
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.admission_rejects += shard->admission_rejects;
  }
  return out;
}

std::size_t Cache::size() const { return stats().entries; }
std::uint64_t Cache::bytes() const { return stats().bytes; }
std::uint64_t Cache::hits() const { return stats().hits; }
std::uint64_t Cache::misses() const { return stats().misses; }
std::uint64_t Cache::evictions() const { return stats().evictions; }
std::uint64_t Cache::admission_rejects() const {
  return stats().admission_rejects;
}

bool Cache::evict_one(Shard& s) {
  if (traits_.policy == CacheEvictionPolicy::kFifoNaive) {
    while (!s.main_q.empty()) {
      QueueEntry qe = std::move(s.main_q.front());
      s.main_q.pop_front();
      const auto it = s.map.find(qe.key);
      if (it == s.map.end() || it->second.gen != qe.gen) continue;
      remove_slot(s, it, RemovalKind::kEvict);
      return true;
    }
    return false;
  }

  while (!s.small_q.empty() || !s.main_q.empty()) {
    const bool from_small =
        !s.small_q.empty() &&
        (s.small_bytes > small_capacity_ || s.main_q.empty());
    if (from_small) {
      QueueEntry qe = std::move(s.small_q.front());
      s.small_q.pop_front();
      const auto it = s.map.find(qe.key);
      if (it == s.map.end() || it->second.gen != qe.gen ||
          it->second.in_main) {
        continue;  // stale queue entry
      }
      Slot& slot = it->second;
      if (slot.freq > 0) {
        // Re-accessed while on probation: promote to main.
        s.small_bytes -= slot.charge;
        slot.in_main = true;
        slot.freq = 0;
        s.main_q.push_back(std::move(qe));
        continue;
      }
      // One-hit wonder: out it goes, remembered only by the ghost list so
      // a returning key is readmitted straight to main.
      ghost_insert(s, fnv1a(qe.key));
      remove_slot(s, it, RemovalKind::kEvict);
      return true;
    }
    QueueEntry qe = std::move(s.main_q.front());
    s.main_q.pop_front();
    const auto it = s.map.find(qe.key);
    if (it == s.map.end() || it->second.gen != qe.gen ||
        !it->second.in_main) {
      continue;  // stale queue entry
    }
    Slot& slot = it->second;
    if (slot.freq > 0) {
      --slot.freq;
      s.main_q.push_back(std::move(qe));  // second chance
      continue;
    }
    remove_slot(s, it, RemovalKind::kEvict);
    return true;
  }
  return false;
}

void Cache::remove_slot(Shard& s,
                        std::unordered_map<std::string, Slot>::iterator it,
                        RemovalKind kind) {
  const Slot& slot = it->second;
  s.bytes -= slot.charge;
  if (!slot.in_main) s.small_bytes -= slot.charge;
  if (kind == RemovalKind::kEvict) ++s.evictions;
  // Removing a `#vary` marker strands that base key's variant entries
  // (resolve_cache_key can no longer reach them): cascade-purge them so
  // they stop occupying budget.  Replacement skips the cascade -- store()
  // re-puts the marker on every varied response and must not wipe the
  // sibling variants each time.
  const bool cascade =
      kind != RemovalKind::kReplace && it->first.ends_with("#vary");
  std::string base;
  if (cascade) base = std::string(base_of(it->first));
  s.map.erase(it);
  if (cascade) purge_variants(s, base, kind);
}

void Cache::purge_variants(Shard& s, const std::string& base,
                           RemovalKind kind) {
  const std::string prefix = base + "#variant=";
  for (auto it = s.map.begin(); it != s.map.end();) {
    if (it->first.starts_with(prefix)) {
      s.bytes -= it->second.charge;
      if (!it->second.in_main) s.small_bytes -= it->second.charge;
      if (kind == RemovalKind::kEvict) ++s.evictions;
      it = s.map.erase(it);  // queue entries go stale; popped lazily
    } else {
      ++it;
    }
  }
}

void Cache::ghost_insert(Shard& s, std::uint64_t hash) {
  if (traits_.ghost_entries == 0) return;
  s.ghost_q.push_back(hash);
  ++s.ghost_count[hash];
  while (s.ghost_q.size() > traits_.ghost_entries) {
    const std::uint64_t old = s.ghost_q.front();
    s.ghost_q.pop_front();
    const auto it = s.ghost_count.find(old);
    if (it != s.ghost_count.end() && --it->second == 0) s.ghost_count.erase(it);
  }
}

bool Cache::ghost_contains(const Shard& s, std::uint64_t hash) const {
  return s.ghost_count.find(hash) != s.ghost_count.end();
}

}  // namespace rangeamp::cdn
