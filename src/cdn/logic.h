// Generic, reusable VendorLogic building blocks.
//
// The three base policies of section III-B (Laziness / Deletion / Expansion)
// as concrete logics, plus free helper functions the per-vendor logics in
// profiles.cc compose.  BoundedExpansionLogic additionally implements the
// paper's recommended mitigation ("adopt the Expansion policy but not extend
// the byte range too much ... increase the byte range by 8KB", section VI-C).
#pragma once

#include <cstdint>

#include "cdn/node.h"

namespace rangeamp::cdn {

/// Deletion: drop the Range header, fetch and cache the full entity, answer
/// the requested range from it.  The SBR-vulnerable behaviour.
http::Response deletion_miss(CdnNode& node, const http::Request& request,
                             const std::optional<http::RangeSet>& range);

/// Laziness: forward the Range header unchanged.  When the upstream answers
/// 200 with the full entity (e.g. it does not support ranges), the node
/// caches it and -- when `serve_range_on_200` -- answers only the requested
/// range, as RFC 2616 prescribes for proxies; otherwise the 200 is relayed.
http::Response laziness_miss(CdnNode& node, const http::Request& request,
                             const std::optional<http::RangeSet>& range,
                             bool serve_range_on_200 = true);

/// Serves a client request from an upstream fetch result: a 200 is cached
/// and range-served; a single-part 206 is served as a window (Expansion
/// fetches); anything else is relayed.
http::Response serve_upstream_result(CdnNode& node, const http::Request& request,
                                     const http::Response& upstream,
                                     const std::optional<http::RangeSet>& client_range);

/// Builds an EntityWindow from a single-part 206 response (Content-Range
/// parsed).  Returns nullopt when the response is not a usable partial.
std::optional<EntityWindow> window_from_206(const http::Response& upstream);

class DeletionLogic final : public VendorLogic {
 public:
  http::Response on_miss(CdnNode& node, const http::Request& request,
                         const std::optional<http::RangeSet>& range) override {
    return deletion_miss(node, request, range);
  }
};

class LazinessLogic final : public VendorLogic {
 public:
  explicit LazinessLogic(bool serve_range_on_200 = true)
      : serve_range_on_200_(serve_range_on_200) {}

  http::Response on_miss(CdnNode& node, const http::Request& request,
                         const std::optional<http::RangeSet>& range) override {
    return laziness_miss(node, request, range, serve_range_on_200_);
  }

 private:
  bool serve_range_on_200_;
};

/// Bounded Expansion: forward a range grown by at most `slack_bytes`
/// (default 8 KB, the paper's suggested value).  Closed ranges become
/// [first, last + slack]; suffix ranges become -(suffix + slack); open-ended
/// ranges are forwarded unchanged (they already reach the end).  Multi-range
/// sets are coalesced first.  The upstream's partial answer is served as a
/// window; a 200 full answer is cached and range-served.
class BoundedExpansionLogic final : public VendorLogic {
 public:
  explicit BoundedExpansionLogic(std::uint64_t slack_bytes = 8 * 1024)
      : slack_(slack_bytes) {}

  http::Response on_miss(CdnNode& node, const http::Request& request,
                         const std::optional<http::RangeSet>& range) override;

 private:
  std::uint64_t slack_;
};

/// Slice fetching: the nginx-slice-module strategy G-Core Labs shipped as
/// its RangeAmp fix ("make the 'slice' option enabled by default", paper
/// section VII; CDN77 announced the same direction).  Back-to-origin
/// requests are always slice-aligned ranges of `slice_bytes`; each slice is
/// cached individually, and the client's range is assembled from slices.
/// Origin exposure per request is capped at ~(span rounded up to slices),
/// so a 1-byte SBR request costs one slice instead of the whole resource.
class SliceLogic final : public VendorLogic {
 public:
  explicit SliceLogic(std::uint64_t slice_bytes = 1u << 20)
      : slice_(slice_bytes) {}

  http::Response on_miss(CdnNode& node, const http::Request& request,
                         const std::optional<http::RangeSet>& range) override;

 private:
  /// Fetches (or recalls from cache) slice `index`; returns nullopt when the
  /// upstream answer is unusable.  On a 200 the full entity short-circuits
  /// through `full_entity`.  A transport failure short-circuits through
  /// `degraded` (the vendor's degradation response, shaped by
  /// `client_range`).
  struct SliceResult {
    http::Body body;
    std::uint64_t total_size = 0;
    std::string content_type;
    std::string etag;
    std::string last_modified;
  };
  std::optional<SliceResult> fetch_slice(
      CdnNode& node, const http::Request& request, std::uint64_t index,
      const std::optional<http::RangeSet>& client_range,
      std::optional<CachedEntity>* full_entity,
      std::optional<http::Response>* degraded);

  std::uint64_t slice_;
};

}  // namespace rangeamp::cdn
