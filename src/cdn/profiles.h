// The 13 vendor profiles of the paper's evaluation (section III-A).
//
// Each profile encodes one CDN's range-request behaviour exactly as measured
// by the paper:
//   * the Range-forwarding rows of Table I  (SBR-relevant),
//   * the multi-range forwarding rows of Table II (OBR FCDN-relevant),
//   * the multi-range replying rows of Table III (OBR BCDN-relevant),
//   * the request-header limits of section V-C,
//   * and a client-response header footprint calibrated so the SBR
//     amplification factors land on Table IV.
//
// Behaviours the paper leaves undocumented (e.g. how CloudFront forwards a
// multi-range whose expanded span exceeds 10 MiB) are modelled with the most
// RFC-conservative plausible choice and marked UNDOCUMENTED in profiles.cc.
#pragma once

#include <array>
#include <string_view>

#include "cdn/node.h"

namespace rangeamp::cdn {

enum class Vendor {
  kAkamai,
  kAlibabaCloud,
  kAzure,
  kCdn77,
  kCdnsun,
  kCloudflare,
  kCloudFront,
  kFastly,
  kGcoreLabs,
  kHuaweiCloud,
  kKeyCdn,
  kStackPath,
  kTencentCloud,
};

inline constexpr std::array<Vendor, 13> kAllVendors = {
    Vendor::kAkamai,     Vendor::kAlibabaCloud, Vendor::kAzure,
    Vendor::kCdn77,      Vendor::kCdnsun,       Vendor::kCloudflare,
    Vendor::kCloudFront, Vendor::kFastly,       Vendor::kGcoreLabs,
    Vendor::kHuaweiCloud, Vendor::kKeyCdn,      Vendor::kStackPath,
    Vendor::kTencentCloud,
};

std::string_view vendor_name(Vendor v) noexcept;

/// Customer-visible configuration options the paper calls out as gating the
/// vulnerabilities (the (*) rows of Tables I and II).  Defaults are the
/// configurations the paper's experiments exercised.
struct ProfileOptions {
  /// Alibaba Cloud / Tencent Cloud "Range" origin-pull option: the vendors
  /// are vulnerable only when the option is DISABLED (no Range back to
  /// origin).  The paper notes this is the tested configuration.
  bool origin_range_option_disabled = true;

  /// Huawei Cloud is vulnerable only when its Range option is ENABLED.
  bool huawei_range_option_enabled = true;

  /// Cloudflare page-rule mode for the target path: Cacheable makes it
  /// SBR-vulnerable (Table I); Bypass makes it OBR-FCDN-vulnerable
  /// (Table II).
  enum class CloudflareMode { kCacheable, kBypass };
  CloudflareMode cloudflare_mode = CloudflareMode::kCacheable;
};

/// Builds the profile for one vendor.
VendorProfile make_profile(Vendor v, const ProfileOptions& options = {});

/// Azure's back-to-origin window constants (section V-A): the first
/// connection is cut once a little over 8 MB of payload arrived; the second
/// fetches the fixed window bytes=8388608-16777215.
inline constexpr std::uint64_t kAzureWindowStart = 8'388'608;
inline constexpr std::uint64_t kAzureWindowEnd = 16'777'215;
inline constexpr std::uint64_t kAzureAbortOvershoot = 64 * 1024;

/// CloudFront's Expansion granularity (1 MiB blocks) and multi-range
/// expansion cap (10 MiB), from section V-A.
inline constexpr std::uint64_t kCloudFrontBlock = 1u << 20;
inline constexpr std::uint64_t kCloudFrontMultiSpanCap = 10'485'760;

/// Huawei Cloud's file-size threshold separating its two Table I rows.
inline constexpr std::uint64_t kHuaweiSizeThreshold = 10 * (1u << 20);

/// CDN77's Deletion trigger: closed ranges with first < 1024 (Table I).
inline constexpr std::uint64_t kCdn77FirstByteThreshold = 1024;

}  // namespace rangeamp::cdn
