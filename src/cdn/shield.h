// Origin-shielding machinery: CDN-Loop parsing (RFC 8586), the per-key fill
// lock behind request coalescing, and the upstream circuit breaker.
//
// The policies (all-off defaults) live in types.h as part of VendorTraits;
// this header holds the runtime state machines a CdnNode instantiates when
// the knobs are turned on.  Everything is deterministic and clock-driven:
// "now" is whatever the node's simulation clock says (0 forever when no
// clock is installed), so shielded experiments replay byte-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdn/types.h"
#include "http/message.h"

namespace rangeamp::cdn {

// ---------------------------------------------------------------------------
// CDN-Loop (RFC 8586).
// ---------------------------------------------------------------------------

/// One element of a CDN-Loop header: a cdn-id plus its raw parameter string
/// (";"-joined, "" when absent).  Parameters are carried opaquely -- loop
/// detection only compares ids -- but they must still lex (quoted strings
/// balanced) for the element to be accepted.
struct CdnLoopEntry {
  std::string id;
  std::string params;

  bool operator==(const CdnLoopEntry& other) const noexcept {
    return id == other.id && params == other.params;
  }
};

/// Parses a CDN-Loop field value: #cdn-info where cdn-info is
/// cdn-id *( OWS ";" OWS parameter ).  This parser sits on the untrusted
/// boundary of every hop, so it is total: any input returns either a parsed
/// list or nullopt, never crashes, and anything accepted round-trips through
/// cdn_loop_to_string().  Empty elements and ids with illegal characters are
/// rejected.
std::optional<std::vector<CdnLoopEntry>> parse_cdn_loop(std::string_view value);

/// Canonical spelling: entries joined with ", ", parameters re-attached with
/// ";".
std::string cdn_loop_to_string(const std::vector<CdnLoopEntry>& entries);

/// Case-insensitive membership test for `token` among parsed cdn-ids.
bool cdn_loop_contains(const std::vector<CdnLoopEntry>& entries,
                       std::string_view token);

/// The cdn-id a vendor advertises when its profile does not set one:
/// the vendor name lowercased with spaces squeezed to '-', e.g.
/// "Alibaba Cloud" -> "alibaba-cloud".
std::string default_cdn_loop_token(std::string_view vendor_name);

// ---------------------------------------------------------------------------
// Shed / shield accounting.
// ---------------------------------------------------------------------------

/// Why a request (or an upstream fetch) was refused before touching the
/// wire.  Precedence when several layers could refuse the same miss: a held
/// coalesced fill always wins (it costs nothing), then deadline expiry
/// (504 -- the client-facing deadline makes even a stale answer useless),
/// then the overload watermarks, then the circuit breaker.  See
/// docs/overload-model.md for the full ordering.
enum class ShedCause {
  kNone,
  kBreakerOpen,    ///< circuit open: failure threshold tripped, not yet probed
  kAdmission,      ///< max_connections/max_pending exceeded
  kOverloadHigh,   ///< a pressure dimension at/above its high watermark
  kOverloadLow,    ///< between watermarks with no stale copy to degrade to
  kDeadline,       ///< per-exchange deadline budget below the per-hop minimum
};

std::string_view shed_cause_name(ShedCause cause) noexcept;

/// Counters one node's shielding layer accumulates.  Shed requests are
/// accounted separately from served traffic -- the bench reports them as
/// availability loss, not as amplification.
struct ShieldStats {
  std::uint64_t loop_rejected = 0;      ///< 508: own token seen in CDN-Loop
  std::uint64_t hop_cap_rejected = 0;   ///< 508: CDN-Loop longer than cap
  std::uint64_t coalesced_hits = 0;     ///< misses absorbed by a fill lock
  std::uint64_t fill_fetches = 0;       ///< misses that became the fill leader
  std::uint64_t shed_breaker_open = 0;  ///< 503: circuit open
  std::uint64_t shed_admission = 0;     ///< 503: connection/pending limits
  std::uint64_t breaker_trips = 0;      ///< closed -> open transitions
  std::uint64_t half_open_probes = 0;   ///< probes admitted while half-open
  std::uint64_t shed_responses = 0;     ///< client-facing 503 + Retry-After

  std::uint64_t shed_total() const noexcept {
    return shed_breaker_open + shed_admission;
  }
  std::uint64_t loop_rejects_total() const noexcept {
    return loop_rejected + hop_cap_rejected;
  }
};

// ---------------------------------------------------------------------------
// Circuit breaker.
// ---------------------------------------------------------------------------

/// Envoy-style upstream outlier breaker with half-open probing, plus busy
/// connection tracking for admission control.  Deterministic: every
/// transition is a pure function of (policy, outcome sequence, clock).
class UpstreamBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit UpstreamBreaker(CircuitBreakerPolicy policy)
      : policy_(std::move(policy)) {}

  /// Asks to start one upstream transfer at `now`.  kNone admits the
  /// transfer (the caller MUST follow up with on_success/on_failure and
  /// occupy_connection); anything else is a shed.
  ShedCause admit(double now);

  /// Reports the admitted transfer's outcome (a retryable 5xx counts as a
  /// failure, mirroring the resilience layer's retry classification).
  void on_success();
  void on_failure(double now);

  /// Marks an upstream connection busy until `until` (admission control).
  void occupy_connection(double until);

  State state() const noexcept { return state_; }
  int consecutive_failures() const noexcept { return consecutive_failures_; }
  std::uint64_t trips() const noexcept { return trips_; }

  /// Upstream transfers still in flight at `now` (expired slots pruned).
  std::size_t busy_connections(double now);

 private:
  void trip(double now);

  CircuitBreakerPolicy policy_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  double open_until_ = 0;
  int probes_in_flight_ = 0;
  std::uint64_t trips_ = 0;
  std::vector<double> busy_until_;
};

// ---------------------------------------------------------------------------
// Fill lock table (request coalescing).
// ---------------------------------------------------------------------------

/// Per-cache-key fill locks: the leader's response is held for
/// `window_seconds` and replayed to every same-key (and same-Range) miss
/// arriving inside the window -- N concurrent cache-busting misses collapse
/// into one origin fetch.
class FillLockTable {
 public:
  explicit FillLockTable(CoalescingPolicy policy) : policy_(std::move(policy)) {}

  /// The held response for `key` when a fill is still within its window.
  const http::Response* find(const std::string& key, double now) const;

  /// Records the leader's response for `key` at `now`.
  void record(std::string key, const http::Response& response, double now);

  std::size_t size() const noexcept { return fills_.size(); }

 private:
  struct Fill {
    http::Response response;
    double until = 0;
  };

  CoalescingPolicy policy_;
  std::unordered_map<std::string, Fill> fills_;
};

}  // namespace rangeamp::cdn
