#include "cdn/node.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "cdn/limits.h"
#include "http/chunked.h"
#include "http/multipart.h"
#include "http/serialize.h"

namespace rangeamp::cdn {

using http::Body;
using http::Headers;
using http::RangeSet;
using http::Request;
using http::ResolvedRange;
using http::Response;

namespace {

constexpr std::string_view kHopByHop[] = {
    "Connection", "Keep-Alive", "TE", "Trailer", "Transfer-Encoding",
    "Upgrade",    "Proxy-Authorization", "Proxy-Connection",
};

bool is_hop_by_hop(std::string_view name) {
  return std::any_of(std::begin(kHopByHop), std::end(kHopByHop),
                     [&](std::string_view h) { return http::iequals(h, name); });
}

// Builds a vendor-styled response: status line, Date, identity headers,
// content headers, Accept-Ranges and the calibration pad.  Shared between
// CdnNode and calibrate_response_pad() so calibration measures exactly what
// the node emits.
Response styled_response(const VendorTraits& traits, int status,
                         const Headers& content_headers, Body body) {
  Response resp;
  resp.status = status;
  resp.headers.add("Date", traits.date);
  for (const auto& f : traits.response_identity_headers) {
    resp.headers.add(f.name, f.value);
  }
  if (traits.emit_via && !traits.node_id.empty()) {
    // RFC 7230 section 5.7.1: intermediaries append themselves on responses
    // too.  The line is serialized like any other header, so it participates
    // in every segment's byte accounting.
    resp.headers.add("Via", "1.1 " + traits.node_id);
  }
  for (const auto& f : content_headers) {
    resp.headers.add(f.name, f.value);
  }
  resp.headers.add("Accept-Ranges", "bytes");
  if (traits.response_pad_bytes > 0) {
    resp.headers.add(std::string{kPadHeaderName},
                     std::string(traits.response_pad_bytes, 'x'));
  }
  resp.body = std::move(body);
  return resp;
}

}  // namespace

namespace {

// h2 framing is a property of the segment, not a factory backend (the
// net layer cannot depend on http2), so the node selects it here; the
// HTTP/1.1 backends go through net::make_transport.
std::unique_ptr<net::Transport> make_upstream_transport(
    SegmentFraming framing, const net::TransportSpec& spec,
    net::TrafficRecorder& recorder, net::HttpHandler& upstream) {
  if (framing == SegmentFraming::kHttp2) {
    return std::make_unique<http2::Http2Wire>(recorder, upstream);
  }
  return net::make_transport(spec, recorder, upstream);
}

}  // namespace

CdnNode::CdnNode(VendorProfile profile, net::HttpHandler& upstream,
                 std::string upstream_segment, SegmentFraming upstream_framing,
                 const net::TransportSpec& upstream_transport)
    : traits_(std::move(profile.traits)),
      logic_(std::move(profile.logic)),
      upstream_traffic_(std::move(upstream_segment)),
      upstream_(make_upstream_transport(upstream_framing, upstream_transport,
                                        upstream_traffic_, upstream)),
      cache_(traits_.cache),
      loop_token_(traits_.shield.loop.token.empty()
                      ? default_cdn_loop_token(traits_.name)
                      : traits_.shield.loop.token),
      breaker_(traits_.shield.breaker),
      fills_(traits_.shield.coalescing),
      overload_(traits_.overload) {
  if (traits_.node_id.empty()) traits_.node_id = loop_token_;
  if (traits_.detection.enabled) {
    detection_ = std::make_unique<NodeDetection>(traits_.detection, 0);
  }
}

std::optional<Response> CdnNode::check_cdn_loop(const Request& request) {
  const LoopDefensePolicy& loop = traits_.shield.loop;
  if (!loop.enabled) return std::nullopt;

  std::vector<CdnLoopEntry> entries;
  for (const std::string_view value : request.headers.get_all("CDN-Loop")) {
    auto parsed = parse_cdn_loop(value);
    if (!parsed) {
      // A value we cannot lex cannot be checked for recurrence; failing
      // closed is the only safe option for a loop defense.
      ++shield_stats_.loop_rejected;
      return error(http::kBadRequest, "malformed CDN-Loop header");
    }
    entries.insert(entries.end(), parsed->begin(), parsed->end());
  }
  if (cdn_loop_contains(entries, loop_token_)) {
    ++shield_stats_.loop_rejected;
    return error(http::kLoopDetected,
                 "loop detected: " + loop_token_ + " already forwarded this");
  }
  if (loop.max_hops != 0 && entries.size() >= loop.max_hops) {
    ++shield_stats_.hop_cap_rejected;
    return error(http::kLoopDetected,
                 "CDN-Loop hop cap exceeded (" +
                     std::to_string(entries.size()) + " >= " +
                     std::to_string(loop.max_hops) + ")");
  }
  return std::nullopt;
}

Response CdnNode::handle(const Request& request) {
  obs::SpanScope span(tracer_, "cdn.handle");
  if (span) {
    span.note("vendor", traits_.name);
    span.note("node", traits_.node_id);
  }
  if (m_requests_) m_requests_->inc();
  if (!detection_) {
    Response response = handle_request(request, span);
    sync_cache_stats(span);
    span.set_status(response.status);
    return response;
  }
  // Inline detection: measure the back-to-origin bytes this exchange causes
  // (the recorder delta around handle_request) and feed the per-client
  // detector afterwards.
  const net::TrafficTotals origin_before = upstream_traffic_.totals();
  Response response = handle_request(request, span);
  net::TrafficTotals origin_delta = upstream_traffic_.totals();
  origin_delta.request_bytes -= origin_before.request_bytes;
  origin_delta.response_bytes -= origin_before.response_bytes;
  std::optional<RangeSet> range;
  if (const auto value = request.headers.get("Range")) {
    range = http::parse_range_header(*value);
  }
  feed_detection(request, range, response, origin_delta, span);
  sync_cache_stats(span);
  span.set_status(response.status);
  return response;
}

void CdnNode::sync_cache_stats(obs::SpanScope& span) {
  if (!metrics_ && !span) return;
  const Cache::Stats st = cache_.stats();
  // cache_.clear() resets the engine's monotonic counters; restart the
  // deltas instead of underflowing (the Prometheus counters stay monotonic).
  if (st.evictions < cache_evictions_seen_) cache_evictions_seen_ = 0;
  if (st.admission_rejects < cache_rejects_seen_) cache_rejects_seen_ = 0;
  const std::uint64_t ev_delta = st.evictions - cache_evictions_seen_;
  const std::uint64_t rej_delta = st.admission_rejects - cache_rejects_seen_;
  cache_evictions_seen_ = st.evictions;
  cache_rejects_seen_ = st.admission_rejects;
  if (span && ev_delta != 0) {
    span.note("cache_evictions", std::to_string(ev_delta));
  }
  if (span && rej_delta != 0) {
    span.note("cache_admission_rejects", std::to_string(rej_delta));
  }
  if (!metrics_) return;
  if (ev_delta != 0) m_cache_evictions_->inc(ev_delta);
  if (rej_delta != 0) m_cache_rejects_->inc(rej_delta);
  // The gauge is shared across this vendor's nodes, so report the *change*
  // in this node's resident bytes: the gauge then reads the deployment-wide
  // total (and per-shard registries merge additively, see metrics.h).
  const double bytes_delta =
      static_cast<double>(st.bytes) - cache_bytes_reported_;
  if (bytes_delta != 0) m_cache_bytes_->add(bytes_delta);
  cache_bytes_reported_ = static_cast<double>(st.bytes);
}

Response CdnNode::handle_request(const Request& request, obs::SpanScope& span) {
  if (const auto violation = check_request_limits(traits_.limits, request)) {
    span.note("verdict", "header-limits");
    return error(http::kRequestHeaderFieldsTooLarge, *violation);
  }
  if (auto rejected = check_cdn_loop(request)) {
    span.note("verdict", "loop-rejected");
    if (m_loop_rejected_) m_loop_rejected_->inc();
    return std::move(*rejected);
  }
  if (auto rejected = check_deadline_ingress(request, span)) {
    span.note("verdict", "deadline-expired");
    return std::move(*rejected);
  }

  std::optional<RangeSet> range;
  if (const auto value = request.headers.get("Range")) {
    range = http::parse_range_header(*value);  // malformed -> ignored
  }
  if (range && traits_.ingress_max_range_count != 0 &&
      range->count() > traits_.ingress_max_range_count) {
    return error(http::kBadRequest,
                 "Range header carries too many ranges (guard: " +
                     std::to_string(traits_.ingress_max_range_count) + ")");
  }

  // Quarantine sits below the protocol rejections (431/508/400) and the
  // deadline ingress check (which must run unconditionally to reset
  // per-exchange state), and above everything that costs work: cache
  // lookups, coalescing, overload admission, the vendor miss path.
  if (detection_ && traits_.detection.quarantine_enabled) {
    if (auto rejected = check_quarantine(request, range, span)) {
      return std::move(*rejected);
    }
  }

  if (traits_.cache_enabled) {
    const auto key = resolve_cache_key(request);
    if (const CachedEntity* hit = cache_.find(key)) {
      const double now = clock_ ? clock_() : 0.0;
      if (hit->fresh_at(now)) {
        span.note("cache", "hit");
        if (m_cache_hits_) m_cache_hits_->inc();
        return respond_entity(*hit, range);
      }
      // Stale under overload pressure: skip the conditional GET entirely --
      // the stale copy absorbs the request at zero upstream cost
      // (stale-while-revalidate collapsed onto the overload manager).
      if (traits_.overload.watermarks.enabled &&
          overload_.admit(sim_now()) != OverloadVerdict::kAdmit) {
        ++overload_stats_.degraded;
        ++overload_stats_.stale_under_pressure;
        span.note("overload", "serve-stale");
        if (m_overload_degraded_) m_overload_degraded_->inc();
        Response resp = respond_entity(*hit, range);
        resp.headers.add("Warning", "110 - \"Response is Stale\"");
        return resp;
      }
      // Stale: revalidate with a conditional GET instead of a refetch.
      // (Key differs from the terminal "cache" verdict: a failed revalidation
      // falls through to the miss path, and note keys must stay unique.)
      span.note("revalidate", "stale");
      http::Request conditional = request;
      conditional.headers.set("If-None-Match", hit->etag);
      FetchResult check = fetch_result(conditional, std::nullopt);
      if (check.shed == ShedCause::kDeadline || check.deadline_expired) {
        // Deadline outranks serve-stale: past the client-facing deadline
        // even the stale copy is useless work (see degrade()).
        span.note("degrade", "deadline-504");
        return degrade(request, range, check);
      }
      if (!check.ok() &&
          traits_.resilience.degradation == DegradationPolicy::kServeStale) {
        // Stale-if-error: the revalidation failed, the stale copy absorbs it.
        span.note("degrade", "serve-stale");
        Response resp = respond_entity(*hit, range);
        resp.headers.add("Warning", "111 - \"Revalidation Failed\"");
        return resp;
      }
      if (check.ok()) {
        if (check.response.status == 304) {
          // Build the reply before touching: a purge-on-touch (stale entry
          // whose new horizon is not in the future) frees the slot `hit`
          // points into.
          Response resp = respond_entity(*hit, range);
          cache_.touch(key, now + traits_.cache_ttl_seconds, now);
          return resp;
        }
        if (auto entity = entity_from_response(check.response)) {
          store(request, *entity);
          return respond_entity(*entity, range);
        }
      }
      // Revalidation failed outright: fall through to the vendor's miss path.
    }
    if (const CachedEntity* negative = cache_.find(key + "#neg")) {
      const double now = clock_ ? clock_() : 0.0;
      if (negative->fresh_at(now)) {
        span.note("cache", "negative-hit");
        return error(http::kBadGateway, "negative-cached upstream failure");
      }
    }
  }

  // Request coalescing: a miss whose (key, Range) pair matches a fill still
  // inside its lock window replays the leader's response instead of running
  // the vendor miss path -- N concurrent cache-busting misses collapse into
  // one origin fetch (proxy_cache_lock / Varnish request collapsing).
  span.note("cache", "miss");
  if (m_cache_misses_) m_cache_misses_->inc();
  if (traits_.shield.coalescing.enabled) {
    const double now = sim_now();
    std::string fill_key = resolve_cache_key(request);
    fill_key.push_back('\x1f');
    fill_key.append(request.headers.get_or("Range", ""));
    // A held fill outranks overload shedding: replaying the leader's
    // response costs the origin nothing, so shedding it would only hurt
    // availability (same argument as serve-stale vs the open breaker).
    if (const Response* held = fills_.find(fill_key, now)) {
      ++shield_stats_.coalesced_hits;
      span.note("fill_lock", "coalesced-hit");
      if (m_coalesced_hits_) m_coalesced_hits_->inc();
      return *held;
    }
    if (auto refused = check_overload(request, range, span)) {
      return std::move(*refused);
    }
    ++shield_stats_.fill_fetches;
    span.note("fill_lock", "leader");
    Response filled = logic_->on_miss(*this, request, range);
    fills_.record(std::move(fill_key), filled, now);
    return filled;
  }
  if (auto refused = check_overload(request, range, span)) {
    return std::move(*refused);
  }
  return logic_->on_miss(*this, request, range);
}

std::optional<Response> CdnNode::check_quarantine(
    const Request& request, const std::optional<RangeSet>& range,
    obs::SpanScope& span) {
  const double now = sim_now();
  const std::string client_key{request.headers.get_or(kClientKeyHeader, "")};
  const std::string base_key = detection_base_key(request);
  const core::RangeClass shape = core::classify_range(range);
  const NodeDetection::Match verdict =
      detection_->match(client_key, base_key, shape, now);
  if (verdict == NodeDetection::Match::kNone) return std::nullopt;
  if (verdict == NodeDetection::Match::kClient) {
    // The attack is demonstrably still live; without this refresh the
    // signature would expire under the quarantine (quarantined requests
    // never reach the detectors) and the cluster would oscillate between
    // quarantining and re-detecting the same client.
    detection_->refresh_client(client_key, now);
  }
  span.note("verdict", verdict == NodeDetection::Match::kClient
                           ? "quarantine-client"
                           : "quarantine-pattern");
  if (m_quarantined_) m_quarantined_->inc();
  Response resp =
      error(http::kTooManyRequests,
            verdict == NodeDetection::Match::kClient
                ? "request quarantined: client matches an active RangeAmp "
                  "attack signature"
                : "request quarantined: target/shape matches an active "
                  "RangeAmp attack signature");
  char value[32];
  std::snprintf(value, sizeof(value), "%.0f",
                traits_.detection.quarantine_retry_after_seconds);
  resp.headers.add("Retry-After", value);
  return resp;
}

void CdnNode::feed_detection(const Request& request,
                             const std::optional<RangeSet>& range,
                             const Response& response,
                             const net::TrafficTotals& origin_delta,
                             obs::SpanScope& span) {
  // A quarantine 429 is the detector's own output, not evidence: the
  // stream behind it carries no origin traffic and would read as clean,
  // decaying the very alarm that blocks it.
  if (response.status == http::kTooManyRequests) return;
  net::TrafficTotals client_delta;
  client_delta.request_bytes = http::serialized_size(request);
  client_delta.response_bytes = http::serialized_size(response);
  const std::uint64_t resource = resource_bytes_from_response(response);
  const double now = sim_now();
  const core::DetectorSample sample = core::make_detector_sample(
      core::selected_bytes_of(range, resource), resource, client_delta,
      origin_delta, std::string{request.headers.get_or(kClientKeyHeader, "")},
      detection_base_key(request), core::classify_range(range));
  const std::uint64_t alarms_before = detection_->stats().alarms;
  const AttackSignature* fresh = detection_->observe(sample, now);
  if (detection_->stats().alarms != alarms_before) {
    span.note("detect", "alarm");
    if (m_detect_alarms_) m_detect_alarms_->inc();
  }
  if (fresh != nullptr && gossip_ != nullptr) {
    gossip_->note_fresh_signature(*fresh, now);
  }
}

std::optional<Response> CdnNode::check_deadline_ingress(const Request& request,
                                                        obs::SpanScope& span) {
  // Per-exchange state reset happens here, knobs on or off -- a node is
  // reused across requests and stale budgets must never leak.
  deadline_remaining_.reset();
  incoming_attempt_count_ = 1;

  const RetryBudgetPolicy& rb = traits_.overload.retry_budget;
  if (const auto value = request.headers.get(kAttemptCountHeader)) {
    if (const auto count = parse_attempt_count(*value)) {
      incoming_attempt_count_ = *count;
      if (rb.enabled && rb.count_chain_attempts && *count > 1) {
        // An upstream hop is retrying through us: charge its retry against
        // our budget so a chain cannot multiply attempts geometrically.
        overload_.note_chain_attempt(sim_now());
        ++overload_stats_.chain_attempts;
        span.note("chain_attempt", std::to_string(*count));
      }
    }
  }

  const DeadlinePolicy& dp = traits_.overload.deadline;
  if (!dp.enabled) return std::nullopt;
  double budget = dp.default_budget_seconds;
  if (const auto value = request.headers.get(kDeadlineBudgetHeader)) {
    if (const auto parsed = parse_deadline_budget(*value)) budget = *parsed;
    // An unparseable value falls back to the default: the header is
    // internal, and failing open here only loses an optimization.
  }
  deadline_remaining_ = budget;
  if (budget < dp.per_hop_min_seconds) {
    ++overload_stats_.deadline_rejected_ingress;
    if (m_deadline_expired_) m_deadline_expired_->inc();
    span.note("deadline", "expired-at-ingress");
    return deadline_response("at ingress");
  }
  return std::nullopt;
}

std::optional<Response> CdnNode::check_overload(
    const Request& request, const std::optional<RangeSet>& range,
    obs::SpanScope& span) {
  const WatermarkPolicy& wp = traits_.overload.watermarks;
  if (!wp.enabled) return std::nullopt;
  const double now = sim_now();
  const OverloadVerdict verdict = overload_.admit(now);
  if (verdict == OverloadVerdict::kAdmit) {
    ++overload_stats_.admitted;
    overload_.note_queued(now);
    return std::nullopt;
  }
  span.note("overload", std::string{overload_verdict_name(verdict)});
  span.note("pressure",
            std::string{pressure_dim_name(overload_.last_pressure_dim())});
  if (verdict == OverloadVerdict::kDegrade) {
    ++overload_stats_.degraded;
    if (m_overload_degraded_) m_overload_degraded_->inc();
    if (const CachedEntity* stale = stale_entity(request)) {
      ++overload_stats_.stale_under_pressure;
      Response resp = respond_entity(*stale, range);
      resp.headers.add("Warning", "110 - \"Response is Stale\"");
      return resp;
    }
    return shed_response(ShedCause::kOverloadLow);
  }
  ++overload_stats_.shed_high_watermark;
  if (m_overload_shed_) m_overload_shed_->inc();
  return shed_response(ShedCause::kOverloadHigh);
}

void CdnNode::set_upstream_fault_injector(net::FaultInjector* injector) {
  upstream_->set_fault_injector(injector);
}

void CdnNode::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  upstream_->set_tracer(tracer);
}

void CdnNode::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (!metrics) {
    m_requests_ = m_cache_hits_ = m_cache_misses_ = m_coalesced_hits_ =
        m_fetch_attempts_ = m_loop_rejected_ = m_shed_ = m_budget_overflows_ =
            m_overload_shed_ = m_overload_degraded_ = m_deadline_expired_ =
                m_retry_budget_denied_ = m_cache_evictions_ = m_cache_rejects_ =
                    m_detect_alarms_ = m_quarantined_ = nullptr;
    m_cache_bytes_ = nullptr;
    return;
  }
  const std::string label = "{vendor=\"" + traits_.name + "\"}";
  m_requests_ = &metrics->counter("cdn_requests_total" + label,
                                  "requests this vendor's nodes handled");
  m_cache_hits_ = &metrics->counter("cdn_cache_hits_total" + label,
                                    "fresh full-entity cache hits");
  m_cache_misses_ = &metrics->counter("cdn_cache_misses_total" + label,
                                      "requests that reached the miss path");
  m_coalesced_hits_ =
      &metrics->counter("cdn_coalesced_hits_total" + label,
                        "misses answered from a fill-lock leader's response");
  m_fetch_attempts_ =
      &metrics->counter("cdn_origin_fetch_attempts_total" + label,
                        "upstream wire transfers, retries included");
  m_loop_rejected_ =
      &metrics->counter("cdn_loop_rejected_total" + label,
                        "requests rejected by the CDN-Loop defense (508/400)");
  m_shed_ = &metrics->counter(
      "cdn_shed_total" + label,
      "fetches shed before any wire transfer (breaker open / admission)");
  m_budget_overflows_ = &metrics->counter(
      "cdn_validator_budget_overflows_total" + label,
      "body-buffer / multipart-assembly budget trips (ingest and egress)");
  m_overload_shed_ = &metrics->counter(
      "cdn_overload_shed_total" + label,
      "misses hard-rejected 503 at a high watermark");
  m_overload_degraded_ = &metrics->counter(
      "cdn_overload_degraded_total" + label,
      "misses degraded between watermarks (stale served or 503)");
  m_deadline_expired_ = &metrics->counter(
      "cdn_deadline_expired_total" + label,
      "exchanges refused or cancelled by the propagated deadline (504)");
  m_retry_budget_denied_ = &metrics->counter(
      "cdn_retry_budget_denied_total" + label,
      "upstream retries refused by the cross-hop retry budget");
  m_cache_evictions_ = &metrics->counter(
      "cdn_cache_evictions_total" + label,
      "cache entries evicted under the byte budget (markers' stranded "
      "variants included)");
  m_cache_rejects_ = &metrics->counter(
      "cdn_cache_admission_rejects_total" + label,
      "cache inserts shed because eviction could not make room");
  m_detect_alarms_ = &metrics->counter(
      "cdn_detection_alarms_total" + label,
      "per-client detector alarm transitions at ingress");
  m_quarantined_ = &metrics->counter(
      "cdn_detection_quarantined_total" + label,
      "requests answered 429 on an active attack-signature match");
  m_cache_bytes_ = &metrics->gauge(
      "cdn_cache_bytes" + label,
      "charged bytes resident in this vendor's caches (key + entity + "
      "per-entry overhead)");
  // Fresh registry handles: re-baseline the deltas so a registry attached
  // mid-life starts from the cache's current state.
  cache_evictions_seen_ = cache_.evictions();
  cache_rejects_seen_ = cache_.admission_rejects();
  cache_bytes_reported_ = 0;
  const double bytes_now = static_cast<double>(cache_.bytes());
  if (bytes_now != 0) m_cache_bytes_->add(bytes_now);
  cache_bytes_reported_ = bytes_now;
}

Request CdnNode::build_upstream_request(const Request& client_request,
                                        const std::optional<RangeSet>& range,
                                        http::Method method_override) const {
  Request upstream_request;
  upstream_request.method = method_override;
  upstream_request.target = client_request.target;
  for (const auto& f : client_request.headers.fields()) {
    if (http::iequals(f.name, "Range") || is_hop_by_hop(f.name)) continue;
    // The deadline/attempt headers are hop-by-hop too: each hop re-stamps
    // its own values per attempt (fetch_result), never relays the client's.
    if (http::iequals(f.name, kDeadlineBudgetHeader) ||
        http::iequals(f.name, kAttemptCountHeader)) {
      continue;
    }
    upstream_request.headers.add(f.name, f.value);
  }
  for (const auto& f : traits_.forward_headers) {
    upstream_request.headers.add(f.name, f.value);
  }
  if (traits_.shield.loop.enabled) {
    // RFC 8586: every forwarding CDN appends its cdn-id.  Incoming CDN-Loop
    // fields were copied through above, so the chain accumulates hop by hop.
    // Some vendors (Cloudflare, StackPath) already emit their cdn-id among
    // the canonical forward_headers; skip the append rather than name this
    // hop twice.
    bool already_listed = false;
    for (const std::string_view value :
         upstream_request.headers.get_all("CDN-Loop")) {
      const auto parsed = parse_cdn_loop(value);
      if (parsed && cdn_loop_contains(*parsed, loop_token_)) {
        already_listed = true;
        break;
      }
    }
    if (!already_listed) upstream_request.headers.add("CDN-Loop", loop_token_);
  }
  if (traits_.emit_via) {
    upstream_request.headers.add("Via", "1.1 " + traits_.node_id);
  }
  if (range) upstream_request.headers.add("Range", range->to_string());
  return upstream_request;
}

net::TransferOutcome CdnNode::upstream_transfer(
    const Request& upstream_request, const net::TransferOptions& options) {
  return upstream_->transfer_outcome(upstream_request, options);
}

Response CdnNode::shed_response(ShedCause cause) {
  const bool overload_cause = cause == ShedCause::kOverloadHigh ||
                              cause == ShedCause::kOverloadLow;
  Response resp = error(http::kServiceUnavailable,
                        std::string{overload_cause
                                        ? "request shed by overload control: "
                                        : "request shed by origin shield: "} +
                            std::string{shed_cause_name(cause)});
  char value[32];
  std::snprintf(value, sizeof(value), "%.0f",
                overload_cause
                    ? traits_.overload.watermarks.retry_after_seconds
                    : traits_.shield.breaker.retry_after_seconds);
  resp.headers.add("Retry-After", value);
  ++shield_stats_.shed_responses;
  return resp;
}

Response CdnNode::deadline_response(std::string_view where) {
  return error(http::kGatewayTimeout,
               std::string{"exchange deadline expired "} + std::string{where});
}

Response CdnNode::fetch(const Request& client_request,
                        const std::optional<RangeSet>& range,
                        const net::TransferOptions& options,
                        http::Method method_override) {
  FetchResult result = fetch_result(client_request, range, options, method_override);
  if (result.shed == ShedCause::kDeadline) {
    return deadline_response("before upstream leg");
  }
  if (result.shed != ShedCause::kNone) return shed_response(result.shed);
  if (result.error) {
    // Present the failure as an upstream gateway error so callers that only
    // understand responses still behave: the status is never cacheable and
    // relays as this vendor's 502/504.
    const int status =
        result.error->kind == net::TransferErrorKind::kTimeout
            ? http::kGatewayTimeout
            : http::kBadGateway;
    Response failed;
    failed.status = status;
    failed.headers.add("Content-Length", "0");
    failed.headers.add("X-Transfer-Error",
                       std::string{net::transfer_error_name(result.error->kind)});
    return failed;
  }
  return std::move(result.response);
}

namespace {

std::string_view breaker_state_name(UpstreamBreaker::State state) noexcept {
  switch (state) {
    case UpstreamBreaker::State::kClosed: return "closed";
    case UpstreamBreaker::State::kOpen: return "open";
    case UpstreamBreaker::State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

}  // namespace

FetchResult CdnNode::fetch_result(const Request& client_request,
                                  const std::optional<RangeSet>& range,
                                  const net::TransferOptions& options,
                                  http::Method method_override) {
  fetch_taint_no_store_ = false;
  const ResiliencePolicy& rp = traits_.resilience;
  const DeadlinePolicy& dlp = traits_.overload.deadline;
  const RetryBudgetPolicy& rbp = traits_.overload.retry_budget;
  Request upstream_request =
      build_upstream_request(client_request, range, method_override);

  obs::SpanScope span(tracer_, "cdn.fetch");
  if (span) {
    // The upstream Range is the vendor's rewrite of the client's (Laziness
    // keeps it, Deletion drops it, Expansion widens it).
    span.note("upstream_range", range ? range->to_string() : "(none)");
    if (traits_.shield.breaker.enabled) {
      span.note("breaker", breaker_state_name(breaker_.state()));
    }
  }

  net::TransferOptions attempt_options = options;
  if (!attempt_options.timeout_seconds && rp.attempt_timeout_seconds > 0) {
    attempt_options.timeout_seconds = rp.attempt_timeout_seconds;
  }

  // Stale-if-error short-circuit: when a stale copy can absorb the failure,
  // do not hammer the origin with the full retry budget.
  int budget = rp.max_retries;
  if (rp.degradation == DegradationPolicy::kServeStale &&
      rp.serve_stale_skips_retries && stale_entity(client_request) != nullptr) {
    budget = 0;
  }

  // Deadline gate ahead of everything else, the breaker included: a leg
  // whose remaining budget is below the per-hop minimum is cancelled before
  // any side effect -- no wire byte moves and no breaker state is touched.
  const bool deadline_active = dlp.enabled && deadline_remaining_.has_value();
  if (deadline_active && *deadline_remaining_ < dlp.per_hop_min_seconds) {
    FetchResult cancelled;
    cancelled.shed = ShedCause::kDeadline;
    cancelled.deadline_expired = true;
    cancelled.attempts = 0;
    fetch_taint_no_store_ = true;
    ++overload_stats_.deadline_cancelled_legs;
    if (m_deadline_expired_) m_deadline_expired_->inc();
    span.note("deadline", "cancelled-before-wire");
    return cancelled;
  }

  // Circuit breaker + admission control gate the whole fetch: an open
  // circuit or exhausted connection budget sheds the request before any
  // counted wire transfer -- the origin never sees it.
  const double now = sim_now();
  if (const ShedCause cause = breaker_.admit(now); cause != ShedCause::kNone) {
    FetchResult shed;
    shed.shed = cause;
    shed.attempts = 0;
    if (cause == ShedCause::kBreakerOpen) {
      ++shield_stats_.shed_breaker_open;
    } else {
      ++shield_stats_.shed_admission;
    }
    span.note("shed", shed_cause_name(cause));
    if (m_shed_) m_shed_->inc();
    return shed;
  }
  if (traits_.shield.breaker.enabled &&
      breaker_.state() == UpstreamBreaker::State::kHalfOpen) {
    ++shield_stats_.half_open_probes;
  }
  const std::uint64_t trips_before = breaker_.trips();

  FetchResult result;
  double backoff = rp.backoff_initial_seconds;
  for (int attempt = 0;; ++attempt) {
    net::TransferOptions this_attempt = attempt_options;
    bool deadline_binds = false;
    if (deadline_active) {
      // The remaining budget caps this attempt's timeout: a leg the deadline
      // would outlive is cut at the budget, costing only the request bytes
      // that already crossed (the response never does).
      if (!this_attempt.timeout_seconds ||
          *deadline_remaining_ < *this_attempt.timeout_seconds) {
        this_attempt.timeout_seconds = *deadline_remaining_;
        deadline_binds = true;
      }
      if (dlp.propagate) {
        upstream_request.headers.set(
            std::string{kDeadlineBudgetHeader},
            format_deadline_budget(*deadline_remaining_));
      }
    }
    if (rbp.enabled && rbp.count_chain_attempts) {
      // x-envoy-attempt-count semantics: the chain-wide attempt number of
      // this leg, so the next hop can charge retried requests against its
      // own budget.
      upstream_request.headers.set(
          std::string{kAttemptCountHeader},
          std::to_string(incoming_attempt_count_ + attempt));
    }
    if (attempt == 0 && rbp.enabled) {
      overload_.note_first_attempt(now);
      ++overload_stats_.attempts.first_attempts;
    }

    net::TransferOutcome outcome =
        upstream_transfer(upstream_request, this_attempt);
    result.attempts = attempt + 1;
    result.elapsed_seconds += outcome.latency_seconds;
    result.error = outcome.error;
    result.upstream_5xx = outcome.ok() && rp.retry_on_5xx &&
                          outcome.response.status >= 500 &&
                          outcome.response.status <= 599;
    // The transfer occupies a breaker connection slot for its injected
    // latency and feeds the overload manager's pressure windows.
    breaker_.occupy_connection(now + outcome.latency_seconds);
    overload_.note_inflight(now, now + outcome.latency_seconds);
    if (!outcome.error.has_value()) {
      overload_.note_body_bytes(now, outcome.response.body.size());
    }
    if (deadline_active) *deadline_remaining_ -= outcome.latency_seconds;
    const bool timed_out =
        outcome.error.has_value() &&
        outcome.error->kind == net::TransferErrorKind::kTimeout;
    result.response = std::move(outcome.response);

    if (deadline_binds && timed_out) {
      // The deadline, not the vendor's attempt timeout, cut this leg: mark
      // the exchange expired, never store, and stop -- a retry would only
      // burn more of a budget that is already gone.
      result.deadline_expired = true;
      fetch_taint_no_store_ = true;
      ++overload_stats_.deadline_cancelled_legs;
      if (m_deadline_expired_) m_deadline_expired_->inc();
      span.note("deadline", "cancelled-leg");
      break;
    }

    const bool retryable = result.error.has_value() || result.upstream_5xx;
    if (!retryable || attempt >= budget) break;
    if (deadline_active &&
        *deadline_remaining_ - backoff < dlp.per_hop_min_seconds) {
      // Backing off would eat the rest of the budget; give up now.
      result.deadline_expired = true;
      fetch_taint_no_store_ = true;
      ++overload_stats_.deadline_cancelled_legs;
      if (m_deadline_expired_) m_deadline_expired_->inc();
      span.note("deadline", "no-budget-for-retry");
      break;
    }
    if (!overload_.try_start_retry(sim_now())) {
      // Retry budget spent: the failure stands, and the cross-hop storm the
      // per-request policy would have started never leaves this node.
      ++overload_stats_.retries_denied;
      if (m_retry_budget_denied_) m_retry_budget_denied_->inc();
      span.note("retry_budget", "denied");
      break;
    }
    if (rbp.enabled) ++overload_stats_.attempts.retries;
    result.elapsed_seconds += backoff;
    if (deadline_active) *deadline_remaining_ -= backoff;
    backoff *= rp.backoff_multiplier;
  }
  // Feed the breaker ONE verdict for the whole fetch.  Counting every
  // attempt would let a single request's retries trip the breaker on their
  // own (retries x trip-threshold coupling) and would re-open a half-open
  // circuit several times per probe; the breaker tracks upstream health per
  // exchange, and the resilience layer's retries are internal to one
  // exchange.  (Any 5xx counts, retryable or not -- health, not retryability.)
  if (result.attempts > 0) {
    const bool upstream_failure = result.error.has_value() ||
                                  (result.response.status >= 500 &&
                                   result.response.status <= 599);
    if (upstream_failure) {
      breaker_.on_failure(now);
    } else {
      breaker_.on_success();
    }
  }
  shield_stats_.breaker_trips += breaker_.trips() - trips_before;
  if (span) {
    span.note("attempts", std::to_string(result.attempts));
    if (result.error) {
      span.note("transfer_error",
                net::transfer_error_name(result.error->kind));
    }
    span.set_status(result.response.status);
  }
  if (m_fetch_attempts_) {
    m_fetch_attempts_->inc(static_cast<std::uint64_t>(result.attempts));
  }
  if (traits_.conformance.mode != ConformanceMode::kOff &&
      result.shed == ShedCause::kNone && !result.error.has_value()) {
    apply_conformance(result, range, span);
  }
  return result;
}

void CdnNode::count_violation(http::ValidationCheck check,
                              std::string_view action) {
  if (!metrics_) return;
  metrics_
      ->counter("cdn_validator_violations_total{vendor=\"" + traits_.name +
                    "\",check=\"" +
                    std::string{http::validation_check_name(check)} +
                    "\",action=\"" + std::string{action} + "\"}",
                "upstream response validation failures by check and verdict")
      .inc();
}

void CdnNode::apply_conformance(FetchResult& result,
                                const std::optional<RangeSet>& range,
                                obs::SpanScope& span) {
  const ConformancePolicy& cp = traits_.conformance;
  ++validation_stats_.upstream_responses_validated;

  const http::ResponseValidator validator(
      {cp.max_body_bytes, cp.max_multipart_assembly_bytes});
  const http::ValidationReport report = validator.validate(result.response, range);
  if (report.ok()) {
    span.note("validator", "ok");
    return;
  }
  validation_stats_.violations += report.violations.size();
  const bool over_budget = report.has(http::ValidationCheck::kBodyBudget) ||
                           report.has(http::ValidationCheck::kMultipartBudget);
  if (over_budget) {
    ++validation_stats_.budget_overflows;
    if (m_budget_overflows_) m_budget_overflows_->inc();
  }

  // Verdict.  Strict rejects any violation; lenient rejects fatal shapes,
  // truncates an over-long identity body down to its declared length, and
  // passes the remaining soft lies through uncached.
  std::string_view action;
  if (cp.mode == ConformanceMode::kStrict || report.any_fatal()) {
    action = "reject-502";
    Response rejected =
        error(http::kBadGateway,
              "upstream response failed validation: " + report.summary());
    rejected.headers.add("X-Validator-Checks", report.summary());
    result.response = std::move(rejected);
    fetch_taint_no_store_ = true;
    ++validation_stats_.rejected_502;
  } else if (report.has(http::ValidationCheck::kContentLengthMismatch) &&
             report.declared_content_length &&
             result.response.body.size() > *report.declared_content_length) {
    // Truncate-and-drop: keep the declared prefix, drop the smuggled tail.
    action = "truncate-drop";
    result.response.body = result.response.body.slice(
        0, *report.declared_content_length);
    fetch_taint_no_store_ = true;
    ++validation_stats_.passed_uncached;
  } else {
    action = "pass-uncached";
    fetch_taint_no_store_ = true;
    ++validation_stats_.passed_uncached;
  }
  for (const auto& v : report.violations) count_violation(v.check, action);
  if (span) {
    span.note("validator", std::string{action});
    span.note("validator_checks", report.summary());
  }
}

std::optional<Response> CdnNode::check_assembly_budget(
    std::uint64_t body_bytes) {
  const ConformancePolicy& cp = traits_.conformance;
  if (cp.mode == ConformanceMode::kOff ||
      cp.max_multipart_assembly_bytes == 0 ||
      body_bytes <= cp.max_multipart_assembly_bytes) {
    return std::nullopt;
  }
  ++validation_stats_.assembly_overflows;
  if (m_budget_overflows_) m_budget_overflows_->inc();
  count_violation(http::ValidationCheck::kMultipartBudget, "reject-502");
  return error(http::kBadGateway,
               "multipart assembly of " + std::to_string(body_bytes) +
                   " bytes exceeds budget of " +
                   std::to_string(cp.max_multipart_assembly_bytes));
}

const CachedEntity* CdnNode::stale_entity(const Request& request) const {
  if (!traits_.cache_enabled) return nullptr;
  return cache_.find(resolve_cache_key(request));
}

Response CdnNode::degrade(const Request& request,
                          const std::optional<RangeSet>& range,
                          const FetchResult& result) {
  const ResiliencePolicy& rp = traits_.resilience;
  if (result.shed == ShedCause::kDeadline || result.deadline_expired) {
    // Deadline outranks every degradation, serve-stale included: past the
    // client-facing deadline the downstream has abandoned the exchange, so
    // even a free stale answer is useless work.  504, never cached.
    return deadline_response("after " + std::to_string(result.attempts) +
                             " attempt(s)");
  }
  if (result.shed != ShedCause::kNone) {
    // Serve-stale outranks the open circuit: the stale copy costs the origin
    // nothing, so shedding it would only hurt availability.  Everything else
    // is answered 503 + Retry-After (see docs/defense-model.md).
    if (rp.degradation == DegradationPolicy::kServeStale) {
      if (const CachedEntity* stale = stale_entity(request)) {
        Response resp = respond_entity(*stale, range);
        resp.headers.add("Warning", "111 - \"Revalidation Failed\"");
        return resp;
      }
    }
    return shed_response(result.shed);
  }
  if (rp.degradation == DegradationPolicy::kServeStale) {
    if (const CachedEntity* stale = stale_entity(request)) {
      Response resp = respond_entity(*stale, range);
      // RFC 5861 stale-if-error marker (obs-deprecated Warning code kept for
      // observability; only fault paths ever carry it).
      resp.headers.add("Warning", "111 - \"Revalidation Failed\"");
      return resp;
    }
  }
  if (rp.degradation == DegradationPolicy::kNegativeCache &&
      traits_.cache_enabled) {
    CachedEntity negative;
    negative.content_type = "#negative";
    negative.expires_at =
        (clock_ ? clock_() : 0.0) + rp.negative_cache_ttl_seconds;
    cache_.put(resolve_cache_key(request) + "#neg", std::move(negative));
  }
  if (result.error) {
    const bool timeout =
        result.error->kind == net::TransferErrorKind::kTimeout;
    return error(timeout ? http::kGatewayTimeout : http::kBadGateway,
                 std::string{"upstream failure: "} +
                     std::string{net::transfer_error_name(result.error->kind)} +
                     " after " + std::to_string(result.attempts) + " attempt(s)");
  }
  // A concrete upstream 5xx survived the retries: relay it faithfully.
  return relay(result.response);
}

std::optional<CachedEntity> CdnNode::entity_from_response(const Response& upstream) {
  if (upstream.status != http::kOk) return std::nullopt;
  CachedEntity entity;
  if (http::is_chunked(upstream)) {
    // A chunked 200 must be de-framed before ranges can be served from it.
    // A stream cut mid-chunk fails to decode, so truncated chunked entities
    // can never poison the cache.
    auto decoded = http::decode_chunked(upstream.body.materialize());
    if (!decoded) return std::nullopt;
    entity.entity = std::move(*decoded);
  } else {
    // Refuse partial fills: a body shorter than the declared Content-Length
    // is a truncated transfer (upstream died mid-entity), and caching it
    // would serve a poisoned representation forever.
    if (const auto declared = upstream.headers.get("Content-Length")) {
      std::uint64_t length = 0;
      const auto [ptr, ec] = std::from_chars(
          declared->data(), declared->data() + declared->size(), length);
      if (ec != std::errc{} || ptr != declared->data() + declared->size() ||
          length != upstream.body.size()) {
        return std::nullopt;
      }
    }
    entity.entity = upstream.body;
  }
  entity.content_type =
      std::string{upstream.headers.get_or("Content-Type", "application/octet-stream")};
  entity.etag = std::string{upstream.headers.get_or("ETag", "")};
  entity.last_modified = std::string{upstream.headers.get_or("Last-Modified", "")};
  entity.vary = std::string{upstream.headers.get_or("Vary", "")};
  return entity;
}

namespace {

// Joins the request's values of the headers a Vary list names.
std::string variant_of(const Request& request, std::string_view vary) {
  std::string out;
  std::size_t pos = 0;
  while (pos <= vary.size()) {
    auto comma = vary.find(',', pos);
    if (comma == std::string_view::npos) comma = vary.size();
    std::string_view name = vary.substr(pos, comma - pos);
    while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
    while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
    if (!name.empty()) {
      out.append(request.headers.get_or(name, ""));
      out.push_back('\x1f');
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

std::string CdnNode::resolve_cache_key(const Request& request) const {
  const std::string base = cache_key(request);
  // A marker entry records that this URL's responses vary; the entity then
  // lives under a per-variant key (RFC 7234 section 4.1's secondary key).
  if (const CachedEntity* marker = cache_.find(base + "#vary")) {
    return base + "#variant=" + variant_of(request, marker->vary);
  }
  return base;
}

std::string CdnNode::cache_key(const Request& request) const {
  return Cache::key(request.headers.get_or("Host", ""),
                    traits_.cache_ignore_query ? request.path()
                                               : std::string_view{request.target});
}

void CdnNode::store(const Request& request, const CachedEntity& entity) {
  if (!traits_.cache_enabled) return;
  if (fetch_taint_no_store_) {
    // Cache-poison guard: the response this entity came from failed
    // validation, so it may be relayed downstream but never stored.
    ++validation_stats_.store_suppressed;
    if (metrics_) {
      metrics_
          ->counter("cdn_validator_store_suppressed_total{vendor=\"" +
                        traits_.name + "\"}",
                    "cache writes blocked by the never-cache taint")
          .inc();
    }
    return;
  }
  CachedEntity stored = entity;
  if (traits_.cache_ttl_seconds > 0 && clock_) {
    stored.expires_at = clock_() + traits_.cache_ttl_seconds;
  }
  const std::string base = cache_key(request);
  if (!stored.vary.empty()) {
    CachedEntity marker;
    marker.vary = stored.vary;
    const std::string variant_key =
        base + "#variant=" + variant_of(request, stored.vary);
    cache_.put(base + "#vary", std::move(marker));
    cache_.put(variant_key, std::move(stored));
    return;
  }
  cache_.put(base, std::move(stored));
}

Headers CdnNode::entity_content_headers(const CachedEntity& entity) const {
  Headers h;
  if (!entity.last_modified.empty()) h.add("Last-Modified", entity.last_modified);
  if (!entity.etag.empty()) h.add("ETag", entity.etag);
  return h;
}

Response CdnNode::respond_416(std::uint64_t total_size) {
  Headers content;
  content.add("Content-Range", http::content_range_unsatisfied(total_size));
  content.add("Content-Length", "0");
  return style(http::kRangeNotSatisfiable, content, Body{});
}

Response CdnNode::respond_entity(const CachedEntity& entity,
                                 const std::optional<RangeSet>& range) {
  EntityWindow window;
  window.body = entity.entity;
  window.offset = 0;
  window.total_size = entity.size();
  window.content_type = entity.content_type;
  window.etag = entity.etag;
  window.last_modified = entity.last_modified;

  if (!range) {
    Headers content = entity_content_headers(entity);
    content.add("Content-Length", std::to_string(entity.size()));
    content.add("Content-Type", entity.content_type);
    return style(http::kOk, content, entity.entity);
  }
  return respond_window(window, *range);
}

Response CdnNode::respond_window(const EntityWindow& window, const RangeSet& range) {
  const std::uint64_t total = window.total_size;
  const std::uint64_t win_first = window.offset;
  const std::uint64_t win_size = window.body.size();
  const bool full_cover = win_first == 0 && win_size == total;

  auto resolved = http::resolve_all(range, total);
  if (resolved.empty()) return respond_416(total);

  // Keep only ranges the window can serve.
  std::vector<ResolvedRange> servable;
  for (const auto& r : resolved) {
    if (r.first >= win_first && r.last < win_first + win_size) servable.push_back(r);
  }
  if (servable.empty()) {
    return error(http::kBadGateway, "no requested range within fetched window");
  }

  CachedEntity meta;
  meta.content_type = window.content_type;
  meta.etag = window.etag;
  meta.last_modified = window.last_modified;

  const auto slice = [&](const ResolvedRange& r) {
    return window.body.slice(r.first - win_first, r.length());
  };
  const auto single = [&](const ResolvedRange& r) {
    Headers content = entity_content_headers(meta);
    content.add("Content-Length", std::to_string(r.length()));
    content.add("Content-Range", http::content_range(r, total));
    content.add("Content-Type", window.content_type);
    return style(http::kPartialContent, content, slice(r));
  };
  const auto multipart = [&](const std::vector<ResolvedRange>& ranges) {
    Body body;
    for (const auto& r : ranges) {
      std::string part_head = "--" + traits_.multipart_boundary + "\r\n";
      for (const auto& f : traits_.multipart_part_extra_headers) {
        part_head += f.name + ": " + f.value + "\r\n";
      }
      part_head += "Content-Type: " + window.content_type + "\r\n" +
                   "Content-Range: " + http::content_range(r, total) + "\r\n\r\n";
      body.append_literal(part_head);
      body.append_body(slice(r));
      body.append_literal("\r\n");
    }
    body.append_literal("--" + traits_.multipart_boundary + "--\r\n");
    if (auto over = check_assembly_budget(body.size())) return std::move(*over);
    Headers content = entity_content_headers(meta);
    content.add("Content-Length", std::to_string(body.size()));
    content.add("Content-Type",
                http::multipart_content_type(traits_.multipart_boundary));
    return style(http::kPartialContent, content, std::move(body));
  };
  const auto full_200 = [&]() -> Response {
    if (!full_cover) {
      return error(http::kBadGateway, "policy requires full entity not held");
    }
    Headers content = entity_content_headers(meta);
    content.add("Content-Length", std::to_string(total));
    content.add("Content-Type", window.content_type);
    return style(http::kOk, content, window.body);
  };

  if (servable.size() == 1) return single(servable.front());

  switch (traits_.multi_reply) {
    case MultiRangeReplyPolicy::kHonorOverlapping:
      if (traits_.multi_reply_max_ranges != 0 &&
          servable.size() > traits_.multi_reply_max_ranges) {
        return full_200();
      }
      return multipart(servable);
    case MultiRangeReplyPolicy::kCoalesce: {
      const auto merged = http::coalesce(servable);
      if (merged.size() == 1) return single(merged.front());
      return multipart(merged);
    }
    case MultiRangeReplyPolicy::kRejectOverlapping416:
      if (http::any_overlap(servable)) return respond_416(total);
      return multipart(servable);
    case MultiRangeReplyPolicy::kFirstRangeOnly:
      return single(servable.front());
    case MultiRangeReplyPolicy::kIgnoreRange:
      return full_200();
    case MultiRangeReplyPolicy::kReject416:
      return respond_416(total);
  }
  return error(http::kBadGateway, "unreachable reply policy");
}

Response CdnNode::respond_assembled(
    std::uint64_t total_size, const std::string& content_type,
    const std::string& etag, const std::string& last_modified,
    std::vector<std::pair<http::ResolvedRange, Body>> parts) {
  if (parts.empty()) return respond_416(total_size);

  Headers validators;
  if (!last_modified.empty()) validators.add("Last-Modified", last_modified);
  if (!etag.empty()) validators.add("ETag", etag);

  if (parts.size() == 1) {
    auto& [r, payload] = parts.front();
    Headers content = validators;
    content.add("Content-Length", std::to_string(r.length()));
    content.add("Content-Range", http::content_range(r, total_size));
    content.add("Content-Type", content_type);
    return style(http::kPartialContent, content, std::move(payload));
  }
  Body body;
  for (auto& [r, payload] : parts) {
    std::string part_head = "--" + traits_.multipart_boundary + "\r\n";
    for (const auto& f : traits_.multipart_part_extra_headers) {
      part_head += f.name + ": " + f.value + "\r\n";
    }
    part_head += "Content-Type: " + content_type + "\r\n" +
                 "Content-Range: " + http::content_range(r, total_size) +
                 "\r\n\r\n";
    body.append_literal(part_head);
    body.append_body(payload);
    body.append_literal("\r\n");
  }
  body.append_literal("--" + traits_.multipart_boundary + "--\r\n");
  if (auto over = check_assembly_budget(body.size())) return std::move(*over);
  Headers content = validators;
  content.add("Content-Length", std::to_string(body.size()));
  content.add("Content-Type",
              http::multipart_content_type(traits_.multipart_boundary));
  return style(http::kPartialContent, content, std::move(body));
}

Response CdnNode::relay(const Response& upstream) {
  Headers content;
  for (const std::string_view name :
       {"Last-Modified", "ETag", "Content-Length", "Content-Range",
        "Content-Type", "Transfer-Encoding"}) {
    if (const auto v = upstream.headers.get(name)) {
      content.add(std::string{name}, std::string{*v});
    }
  }
  return style(upstream.status, content, upstream.body);
}

Response CdnNode::error(int status, std::string_view note) {
  Headers content;
  Body body = Body::literal(std::string{note});
  content.add("Content-Length", std::to_string(body.size()));
  content.add("Content-Type", "text/plain");
  return style(status, content, std::move(body));
}

Response CdnNode::style(int status, const Headers& content_headers,
                        Body body) const {
  Response response =
      styled_response(traits_, status, content_headers, std::move(body));
  // Real CDN trace ids (CF-Ray, X-Amz-Cf-Id, ...) differ per response.  Vary
  // the pad header's prefix -- same length, so HTTP/1.1 byte counts (and the
  // Table IV calibration) are untouched, but HPACK cannot fully index
  // repeated responses the way it never could in production.
  if (traits_.response_pad_bytes >= 16) {
    char serial[17];
    std::snprintf(serial, sizeof(serial), "%016llx",
                  static_cast<unsigned long long>(++response_serial_));
    std::string value(traits_.response_pad_bytes, 'x');
    value.replace(0, 16, serial, 16);
    response.headers.set(std::string{kPadHeaderName}, std::move(value));
  }
  return response;
}

std::size_t calibrate_response_pad(const VendorTraits& traits) {
  if (traits.client_response_target_bytes == 0) return 0;
  // Canonical exploited-case response: single-range 206, bytes 0-0 of a
  // 25 MB resource, Apache-flavored validators (mirrors what the origin
  // model emits).
  VendorTraits probe = traits;
  probe.response_pad_bytes = 0;
  Headers content;
  content.add("Last-Modified", "Mon, 06 Jul 2020 11:22:33 GMT");
  content.add("ETag", "\"3a7f52-1900000\"");
  content.add("Content-Length", "1");
  content.add("Content-Range", "bytes 0-0/26214400");
  content.add("Content-Type", "application/octet-stream");
  const Response canonical =
      styled_response(probe, http::kPartialContent, content, Body::literal("x"));
  const std::uint64_t base = http::serialized_size(canonical);
  if (traits.client_response_target_bytes <= base) return 0;
  const std::uint64_t diff = traits.client_response_target_bytes - base;
  // The pad header costs "X-Edge-Trace: " + value + CRLF = value + 16 bytes.
  const std::uint64_t overhead = kPadHeaderName.size() + 4;
  if (diff <= overhead) return 0;
  return static_cast<std::size_t>(diff - overhead);
}

}  // namespace rangeamp::cdn
