// CdnNode: one CDN edge/surrogate node.
//
// A node sits between a downstream peer (the client, or a front CDN) and an
// upstream handler (the origin, or a back CDN).  Its request handling is:
//
//   1. enforce ingress request-header limits (431 on violation);
//   2. parse the Range header (a malformed header is ignored per RFC 7233);
//   3. answer from cache when the full entity is cached;
//   4. otherwise delegate to the vendor's VendorLogic, which decides how to
//      talk to the upstream -- this is where the Laziness / Deletion /
//      Expansion policies of section III-B and all the per-vendor quirks of
//      Tables I-III live.
//
// Every upstream exchange goes through a Wire, so the cdn-origin (or
// fcdn-bcdn) traffic of the experiments is recorded with exact serialized
// byte counts.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "cdn/cache.h"
#include "cdn/gossip.h"
#include "cdn/overload.h"
#include "cdn/shield.h"
#include "cdn/types.h"
#include "http/range.h"
#include "http/validate.h"
#include "http2/wire.h"
#include "net/transport_factory.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rangeamp::cdn {

class CdnNode;

/// Vendor-specific cache-miss behaviour.  Implementations use the node's
/// fetch/respond helpers; they never touch wires or caches directly.
class VendorLogic {
 public:
  virtual ~VendorLogic() = default;

  /// Handles a cache miss.  `range` is the parsed client Range header
  /// (nullopt when absent or malformed).  Returns the client-facing response.
  virtual http::Response on_miss(CdnNode& node, const http::Request& request,
                                 const std::optional<http::RangeSet>& range) = 0;
};

/// A vendor profile: identity/calibration data plus miss behaviour.
struct VendorProfile {
  VendorTraits traits;
  std::unique_ptr<VendorLogic> logic;
};

/// A partial view of a resource: `body` covers bytes
/// [offset, offset + body.size()) of a representation of `total_size` bytes.
/// Produced by Expansion fetches (CloudFront's MiB-block window, Azure's
/// second-8MiB window).
struct EntityWindow {
  http::Body body;
  std::uint64_t offset = 0;
  std::uint64_t total_size = 0;
  std::string content_type;
  std::string etag;
  std::string last_modified;
};

/// Wire protocol of a connection segment (the enum lives with the transport
/// contract; the historical cdn:: spelling is kept for call sites).
using SegmentFraming = net::SegmentFraming;

/// Outcome of a resilient upstream fetch (retries applied).
struct FetchResult {
  /// The final attempt's response.  Valid whenever `error` is absent; on a
  /// transport failure it holds the partial message (truncated entity) or a
  /// default-constructed response.
  http::Response response;
  /// The final attempt's transport error, when it had one.
  std::optional<net::TransferError> error;
  /// True when the final response is a retryable upstream 5xx and the
  /// budget is spent (the degradation path treats it as a failure too).
  bool upstream_5xx = false;
  /// Attempts performed (1 = no retry was needed).
  int attempts = 1;
  /// Latency observed across attempts, including backoff gaps.
  double elapsed_seconds = 0;
  /// When the shielding layer refused the fetch before any wire transfer
  /// (circuit open / admission limits / expired deadline), why.  `response`
  /// is then empty.
  ShedCause shed = ShedCause::kNone;
  /// The exchange's deadline budget ran out on this fetch: either before the
  /// first attempt (shed == kDeadline, no wire transfer) or mid-transfer
  /// (the remaining budget bounded the attempt timeout and it fired).  The
  /// degradation path answers 504 and never consults the stale copy -- past
  /// the client-facing deadline even a stale answer is useless work.
  bool deadline_expired = false;

  /// A usable response arrived (not shed, not a transport error, not a
  /// retryable 5xx).
  bool ok() const noexcept {
    return shed == ShedCause::kNone && !error.has_value() && !upstream_5xx;
  }
};

class CdnNode final : public net::HttpHandler {
 public:
  /// `upstream` must outlive the node.  Upstream traffic is recorded in the
  /// node-owned recorder named `upstream_segment`, framed per
  /// `upstream_framing` (most CDNs pull from origins over HTTP/1.1; some
  /// support h2 back-to-origin).  `upstream_transport` picks the HTTP/1.1
  /// backend (in-memory by default; loopback sockets for wall-clock runs);
  /// it is ignored for kHttp2 framing, which is in-memory only.
  CdnNode(VendorProfile profile, net::HttpHandler& upstream,
          std::string upstream_segment = "cdn-origin",
          SegmentFraming upstream_framing = SegmentFraming::kHttp11,
          const net::TransportSpec& upstream_transport = {});

  http::Response handle(const http::Request& request) override;

  const VendorTraits& traits() const noexcept { return traits_; }
  Cache& cache() noexcept { return cache_; }
  const Cache& cache() const noexcept { return cache_; }

  /// Installs a (simulation) time source.  Without one, cached entries never
  /// expire regardless of traits().cache_ttl_seconds.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// Traffic on this node's upstream segment.
  net::TrafficRecorder& upstream_traffic() noexcept { return upstream_traffic_; }

  /// Counters of the origin-shielding layer (all zero while the shield
  /// knobs are off).
  const ShieldStats& shield_stats() const noexcept { return shield_stats_; }

  /// Counters of the Byzantine-origin validation layer (all zero while
  /// traits().conformance.mode is kOff).
  const ValidationStats& validation_stats() const noexcept {
    return validation_stats_;
  }

  /// The upstream circuit breaker (state machine is inert unless
  /// traits().shield.breaker.enabled).
  const UpstreamBreaker& breaker() const noexcept { return breaker_; }

  /// Counters of the overload-control layer (all zero while the overload
  /// knobs are off).
  const OverloadStats& overload_stats() const noexcept {
    return overload_stats_;
  }

  /// The overload manager (inert unless traits().overload knobs are on).
  const OverloadManager& overload() const noexcept { return overload_; }

  /// The inline detection layer (null unless traits().detection.enabled).
  NodeDetection* detection() noexcept { return detection_.get(); }
  const NodeDetection* detection() const noexcept { return detection_.get(); }

  /// Joins this node to its cluster's gossip fabric (non-owning; nullptr
  /// detaches).  Locally minted signatures are then reported so the
  /// detection-latency histogram sees first-alarm events too.
  void set_gossip_fabric(GossipFabric* fabric) { gossip_ = fabric; }

  /// This node's CDN-Loop cdn-id (the configured token, or the default
  /// derived from the vendor name).
  const std::string& loop_token() const noexcept { return loop_token_; }

  /// Attaches a fault schedule to the upstream segment (non-owning; nullptr
  /// detaches).  The injector must outlive the node.
  void set_upstream_fault_injector(net::FaultInjector* injector);

  /// Attaches a tracer (non-owning; nullptr detaches) to this node *and* its
  /// upstream wire: handle() then opens a "cdn.handle" span (cache verdict,
  /// fill-lock role, loop rejections) and every upstream fetch a "cdn.fetch"
  /// span (breaker state, shed cause, attempts, upstream Range).
  void set_tracer(obs::Tracer* tracer);
  obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Attaches a metrics registry (non-owning; nullptr detaches).  The node
  /// then maintains the cdn_* counters (see docs/observability.md), labelled
  /// with this vendor's name.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  // ------------------------------------------------------------------
  // Helpers for VendorLogic implementations.
  // ------------------------------------------------------------------

  /// Issues an upstream exchange under this vendor's resilience policy
  /// (retries, backoff, per-attempt timeout).  The upstream request is the
  /// client request with hop-by-hop headers stripped, this vendor's forward
  /// headers added, and the Range header replaced by `range` (absent when
  /// nullopt).  On failure, the returned response is a synthesized gateway
  /// error (502/504), so legacy callers stay well-formed; logics that want
  /// degradation semantics use fetch_result() + degrade() instead.
  http::Response fetch(const http::Request& client_request,
                       const std::optional<http::RangeSet>& range,
                       const net::TransferOptions& options = {},
                       http::Method method_override = http::Method::GET);

  /// Failure-aware upstream exchange: runs up to 1 + resilience.max_retries
  /// attempts (each a counted Wire transfer), honoring the per-attempt
  /// timeout budget and -- when serve-stale short-circuiting applies and a
  /// stale copy exists -- collapsing the budget to a single attempt.
  FetchResult fetch_result(const http::Request& client_request,
                           const std::optional<http::RangeSet>& range,
                           const net::TransferOptions& options = {},
                           http::Method method_override = http::Method::GET);

  /// Applies this vendor's degradation policy to a failed fetch: serve the
  /// stale cached copy, negative-cache the miss, or synthesize 502/504 (a
  /// real upstream 5xx is relayed).  `range` shapes the stale reply.
  http::Response degrade(const http::Request& request,
                         const std::optional<http::RangeSet>& range,
                         const FetchResult& result);

  /// The stale cached entity this request would be served under
  /// serve-stale degradation, or nullptr.
  const CachedEntity* stale_entity(const http::Request& request) const;

  /// Extracts a cacheable full entity from a 200 upstream response.
  static std::optional<CachedEntity> entity_from_response(
      const http::Response& upstream);

  /// Caches `entity` under this request's key (no-op when the profile has
  /// caching disabled).
  void store(const http::Request& request, const CachedEntity& entity);

  /// Builds the client-facing response from a held full entity, honoring
  /// `range` according to the vendor's multi-range reply policy.
  http::Response respond_entity(const CachedEntity& entity,
                                const std::optional<http::RangeSet>& range);

  /// Builds the client-facing response from a partial window.  Ranges that
  /// fall outside the window are dropped; if nothing is satisfiable the node
  /// answers 502.
  http::Response respond_window(const EntityWindow& window,
                                const http::RangeSet& range);

  /// Builds a client-facing 206 from pre-assembled parts (the caller has
  /// already applied its reply policy): one part -> plain 206 with
  /// Content-Range, several -> multipart/byteranges with this vendor's
  /// boundary.  Used by logics that gather payload non-contiguously
  /// (SliceLogic's gap-free fetching).
  http::Response respond_assembled(
      std::uint64_t total_size, const std::string& content_type,
      const std::string& etag, const std::string& last_modified,
      std::vector<std::pair<http::ResolvedRange, http::Body>> parts);

  /// Relays an upstream response (Laziness passthrough), restyled with this
  /// vendor's identity headers.
  http::Response relay(const http::Response& upstream);

  /// A vendor-styled error response.
  http::Response error(int status, std::string_view note);

 private:
  http::Response handle_request(const http::Request& request,
                                obs::SpanScope& span);
  /// Publishes the cache engine's eviction/reject/bytes deltas to the
  /// attached registry (and notes evictions on the handle span).  Runs once
  /// per handled request; tolerant of cache_.clear() counter resets.
  void sync_cache_stats(obs::SpanScope& span);
  std::string cache_key(const http::Request& request) const;
  std::string resolve_cache_key(const http::Request& request) const;
  http::Request build_upstream_request(const http::Request& client_request,
                                       const std::optional<http::RangeSet>& range,
                                       http::Method method_override) const;
  net::TransferOutcome upstream_transfer(const http::Request& upstream_request,
                                         const net::TransferOptions& options);
  http::Response style(int status, const http::Headers& content_headers,
                       http::Body body) const;
  http::Response respond_416(std::uint64_t total_size);
  http::Headers entity_content_headers(const CachedEntity& entity) const;
  double sim_now() const { return clock_ ? clock_() : 0.0; }
  /// RFC 8586 ingress check: 508 on self-recurrence or hop-cap excess,
  /// 400 on a malformed CDN-Loop; nullopt admits the request.
  std::optional<http::Response> check_cdn_loop(const http::Request& request);
  /// Deadline ingress check: stamps this exchange's remaining budget from
  /// the incoming header (or the policy default) and answers 504 when it is
  /// already below the per-hop minimum; nullopt admits the request.  Also
  /// charges upstream-hop retries (attempt-count header > 1) against the
  /// retry budget.  Resets the per-exchange state even when the knobs are
  /// off.
  std::optional<http::Response> check_deadline_ingress(
      const http::Request& request, obs::SpanScope& span);
  /// Quarantine check: a request matching an active attack signature is
  /// answered 429 + Retry-After.  A client-key match refreshes the
  /// signature's TTL (the attack is demonstrably still live); a pattern
  /// match never does (collateral must not keep a signature alive).
  /// nullopt admits the request.  See docs/detection-model.md for where
  /// this sits in the verdict precedence order.
  std::optional<http::Response> check_quarantine(
      const http::Request& request, const std::optional<http::RangeSet>& range,
      obs::SpanScope& span);
  /// Feeds one completed exchange to the per-client detector.  Quarantine
  /// 429s are excluded: a quarantined stream carries no origin traffic and
  /// would read as "clean", decaying the very alarm that blocks it.
  void feed_detection(const http::Request& request,
                      const std::optional<http::RangeSet>& range,
                      const http::Response& response,
                      const net::TrafficTotals& origin_delta,
                      obs::SpanScope& span);
  /// Watermark admission for one cache miss: nullopt admits, otherwise the
  /// degraded (stale / 503) or shed (503) response to serve.
  std::optional<http::Response> check_overload(
      const http::Request& request, const std::optional<http::RangeSet>& range,
      obs::SpanScope& span);
  /// The vendor-styled 503 + Retry-After a shed request is answered with.
  http::Response shed_response(ShedCause cause);
  /// The vendor-styled 504 an exchange past its deadline is answered with.
  http::Response deadline_response(std::string_view where);
  /// Validates the fetched upstream response under traits().conformance and
  /// enforces the verdict: 502-synthesize (fatal / strict), truncate-and-drop
  /// (lenient over-long identity body), or never-cache taint (lenient soft
  /// violations).  `range` is the Range set this hop sent upstream.
  void apply_conformance(FetchResult& result,
                         const std::optional<http::RangeSet>& range,
                         obs::SpanScope& span);
  /// Client-facing multipart assembly budget (respond_window /
  /// respond_assembled): nullopt admits the body, otherwise the 502 to serve.
  std::optional<http::Response> check_assembly_budget(std::uint64_t body_bytes);
  void count_violation(http::ValidationCheck check, std::string_view action);

  VendorTraits traits_;
  std::unique_ptr<VendorLogic> logic_;
  net::TrafficRecorder upstream_traffic_;
  std::unique_ptr<net::Transport> upstream_;
  Cache cache_;
  std::function<double()> clock_;
  std::string loop_token_;
  UpstreamBreaker breaker_;
  FillLockTable fills_;
  OverloadManager overload_;
  ShieldStats shield_stats_;
  ValidationStats validation_stats_;
  OverloadStats overload_stats_;
  /// Inline detection layer; null while traits().detection.enabled is off
  /// (a detection-unaware node does zero extra work).
  std::unique_ptr<NodeDetection> detection_;
  GossipFabric* gossip_ = nullptr;
  /// Set by apply_conformance when the current fetch's response may be
  /// relayed but must never enter the cache; reset at every fetch_result.
  /// Safe as a member: a node handles one request at a time, and every
  /// logic's store() follows its fetch synchronously.
  bool fetch_taint_no_store_ = false;
  /// Per-exchange deadline state, stamped at ingress by
  /// check_deadline_ingress and decremented by every attempt's latency and
  /// backoff in fetch_result.  Same single-request-at-a-time safety argument
  /// as fetch_taint_no_store_.  nullopt = deadline knob off.
  std::optional<double> deadline_remaining_;
  /// The exchange's attempt number at ingress (kAttemptCountHeader, 1 when
  /// absent); forwarded legs stamp `incoming + retry index`.
  int incoming_attempt_count_ = 1;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Cached metric handles (registry map entries are reference-stable); all
  // null while no registry is attached.
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
  obs::Counter* m_coalesced_hits_ = nullptr;
  obs::Counter* m_fetch_attempts_ = nullptr;
  obs::Counter* m_loop_rejected_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_budget_overflows_ = nullptr;
  obs::Counter* m_overload_shed_ = nullptr;
  obs::Counter* m_overload_degraded_ = nullptr;
  obs::Counter* m_deadline_expired_ = nullptr;
  obs::Counter* m_retry_budget_denied_ = nullptr;
  obs::Counter* m_cache_evictions_ = nullptr;
  obs::Counter* m_cache_rejects_ = nullptr;
  obs::Counter* m_detect_alarms_ = nullptr;
  obs::Counter* m_quarantined_ = nullptr;
  obs::Gauge* m_cache_bytes_ = nullptr;
  // Last cache-engine stats published to the registry (delta reporting, so
  // the shared per-vendor counters/gauge aggregate across nodes).
  std::uint64_t cache_evictions_seen_ = 0;
  std::uint64_t cache_rejects_seen_ = 0;
  double cache_bytes_reported_ = 0;
  mutable std::uint64_t response_serial_ = 0;  ///< varies the trace pad
};

/// Computes the response padding that makes this vendor's canonical
/// single-range 206 (1-byte body, 25 MB resource) serialize to
/// traits.client_response_target_bytes.  Called by profile factories;
/// exposed for calibration tests.
std::size_t calibrate_response_pad(const VendorTraits& traits);

/// Name of the padding header used by calibration.
inline constexpr std::string_view kPadHeaderName = "X-Edge-Trace";

}  // namespace rangeamp::cdn
