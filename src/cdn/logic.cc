#include "cdn/logic.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace rangeamp::cdn {

using http::ByteRangeSpec;
using http::RangeSet;
using http::Request;
using http::Response;

Response deletion_miss(CdnNode& node, const Request& request,
                       const std::optional<RangeSet>& range) {
  const FetchResult result = node.fetch_result(request, std::nullopt);
  if (!result.ok()) return node.degrade(request, range, result);
  // Partial fills (truncated entities) never reach the cache:
  // entity_from_response refuses bodies shorter than their Content-Length.
  if (auto entity = CdnNode::entity_from_response(result.response)) {
    node.store(request, *entity);
    return node.respond_entity(*entity, range);
  }
  return node.relay(result.response);
}

Response laziness_miss(CdnNode& node, const Request& request,
                       const std::optional<RangeSet>& range,
                       bool serve_range_on_200) {
  const FetchResult result = node.fetch_result(request, range);
  if (!result.ok()) return node.degrade(request, range, result);
  const Response& upstream = result.response;
  if (upstream.status == http::kOk) {
    if (auto entity = CdnNode::entity_from_response(upstream)) {
      node.store(request, *entity);
      if (range && serve_range_on_200) return node.respond_entity(*entity, range);
      return node.respond_entity(*entity, std::nullopt);
    }
  }
  return node.relay(upstream);
}

std::optional<EntityWindow> window_from_206(const Response& upstream) {
  if (upstream.status != http::kPartialContent) return std::nullopt;
  const auto cr_value = upstream.headers.get("Content-Range");
  if (!cr_value) return std::nullopt;
  const auto cr = http::parse_content_range(*cr_value);
  if (!cr) return std::nullopt;
  EntityWindow window;
  window.body = upstream.body;
  window.offset = cr->range.first;
  window.total_size = cr->resource_size;
  window.content_type =
      std::string{upstream.headers.get_or("Content-Type", "application/octet-stream")};
  window.etag = std::string{upstream.headers.get_or("ETag", "")};
  window.last_modified = std::string{upstream.headers.get_or("Last-Modified", "")};
  return window;
}

Response serve_upstream_result(CdnNode& node, const Request& request,
                               const Response& upstream,
                               const std::optional<RangeSet>& client_range) {
  if (upstream.status == http::kOk) {
    if (auto entity = CdnNode::entity_from_response(upstream)) {
      node.store(request, *entity);
      return node.respond_entity(*entity, client_range);
    }
  }
  if (client_range) {
    if (auto window = window_from_206(upstream)) {
      return node.respond_window(*window, *client_range);
    }
  }
  return node.relay(upstream);
}

Response BoundedExpansionLogic::on_miss(CdnNode& node, const Request& request,
                                        const std::optional<RangeSet>& range) {
  if (!range) return deletion_miss(node, request, range);

  // Derive a single forward spec covering the request, grown by the slack.
  // Suffix-only sets stay suffix (the entity size is unknown pre-fetch);
  // anything containing an open-ended spec is forwarded open-ended; closed
  // sets become [min_first, max_last + slack].
  bool any_open = false, any_closed = false, any_suffix = false;
  std::uint64_t min_first = UINT64_MAX, max_last = 0, max_suffix = 0;
  for (const auto& spec : range->specs) {
    if (spec.is_suffix()) {
      any_suffix = true;
      max_suffix = std::max(max_suffix, *spec.suffix);
    } else {
      min_first = std::min(min_first, *spec.first);
      if (spec.is_open()) {
        any_open = true;
      } else {
        any_closed = true;
        max_last = std::max(max_last, *spec.last);
      }
    }
  }

  RangeSet forward;
  if (any_suffix && !any_open && !any_closed) {
    forward.specs.push_back(ByteRangeSpec::suffix_of(max_suffix + slack_));
  } else if (any_suffix || any_open) {
    // Mixed or open: cover from the earliest first to the end.
    forward.specs.push_back(ByteRangeSpec::open(any_closed || any_open ? min_first : 0));
  } else {
    forward.specs.push_back(ByteRangeSpec::closed(min_first, max_last + slack_));
  }

  const FetchResult result = node.fetch_result(request, forward);
  if (!result.ok()) return node.degrade(request, range, result);
  return serve_upstream_result(node, request, result.response, range);
}

std::optional<SliceLogic::SliceResult> SliceLogic::fetch_slice(
    CdnNode& node, const Request& request, std::uint64_t index,
    const std::optional<RangeSet>& client_range,
    std::optional<CachedEntity>* full_entity,
    std::optional<Response>* degraded) {
  // Slices are cached under the path (query excluded): a legitimate slice
  // cache survives the attacker's query rotation, and repeated slices are
  // free.  (This is the nginx slice module's $uri-based key.)
  const std::string key =
      Cache::key(request.headers.get_or("Host", ""), request.path()) +
      "#slice=" + std::to_string(index);
  if (const CachedEntity* hit = node.cache().find(key)) {
    SliceResult out;
    out.body = hit->entity;
    out.content_type = hit->content_type;
    out.etag = hit->etag;
    out.last_modified = hit->last_modified;
    out.total_size = 0;  // the caller reads the total from the size marker
    return out;
  }

  RangeSet slice_range;
  slice_range.specs.push_back(http::ByteRangeSpec::closed(
      index * slice_, index * slice_ + slice_ - 1));
  const FetchResult result = node.fetch_result(request, slice_range);
  if (!result.ok()) {
    *degraded = node.degrade(request, client_range, result);
    return std::nullopt;
  }
  const Response& upstream = result.response;
  if (upstream.status == http::kOk) {
    if (auto entity = CdnNode::entity_from_response(upstream)) {
      node.store(request, *entity);
      *full_entity = std::move(entity);
      return std::nullopt;
    }
  }
  auto window = window_from_206(upstream);
  if (!window || window->offset != index * slice_) return std::nullopt;

  CachedEntity slice_entity;
  slice_entity.entity = window->body;
  slice_entity.content_type = window->content_type;
  slice_entity.etag = window->etag;
  slice_entity.last_modified = window->last_modified;
  node.cache().put(key, slice_entity);
  // Remember the representation size alongside the slice set.
  CachedEntity size_marker;
  size_marker.entity = http::Body{};
  size_marker.content_type = std::to_string(window->total_size);
  node.cache().put(Cache::key(request.headers.get_or("Host", ""),
                              request.path()) +
                       "#slice-total",
                   size_marker);

  SliceResult out;
  out.body = window->body;
  out.total_size = window->total_size;
  out.content_type = window->content_type;
  out.etag = window->etag;
  out.last_modified = window->last_modified;
  return out;
}

Response SliceLogic::on_miss(CdnNode& node, const Request& request,
                             const std::optional<RangeSet>& range) {
  std::optional<CachedEntity> full_entity;
  std::optional<Response> degraded;

  // Discover the representation size: from the cached marker, or by pulling
  // slice 0 (which a ranged request almost always needs anyway).
  std::uint64_t total = 0;
  const std::string total_key =
      Cache::key(request.headers.get_or("Host", ""), request.path()) +
      "#slice-total";
  if (const CachedEntity* marker = node.cache().find(total_key)) {
    total = std::strtoull(marker->content_type.c_str(), nullptr, 10);
  }
  if (total == 0) {
    auto probe = fetch_slice(node, request, 0, range, &full_entity, &degraded);
    if (full_entity) return node.respond_entity(*full_entity, range);
    if (degraded) return *degraded;
    if (!probe) return node.error(http::kBadGateway, "slice fetch failed");
    total = probe->total_size;
    if (total == 0) return node.error(http::kBadGateway, "slice size unknown");
  }

  // A range-less request assembles the entire entity slice by slice.
  if (!range) {
    CachedEntity assembled;
    for (std::uint64_t index = 0; index * slice_ < total; ++index) {
      auto slice = fetch_slice(node, request, index, range, &full_entity, &degraded);
      if (full_entity) return node.respond_entity(*full_entity, std::nullopt);
      if (degraded) return *degraded;
      if (!slice) return node.error(http::kBadGateway, "slice fetch failed");
      if (assembled.content_type.empty()) {
        assembled.content_type = slice->content_type;
        assembled.etag = slice->etag;
        assembled.last_modified = slice->last_modified;
      }
      assembled.entity.append_body(slice->body);
    }
    return node.respond_entity(assembled, std::nullopt);
  }

  // Resolve and coalesce: slice serving inherently merges overlapping
  // ranges (a mitigation bonus -- OBR's n identical parts collapse to one).
  auto resolved = http::resolve_all(*range, total);
  if (resolved.empty()) {
    EntityWindow empty;
    empty.total_size = total;
    return node.respond_window(empty, *range);  // -> 416
  }
  const auto merged = http::coalesce(resolved);

  // Fetch exactly the slices the merged ranges intersect -- never the gaps
  // between scattered ranges (a naive covering-span fetch would let a
  // "bytes=0-0,<far>-<far>" request pull the whole file).
  std::string content_type, etag, last_modified;
  std::vector<std::pair<http::ResolvedRange, http::Body>> parts;
  std::map<std::uint64_t, http::Body> fetched;  // per-request slice reuse
  for (const auto& r : merged) {
    http::Body payload;
    for (std::uint64_t index = r.first / slice_; index <= r.last / slice_;
         ++index) {
      auto it = fetched.find(index);
      if (it == fetched.end()) {
        auto slice = fetch_slice(node, request, index, range, &full_entity, &degraded);
        if (full_entity) return node.respond_entity(*full_entity, range);
        if (degraded) return *degraded;
        if (!slice) return node.error(http::kBadGateway, "slice fetch failed");
        if (content_type.empty()) {
          content_type = slice->content_type;
          etag = slice->etag;
          last_modified = slice->last_modified;
        }
        it = fetched.emplace(index, std::move(slice->body)).first;
      }
      const std::uint64_t slice_start = index * slice_;
      const std::uint64_t begin = std::max(r.first, slice_start);
      const std::uint64_t end =
          std::min<std::uint64_t>(r.last, slice_start + it->second.size() - 1);
      payload.append_body(it->second.slice(begin - slice_start, end - begin + 1));
    }
    parts.emplace_back(r, std::move(payload));
  }
  return node.respond_assembled(total, content_type, etag, last_modified,
                                std::move(parts));
}

}  // namespace rangeamp::cdn
