#include "cdn/rules.h"

#include <charconv>
#include <cstdlib>

#include "cdn/logic.h"

namespace rangeamp::cdn {

using http::RangeSet;
using http::Request;
using http::Response;

namespace {

RuleShape classify(const RangeSet& range) {
  if (range.count() > 1) return RuleShape::kMulti;
  const auto& spec = range.specs[0];
  if (spec.is_suffix()) return RuleShape::kSingleSuffix;
  if (spec.is_open()) return RuleShape::kSingleOpen;
  return RuleShape::kSingleClosed;
}

std::optional<std::uint64_t> first_position(const RangeSet& range) {
  const auto& spec = range.specs[0];
  if (spec.is_suffix()) return std::nullopt;
  return spec.first;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  if (s.empty()) return std::nullopt;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<double> parse_seconds(std::string_view s) {
  if (s.empty()) return std::nullopt;
  const std::string copy{s};
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || v < 0) return std::nullopt;
  return v;
}

}  // namespace

Response RuleBasedLogic::on_miss(CdnNode& node, const Request& request,
                                 const std::optional<RangeSet>& range) {
  if (!range) return deletion_miss(node, request, range);

  const RuleShape shape = classify(*range);
  const auto first = first_position(*range);

  // The resource size is learned lazily, with a HEAD probe, the first time a
  // size-conditioned rule actually becomes a candidate -- requests whose
  // shape never reaches such a rule must not cost an extra origin exchange.
  std::optional<std::uint64_t> size;
  bool size_probed = false;

  for (const PolicyRule& rule : rules_) {
    if (rule.shape != RuleShape::kAny && rule.shape != shape) continue;
    if (rule.first_below && (!first || *first >= *rule.first_below)) continue;
    if (rule.first_at_least && (!first || *first < *rule.first_at_least)) continue;
    if (rule.needs_size() && !size_probed) {
      FetchResult head =
          node.fetch_result(request, std::nullopt, {}, http::Method::HEAD);
      // Without the probe no size-conditioned rule can be decided safely;
      // the vendor's degradation policy answers instead.
      if (!head.ok()) return node.degrade(request, range, head);
      size = parse_u64(head.response.headers.get_or("Content-Length", ""));
      size_probed = true;
    }
    if (rule.size_below && (!size || *size >= *rule.size_below)) continue;
    if (rule.size_at_least && (!size || *size < *rule.size_at_least)) continue;

    switch (rule.action.kind) {
      case RuleAction::Kind::kLazy:
        return laziness_miss(node, request, range);
      case RuleAction::Kind::kDelete:
        return deletion_miss(node, request, range);
      case RuleAction::Kind::kExpand: {
        BoundedExpansionLogic expand(rule.action.parameter);
        return expand.on_miss(node, request, range);
      }
      case RuleAction::Kind::kSlice: {
        SliceLogic slice(rule.action.parameter);
        return slice.on_miss(node, request, range);
      }
    }
  }
  return laziness_miss(node, request, range);
}

std::optional<VendorProfile> parse_profile_spec(std::string_view text,
                                                std::string* error) {
  const auto fail = [&](std::size_t line_no, const std::string& what) {
    if (error) *error = "line " + std::to_string(line_no) + ": " + what;
    return std::nullopt;
  };

  VendorProfile profile;
  profile.traits.name = "custom";
  std::vector<PolicyRule> rules;

  std::size_t line_no = 0;
  std::size_t cursor = 0;
  while (cursor <= text.size()) {
    const auto eol = text.find('\n', cursor);
    std::string_view line = text.substr(
        cursor, eol == std::string_view::npos ? std::string_view::npos
                                              : eol - cursor);
    cursor = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return fail(line_no, "missing ':'");
    const std::string_view key = trim(line.substr(0, colon));
    const std::string_view value = trim(line.substr(colon + 1));

    if (key == "name") {
      profile.traits.name = std::string{value};
    } else if (key == "limit.total_header_bytes") {
      const auto v = parse_u64(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.limits.total_header_bytes = static_cast<std::size_t>(*v);
    } else if (key == "limit.single_header_line_bytes") {
      const auto v = parse_u64(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.limits.single_header_line_bytes =
          static_cast<std::size_t>(*v);
    } else if (key == "limit.cloudflare_range_budget") {
      const auto v = parse_u64(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.limits.cloudflare_range_budget =
          static_cast<std::size_t>(*v);
    } else if (key == "limit.max_range_count") {
      const auto v = parse_u64(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.ingress_max_range_count = static_cast<std::size_t>(*v);
    } else if (key == "reply") {
      if (value == "honor") {
        profile.traits.multi_reply = MultiRangeReplyPolicy::kHonorOverlapping;
      } else if (value == "coalesce") {
        profile.traits.multi_reply = MultiRangeReplyPolicy::kCoalesce;
      } else if (value == "first") {
        profile.traits.multi_reply = MultiRangeReplyPolicy::kFirstRangeOnly;
      } else if (value == "ignore") {
        profile.traits.multi_reply = MultiRangeReplyPolicy::kIgnoreRange;
      } else if (value == "reject") {
        profile.traits.multi_reply = MultiRangeReplyPolicy::kReject416;
      } else if (value == "reject-overlap") {
        profile.traits.multi_reply = MultiRangeReplyPolicy::kRejectOverlapping416;
      } else {
        return fail(line_no, "unknown reply policy '" + std::string{value} + "'");
      }
    } else if (key == "reply.max_ranges") {
      const auto v = parse_u64(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.multi_reply_max_ranges = static_cast<std::size_t>(*v);
    } else if (key == "cache") {
      if (value == "on") {
        profile.traits.cache_enabled = true;
      } else if (value == "off") {
        profile.traits.cache_enabled = false;
      } else {
        return fail(line_no, "cache must be on|off");
      }
    } else if (key == "resilience.retries") {
      const auto v = parse_u64(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.resilience.max_retries = static_cast<int>(*v);
    } else if (key == "resilience.timeout_seconds") {
      const auto v = parse_seconds(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.resilience.attempt_timeout_seconds = *v;
    } else if (key == "resilience.backoff_initial_seconds") {
      const auto v = parse_seconds(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.resilience.backoff_initial_seconds = *v;
    } else if (key == "resilience.degrade") {
      if (value == "error") {
        profile.traits.resilience.degradation = DegradationPolicy::kSynthesizeError;
      } else if (value == "serve-stale") {
        profile.traits.resilience.degradation = DegradationPolicy::kServeStale;
      } else if (value == "negative-cache") {
        profile.traits.resilience.degradation = DegradationPolicy::kNegativeCache;
      } else {
        return fail(line_no, "degrade must be error|serve-stale|negative-cache");
      }
    } else if (key == "response_target_bytes") {
      const auto v = parse_u64(value);
      if (!v) return fail(line_no, "bad number");
      profile.traits.client_response_target_bytes = static_cast<std::size_t>(*v);
    } else if (key == "rule") {
      // "<shape> [if <cond>[,<cond>...]] -> <action>[:<param>]"
      PolicyRule rule;
      const auto arrow = value.find("->");
      if (arrow == std::string_view::npos) return fail(line_no, "rule needs '->'");
      std::string_view lhs = trim(value.substr(0, arrow));
      const std::string_view rhs = trim(value.substr(arrow + 2));

      std::string_view shape_token = lhs;
      std::string_view conditions;
      if (const auto if_pos = lhs.find(" if "); if_pos != std::string_view::npos) {
        shape_token = trim(lhs.substr(0, if_pos));
        conditions = trim(lhs.substr(if_pos + 4));
      }
      if (shape_token == "single-closed") {
        rule.shape = RuleShape::kSingleClosed;
      } else if (shape_token == "single-open") {
        rule.shape = RuleShape::kSingleOpen;
      } else if (shape_token == "single-suffix") {
        rule.shape = RuleShape::kSingleSuffix;
      } else if (shape_token == "multi") {
        rule.shape = RuleShape::kMulti;
      } else if (shape_token == "default" || shape_token == "any") {
        rule.shape = RuleShape::kAny;
      } else {
        return fail(line_no, "unknown shape '" + std::string{shape_token} + "'");
      }

      std::size_t cpos = 0;
      while (cpos < conditions.size()) {
        auto comma = conditions.find(',', cpos);
        if (comma == std::string_view::npos) comma = conditions.size();
        const std::string_view cond = trim(conditions.substr(cpos, comma - cpos));
        cpos = comma + 1;
        if (cond.empty()) continue;
        const auto parse_cond = [&](std::string_view prefix)
            -> std::optional<std::uint64_t> {
          if (!cond.starts_with(prefix)) return std::nullopt;
          return parse_u64(trim(cond.substr(prefix.size())));
        };
        if (const auto v = parse_cond("first<")) {
          rule.first_below = v;
        } else if (const auto v2 = parse_cond("first>=")) {
          rule.first_at_least = v2;
        } else if (const auto v3 = parse_cond("size<")) {
          rule.size_below = v3;
        } else if (const auto v4 = parse_cond("size>=")) {
          rule.size_at_least = v4;
        } else {
          return fail(line_no, "unknown condition '" + std::string{cond} + "'");
        }
      }

      std::string_view action_token = rhs;
      std::uint64_t parameter = 0;
      if (const auto sep = rhs.find(':'); sep != std::string_view::npos) {
        action_token = trim(rhs.substr(0, sep));
        const auto v = parse_u64(trim(rhs.substr(sep + 1)));
        if (!v) return fail(line_no, "bad action parameter");
        parameter = *v;
      }
      if (action_token == "lazy") {
        rule.action = {RuleAction::Kind::kLazy, 0};
      } else if (action_token == "delete") {
        rule.action = {RuleAction::Kind::kDelete, 0};
      } else if (action_token == "expand") {
        rule.action = {RuleAction::Kind::kExpand,
                       parameter ? parameter : 8 * 1024};
      } else if (action_token == "slice") {
        rule.action = {RuleAction::Kind::kSlice,
                       parameter ? parameter : 1u << 20};
      } else {
        return fail(line_no, "unknown action '" + std::string{action_token} + "'");
      }
      rules.push_back(rule);
    } else {
      return fail(line_no, "unknown key '" + std::string{key} + "'");
    }
  }

  profile.traits.response_identity_headers = {
      {"Server", profile.traits.name}};
  if (profile.traits.client_response_target_bytes != 0) {
    profile.traits.response_pad_bytes = calibrate_response_pad(profile.traits);
  }
  profile.logic = std::make_unique<RuleBasedLogic>(std::move(rules));
  return profile;
}

}  // namespace rangeamp::cdn
