// Multi-node CDN edge cluster.
//
// The paper's practicability experiment (section V-D) sends requests "to
// completely different ingress nodes" to spread load, while the OBR threat
// model pins "the same ingress node of the FCDN" to concentrate damage on
// one box.  An EdgeCluster models that surface: N CdnNodes built from the
// same vendor profile, each with its own cache and its own upstream and
// ingress traffic recorders, fronted by a node-selection policy.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cdn/node.h"
#include "net/wire.h"

namespace rangeamp::cdn {

enum class NodeSelection {
  kRoundRobin,   ///< anycast-ish spreading (the paper's experiment 4 setup)
  kPinned,       ///< all requests to one node (the OBR targeting trick)
  kHashByHost,   ///< stable mapping by Host header (typical DNS-based LB)
};

class EdgeCluster final : public net::HttpHandler {
 public:
  /// Builds `node_count` nodes from `profile_factory` (profiles own their
  /// logic, so each node needs a fresh one).  `upstream` must outlive the
  /// cluster.  `transport` picks the backend of every segment the cluster
  /// owns (each node's ingress wire and its upstream wire); the default
  /// keeps everything on the deterministic in-memory pipe.
  EdgeCluster(std::function<VendorProfile()> profile_factory,
              std::size_t node_count, net::HttpHandler& upstream,
              NodeSelection selection = NodeSelection::kRoundRobin,
              const net::TransportSpec& transport = {});

  /// Routes one request through the selected ingress node, counting its
  /// ingress traffic.
  http::Response handle(const http::Request& request) override;

  void set_selection(NodeSelection selection) noexcept { selection_ = selection; }

  /// Pins all traffic to one node.  The index is clamped (modulo the node
  /// count), so a pin taken against a larger cluster stays in range after
  /// the cluster is rebuilt smaller -- a stale pin must never index out of
  /// the node vector.
  void pin(std::size_t node_index) noexcept {
    selection_ = NodeSelection::kPinned;
    pinned_ = nodes_.empty() ? 0 : node_index % nodes_.size();
  }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  CdnNode& node(std::size_t i) noexcept { return *nodes_[i]; }

  /// Per-node ingress (client-side) traffic.
  net::TrafficRecorder& ingress_traffic(std::size_t i) noexcept {
    return *ingress_recorders_[i];
  }

  /// Aggregates across nodes.
  std::uint64_t total_ingress_response_bytes() const noexcept;
  std::uint64_t total_upstream_response_bytes() const noexcept;

  /// Number of distinct nodes that served at least one request.
  std::size_t nodes_touched() const noexcept;

  /// Shielding counters summed across nodes (all zero when the profile's
  /// shield knobs are off).
  ShieldStats total_shield_stats() const noexcept;

  /// Installs one simulation clock on every node (campaign drivers use this
  /// so breaker open/half-open windows and fill locks see time advance).
  void set_clock(std::function<double()> clock);

  /// Installs one tracer on every node and every ingress wire, so a request
  /// routed through the cluster yields a full client-cdn -> cdn-origin span
  /// chain (non-owning; nullptr detaches).
  void set_tracer(obs::Tracer* tracer);

  /// Installs one metrics registry on every node (non-owning; nullptr
  /// detaches) and on the gossip fabric, when one exists.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// The cluster's gossip fabric, or nullptr while the profile's
  /// detection/gossip knobs are off.  Fabric rounds are driven by the
  /// cluster clock on every handled request; tests may also advance() it
  /// directly.
  GossipFabric* gossip() noexcept { return gossip_.get(); }
  const GossipFabric* gossip() const noexcept { return gossip_.get(); }

  /// Churn hook: node `i`'s detection layer restarts (detector windows and
  /// signature table lost; the caches and recorders survive -- it models a
  /// detection-process restart, not a cold box).  No-op without detection.
  void restart_node_detection(std::size_t i);

 private:
  std::size_t select(const http::Request& request) noexcept;

  std::vector<std::unique_ptr<CdnNode>> nodes_;
  std::vector<std::unique_ptr<net::TrafficRecorder>> ingress_recorders_;
  std::vector<std::unique_ptr<net::Transport>> ingress_wires_;
  std::unique_ptr<GossipFabric> gossip_;
  std::function<double()> clock_;
  NodeSelection selection_;
  std::size_t pinned_ = 0;
  std::size_t next_ = 0;
};

}  // namespace rangeamp::cdn
