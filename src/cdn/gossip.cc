#include "cdn/gossip.h"

#include <algorithm>
#include <utility>

#include "core/parallel.h"
#include "http/generator.h"
#include "http/message.h"
#include "http/range.h"

namespace rangeamp::cdn {

std::string detection_base_key(const http::Request& request) {
  std::string key(request.headers.get_or("Host", ""));
  key += '|';
  key += request.path();
  return key;
}

std::uint64_t resource_bytes_from_response(const http::Response& response) {
  if (response.status == http::kPartialContent) {
    if (auto value = response.headers.get("Content-Range")) {
      if (auto cr = http::parse_content_range(*value)) return cr->resource_size;
    }
    return 0;  // multipart 206: no top-level Content-Range
  }
  if (response.status == http::kOk) return response.body.size();
  return 0;
}

// ---------------------------------------------------------------------------
// SignatureTable
// ---------------------------------------------------------------------------

bool SignatureTable::upsert(const AttackSignature& sig, double now) {
  if (sig.expires_at <= now) return false;  // dead on arrival
  auto it = by_client_.find(sig.client_key);
  if (it != by_client_.end()) {
    ++duplicates_suppressed;
    AttackSignature& held = it->second;
    held.detected_at = std::min(held.detected_at, sig.detected_at);
    held.expires_at = std::max(held.expires_at, sig.expires_at);
    return false;
  }
  if (max_signatures_ != 0 && order_.size() >= max_signatures_) {
    expire(now);
    if (order_.size() >= max_signatures_) {
      ++rejected_full;
      return false;
    }
  }
  by_client_.emplace(sig.client_key, sig);
  order_.push_back(sig.client_key);
  return true;
}

std::size_t SignatureTable::expire(double now) {
  std::size_t dropped = 0;
  std::deque<std::string> survivors;
  for (auto& key : order_) {
    auto it = by_client_.find(key);
    if (it == by_client_.end()) continue;
    if (it->second.expires_at <= now) {
      by_client_.erase(it);
      ++dropped;
    } else {
      survivors.push_back(std::move(key));
    }
  }
  order_ = std::move(survivors);
  expired_total += dropped;
  return dropped;
}

const AttackSignature* SignatureTable::find_client(
    const std::string& client_key, double now) const {
  auto it = by_client_.find(client_key);
  if (it == by_client_.end() || it->second.expires_at <= now) return nullptr;
  return &it->second;
}

const AttackSignature* SignatureTable::find_pattern(const std::string& base_key,
                                                    core::RangeClass shape,
                                                    double now) const {
  // Scan in insertion order so the returned signature is deterministic.
  for (const auto& key : order_) {
    auto it = by_client_.find(key);
    if (it == by_client_.end()) continue;
    const AttackSignature& sig = it->second;
    if (sig.expires_at > now && sig.shape == shape && sig.base_key == base_key)
      return &sig;
  }
  return nullptr;
}

bool SignatureTable::refresh(const std::string& client_key,
                             double expires_at) {
  auto it = by_client_.find(client_key);
  if (it == by_client_.end()) return false;
  it->second.expires_at = std::max(it->second.expires_at, expires_at);
  return true;
}

std::vector<AttackSignature> SignatureTable::active(double now) const {
  std::vector<AttackSignature> out;
  out.reserve(order_.size());
  for (const auto& key : order_) {
    auto it = by_client_.find(key);
    if (it != by_client_.end() && it->second.expires_at > now)
      out.push_back(it->second);
  }
  return out;
}

void SignatureTable::clear() {
  // Entries are soft state and vanish on restart; the counters are
  // observer-side accounting and survive (delta-published metrics must
  // never run backwards).
  by_client_.clear();
  order_.clear();
}

// ---------------------------------------------------------------------------
// NodeDetection
// ---------------------------------------------------------------------------

namespace {
const std::string kAnonymousClient = "(anonymous)";
}  // namespace

NodeDetection::NodeDetection(const DetectionPolicy& policy,
                             std::size_t node_index)
    : policy_(policy),
      node_index_(node_index),
      table_(policy.max_signatures) {}

const AttackSignature* NodeDetection::observe(
    const core::DetectorSample& sample, double now) {
  ++stats_.samples;
  const std::string& key =
      sample.client_key.empty() ? kAnonymousClient : sample.client_key;
  auto [it, inserted] =
      detectors_.try_emplace(key, core::RangeAmpDetector(policy_.detector));
  if (inserted) {
    detector_order_.push_back(key);
    evict_excess_clients();
  }
  core::RangeAmpDetector& detector = it->second;
  const bool was_alarmed = detector.alarmed();
  detector.observe(sample);
  if (!detector.alarmed()) return nullptr;
  if (!was_alarmed) ++stats_.alarms;

  // Signature presence follows alarm state: mint on the transition, extend
  // while the detector stays hot, and *re-mint* when an earlier signature
  // TTL-expired during a quiet spell but the client came back still
  // attacking -- without this a rotating attacker is quarantined exactly
  // once per node, ever.
  if (table_.find_client(key, now) != nullptr) {
    table_.refresh(key, now + policy_.signature_ttl_seconds);
    return nullptr;
  }
  AttackSignature sig;
  sig.client_key = key;
  sig.base_key = sample.base_key;
  sig.shape = sample.shape;
  sig.detected_at = now;
  sig.expires_at = now + policy_.signature_ttl_seconds;
  sig.origin_node = node_index_;
  if (!table_.upsert(sig, now)) return nullptr;
  return table_.find_client(key, now);
}

NodeDetection::Match NodeDetection::match(const std::string& client_key,
                                          const std::string& base_key,
                                          core::RangeClass shape,
                                          double now) const {
  const std::string& key = client_key.empty() ? kAnonymousClient : client_key;
  if (table_.find_client(key, now) != nullptr) return Match::kClient;
  if (policy_.pattern_quarantine && shape == core::RangeClass::kTinyClosed &&
      table_.find_pattern(base_key, shape, now) != nullptr) {
    return Match::kPattern;
  }
  return Match::kNone;
}

void NodeDetection::refresh_client(const std::string& client_key, double now) {
  const std::string& key = client_key.empty() ? kAnonymousClient : client_key;
  table_.refresh(key, now + policy_.signature_ttl_seconds);
}

void NodeDetection::restart() {
  detectors_.clear();
  detector_order_.clear();
  table_.clear();
}

void NodeDetection::evict_excess_clients() {
  if (policy_.max_tracked_clients == 0) return;
  while (detectors_.size() > policy_.max_tracked_clients &&
         !detector_order_.empty()) {
    // Prefer the oldest non-alarmed client; an alarmed detector is exactly
    // the state worth keeping.  If everything is alarmed, evict the oldest.
    std::size_t victim = 0;
    for (std::size_t i = 0; i < detector_order_.size(); ++i) {
      auto it = detectors_.find(detector_order_[i]);
      if (it == detectors_.end() || !it->second.alarmed()) {
        victim = i;
        break;
      }
    }
    detectors_.erase(detector_order_[victim]);
    detector_order_.erase(detector_order_.begin() +
                          static_cast<std::ptrdiff_t>(victim));
    ++stats_.clients_evicted;
  }
}

// ---------------------------------------------------------------------------
// GossipFabric
// ---------------------------------------------------------------------------

namespace {
/// The loss injector's rate rule draws per decide(); the request content is
/// irrelevant, but decide() wants one.
const http::Request& loss_probe() {
  static const http::Request probe;
  return probe;
}
constexpr std::uint64_t kLossStreamSalt = 0x676f73736970ULL;  // "gossip"
}  // namespace

GossipFabric::GossipFabric(std::vector<NodeDetection*> nodes,
                           const GossipPolicy& policy)
    : nodes_(std::move(nodes)), policy_(policy) {
  if (policy_.message_loss_rate > 0) {
    loss_ = std::make_unique<net::FaultInjector>();
    loss_->fail_rate(policy_.message_loss_rate,
                     core::splitmix64(policy_.seed ^ kLossStreamSalt),
                     net::FaultSpec::reset());
  }
}

void GossipFabric::set_fault_injector(
    std::unique_ptr<net::FaultInjector> injector) {
  loss_ = std::move(injector);
}

void GossipFabric::advance(double now) {
  if (!policy_.enabled || policy_.round_seconds <= 0) return;
  while (static_cast<double>(next_round_ + 1) * policy_.round_seconds <= now) {
    // Rounds fire at their nominal simulation instant, not at the (later)
    // time advance() happened to be called -- TTL sweeps and latency
    // observations stay independent of call cadence.
    const double fired_at =
        static_cast<double>(next_round_ + 1) * policy_.round_seconds;
    run_round(next_round_, fired_at);
    ++next_round_;
  }
  publish_metrics();
}

void GossipFabric::run_round(std::uint64_t round, double now) {
  ++stats_.rounds;
  for (NodeDetection* node : nodes_) node->table().expire(now);

  const std::size_t n = nodes_.size();
  const std::size_t fanout = n < 2 ? 0 : std::min(policy_.fanout, n - 1);
  if (fanout == 0) return;

  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<AttackSignature> payload = nodes_[i]->table().active(now);
    if (payload.empty()) continue;

    // Peer choice is a pure function of (seed, round, node): a partial
    // Fisher-Yates over the other nodes, drawn from a stream forked per
    // (round, node).  No shared RNG state -> no ordering sensitivity.
    http::Rng rng{core::splitmix64(core::splitmix64(policy_.seed ^ round) ^
                                   static_cast<std::uint64_t>(i))};
    std::vector<std::size_t> peers;
    peers.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) peers.push_back(j);

    for (std::size_t k = 0; k < fanout; ++k) {
      const std::size_t pick =
          k + static_cast<std::size_t>(rng.below(peers.size() - k));
      std::swap(peers[k], peers[pick]);
      const std::size_t peer = peers[k];

      ++stats_.messages_sent;
      stats_.signatures_sent += payload.size();
      if (m_messages_sent_ != nullptr) m_messages_sent_->inc();
      if (m_signatures_sent_ != nullptr)
        m_signatures_sent_->inc(payload.size());

      if (loss_ && loss_->decide(loss_probe()).has_value()) {
        ++stats_.messages_dropped;
        if (m_messages_dropped_ != nullptr) m_messages_dropped_->inc();
        continue;  // anti-entropy: the next round re-pushes from scratch
      }

      SignatureTable& sink = nodes_[peer]->table();
      for (const AttackSignature& sig : payload) {
        if (sink.upsert(sig, now)) {
          ++stats_.signatures_accepted;
          if (m_detection_latency_ != nullptr)
            m_detection_latency_->observe(now - sig.detected_at);
        }
      }
    }
  }
}

void GossipFabric::restart_node(std::size_t index) {
  if (index < nodes_.size()) nodes_[index]->restart();
}

void GossipFabric::note_fresh_signature(const AttackSignature& sig,
                                        double now) {
  if (m_detection_latency_ != nullptr)
    m_detection_latency_->observe(now - sig.detected_at);
  publish_metrics();
}

std::size_t GossipFabric::coverage(const std::string& client_key,
                                   double now) const {
  std::size_t holders = 0;
  for (const NodeDetection* node : nodes_)
    if (node->table().find_client(client_key, now) != nullptr) ++holders;
  return holders;
}

void GossipFabric::set_metrics(obs::MetricsRegistry* registry,
                               std::string_view vendor) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_messages_sent_ = nullptr;
    m_messages_dropped_ = nullptr;
    m_signatures_sent_ = nullptr;
    m_signatures_expired_ = nullptr;
    m_signatures_held_ = nullptr;
    m_detection_latency_ = nullptr;
    return;
  }
  const std::string label = "{vendor=\"" + std::string(vendor) + "\"}";
  m_messages_sent_ =
      &registry->counter("cdn_gossip_messages_sent_total" + label,
                         "gossip pushes attempted (node->peer messages)");
  m_messages_dropped_ =
      &registry->counter("cdn_gossip_messages_dropped_total" + label,
                         "gossip pushes lost to injected message loss");
  m_signatures_sent_ =
      &registry->counter("cdn_gossip_signatures_sent_total" + label,
                         "attack signatures carried by attempted pushes");
  m_signatures_expired_ =
      &registry->counter("cdn_gossip_signatures_expired_total" + label,
                         "attack signatures dropped by TTL expiry");
  m_signatures_held_ =
      &registry->gauge("cdn_gossip_signatures_held" + label,
                       "attack signatures currently held, summed over nodes");
  m_detection_latency_ = &registry->histogram(
      "cdn_gossip_detection_latency_seconds" + label,
      {0.25, 0.5, 1, 2, 4, 8, 16, 32},
      "sim seconds from first alarm to each node's signature acceptance");
}

void GossipFabric::publish_metrics() {
  if (metrics_ == nullptr) return;
  std::size_t held = 0;
  std::uint64_t expired = 0;
  for (const NodeDetection* node : nodes_) {
    held += node->table().size();
    expired += node->table().expired_total;
  }
  if (m_signatures_held_ != nullptr)
    m_signatures_held_->set(static_cast<double>(held));
  if (m_signatures_expired_ != nullptr && expired > published_expired_) {
    m_signatures_expired_->inc(expired - published_expired_);
    published_expired_ = expired;
  }
}

}  // namespace rangeamp::cdn
