#include "cdn/limits.h"

namespace rangeamp::cdn {

std::optional<std::string> check_request_limits(const RequestHeaderLimits& limits,
                                                const http::Request& request) {
  if (limits.total_header_bytes &&
      request.headers.serialized_size() > *limits.total_header_bytes) {
    return "total request header size " +
           std::to_string(request.headers.serialized_size()) + " exceeds limit " +
           std::to_string(*limits.total_header_bytes);
  }
  if (limits.single_header_line_bytes) {
    for (const auto& f : request.headers.fields()) {
      if (f.line_size() > *limits.single_header_line_bytes) {
        return "header '" + f.name + "' line size " + std::to_string(f.line_size()) +
               " exceeds limit " + std::to_string(*limits.single_header_line_bytes);
      }
    }
  }
  if (limits.cloudflare_range_budget) {
    const auto range = request.headers.get("Range");
    if (range) {
      const std::size_t rl = request.request_line_size();
      const std::size_t hhl =
          6 + request.headers.get_or("Host", "").size();  // "Host: " + value
      const std::size_t rhl = 7 + range->size();          // "Range: " + value
      if (rl + 2 * hhl + rhl > *limits.cloudflare_range_budget) {
        return "RL + 2*HHL + RHL = " + std::to_string(rl + 2 * hhl + rhl) +
               " exceeds budget " + std::to_string(*limits.cloudflare_range_budget);
      }
    }
  }
  return std::nullopt;
}

std::string_view forward_policy_name(ForwardPolicy p) noexcept {
  switch (p) {
    case ForwardPolicy::kLaziness: return "Laziness";
    case ForwardPolicy::kDeletion: return "Deletion";
    case ForwardPolicy::kExpansion: return "Expansion";
  }
  return "?";
}

std::string_view reply_policy_name(MultiRangeReplyPolicy p) noexcept {
  switch (p) {
    case MultiRangeReplyPolicy::kHonorOverlapping: return "n-part (overlapping honored)";
    case MultiRangeReplyPolicy::kCoalesce: return "coalesced";
    case MultiRangeReplyPolicy::kRejectOverlapping416:
      return "overlapping rejected (416)";
    case MultiRangeReplyPolicy::kFirstRangeOnly: return "first range only";
    case MultiRangeReplyPolicy::kIgnoreRange: return "range ignored (200)";
    case MultiRangeReplyPolicy::kReject416: return "rejected (416)";
  }
  return "?";
}

std::string_view degradation_policy_name(DegradationPolicy p) noexcept {
  switch (p) {
    case DegradationPolicy::kSynthesizeError: return "synthesize-error";
    case DegradationPolicy::kServeStale: return "serve-stale";
    case DegradationPolicy::kNegativeCache: return "negative-cache";
  }
  return "?";
}

std::string_view conformance_mode_name(ConformanceMode m) noexcept {
  switch (m) {
    case ConformanceMode::kOff: return "off";
    case ConformanceMode::kLenient: return "lenient";
    case ConformanceMode::kStrict: return "strict";
  }
  return "?";
}

}  // namespace rangeamp::cdn
