// RangeAmp traffic detector.
//
// Section V-D of the paper notes that "vulnerable CDNs raised no alert while
// using their default configuration", and section VI-C suggests that "CDNs
// can detect and intercept malicious range requests based on the
// characteristics of the RangeAmp attacks".  This module implements that
// detector: a sliding-window heuristic over per-exchange samples that keys
// on the attack's three signatures simultaneously --
//
//   1. traffic asymmetry: back-to-origin bytes >> client-facing bytes,
//   2. tiny selected ranges on large resources,
//   3. a cache-miss rate near 1 (the cache-busting query rotation).
//
// Any one of these occurs in benign traffic (a cold cache, a probe request,
// a resume of the last byte); it is the *conjunction, sustained over a
// window*, that separates an SBR campaign from legitimate load -- which is
// exactly what the false-positive tests assert.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "http/range.h"
#include "net/accounting.h"

namespace rangeamp::core {

/// Coarse structural class of a Range header, used to label detector samples
/// and gossip signatures.  Distinct from http::RangeShape (a *generator*
/// taxonomy): this classifies an already-parsed header, resource-size
/// independent, so two edge nodes always agree on a request's class.
enum class RangeClass : std::uint8_t {
  kNone = 0,      ///< no (or ignored/malformed) Range header
  kTinyClosed,    ///< one closed range selecting <= kTinyRangeClassBytes
  kSingleClosed,  ///< one closed range, larger than tiny
  kOpen,          ///< one open-ended range ("first-")
  kSuffix,        ///< one suffix range ("-n")
  kMulti,         ///< multipart byte-range-set (any mix)
};

/// Single closed ranges at or under this many bytes classify as kTinyClosed
/// (the SBR attack shape; also a legitimate existence-probe shape).
inline constexpr std::uint64_t kTinyRangeClassBytes = 1024;

std::string_view range_class_name(RangeClass c) noexcept;

/// Classifies a parsed Range header.  nullopt (no header) -> kNone.
RangeClass classify_range(const std::optional<http::RangeSet>& range) noexcept;

/// One observed client exchange, as a detector input.
struct DetectorSample {
  /// Bytes the requested range selects (UINT64_MAX when no Range header).
  std::uint64_t selected_bytes = UINT64_MAX;
  /// Size of the target resource (0 when unknown).
  std::uint64_t resource_bytes = 0;
  /// Client-facing exchange bytes (the response side feeds the asymmetry
  /// ratio).
  net::TrafficTotals client;
  /// Back-to-origin bytes this exchange caused (zero on a cache hit).
  net::TrafficTotals origin;
  bool cache_hit = false;
  /// Opaque client identity (empty when the ingress cannot attribute one).
  std::string client_key;
  /// Cache key with the query string stripped -- the pattern an attacker
  /// rotates a cache-busting query under.
  std::string base_key;
  /// Structural class of the request's Range header.
  RangeClass shape = RangeClass::kNone;
};

/// Bytes a range selects against a resource: the sum of the satisfiable
/// resolved lengths (overlaps counted multiply, exactly what a vulnerable
/// multipart responder transmits), or UINT64_MAX when there is no Range
/// header at all.
std::uint64_t selected_bytes_of(const std::optional<http::RangeSet>& range,
                                std::uint64_t resource_bytes);

/// Builds a DetectorSample from per-exchange traffic deltas.  `cache_hit`
/// is derived from the origin delta (no upstream response bytes == served
/// from cache), matching how every campaign replay has always scored it.
/// `selected` is taken as a value (not recomputed) so callers that already
/// resolved the range -- e.g. against a planned file size -- feed the
/// detector the exact bytes they measured.
DetectorSample make_detector_sample(std::uint64_t selected,
                                    std::uint64_t resource_bytes,
                                    const net::TrafficTotals& client_delta,
                                    const net::TrafficTotals& origin_delta,
                                    std::string client_key = {},
                                    std::string base_key = {},
                                    RangeClass shape = RangeClass::kNone);

struct DetectorConfig {
  /// Sliding window length in samples.
  std::size_t window = 50;
  /// Minimum samples before any verdict.
  std::size_t min_samples = 20;
  /// Alarm threshold on (sum origin bytes) / (sum client bytes).
  double asymmetry_threshold = 50.0;
  /// A range is "tiny" when it selects less than this fraction of the
  /// resource (and the resource is non-trivial).
  double tiny_range_fraction = 0.01;
  /// Fractions of the window that must be tiny-ranged / cache-missing.
  double tiny_fraction_threshold = 0.5;
  double miss_fraction_threshold = 0.8;
  /// Alarm decay: once alarmed, this many *consecutive clean windows* (i.e.
  /// decay_clean_windows * window samples in a row for which the window
  /// never evaluates hot) clear the alarm, so a detector recovers after an
  /// attacker moves on.  0 keeps the legacy forever-latched behaviour.
  std::size_t decay_clean_windows = 0;
};

class RangeAmpDetector {
 public:
  explicit RangeAmpDetector(DetectorConfig config = {}) : config_(config) {}

  void observe(const DetectorSample& sample);

  /// True once the window exhibits all three signatures.  Latched until
  /// decay (when configured) clears it; forever otherwise.
  bool alarmed() const noexcept { return alarmed_; }

  /// Current window statistics (for reporting).
  struct Stats {
    std::size_t samples = 0;
    double asymmetry = 0;       ///< origin bytes / client bytes
    double tiny_fraction = 0;   ///< fraction of tiny-range samples
    double miss_fraction = 0;   ///< fraction of cache misses
  };
  Stats stats() const noexcept;

  void reset();

 private:
  bool evaluate() const noexcept;

  DetectorConfig config_;
  std::deque<DetectorSample> window_;
  bool alarmed_ = false;        ///< latched (subject to decay when configured)
  std::size_t clean_streak_ = 0;  ///< consecutive not-hot samples while alarmed
};

}  // namespace rangeamp::core
