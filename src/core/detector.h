// RangeAmp traffic detector.
//
// Section V-D of the paper notes that "vulnerable CDNs raised no alert while
// using their default configuration", and section VI-C suggests that "CDNs
// can detect and intercept malicious range requests based on the
// characteristics of the RangeAmp attacks".  This module implements that
// detector: a sliding-window heuristic over per-exchange samples that keys
// on the attack's three signatures simultaneously --
//
//   1. traffic asymmetry: back-to-origin bytes >> client-facing bytes,
//   2. tiny selected ranges on large resources,
//   3. a cache-miss rate near 1 (the cache-busting query rotation).
//
// Any one of these occurs in benign traffic (a cold cache, a probe request,
// a resume of the last byte); it is the *conjunction, sustained over a
// window*, that separates an SBR campaign from legitimate load -- which is
// exactly what the false-positive tests assert.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/accounting.h"

namespace rangeamp::core {

/// One observed client exchange, as a detector input.
struct DetectorSample {
  /// Bytes the requested range selects (UINT64_MAX when no Range header).
  std::uint64_t selected_bytes = UINT64_MAX;
  /// Size of the target resource (0 when unknown).
  std::uint64_t resource_bytes = 0;
  /// Client-facing exchange bytes (the response side feeds the asymmetry
  /// ratio).
  net::TrafficTotals client;
  /// Back-to-origin bytes this exchange caused (zero on a cache hit).
  net::TrafficTotals origin;
  bool cache_hit = false;
};

struct DetectorConfig {
  /// Sliding window length in samples.
  std::size_t window = 50;
  /// Minimum samples before any verdict.
  std::size_t min_samples = 20;
  /// Alarm threshold on (sum origin bytes) / (sum client bytes).
  double asymmetry_threshold = 50.0;
  /// A range is "tiny" when it selects less than this fraction of the
  /// resource (and the resource is non-trivial).
  double tiny_range_fraction = 0.01;
  /// Fractions of the window that must be tiny-ranged / cache-missing.
  double tiny_fraction_threshold = 0.5;
  double miss_fraction_threshold = 0.8;
};

class RangeAmpDetector {
 public:
  explicit RangeAmpDetector(DetectorConfig config = {}) : config_(config) {}

  void observe(const DetectorSample& sample);

  /// True once the window exhibits all three signatures.
  bool alarmed() const noexcept { return alarmed_; }

  /// Current window statistics (for reporting).
  struct Stats {
    std::size_t samples = 0;
    double asymmetry = 0;       ///< origin bytes / client bytes
    double tiny_fraction = 0;   ///< fraction of tiny-range samples
    double miss_fraction = 0;   ///< fraction of cache misses
  };
  Stats stats() const noexcept;

  void reset();

 private:
  bool evaluate() const noexcept;

  DetectorConfig config_;
  std::deque<DetectorSample> window_;
  bool alarmed_ = false;  ///< latched
};

}  // namespace rangeamp::core
