// Small Byte Range (SBR) attack: planning and measurement (sections IV-B,
// V-B of the paper; Table IV and Fig 6).
//
// The planner reproduces Table IV column 2: for each vendor, the Range
// header case that maximizes origin response traffic while minimizing client
// response traffic, including the file-size-dependent cases (Azure, Huawei)
// and KeyCDN's send-twice requirement.  The executor runs the attack request
// against a fresh SingleCdnTestbed and reports the response traffic on both
// segments plus the amplification factor
//
//     AF = response bytes on cdn-origin / response bytes on client-cdn,
//
// exactly the quantity the paper plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdn/profiles.h"
#include "http/range.h"
#include "obs/trace.h"

namespace rangeamp::core {

/// The exploited Range case for one vendor and file size (Table IV col. 2).
struct SbrPlan {
  std::string description;  ///< the paper's spelling, e.g. "bytes=0-0"
  http::RangeSet range;     ///< the header to send
  int sends = 1;            ///< requests per amplification unit (KeyCDN: 2)
};

/// Builds the Table IV exploited case for `vendor` against a resource of
/// `file_size` bytes.
SbrPlan sbr_plan(cdn::Vendor vendor, std::uint64_t file_size);

/// One SBR measurement (one row point of Fig 6 / Table IV).
struct SbrMeasurement {
  cdn::Vendor vendor;
  std::uint64_t file_size = 0;
  std::string exploited_case;
  std::uint64_t client_response_bytes = 0;  ///< client-cdn segment, Fig 6b
  std::uint64_t origin_response_bytes = 0;  ///< cdn-origin segment, Fig 6c
  std::uint64_t client_request_bytes = 0;
  std::uint64_t origin_request_bytes = 0;
  double amplification = 0;                 ///< Fig 6a / Table IV
};

/// Runs one SBR attack request (or request pair, per the plan) against a
/// fresh testbed with a synthetic resource of `file_size` bytes and the
/// vendor in its paper-tested configuration.  With a tracer, the run is one
/// "sbr.measure" trace whose root span carries the recorder totals as
/// expect_* notes -- the cross-check scripts/check_trace.py verifies against
/// the trace's own per-segment wire-span sums.
SbrMeasurement measure_sbr(cdn::Vendor vendor, std::uint64_t file_size,
                           const cdn::ProfileOptions& options = {},
                           obs::Tracer* tracer = nullptr);

/// Sweeps file sizes (the paper: 1..25 MB step 1 MB) for one vendor.
/// Every measurement runs against a fresh testbed, so the sweep is
/// embarrassingly parallel: with `threads` > 1 the measurements run on a
/// worker pool (one shard per size, see core/parallel.h) and are reduced in
/// file-size order -- the returned vector, and with a tracer the merged
/// span tree, are byte-identical at any thread count.
std::vector<SbrMeasurement> sweep_sbr(cdn::Vendor vendor,
                                      const std::vector<std::uint64_t>& file_sizes,
                                      const cdn::ProfileOptions& options = {},
                                      obs::Tracer* tracer = nullptr,
                                      int threads = 1);

/// Like measure_sbr, but the attacker speaks HTTP/2 to the CDN edge
/// (section VI-B: "the RangeAmp threats in HTTP/1.1 are also applicable to
/// HTTP/2").  `requests` > 1 amortizes the h2 connection setup and lets
/// HPACK compress the repeated headers, which *raises* the factor.
SbrMeasurement measure_sbr_h2(cdn::Vendor vendor, std::uint64_t file_size,
                              int requests = 1,
                              const cdn::ProfileOptions& options = {},
                              obs::Tracer* tracer = nullptr);

}  // namespace rangeamp::core
