#include "core/cost.h"

namespace rangeamp::core {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

}  // namespace

std::vector<PricePlan> default_price_plans() {
  using cdn::Vendor;
  // Lowest published per-GB tier, circa 2020 (see header comment).
  return {
      {Vendor::kAkamai, 0.17, 0.0, 0.09},
      {Vendor::kAlibabaCloud, 0.074, 0.0, 0.09},
      {Vendor::kAzure, 0.081, 0.087, 0.09},  // Azure bills origin egress too
      {Vendor::kCdn77, 0.049, 0.0, 0.09},
      {Vendor::kCdnsun, 0.045, 0.0, 0.09},
      {Vendor::kCloudflare, 0.0, 0.0, 0.09},  // flat-rate plans
      {Vendor::kCloudFront, 0.085, 0.09, 0.09},
      {Vendor::kFastly, 0.12, 0.0, 0.09},
      {Vendor::kGcoreLabs, 0.035, 0.0, 0.09},
      {Vendor::kHuaweiCloud, 0.065, 0.0, 0.09},
      {Vendor::kKeyCdn, 0.04, 0.04, 0.09},
      {Vendor::kStackPath, 0.035, 0.0, 0.09},
      {Vendor::kTencentCloud, 0.064, 0.0, 0.09},
  };
}

PricePlan price_plan(cdn::Vendor vendor) {
  for (const PricePlan& plan : default_price_plans()) {
    if (plan.vendor == vendor) return plan;
  }
  return PricePlan{vendor};
}

CostEstimate estimate_victim_cost(const PricePlan& plan,
                                  std::uint64_t client_cdn_bytes,
                                  std::uint64_t cdn_origin_bytes) {
  CostEstimate out;
  out.cdn_egress_usd =
      static_cast<double>(client_cdn_bytes) / kGiB * plan.egress_usd_per_gb;
  out.cdn_origin_pull_usd =
      static_cast<double>(cdn_origin_bytes) / kGiB * plan.origin_pull_usd_per_gb;
  out.origin_bandwidth_usd = static_cast<double>(cdn_origin_bytes) / kGiB *
                             plan.origin_bandwidth_usd_per_gb;
  out.total_usd =
      out.cdn_egress_usd + out.cdn_origin_pull_usd + out.origin_bandwidth_usd;
  return out;
}

CostEstimate estimate_campaign_cost(const PricePlan& plan,
                                    std::uint64_t client_bytes_per_request,
                                    std::uint64_t origin_bytes_per_request,
                                    double rps, double hours) {
  const double requests = rps * hours * 3600.0;
  return estimate_victim_cost(
      plan,
      static_cast<std::uint64_t>(requests * static_cast<double>(client_bytes_per_request)),
      static_cast<std::uint64_t>(requests * static_cast<double>(origin_bytes_per_request)));
}

}  // namespace rangeamp::core
