// Range-policy scanners: the paper's first experiment (section V-A).
//
// PolicyScanner reproduces Tables I and II: it sends crafted (and
// ABNF-generated) range requests through a vendor profile toward an
// instrumented origin and diffs the Range header the client sent against
// the header(s) the origin received, classifying each vendor's forwarding
// behaviour as Laziness / Deletion / Expansion -- including multi-connection
// patterns ("None & bytes=8388608-16777215", "bytes=first-last [& None]")
// and stateful ones (KeyCDN's second-request Deletion).
//
// ReplyScanner reproduces Table III: it sends overlapping multi-range
// requests directly at a vendor (the BCDN role, origin ranges disabled) and
// classifies how the response is framed, including the honored-range cap
// (Azure's 64).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdn/profiles.h"
#include "http/generator.h"
#include "http/range.h"

namespace rangeamp::core {

/// One probe request shape for the forwarding scan.
struct ForwardProbe {
  std::string label;    ///< the paper's spelling, e.g. "bytes=first-last"
  http::RangeSet range;
};

/// The standard probe set covering every vulnerable format of Tables I/II.
std::vector<ForwardProbe> standard_forward_probes();

/// What the origin observed for one client request.
struct OriginView {
  /// One entry per origin request: "None" (no Range), "HEAD" (size probe,
  /// no Range), "Unchanged", or the rewritten header value.
  std::vector<std::string> forwarded;

  std::string summary() const;  ///< entries joined with " & "
};

/// One scan observation: vendor x probe x file size.
struct ForwardObservation {
  cdn::Vendor vendor;
  std::string probe_label;
  std::string sent_range;
  std::uint64_t file_size = 0;
  OriginView first_request;   ///< origin requests triggered by send #1
  OriginView second_request;  ///< ... by send #2 (stateful vendors)
  std::uint64_t origin_response_bytes = 0;  ///< both sends
  std::uint64_t client_response_bytes = 0;
  bool sbr_vulnerable = false;   ///< full entity pulled for a tiny client range
  bool obr_forward_vulnerable = false;  ///< multi-range forwarded unchanged
};

/// Scans one vendor with the standard probes at the given file sizes
/// (defaults cover the paper's size-conditional rows: 1 MB, 9 MB, 12 MB,
/// 20 MB).
std::vector<ForwardObservation> scan_forwarding(
    cdn::Vendor vendor, const cdn::ProfileOptions& options = {},
    std::vector<std::uint64_t> file_sizes = {});

/// Aggregate of a generated-corpus scan (the "large number of valid range
/// requests" experiment): per shape, how many probes were forwarded with
/// each policy.
struct CorpusScanRow {
  http::RangeShape shape;
  std::size_t total = 0;
  std::size_t lazy = 0;
  std::size_t deleted = 0;
  std::size_t expanded = 0;
  std::size_t multi_connection = 0;  ///< probes triggering >1 origin request
};

std::vector<CorpusScanRow> scan_corpus(cdn::Vendor vendor, std::uint64_t seed,
                                       std::size_t count,
                                       std::uint64_t file_size,
                                       const cdn::ProfileOptions& options = {});

/// Table III: multi-range replying behaviour in the BCDN role.
struct ReplyObservation {
  cdn::Vendor vendor;
  std::string response_format;  ///< "n-part response (overlapping)", ...
  bool obr_reply_vulnerable = false;
  std::size_t honored_cap = 0;  ///< max overlapping ranges honored
                                ///< (0 = unlimited within tested bound)
};

ReplyObservation scan_replying(cdn::Vendor vendor,
                               const cdn::ProfileOptions& options = {});

}  // namespace rangeamp::core
