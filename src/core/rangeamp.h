// RangeAmp: umbrella header for the public API.
//
// A C++20 reproduction of "CDN Backfired: Amplification Attacks Based on
// HTTP Range Requests" (Li et al., DSN 2020).  The library bundles:
//
//   * an RFC 7233-complete HTTP range-request substrate (http/),
//   * byte-exact per-segment traffic accounting (net/),
//   * an Apache-flavored origin server model (origin/),
//   * a CDN node simulator with 13 calibrated vendor profiles (cdn/),
//   * a fluid-flow bandwidth simulator (sim/),
//   * and the RangeAmp toolkit itself: policy scanners, SBR/OBR attack
//     planners and executors, and mitigations (core/).
//
// Quick start:
//
//   #include "core/rangeamp.h"
//   using namespace rangeamp;
//
//   auto m = core::measure_sbr(cdn::Vendor::kAkamai, 25 * (1u << 20));
//   std::cout << m.amplification << "\n";   // ~43000
#pragma once

#include "cdn/cluster.h"
#include "cdn/logic.h"
#include "cdn/profiles.h"
#include "core/campaign.h"
#include "core/cost.h"
#include "core/detector.h"
#include "core/mitigations.h"
#include "core/obr.h"
#include "core/parallel.h"
#include "core/report.h"
#include "core/sbr.h"
#include "core/scanner.h"
#include "core/testbed.h"
#include "http/generator.h"
#include "http/multipart.h"
#include "http/range.h"
#include "http/serialize.h"
#include "origin/origin_server.h"
#include "sim/attack_load.h"
