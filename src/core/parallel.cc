#include "core/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace rangeamp::core {

ShardPlan::ShardPlan(std::uint64_t total, std::size_t shard_count,
                     std::uint64_t seed, std::uint64_t group)
    : total_(total) {
  if (group == 0) throw std::invalid_argument("ShardPlan: group must be > 0");
  if (total == 0) return;  // empty grid -> empty plan
  // Decompose in whole groups so a same-key burst never straddles shards.
  const std::uint64_t groups = (total + group - 1) / group;
  const std::uint64_t count = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(shard_count, groups));
  shards_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    // Balanced split of `groups` into `count` blocks (sizes differ by <= 1).
    const std::uint64_t gbegin = groups * i / count;
    const std::uint64_t gend = groups * (i + 1) / count;
    Shard shard;
    shard.index = static_cast<std::size_t>(i);
    shard.begin = gbegin * group;
    shard.end = std::min(gend * group, total);
    shard.seed = shard_seed(seed, shard.index);
    shards_.push_back(shard);
  }
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   ///< workers wait here for tasks
  std::condition_variable idle_cv;   ///< wait_idle() waits here
  std::deque<std::function<void()>> queue;
  std::size_t active = 0;
  bool stopping = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping with a drained queue
        task = std::move(queue.front());
        queue.pop_front();
        ++active;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu);
        --active;
        if (queue.empty() && active == 0) idle_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl), workers_count_(std::max<std::size_t>(1, threads)) {
  impl_->workers.reserve(workers_count_);
  for (std::size_t i = 0; i < workers_count_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(std::move(task));
  }
  impl_->work_cv.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->idle_cv.wait(
      lock, [&] { return impl_->queue.empty() && impl_->active == 0; });
}

void run_shards(const ShardPlan& plan, std::size_t threads,
                const std::function<void(const Shard&)>& fn) {
  const std::vector<Shard>& shards = plan.shards();
  if (threads <= 1 || shards.size() <= 1) {
    for (const Shard& shard : shards) fn(shard);
    return;
  }
  // One exception slot per shard; the first (by shard index, not by wall
  // clock) is rethrown, so even failure reporting is thread-count-stable.
  std::vector<std::exception_ptr> errors(shards.size());
  {
    ThreadPool pool(std::min(threads, shards.size()));
    for (const Shard& shard : shards) {
      pool.submit([&fn, &shard, &errors] {
        try {
          fn(shard);
        } catch (...) {
          errors[shard.index] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace rangeamp::core
