#include "core/campaign.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "cdn/cluster.h"
#include "cdn/gossip.h"
#include "core/obr.h"
#include "core/parallel.h"
#include "core/sbr.h"
#include "core/testbed.h"
#include "http/generator.h"
#include "sim/des.h"

namespace rangeamp::core {
namespace {

void add_shield_stats(cdn::ShieldStats& into, const cdn::ShieldStats& from) {
  into.loop_rejected += from.loop_rejected;
  into.hop_cap_rejected += from.hop_cap_rejected;
  into.coalesced_hits += from.coalesced_hits;
  into.fill_fetches += from.fill_fetches;
  into.shed_breaker_open += from.shed_breaker_open;
  into.shed_admission += from.shed_admission;
  into.breaker_trips += from.breaker_trips;
  into.half_open_probes += from.half_open_probes;
  into.shed_responses += from.shed_responses;
}

// ---------------------------------------------------------------------------
// SBR campaign: shard block runner + ordered reduction.
//
// One block runs the exchanges [begin, end) of the campaign grid against its
// OWN testbed (origin, cluster, recorder -- the per-shard ownership rule of
// core/parallel.h), stamping each exchange with its *global* index so the
// cache-busting keys, node pinning, and simulated clock are the same whether
// the grid runs as one block or many.  The serial path is exactly the
// single-block call [0, total) with the caller's tracer/metrics sinks, which
// is what keeps every pre-sharding CSV byte-identical.
// ---------------------------------------------------------------------------

struct SbrBlockResult {
  net::TrafficTotals attacker;
  std::uint64_t attacker_truncated = 0;
  std::uint64_t origin_response_bytes = 0;
  std::vector<std::uint64_t> per_node_upstream_bytes;
  std::vector<std::uint64_t> per_node_ingress_exchanges;
  cdn::ShieldStats shield;
  /// Per-exchange detector samples in global-index order; the campaign
  /// replays the concatenation through one detector so the verdict is a
  /// function of the merged sample stream, not of thread scheduling.
  std::vector<DetectorSample> samples;
};

SbrBlockResult run_sbr_block(const SbrCampaignConfig& config,
                             const SbrPlan& plan, std::uint64_t begin,
                             std::uint64_t end, obs::Tracer* tracer,
                             obs::MetricsRegistry* metrics) {
  origin::OriginServer origin;
  origin.resources().add_synthetic("/target.bin", config.file_size);

  cdn::EdgeCluster cluster(
      [&] {
        cdn::VendorProfile profile = cdn::make_profile(config.vendor, config.options);
        if (config.mitigation) {
          profile = apply_mitigation(std::move(profile), *config.mitigation);
        }
        profile.traits.shield = config.shield;
        return profile;
      },
      config.edge_nodes, origin, config.selection, config.transport);

  // Campaign time: request i is sent at i/m seconds.  The nodes' shielding
  // layers (fill-lock windows, breaker open timers) key off this clock.
  double sim_now = begin > 0 && config.requests_per_second > 0
                       ? static_cast<double>(begin) /
                             static_cast<double>(config.requests_per_second)
                       : 0;
  cluster.set_clock([&sim_now] { return sim_now; });

  net::TrafficRecorder client_traffic("attacker");
  client_traffic.set_keep_log(false);
  const std::unique_ptr<net::Transport> client_wire =
      net::make_transport(config.transport, client_traffic, cluster);

  if (tracer) {
    tracer->set_clock([&sim_now] { return sim_now; });
    cluster.set_tracer(tracer);
    client_wire->set_tracer(tracer);
  }
  obs::Histogram* af_histogram = nullptr;
  if (metrics) {
    cluster.set_metrics(metrics);
    af_histogram = &metrics->histogram(
        "sbr_amplification_factor{vendor=\"" +
            std::string{cdn::vendor_name(config.vendor)} + "\"}",
        obs::amplification_buckets(),
        "per-request origin/client response byte ratio");
  }

  SbrBlockResult block;
  block.samples.reserve(static_cast<std::size_t>(end - begin));
  const std::uint64_t burst =
      config.same_key_burst > 1 ? static_cast<std::uint64_t>(config.same_key_burst) : 1;
  std::uint64_t origin_before = 0;
  std::int64_t last_sampled_second = -1;
  for (std::uint64_t i = begin; i < end; ++i) {
    if (config.requests_per_second > 0) {
      sim_now = static_cast<double>(i) /
                static_cast<double>(config.requests_per_second);
    }
    if (metrics) {
      // One snapshot per simulated second, stamped on the sim clock.
      const auto second = static_cast<std::int64_t>(sim_now);
      if (second > last_sampled_second) {
        metrics->sample(sim_now);
        last_sampled_second = second;
      }
    }
    // One amplification unit may need several sends (KeyCDN's pair); the
    // attacker reuses its connection, so every send of a unit reaches the
    // same ingress node.  Round-robin therefore rotates per *unit* -- or per
    // key group, since a URL-hashing balancer maps same-key units together.
    if (config.selection == cdn::NodeSelection::kRoundRobin) {
      cluster.pin((i / burst) % config.edge_nodes);
    }
    http::Request request = http::make_get(
        std::string{kDefaultHost}, "/target.bin?x=" + std::to_string(i / burst));
    request.headers.add("Range", plan.range.to_string());
    const net::TrafficTotals client_before = client_traffic.totals();
    {
      // One root span per amplification unit: the wire and CDN spans of this
      // unit's sends nest under it.
      obs::SpanScope unit(tracer, "sbr.request");
      unit.note("index", std::to_string(i));
      unit.note("target", request.target);
      for (int s = 0; s < plan.sends; ++s) client_wire->transfer(request);
    }

    const std::uint64_t origin_after = cluster.total_upstream_response_bytes();
    const net::TrafficTotals client_after = client_traffic.totals();
    const DetectorSample sample = make_detector_sample(
        selected_bytes_of(plan.range, config.file_size), config.file_size,
        {client_after.request_bytes - client_before.request_bytes,
         client_after.response_bytes - client_before.response_bytes},
        {0, origin_after - origin_before});
    origin_before = origin_after;
    if (af_histogram) {
      af_histogram->observe(amplification_factor(sample.origin, sample.client));
    }
    block.samples.push_back(sample);
  }
  if (metrics) metrics->sample(sim_now);
  if (tracer) tracer->set_clock(nullptr);

  block.attacker = client_traffic.totals();
  block.attacker_truncated = client_traffic.truncated_count();
  block.origin_response_bytes = cluster.total_upstream_response_bytes();
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    block.per_node_upstream_bytes.push_back(
        cluster.node(i).upstream_traffic().response_bytes());
    block.per_node_ingress_exchanges.push_back(
        cluster.ingress_traffic(i).exchange_count());
  }
  block.shield = cluster.total_shield_stats();
  return block;
}

}  // namespace

SbrCampaignConfig SbrCampaignConfig::Builder::build() const {
  if (config_.file_size == 0) {
    throw std::invalid_argument("SbrCampaignConfig: file_size must be > 0");
  }
  if (config_.requests_per_second <= 0) {
    throw std::invalid_argument(
        "SbrCampaignConfig: requests_per_second must be > 0");
  }
  if (config_.duration_s <= 0) {
    throw std::invalid_argument("SbrCampaignConfig: duration_s must be > 0");
  }
  if (config_.edge_nodes == 0) {
    throw std::invalid_argument("SbrCampaignConfig: edge_nodes must be > 0");
  }
  if (config_.origin_uplink_mbps <= 0) {
    throw std::invalid_argument(
        "SbrCampaignConfig: origin_uplink_mbps must be > 0");
  }
  if (config_.same_key_burst < 1) {
    throw std::invalid_argument(
        "SbrCampaignConfig: same_key_burst must be >= 1");
  }
  if (config_.shards == 0) {
    throw std::invalid_argument("SbrCampaignConfig: shards must be >= 1");
  }
  if (config_.threads < 1) {
    throw std::invalid_argument("SbrCampaignConfig: threads must be >= 1");
  }
  return config_;
}

SbrCampaignResult run_sbr_campaign(const SbrCampaignConfig& config,
                                   const DetectorConfig& detector_config) {
  const SbrPlan plan = sbr_plan(config.vendor, config.file_size);
  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(config.requests_per_second) *
      static_cast<std::uint64_t>(config.duration_s);
  const std::uint64_t burst =
      config.same_key_burst > 1 ? static_cast<std::uint64_t>(config.same_key_burst) : 1;

  SbrBlockResult merged;
  if (config.shards <= 1) {
    // Serial path: one block over the whole grid, writing straight into the
    // caller's observability sinks -- bit-for-bit the pre-sharding campaign.
    merged = run_sbr_block(config, plan, 0, total_requests, config.tracer,
                           config.metrics);
  } else {
    // Sharded path: burst-aligned contiguous blocks, each against its own
    // testbed and its own tracer/metrics sinks, merged in shard order.
    struct ShardOut {
      SbrBlockResult block;
      obs::Tracer tracer;
      obs::MetricsRegistry metrics;
    };
    const ShardPlan shard_plan(total_requests, config.shards, /*seed=*/0,
                               burst);
    std::vector<ShardOut> outs(shard_plan.size());
    run_shards(shard_plan, static_cast<std::size_t>(config.threads),
               [&](const Shard& shard) {
                 ShardOut& out = outs[shard.index];
                 out.block = run_sbr_block(
                     config, plan, shard.begin, shard.end,
                     config.tracer ? &out.tracer : nullptr,
                     config.metrics ? &out.metrics : nullptr);
               });
    merged.per_node_upstream_bytes.assign(config.edge_nodes, 0);
    merged.per_node_ingress_exchanges.assign(config.edge_nodes, 0);
    for (ShardOut& out : outs) {
      merged.attacker += out.block.attacker;
      merged.attacker_truncated += out.block.attacker_truncated;
      merged.origin_response_bytes += out.block.origin_response_bytes;
      for (std::size_t i = 0; i < config.edge_nodes; ++i) {
        merged.per_node_upstream_bytes[i] += out.block.per_node_upstream_bytes[i];
        merged.per_node_ingress_exchanges[i] +=
            out.block.per_node_ingress_exchanges[i];
      }
      add_shield_stats(merged.shield, out.block.shield);
      merged.samples.insert(merged.samples.end(), out.block.samples.begin(),
                            out.block.samples.end());
      if (config.tracer) config.tracer->merge_from(out.tracer);
      if (config.metrics) config.metrics->merge_from(out.metrics);
    }
  }

  // Detector replay: the concatenated sample stream is in global exchange
  // order regardless of how many shards produced it, so the sliding-window
  // verdict matches the serial run's whenever the samples do.
  RangeAmpDetector detector(detector_config);
  for (const DetectorSample& sample : merged.samples) detector.observe(sample);

  SbrCampaignResult result;
  result.attacker = merged.attacker;
  result.attacker_truncated = merged.attacker_truncated;
  result.origin.response_bytes = merged.origin_response_bytes;
  result.amplification = net::amplification_factor(result.origin, result.attacker);
  result.per_node_upstream_bytes = merged.per_node_upstream_bytes;
  result.nodes_touched = 0;
  for (const std::uint64_t exchanges : merged.per_node_ingress_exchanges) {
    if (exchanges > 0) ++result.nodes_touched;
  }
  result.detector_alarmed = detector.alarmed();
  result.detector_stats = detector.stats();
  result.shield_stats = merged.shield;

  // Project onto the fluid link for the time series: per-request byte costs
  // are the campaign averages.
  sim::AttackLoadConfig load;
  load.origin_uplink_mbps = config.origin_uplink_mbps;
  load.requests_per_second = config.requests_per_second;
  load.duration_s = config.duration_s;
  load.origin_response_bytes = result.origin.response_bytes / total_requests;
  load.client_response_bytes = result.attacker.response_bytes / total_requests;
  if (config.shield.coalescing.enabled || config.shield.breaker.enabled) {
    // Shielded projection: the DES run redoes the grouping/shedding itself,
    // so origin bytes must be per *fetch that reached the wire*, not the
    // campaign average (which already folds the absorbed requests in).
    const std::uint64_t origin_fetches =
        result.shield_stats.fill_fetches > 0 ? result.shield_stats.fill_fetches
                                             : total_requests;
    sim::ShieldedLoadConfig sload;
    sload.base = load;
    sload.base.origin_response_bytes = result.origin.response_bytes / origin_fetches;
    sload.same_key_burst = config.same_key_burst;
    sload.coalesce = config.shield.coalescing.enabled;
    const cdn::CircuitBreakerPolicy& cb = config.shield.breaker;
    if (cb.enabled && cb.max_connections > 0) {
      // Per-node admission caps aggregate across the deployment's nodes.
      sload.max_pending =
          static_cast<std::size_t>(cb.max_connections + cb.max_pending) *
          config.edge_nodes;
    }
    sload.shed_response_bytes = load.client_response_bytes;
    result.series = sim::simulate_attack_load_shielded(sload).series;
  } else {
    result.series = sim::simulate_attack_load(load);
  }
  result.bandwidth = sim::summarize(load, result.series);
  return result;
}

// ---------------------------------------------------------------------------
// OBR node-exhaustion campaign.
// ---------------------------------------------------------------------------

namespace {

struct ObrBlockResult {
  std::uint64_t fcdn_bcdn_response_bytes = 0;
  std::uint64_t bcdn_origin_response_bytes = 0;
  std::uint64_t attacker_response_bytes = 0;
  std::uint64_t attacker_truncated = 0;
};

ObrBlockResult run_obr_block(const ObrCampaignConfig& config,
                             const std::string& range_value,
                             std::uint64_t begin, std::uint64_t end) {
  // One cascade per block: the BCDN caches the small entity after the first
  // pull, exactly as a pinned-node attack would see.  Every campaign request
  // busts both caches with a fresh query, so block totals are independent of
  // where the block boundaries fall.
  cdn::ProfileOptions fcdn_options;
  if (config.fcdn == cdn::Vendor::kCloudflare) {
    fcdn_options.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  }
  CascadeTestbed bed(cdn::make_profile(config.fcdn, fcdn_options),
                     cdn::make_profile(config.bcdn), obr_origin_config(),
                     config.transport);
  bed.origin().resources().add_synthetic(std::string{kObrPath},
                                         config.resource_size);

  net::TransferOptions abort_early;
  abort_early.abort_after_body_bytes = 4096;
  for (std::uint64_t i = begin; i < end; ++i) {
    // Rotate the cache-busting query (fixed width keeps the request line --
    // and with it the header-limit arithmetic -- constant): both CDNs must
    // miss on every request, or the FCDN would answer from its own cache.
    char query[32];
    std::snprintf(query, sizeof(query), "?x=%06llu",
                  static_cast<unsigned long long>(i));
    http::Request request =
        http::make_get(std::string{kObrHost}, std::string{kObrPath} + query);
    request.headers.add("Range", range_value);
    bed.send(request, abort_early);
  }

  ObrBlockResult block;
  block.fcdn_bcdn_response_bytes = bed.fcdn_bcdn_traffic().response_bytes();
  block.bcdn_origin_response_bytes = bed.bcdn_origin_traffic().response_bytes();
  block.attacker_response_bytes = bed.client_traffic().response_bytes();
  block.attacker_truncated = bed.client_traffic().truncated_count();
  return block;
}

}  // namespace

ObrCampaignConfig ObrCampaignConfig::Builder::build() const {
  if (config_.resource_size == 0) {
    throw std::invalid_argument("ObrCampaignConfig: resource_size must be > 0");
  }
  if (config_.requests_per_second <= 0) {
    throw std::invalid_argument(
        "ObrCampaignConfig: requests_per_second must be > 0");
  }
  if (config_.duration_s <= 0) {
    throw std::invalid_argument("ObrCampaignConfig: duration_s must be > 0");
  }
  if (config_.node_uplink_mbps <= 0) {
    throw std::invalid_argument(
        "ObrCampaignConfig: node_uplink_mbps must be > 0");
  }
  if (config_.shards == 0) {
    throw std::invalid_argument("ObrCampaignConfig: shards must be >= 1");
  }
  if (config_.threads < 1) {
    throw std::invalid_argument("ObrCampaignConfig: threads must be >= 1");
  }
  return config_;
}

ObrCampaignResult run_obr_campaign(const ObrCampaignConfig& config) {
  ObrCampaignResult result;
  // Plan: either the caller's n or the cascade's discovered maximum, less a
  // small margin because the campaign's cache-busting query lengthens the
  // request line (which participates in Cloudflare's header-limit formula).
  if (config.overlapping_ranges != 0) {
    result.n = config.overlapping_ranges;
  } else {
    const std::size_t max_n =
        measure_obr(config.fcdn, config.bcdn, config.resource_size).max_n;
    if (max_n == 0) return result;  // infeasible cascade
    result.n = max_n > 4 ? max_n - 4 : max_n;
  }

  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(config.requests_per_second) *
      static_cast<std::uint64_t>(config.duration_s);
  const std::string range_value = obr_range_case(config.fcdn, result.n).to_string();

  const ShardPlan shard_plan(total_requests,
                             std::max<std::size_t>(1, config.shards));
  std::vector<ObrBlockResult> blocks(shard_plan.size());
  run_shards(shard_plan, static_cast<std::size_t>(std::max(1, config.threads)),
             [&](const Shard& shard) {
               blocks[shard.index] =
                   run_obr_block(config, range_value, shard.begin, shard.end);
             });
  std::uint64_t fcdn_bcdn_response_bytes = 0;
  for (const ObrBlockResult& block : blocks) {
    fcdn_bcdn_response_bytes += block.fcdn_bcdn_response_bytes;
    result.bcdn_origin_response_bytes += block.bcdn_origin_response_bytes;
    result.attacker_response_bytes += block.attacker_response_bytes;
    result.attacker_truncated += block.attacker_truncated;
  }
  result.fcdn_bcdn_bytes_per_request =
      total_requests == 0 ? 0 : fcdn_bcdn_response_bytes / total_requests;
  result.amplification =
      result.bcdn_origin_response_bytes == 0
          ? 0
          : static_cast<double>(fcdn_bcdn_response_bytes) /
                static_cast<double>(result.bcdn_origin_response_bytes);

  // Project onto the targeted node's uplink.
  sim::AttackLoadConfig load;
  load.origin_uplink_mbps = config.node_uplink_mbps;
  load.requests_per_second = config.requests_per_second;
  load.duration_s = config.duration_s;
  load.origin_response_bytes = result.fcdn_bcdn_bytes_per_request;
  load.client_response_bytes = 4096;
  result.series = sim::simulate_attack_load(load);
  result.bandwidth = sim::summarize(load, result.series);
  for (const auto& sample : result.series) {
    if (sample.origin_out_mbps >= 0.99 * config.node_uplink_mbps) {
      result.seconds_to_saturation = sample.second + 1.0;
      break;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Benign workload.
// ---------------------------------------------------------------------------

namespace {

struct LegitBlockResult {
  net::TrafficTotals client;
  std::uint64_t origin_response_bytes = 0;
  std::size_t hits = 0;
  std::vector<DetectorSample> samples;
};

LegitBlockResult run_legit_block(const LegitWorkloadConfig& config,
                                 std::uint64_t rng_seed, std::size_t requests) {
  origin::OriginServer origin;
  // A small site: a page, assets, one big download.
  origin.resources().add_literal("/index.html",
                                 std::string(4096, 'p'), "text/html");
  origin.resources().add_synthetic("/app.js", 128 * 1024, "text/javascript");
  origin.resources().add_synthetic("/video.mp4", 20u << 20, "video/mp4");
  origin.resources().add_synthetic("/download.iso", 50u << 20,
                                   "application/octet-stream");

  cdn::EdgeCluster cluster(
      [&] { return cdn::make_profile(config.vendor); }, config.edge_nodes,
      origin, cdn::NodeSelection::kHashByHost, config.transport);

  net::TrafficRecorder client_traffic("clients");
  client_traffic.set_keep_log(false);
  const std::unique_ptr<net::Transport> client_wire =
      net::make_transport(config.transport, client_traffic, cluster);

  http::Rng rng{rng_seed};

  LegitBlockResult block;
  block.samples.reserve(requests);
  std::uint64_t origin_before = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    http::Request request;
    std::optional<http::RangeSet> range;
    std::uint64_t resource_size = 0;
    switch (rng.below(5)) {
      case 0:
      case 1:  // page loads (cacheable, no Range)
        request = http::make_get("shop.example.com",
                                 rng.chance(0.5) ? "/index.html" : "/app.js");
        resource_size = 128 * 1024;
        break;
      case 2: {  // video seek: open-ended resume from a realistic offset
        request = http::make_get("shop.example.com", "/video.mp4");
        http::RangeSet set;
        set.specs.push_back(
            http::ByteRangeSpec::open(rng.below(20u << 20)));
        range = set;
        resource_size = 20u << 20;
        break;
      }
      case 3: {  // multi-threaded downloader: a disjoint 4 MB segment
        request = http::make_get("shop.example.com", "/download.iso");
        const std::uint64_t seg = rng.below(12);
        http::RangeSet set;
        set.specs.push_back(http::ByteRangeSpec::closed(
            seg * (4u << 20), (seg + 1) * (4u << 20) - 1));
        range = set;
        resource_size = 50u << 20;
        break;
      }
      default: {  // resume of the tail of a download
        request = http::make_get("shop.example.com", "/download.iso");
        http::RangeSet set;
        set.specs.push_back(http::ByteRangeSpec::suffix_of(
            rng.between(1u << 20, 8u << 20)));
        range = set;
        resource_size = 50u << 20;
        break;
      }
    }
    if (range) request.headers.add("Range", range->to_string());

    const std::uint64_t client_before = client_traffic.response_bytes();
    client_wire->transfer(request);
    const std::uint64_t origin_after = cluster.total_upstream_response_bytes();

    const DetectorSample sample = make_detector_sample(
        selected_bytes_of(range, resource_size), resource_size,
        {0, client_traffic.response_bytes() - client_before},
        {0, origin_after - origin_before});
    if (sample.cache_hit) ++block.hits;
    origin_before = origin_after;
    block.samples.push_back(sample);
  }

  block.client = client_traffic.totals();
  block.origin_response_bytes = cluster.total_upstream_response_bytes();
  return block;
}

}  // namespace

LegitWorkloadConfig LegitWorkloadConfig::Builder::build() const {
  if (config_.requests == 0) {
    throw std::invalid_argument("LegitWorkloadConfig: requests must be > 0");
  }
  if (config_.edge_nodes == 0) {
    throw std::invalid_argument("LegitWorkloadConfig: edge_nodes must be > 0");
  }
  if (config_.shards == 0) {
    throw std::invalid_argument("LegitWorkloadConfig: shards must be >= 1");
  }
  if (config_.threads < 1) {
    throw std::invalid_argument("LegitWorkloadConfig: threads must be >= 1");
  }
  return config_;
}

LegitWorkloadResult run_legit_workload(const LegitWorkloadConfig& config,
                                       const DetectorConfig& detector_config) {
  std::vector<LegitBlockResult> blocks;
  if (config.shards <= 1) {
    // Serial path: the legacy single-stream run, seeded with config.seed
    // directly (NOT a derived stream) so pre-sharding results replay
    // byte-identically.
    blocks.push_back(run_legit_block(config, config.seed, config.requests));
  } else {
    const ShardPlan shard_plan(config.requests, config.shards, config.seed);
    blocks.resize(shard_plan.size());
    run_shards(shard_plan, static_cast<std::size_t>(std::max(1, config.threads)),
               [&](const Shard& shard) {
                 blocks[shard.index] = run_legit_block(
                     config, shard.seed,
                     static_cast<std::size_t>(shard.size()));
               });
  }

  RangeAmpDetector detector(detector_config);
  LegitWorkloadResult result;
  std::size_t hits = 0;
  for (const LegitBlockResult& block : blocks) {
    result.client += block.client;
    result.origin.response_bytes += block.origin_response_bytes;
    hits += block.hits;
    for (const DetectorSample& sample : block.samples) detector.observe(sample);
  }
  result.cache_hit_rate =
      static_cast<double>(hits) / static_cast<double>(config.requests);
  result.detector_alarmed = detector.alarmed();
  result.detector_stats = detector.stats();
  return result;
}

// ---------------------------------------------------------------------------
// Cache-pollution campaign: shard block runner + ordered reduction.
// ---------------------------------------------------------------------------

namespace {

struct PollutionBlockResult {
  std::size_t legit_requests = 0;
  std::size_t attack_requests = 0;
  std::size_t legit_hits = 0;
  net::TrafficTotals attacker;
  std::uint64_t origin_response_bytes = 0;
  std::uint64_t attack_origin_response_bytes = 0;
  std::uint64_t cache_bytes_peak = 0;
  std::uint64_t cache_bytes_end = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_admission_rejects = 0;
};

// One block runs `requests` interleaved exchanges against its OWN origin +
// single edge node (per-shard cache ownership, docs/parallel-model.md).
// Attack keys are stamped with the *global* request index so no two shards
// ever reuse a cache-busting query.
PollutionBlockResult run_pollution_block(const CachePollutionConfig& config,
                                         std::uint64_t rng_seed,
                                         std::uint64_t global_begin,
                                         std::size_t requests,
                                         obs::MetricsRegistry* metrics) {
  origin::OriginServer origin;
  origin.resources().add_synthetic("/target.bin", config.attack_object_bytes,
                                   "application/octet-stream");
  for (std::size_t i = 0; i < config.catalog_objects; ++i) {
    origin.resources().add_synthetic("/obj/" + std::to_string(i),
                                     config.object_bytes,
                                     "application/octet-stream");
  }

  cdn::VendorProfile profile = cdn::make_profile(config.vendor);
  profile.traits.cache = config.cache;
  cdn::CdnNode node(std::move(profile), origin);
  if (metrics) node.set_metrics(metrics);

  net::TrafficRecorder attacker_traffic("attacker");
  attacker_traffic.set_keep_log(false);
  net::Wire attacker_wire(attacker_traffic, node);
  net::TrafficRecorder legit_traffic("legit-clients");
  legit_traffic.set_keep_log(false);
  net::Wire legit_wire(legit_traffic, node);

  // Zipf(1) popularity CDF over object ranks (rank-k weight 1/k), built
  // with divisions only -- std::pow is not bit-stable across libms and the
  // committed CSV must regenerate byte-identically everywhere.
  std::vector<double> cdf(config.catalog_objects);
  double total_weight = 0;
  for (std::size_t i = 0; i < config.catalog_objects; ++i) {
    total_weight += 1.0 / static_cast<double>(i + 1);
    cdf[i] = total_weight;
  }

  http::Rng rng{rng_seed};
  const auto zipf_rank = [&]() -> std::size_t {
    // 53 uniform bits -> [0, 1) -> CDF inversion by binary search.
    const double u =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53 * total_weight;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return std::min<std::size_t>(it - cdf.begin(), config.catalog_objects - 1);
  };

  PollutionBlockResult block;
  const auto legit_request = [&](bool measured) {
    http::Request request = http::make_get(
        "shop.example.com", "/obj/" + std::to_string(zipf_rank()));
    const std::uint64_t before = node.upstream_traffic().response_bytes();
    legit_wire.transfer(request);
    if (!measured) return;
    ++block.legit_requests;
    if (node.upstream_traffic().response_bytes() == before) ++block.legit_hits;
  };

  // Warmup: legit-only traffic populates the cache before the flood.
  for (std::size_t i = 0; i < config.warmup_requests; ++i) {
    legit_request(/*measured=*/false);
  }

  for (std::size_t i = 0; i < requests; ++i) {
    if (rng.chance(config.attack_fraction)) {
      // The paper's SBR shape: fresh random query (here: the globally
      // unique request index) + a 1-byte range.  On a Deletion-policy
      // vendor this both pulls the full entity from the origin and inserts
      // it into the cache under a never-to-be-seen-again key.
      http::Request request = http::make_get(
          "shop.example.com",
          "/target.bin?x=" + std::to_string(global_begin + i));
      request.headers.add("Range", "bytes=0-0");
      const std::uint64_t before = node.upstream_traffic().response_bytes();
      attacker_wire.transfer(request);
      block.attack_origin_response_bytes +=
          node.upstream_traffic().response_bytes() - before;
      ++block.attack_requests;
    } else {
      legit_request(/*measured=*/true);
    }
    block.cache_bytes_peak =
        std::max(block.cache_bytes_peak, node.cache().bytes());
  }

  block.attacker = attacker_traffic.totals();
  block.origin_response_bytes = node.upstream_traffic().response_bytes();
  const cdn::Cache::Stats stats = node.cache().stats();
  block.cache_bytes_end = stats.bytes;
  block.cache_evictions = stats.evictions;
  block.cache_admission_rejects = stats.admission_rejects;
  return block;
}

}  // namespace

CachePollutionResult run_cache_pollution_campaign(
    const CachePollutionConfig& config) {
  std::vector<PollutionBlockResult> blocks;
  if (config.shards <= 1) {
    // Serial path: seeded with config.seed directly (NOT a derived stream)
    // so the canonical single-shard rows replay byte-identically.
    blocks.push_back(run_pollution_block(config, config.seed, 0,
                                         config.requests, config.metrics));
  } else {
    const ShardPlan shard_plan(config.requests, config.shards, config.seed);
    blocks.resize(shard_plan.size());
    std::vector<obs::MetricsRegistry> shard_metrics(
        config.metrics ? shard_plan.size() : 0);
    run_shards(shard_plan,
               static_cast<std::size_t>(std::max(1, config.threads)),
               [&](const Shard& shard) {
                 blocks[shard.index] = run_pollution_block(
                     config, shard.seed, shard.begin,
                     static_cast<std::size_t>(shard.size()),
                     config.metrics ? &shard_metrics[shard.index] : nullptr);
               });
    if (config.metrics) {
      for (const obs::MetricsRegistry& m : shard_metrics) {
        config.metrics->merge_from(m);
      }
    }
  }

  CachePollutionResult result;
  for (const PollutionBlockResult& block : blocks) {
    result.legit_requests += block.legit_requests;
    result.attack_requests += block.attack_requests;
    result.legit_hits += block.legit_hits;
    result.attacker += block.attacker;
    result.origin_response_bytes += block.origin_response_bytes;
    result.attack_origin_response_bytes += block.attack_origin_response_bytes;
    result.cache_bytes_peak =
        std::max(result.cache_bytes_peak, block.cache_bytes_peak);
    result.cache_bytes_end =
        std::max(result.cache_bytes_end, block.cache_bytes_end);
    result.cache_evictions += block.cache_evictions;
    result.cache_admission_rejects += block.cache_admission_rejects;
  }
  if (result.legit_requests != 0) {
    result.legit_hit_rate = static_cast<double>(result.legit_hits) /
                            static_cast<double>(result.legit_requests);
  }
  if (result.attacker.response_bytes != 0) {
    result.attack_amplification =
        static_cast<double>(result.attack_origin_response_bytes) /
        static_cast<double>(result.attacker.response_bytes);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Gossip-detection campaign: sharded schedule materialization + serial replay.
// ---------------------------------------------------------------------------

namespace {

// One precomputed exchange.  Derived statelessly from the global exchange
// index (below), so any shard can fill any slice of the schedule and the
// bytes come out identical.
struct GossipExchange {
  std::uint32_t user = 0;    ///< legit client identity (ignored for attacks)
  std::uint32_t object = 0;  ///< Zipf catalog rank (ignored for attack/probe)
  std::uint32_t node = 0;    ///< ingress node this exchange lands on
  bool attack = false;
  bool probe = false;
};

// Fills schedule[begin, end).  Every datum is a pure function of
// (config.seed, global index): attack slots and the attacker's rotating
// ingress node come straight from index arithmetic; legit identity, probe
// coin and Zipf rank come from a per-index Rng stream.  The per-shard seed
// from ShardPlan is deliberately unused -- gossip couples the nodes, so the
// exchanges must later replay serially against ONE cluster, and the schedule
// itself is what sharding parallelizes.
void fill_gossip_schedule(const GossipDetectionConfig& config,
                          std::vector<GossipExchange>& schedule,
                          const std::vector<double>& zipf_cdf,
                          double zipf_total_weight, std::uint64_t begin,
                          std::uint64_t end) {
  const std::uint64_t stream = splitmix64(config.seed);
  const std::size_t rotation =
      std::max<std::size_t>(1, config.attacker_rotation_requests);
  for (std::uint64_t i = begin; i < end; ++i) {
    GossipExchange& ex = schedule[i];
    if (config.attack_every != 0 && i % config.attack_every == 0) {
      const std::uint64_t attack_index = i / config.attack_every;
      ex.attack = true;
      ex.node = static_cast<std::uint32_t>((attack_index / rotation) %
                                           config.edge_nodes);
      continue;
    }
    http::Rng rng{splitmix64(stream ^ i)};
    ex.user = static_cast<std::uint32_t>(rng.below(config.legit_users));
    // Identity-pinned ingress, as a DNS load balancer would map a resolver:
    // one client always lands on one node, so its per-client detector
    // actually accumulates a window there.
    ex.node = static_cast<std::uint32_t>(splitmix64(ex.user) %
                                         config.edge_nodes);
    ex.probe = rng.chance(config.probe_fraction);
    if (!ex.probe) {
      // Zipf(1) CDF inversion, same divisions-only table as the pollution
      // campaign (std::pow is not bit-stable across libms).
      const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53 *
                       zipf_total_weight;
      const auto it = std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u);
      ex.object = static_cast<std::uint32_t>(std::min<std::size_t>(
          it - zipf_cdf.begin(), config.catalog_objects - 1));
    }
  }
}

}  // namespace

GossipDetectionResult run_gossip_detection_campaign(
    const GossipDetectionConfig& config) {
  if (config.edge_nodes == 0) {
    throw std::invalid_argument(
        "GossipDetectionConfig: edge_nodes must be >= 1");
  }
  if (config.catalog_objects == 0 || config.legit_users == 0) {
    throw std::invalid_argument(
        "GossipDetectionConfig: catalog_objects and legit_users must be >= 1");
  }

  std::vector<double> zipf_cdf(config.catalog_objects);
  double zipf_total_weight = 0;
  for (std::size_t i = 0; i < config.catalog_objects; ++i) {
    zipf_total_weight += 1.0 / static_cast<double>(i + 1);
    zipf_cdf[i] = zipf_total_weight;
  }

  // Phase 1: materialize the exchange schedule (parallel-safe; every slot is
  // index-derived, so serial and sharded fills are byte-identical).
  std::vector<GossipExchange> schedule(config.requests);
  if (config.shards <= 1) {
    fill_gossip_schedule(config, schedule, zipf_cdf, zipf_total_weight, 0,
                         config.requests);
  } else {
    const ShardPlan shard_plan(config.requests, config.shards, config.seed);
    run_shards(shard_plan,
               static_cast<std::size_t>(std::max(1, config.threads)),
               [&](const Shard& shard) {
                 fill_gossip_schedule(
                     config, schedule, zipf_cdf, zipf_total_weight,
                     shard.begin,
                     shard.begin + static_cast<std::uint64_t>(shard.size()));
               });
  }

  // Phase 2: replay serially against one detection-enabled cluster.
  origin::OriginServer origin;
  origin.resources().add_synthetic("/target.bin", config.attack_object_bytes,
                                   "application/octet-stream");
  for (std::size_t i = 0; i < config.catalog_objects; ++i) {
    origin.resources().add_synthetic("/obj/" + std::to_string(i),
                                     config.object_bytes,
                                     "application/octet-stream");
  }

  cdn::EdgeCluster cluster(
      [&]() {
        cdn::VendorProfile profile = cdn::make_profile(config.vendor);
        profile.traits.detection = config.detection;
        return profile;
      },
      config.edge_nodes, origin);

  double sim_now = 0;
  cluster.set_clock([&sim_now]() { return sim_now; });
  if (config.tracer) cluster.set_tracer(config.tracer);
  if (config.metrics) cluster.set_metrics(config.metrics);

  // Nodes quarantining the attacker right now: via the fabric when gossip is
  // on, else a direct table scan (the gossip-off baseline has no fabric).
  const auto attacker_coverage = [&](double now) -> std::size_t {
    if (const cdn::GossipFabric* fabric = cluster.gossip()) {
      return fabric->coverage("attacker", now);
    }
    std::size_t covered = 0;
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      const cdn::NodeDetection* detection = cluster.node(n).detection();
      if (detection != nullptr &&
          detection->table().find_client("attacker", now) != nullptr) {
        ++covered;
      }
    }
    return covered;
  };

  GossipDetectionResult result;
  std::size_t legit_hits = 0;
  double first_attack_at = -1;
  const double dt =
      1.0 / static_cast<double>(std::max(1, config.requests_per_second));
  double next_churn = config.churn_restart_period_seconds;
  std::size_t churn_victim = 0;

  for (std::size_t i = 0; i < config.requests; ++i) {
    sim_now = static_cast<double>(i) * dt;
    while (config.churn_restart_period_seconds > 0 && sim_now >= next_churn) {
      cluster.restart_node_detection(churn_victim++ % config.edge_nodes);
      next_churn += config.churn_restart_period_seconds;
    }

    const GossipExchange& ex = schedule[i];
    cluster.pin(ex.node);

    http::Request request;
    if (ex.attack) {
      // The paper's node-rotating SBR shape: fresh cache-busting query per
      // request, 1-byte range, same identity throughout.
      request = http::make_get(
          "shop.example.com",
          "/target.bin?x=" + std::to_string(i / config.attack_every));
      request.headers.add("Range", "bytes=0-0");
      request.headers.add(std::string(cdn::kClientKeyHeader), "attacker");
      if (first_attack_at < 0) first_attack_at = sim_now;
    } else if (ex.probe) {
      // Legit existence probe against the attack target's URL -- tiny closed
      // range on the same base key, i.e. exactly what pattern quarantine
      // would collaterally block.
      request = http::make_get("shop.example.com", "/target.bin");
      request.headers.add("Range", "bytes=0-1");
      request.headers.add(std::string(cdn::kClientKeyHeader),
                          "u" + std::to_string(ex.user));
    } else {
      request = http::make_get("shop.example.com",
                               "/obj/" + std::to_string(ex.object));
      request.headers.add(std::string(cdn::kClientKeyHeader),
                          "u" + std::to_string(ex.user));
    }

    const std::uint64_t upstream_before =
        cluster.total_upstream_response_bytes();
    const http::Response response = cluster.handle(request);
    const bool quarantined = response.status == http::kTooManyRequests;

    if (ex.attack) {
      ++result.attack_requests;
      if (quarantined) ++result.attack_quarantined;
    } else {
      ++result.legit_requests;
      if (quarantined) {
        ++result.legit_quarantined;
      } else if (cluster.total_upstream_response_bytes() == upstream_before) {
        ++legit_hits;
      }
    }

    // Convergence: the first exchange after which EVERY node holds an active
    // attacker signature (checked post-handle so this exchange's own alarm
    // counts).
    if (result.convergence_exchange < 0 && config.detection.enabled &&
        config.attack_every != 0 &&
        attacker_coverage(sim_now) == config.edge_nodes) {
      result.convergence_exchange = static_cast<std::int64_t>(i);
      result.convergence_rotations =
          static_cast<double>(i / config.attack_every + 1) /
          static_cast<double>(
              std::max<std::size_t>(1, config.attacker_rotation_requests));
      result.detection_latency_seconds = sim_now - first_attack_at;
    }
  }

  sim_now = static_cast<double>(config.requests) * dt;
  result.final_coverage = attacker_coverage(sim_now);
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    if (const cdn::NodeDetection* detection = cluster.node(n).detection()) {
      result.alarms += detection->stats().alarms;
      result.signatures_expired += detection->table().expired_total;
    }
  }
  if (const cdn::GossipFabric* fabric = cluster.gossip()) {
    result.gossip = fabric->stats();
  }
  if (result.legit_requests != 0) {
    result.collateral_rate = static_cast<double>(result.legit_quarantined) /
                             static_cast<double>(result.legit_requests);
  }
  const std::size_t served_legit =
      result.legit_requests - result.legit_quarantined;
  if (served_legit != 0) {
    result.legit_hit_rate =
        static_cast<double>(legit_hits) / static_cast<double>(served_legit);
  }
  return result;
}

}  // namespace rangeamp::core
