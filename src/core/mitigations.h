// Mitigations from section VI-C of the paper, applied as profile transforms.
//
// Each transform takes a (possibly vulnerable) vendor profile and returns a
// hardened one.  The ablation benchmark re-runs the SBR/OBR attacks with
// each mitigation to show the amplification factor collapse.
#pragma once

#include <cstdint>
#include <string_view>

#include "cdn/node.h"

namespace rangeamp::core {

enum class Mitigation {
  /// Forward the Range header unchanged ("CDNs can adopt the Laziness policy
  /// to completely defend against the SBR attack"; G-Core's fix).
  kLaziness,
  /// Expand requested ranges by at most 8 KB instead of deleting them ("it
  /// is acceptable to increase the byte range by 8KB").
  kBoundedExpansion8K,
  /// Coalesce overlapping/adjacent ranges before answering multi-range
  /// requests (RFC 7233 §6.1).
  kCoalesceMulti,
  /// Reject overlapping multi-range requests with 416 (CDN77's fix).
  kRejectOverlapping,
  /// Reject requests with more than 16 ranges at ingress (the "many small
  /// ranges" guard of RFC 7233 §6.1).
  kRangeCountCap16,
  /// Slice-aligned origin fetching with per-slice caching (1 MiB slices) --
  /// the fix G-Core Labs actually shipped (section VII).
  kSlice1M,
  /// Exclude query strings from the cache key -- the customer-side page
  /// rule Cloudflare/Azure recommended (section VII).  Defeats sustained
  /// cache-busting campaigns, not the first hit.
  kIgnoreQueryStrings,
};

inline constexpr Mitigation kAllMitigations[] = {
    Mitigation::kLaziness,        Mitigation::kBoundedExpansion8K,
    Mitigation::kCoalesceMulti,   Mitigation::kRejectOverlapping,
    Mitigation::kRangeCountCap16, Mitigation::kSlice1M,
    Mitigation::kIgnoreQueryStrings,
};

std::string_view mitigation_name(Mitigation m) noexcept;

/// Applies one mitigation to a profile, preserving the vendor's identity
/// (headers, limits, calibration).
cdn::VendorProfile apply_mitigation(cdn::VendorProfile profile, Mitigation m);

}  // namespace rangeamp::core
