#include "core/sbr.h"

#include "core/parallel.h"
#include "core/testbed.h"

namespace rangeamp::core {

using cdn::Vendor;
using http::ByteRangeSpec;
using http::RangeSet;

namespace {

RangeSet single(ByteRangeSpec spec) {
  RangeSet set;
  set.specs.push_back(spec);
  return set;
}

}  // namespace

SbrPlan sbr_plan(Vendor vendor, std::uint64_t file_size) {
  SbrPlan plan;
  switch (vendor) {
    case Vendor::kAkamai:
    case Vendor::kCdn77:
    case Vendor::kCdnsun:
    case Vendor::kCloudflare:
    case Vendor::kFastly:
    case Vendor::kGcoreLabs:
    case Vendor::kStackPath:
    case Vendor::kTencentCloud:
      plan.description = "bytes=0-0";
      plan.range = single(ByteRangeSpec::closed(0, 0));
      break;
    case Vendor::kAlibabaCloud:
      plan.description = "bytes=-1";
      plan.range = single(ByteRangeSpec::suffix_of(1));
      break;
    case Vendor::kAzure:
      if (file_size <= 8 * (1u << 20)) {
        plan.description = "bytes=0-0 (F<=8MB)";
        plan.range = single(ByteRangeSpec::closed(0, 0));
      } else {
        plan.description = "bytes=8388608-8388608 (F>8MB)";
        plan.range = single(ByteRangeSpec::closed(8'388'608, 8'388'608));
      }
      break;
    case Vendor::kCloudFront:
      plan.description = "bytes=0-0,9437184-9437184";
      plan.range = single(ByteRangeSpec::closed(0, 0));
      plan.range.specs.push_back(ByteRangeSpec::closed(9'437'184, 9'437'184));
      break;
    case Vendor::kHuaweiCloud:
      if (file_size < cdn::kHuaweiSizeThreshold) {
        plan.description = "bytes=-1 (F<10MB)";
        plan.range = single(ByteRangeSpec::suffix_of(1));
      } else {
        plan.description = "bytes=0-0 (F>=10MB)";
        plan.range = single(ByteRangeSpec::closed(0, 0));
      }
      break;
    case Vendor::kKeyCdn:
      plan.description = "bytes=0-0 & bytes=0-0";
      plan.range = single(ByteRangeSpec::closed(0, 0));
      plan.sends = 2;  // first sighting is forwarded lazily; the second
                       // triggers Deletion (Table I)
      break;
  }
  return plan;
}

SbrMeasurement measure_sbr(Vendor vendor, std::uint64_t file_size,
                           const cdn::ProfileOptions& options,
                           obs::Tracer* tracer) {
  SingleCdnTestbed bed(cdn::make_profile(vendor, options));
  bed.origin().resources().add_synthetic("/payload.bin", file_size);
  bed.set_tracer(tracer);

  const SbrPlan plan = sbr_plan(vendor, file_size);
  // A single fresh cache-busting query: KeyCDN's two sends must share the
  // same cache key for the second one to trigger Deletion.
  http::Request request =
      http::make_get(std::string{kDefaultHost}, "/payload.bin?cb=000001");
  request.headers.add("Range", plan.range.to_string());

  {
    obs::SpanScope root(tracer, "sbr.measure");
    root.note("vendor", cdn::vendor_name(vendor));
    root.note("file_size", std::to_string(file_size));
    root.note("case", plan.description);
    for (int i = 0; i < plan.sends; ++i) bed.send(request);
    // Recorder totals, stamped on the root so a trace consumer can verify
    // the trace's own per-segment wire-span sums against the "tcpdump" view.
    root.note("expect_client_request_bytes",
              std::to_string(bed.client_traffic().request_bytes()));
    root.note("expect_client_response_bytes",
              std::to_string(bed.client_traffic().response_bytes()));
    root.note("expect_origin_request_bytes",
              std::to_string(bed.origin_traffic().request_bytes()));
    root.note("expect_origin_response_bytes",
              std::to_string(bed.origin_traffic().response_bytes()));
  }

  SbrMeasurement m;
  m.vendor = vendor;
  m.file_size = file_size;
  m.exploited_case = plan.description;
  m.client_response_bytes = bed.client_traffic().response_bytes();
  m.origin_response_bytes = bed.origin_traffic().response_bytes();
  m.client_request_bytes = bed.client_traffic().request_bytes();
  m.origin_request_bytes = bed.origin_traffic().request_bytes();
  m.amplification =
      m.client_response_bytes == 0
          ? 0
          : static_cast<double>(m.origin_response_bytes) /
                static_cast<double>(m.client_response_bytes);
  return m;
}

SbrMeasurement measure_sbr_h2(Vendor vendor, std::uint64_t file_size,
                              int requests, const cdn::ProfileOptions& options,
                              obs::Tracer* tracer) {
  SingleCdnTestbedH2 bed(cdn::make_profile(vendor, options));
  bed.origin().resources().add_synthetic("/payload.bin", file_size);
  bed.set_tracer(tracer);
  const SbrPlan plan = sbr_plan(vendor, file_size);

  for (int i = 0; i < requests; ++i) {
    // Fresh cache-busting query per amplification unit, as a real campaign
    // would rotate; KeyCDN's plan sends each twice under the same key.
    http::Request request = http::make_get(
        std::string{kDefaultHost}, "/payload.bin?cb=" + std::to_string(i));
    request.headers.add("Range", plan.range.to_string());
    for (int s = 0; s < plan.sends; ++s) bed.send(request);
  }

  SbrMeasurement m;
  m.vendor = vendor;
  m.file_size = file_size;
  m.exploited_case = plan.description + " (h2)";
  m.client_response_bytes = bed.client_traffic().response_bytes();
  m.origin_response_bytes = bed.origin_traffic().response_bytes();
  m.client_request_bytes = bed.client_traffic().request_bytes();
  m.origin_request_bytes = bed.origin_traffic().request_bytes();
  m.amplification =
      m.client_response_bytes == 0
          ? 0
          : static_cast<double>(m.origin_response_bytes) /
                static_cast<double>(m.client_response_bytes);
  return m;
}

std::vector<SbrMeasurement> sweep_sbr(Vendor vendor,
                                      const std::vector<std::uint64_t>& file_sizes,
                                      const cdn::ProfileOptions& options,
                                      obs::Tracer* tracer, int threads) {
  std::vector<SbrMeasurement> out;
  if (threads <= 1 || file_sizes.size() <= 1) {
    out.reserve(file_sizes.size());
    for (const std::uint64_t size : file_sizes) {
      out.push_back(measure_sbr(vendor, size, options, tracer));
    }
    return out;
  }
  // One shard per size; each measurement traces into its own sink, merged
  // in size order so the sweep's trace reads exactly like the serial one.
  out.resize(file_sizes.size());
  std::vector<obs::Tracer> shard_tracers(tracer ? file_sizes.size() : 0);
  const ShardPlan plan(file_sizes.size(), file_sizes.size());
  run_shards(plan, static_cast<std::size_t>(threads), [&](const Shard& shard) {
    out[shard.index] =
        measure_sbr(vendor, file_sizes[shard.index], options,
                    tracer ? &shard_tracers[shard.index] : nullptr);
  });
  if (tracer) {
    for (const obs::Tracer& shard_tracer : shard_tracers) {
      tracer->merge_from(shard_tracer);
    }
  }
  return out;
}

}  // namespace rangeamp::core
