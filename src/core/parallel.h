// Sharded parallel execution for campaign-scale workloads.
//
// Every experiment in this reproduction is an aggregate over many
// *independent* exchanges (the paper's amplification factors are byte ratios
// summed across requests), which parallelizes without changing a single
// result byte -- provided the decomposition is deterministic.  This module
// supplies the two pieces the campaign drivers build on:
//
//   * ShardPlan -- splits an exchange grid [0, total) into contiguous,
//     group-aligned shards, each with a deterministically derived RNG seed
//     (SplitMix64 of `seed ^ shard_index`).  The plan is a pure function of
//     (total, shard_count, seed, group): it never consults the thread count,
//     the hardware, or a clock, so the same shard boundaries and seeds come
//     out on every machine and at every parallelism level.
//
//   * ThreadPool / run_shards -- a fixed-size worker pool (MPSC task queue,
//     mutex+condvar handoff) that executes one task per shard.  Threads only
//     decide *when* a shard runs, never *what* it computes; reductions are
//     performed by the caller in shard-index order after every shard
//     completed, so the merged result is identical at any thread count.
//
// ## Per-shard ownership rule
//
// Workers share NOTHING mutable.  A shard task must own every piece of
// state it touches:
//
//   * its own origin::OriginServer, cdn::CdnNode / EdgeCluster (and thus its
//     own cdn::Cache maps, ShieldStats, ValidationStats, OverloadStats --
//     all of which are plain per-instance members),
//   * its own net::TrafficRecorder / ExchangeRecord log,
//   * its own obs::Tracer and obs::MetricsRegistry sinks (merged afterwards
//     with Tracer::merge_from / MetricsRegistry::merge_from, in shard
//     order),
//   * its own http::Rng, seeded from Shard::seed -- never a shared stream.
//
// The shard function may read the (const) campaign config and the shard
// descriptor; everything it writes goes into a result slot indexed by
// Shard::index that no other shard touches.  This was audited against the
// library (src/ holds no mutable statics or thread_locals; recorders,
// caches and stats structs are all instance members), and the rule is what
// keeps the ThreadSanitizer CI tier clean.  Cross-shard coupling that the
// decomposition cannot express -- breaker windows spanning key groups,
// overload watermarks fed by global concurrency -- is exactly the state a
// campaign must keep `shards = 1` for; see docs/parallel-model.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rangeamp::core {

/// SplitMix64 (Steele et al.): the canonical seed-spreading finalizer.
/// Adjacent inputs (seed ^ 0, seed ^ 1, ...) map to decorrelated outputs,
/// which is what makes per-shard xorshift streams independent.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seed of shard `index` under campaign seed `seed`.  Depends only on the
/// pair -- NOT on the shard count -- so pinning the shard count pins every
/// stream, and growing a campaign appends new streams without perturbing
/// the existing ones.
constexpr std::uint64_t shard_seed(std::uint64_t seed,
                                   std::size_t index) noexcept {
  return splitmix64(seed ^ static_cast<std::uint64_t>(index));
}

/// One shard of an exchange grid: the contiguous global-index block
/// [begin, end) plus this shard's derived RNG seed.
struct Shard {
  std::size_t index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;    ///< past-the-end global exchange index
  std::uint64_t seed = 0;   ///< shard_seed(campaign_seed, index)

  std::uint64_t size() const noexcept { return end - begin; }
};

/// Deterministic decomposition of [0, total) into at most `shard_count`
/// contiguous shards.  Boundaries fall on multiples of `group` (a key-burst
/// group must never straddle a shard: splitting it would turn one shard's
/// cache hit into another shard's miss), block sizes differ by at most one
/// group, and empty shards are never emitted -- the plan clamps the shard
/// count to the group count.
class ShardPlan {
 public:
  ShardPlan(std::uint64_t total, std::size_t shard_count,
            std::uint64_t seed = 0, std::uint64_t group = 1);

  const std::vector<Shard>& shards() const noexcept { return shards_; }
  std::size_t size() const noexcept { return shards_.size(); }
  std::uint64_t total() const noexcept { return total_; }

 private:
  std::uint64_t total_;
  std::vector<Shard> shards_;
};

/// Fixed-size worker pool over an MPSC task queue.  Tasks are opaque
/// thunks; submission is cheap and never blocks on task execution.  The
/// pool is a scheduling device only -- determinism is the shard plan's job.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution by any worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_count_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t workers_count_;
};

/// Runs `fn(shard)` for every shard of `plan` on up to `threads` workers
/// and returns once all shards completed.  With `threads <= 1` (or a
/// single-shard plan) the shards run inline on the calling thread, in shard
/// order, with no pool ever created -- the serial path stays allocation-
/// and syscall-identical to a plain loop.  If any shard throws, the first
/// exception (in shard-index order) is rethrown after all shards finished.
void run_shards(const ShardPlan& plan, std::size_t threads,
                const std::function<void(const Shard&)>& fn);

}  // namespace rangeamp::core
