#include "core/autoplan.h"

#include "core/testbed.h"

namespace rangeamp::core {

using http::ByteRangeSpec;
using http::RangeSet;

namespace {

std::vector<SbrPlan> candidate_plans(std::uint64_t file_size) {
  const auto single = [](ByteRangeSpec spec) {
    RangeSet set;
    set.specs.push_back(spec);
    return set;
  };
  std::vector<SbrPlan> plans;
  plans.push_back({"bytes=0-0", single(ByteRangeSpec::closed(0, 0)), 1});
  plans.push_back({"bytes=-1", single(ByteRangeSpec::suffix_of(1)), 1});
  plans.push_back({"bytes=0-", single(ByteRangeSpec::open(0)), 1});
  // The stateful probe: the same tiny range sent twice (KeyCDN's pattern).
  plans.push_back({"bytes=0-0 & bytes=0-0", single(ByteRangeSpec::closed(0, 0)), 2});
  if (file_size > 8'388'608) {
    // Azure's second-window case.
    plans.push_back({"bytes=8388608-8388608",
                     single(ByteRangeSpec::closed(8'388'608, 8'388'608)), 1});
  }
  // CloudFront's expansion-stretching multi case.
  SbrPlan multi;
  multi.description = "bytes=0-0,9437184-9437184";
  multi.range = single(ByteRangeSpec::closed(0, 0));
  multi.range.specs.push_back(ByteRangeSpec::closed(9'437'184, 9'437'184));
  plans.push_back(std::move(multi));
  // A mid-file tiny range (catches prefix-window behaviours).
  if (file_size > 2) {
    plans.push_back({"bytes=mid-mid",
                     single(ByteRangeSpec::closed(file_size / 2, file_size / 2)),
                     1});
  }
  return plans;
}

}  // namespace

AutoPlanResult autoplan_sbr(const std::function<cdn::VendorProfile()>& factory,
                            std::uint64_t file_size) {
  AutoPlanResult result;
  for (const SbrPlan& plan : candidate_plans(file_size)) {
    SingleCdnTestbed bed(factory());
    bed.origin().resources().add_synthetic("/probe.bin", file_size);
    http::Request request =
        http::make_get(std::string{kDefaultHost}, "/probe.bin?auto=1");
    request.headers.add("Range", plan.range.to_string());
    for (int s = 0; s < plan.sends; ++s) bed.send(request);

    CandidateResult candidate;
    candidate.plan = plan;
    candidate.origin_response_bytes = bed.origin_traffic().response_bytes();
    candidate.client_response_bytes = bed.client_traffic().response_bytes();
    candidate.amplification =
        candidate.client_response_bytes == 0
            ? 0
            : static_cast<double>(candidate.origin_response_bytes) /
                  static_cast<double>(candidate.client_response_bytes);
    if (candidate.amplification > result.amplification) {
      result.amplification = candidate.amplification;
      result.best = plan;
    }
    result.candidates.push_back(std::move(candidate));
  }
  return result;
}

AutoPlanResult autoplan_sbr(cdn::Vendor vendor, std::uint64_t file_size,
                            const cdn::ProfileOptions& options) {
  return autoplan_sbr([&] { return cdn::make_profile(vendor, options); },
                      file_size);
}

}  // namespace rangeamp::core
