#include "core/scanner.h"

#include "core/obr.h"
#include "core/testbed.h"
#include "http/multipart.h"

namespace rangeamp::core {

using cdn::Vendor;
using http::ByteRangeSpec;
using http::RangeSet;

namespace {

RangeSet set_of(std::initializer_list<ByteRangeSpec> specs) {
  RangeSet set;
  set.specs = specs;
  return set;
}

// Renders what one origin-side request did with the Range header.
std::string render_forwarded(const http::Request& origin_request,
                             std::string_view sent_value) {
  const auto range = origin_request.headers.get("Range");
  if (origin_request.method == http::Method::HEAD) {
    return range ? "HEAD " + std::string{*range} : "HEAD";
  }
  if (!range) return "None";
  if (*range == sent_value) return "Unchanged";
  return std::string{*range};
}

}  // namespace

std::string OriginView::summary() const {
  if (forwarded.empty()) return "(no origin request)";
  std::string out;
  for (std::size_t i = 0; i < forwarded.size(); ++i) {
    if (i) out += " & ";
    out += forwarded[i];
  }
  return out;
}

std::vector<ForwardProbe> standard_forward_probes() {
  std::vector<ForwardProbe> probes;
  probes.push_back({"bytes=first-last (tiny)", set_of({ByteRangeSpec::closed(0, 0)})});
  probes.push_back(
      {"bytes=first-last (first>=1024)", set_of({ByteRangeSpec::closed(2048, 2049)})});
  probes.push_back({"bytes=first-last (second 8MiB window)",
                    set_of({ByteRangeSpec::closed(8'388'608, 8'388'608)})});
  probes.push_back({"bytes=-suffix", set_of({ByteRangeSpec::suffix_of(1)})});
  probes.push_back({"bytes=first-", set_of({ByteRangeSpec::open(5)})});
  probes.push_back({"bytes=f1-l1,f2-l2 (disjoint)",
                    set_of({ByteRangeSpec::closed(0, 0),
                            ByteRangeSpec::closed(9'437'184, 9'437'184)})});
  probes.push_back({"bytes=0-,0-,0- (overlapping)",
                    set_of({ByteRangeSpec::open(0), ByteRangeSpec::open(0),
                            ByteRangeSpec::open(0)})});
  probes.push_back({"bytes=1-,0-,0- (overlapping, start1>=1)",
                    set_of({ByteRangeSpec::open(1), ByteRangeSpec::open(0),
                            ByteRangeSpec::open(0)})});
  probes.push_back({"bytes=-1024,0-,0- (overlapping, suffix lead)",
                    set_of({ByteRangeSpec::suffix_of(1024), ByteRangeSpec::open(0),
                            ByteRangeSpec::open(0)})});
  return probes;
}

std::vector<ForwardObservation> scan_forwarding(Vendor vendor,
                                                const cdn::ProfileOptions& options,
                                                std::vector<std::uint64_t> file_sizes) {
  if (file_sizes.empty()) {
    file_sizes = {1u << 20, 9u * (1u << 20), 12u * (1u << 20), 20u * (1u << 20)};
  }
  std::vector<ForwardObservation> observations;
  for (const std::uint64_t size : file_sizes) {
    for (const ForwardProbe& probe : standard_forward_probes()) {
      SingleCdnTestbed bed(cdn::make_profile(vendor, options));
      bed.origin().resources().add_synthetic("/probe.bin", size);

      http::Request request =
          http::make_get(std::string{kDefaultHost}, "/probe.bin?scan=1");
      const std::string sent_value = probe.range.to_string();
      request.headers.add("Range", sent_value);

      ForwardObservation obs;
      obs.vendor = vendor;
      obs.probe_label = probe.label;
      obs.sent_range = sent_value;
      obs.file_size = size;

      bed.send(request);
      for (const auto& r : bed.origin().request_log()) {
        obs.first_request.forwarded.push_back(render_forwarded(r, sent_value));
      }
      const std::size_t after_first = bed.origin().request_log().size();

      bed.send(request);  // detect stateful vendors (KeyCDN)
      for (std::size_t i = after_first; i < bed.origin().request_log().size(); ++i) {
        obs.second_request.forwarded.push_back(
            render_forwarded(bed.origin().request_log()[i], sent_value));
      }

      obs.origin_response_bytes = bed.origin_traffic().response_bytes();
      obs.client_response_bytes = bed.client_traffic().response_bytes();
      // SBR-vulnerable: the origin shipped (at least) the whole entity while
      // the client received only a sliver.
      obs.sbr_vulnerable = obs.origin_response_bytes >= size &&
                           obs.client_response_bytes < size / 4;
      // OBR-FCDN-vulnerable: an overlapping multi-range set crossed the
      // upstream segment unchanged.
      if (probe.range.count() > 1) {
        const auto resolved = http::resolve_all(probe.range, size);
        if (http::any_overlap(resolved)) {
          for (const auto& f : obs.first_request.forwarded) {
            if (f == "Unchanged") obs.obr_forward_vulnerable = true;
          }
        }
      }
      observations.push_back(std::move(obs));
    }
  }
  return observations;
}

std::vector<CorpusScanRow> scan_corpus(Vendor vendor, std::uint64_t seed,
                                       std::size_t count, std::uint64_t file_size,
                                       const cdn::ProfileOptions& options) {
  static constexpr http::RangeShape kShapes[] = {
      http::RangeShape::kSingleClosed,  http::RangeShape::kSingleOpen,
      http::RangeShape::kSingleSuffix,  http::RangeShape::kTinyClosed,
      http::RangeShape::kMultiDisjoint, http::RangeShape::kMultiOverlapping,
      http::RangeShape::kManySmall,
  };
  std::vector<CorpusScanRow> rows;
  for (const auto shape : kShapes) rows.push_back({shape, 0, 0, 0, 0, 0});

  const auto corpus = http::generate_corpus(seed, count, file_size);
  std::uint64_t serial = 0;
  for (const auto& generated : corpus) {
    SingleCdnTestbed bed(cdn::make_profile(vendor, options));
    bed.origin().resources().add_synthetic("/corpus.bin", file_size);

    http::Request request = http::make_get(
        std::string{kDefaultHost}, "/corpus.bin?cb=" + std::to_string(++serial));
    const std::string sent_value = generated.set.to_string();
    request.headers.add("Range", sent_value);
    bed.send(request);

    CorpusScanRow* row = nullptr;
    for (auto& r : rows) {
      if (r.shape == generated.shape) row = &r;
    }
    ++row->total;
    const auto& log = bed.origin().request_log();
    if (log.size() > 1) ++row->multi_connection;
    bool lazy = false, deleted = false, expanded = false;
    for (const auto& origin_request : log) {
      const auto forwarded = render_forwarded(origin_request, sent_value);
      if (forwarded == "Unchanged") {
        lazy = true;
      } else if (forwarded == "None" || forwarded == "HEAD") {
        deleted = true;
      } else {
        expanded = true;
      }
    }
    if (lazy) ++row->lazy;
    if (deleted) ++row->deleted;
    if (expanded) ++row->expanded;
  }
  return rows;
}

ReplyObservation scan_replying(Vendor vendor, const cdn::ProfileOptions& options) {
  const auto honored_parts = [&](std::size_t n) -> std::size_t {
    // BCDN role: the attacker has disabled range support on the origin.
    SingleCdnTestbed bed(cdn::make_profile(vendor, options), obr_origin_config());
    bed.origin().resources().add_synthetic("/reply.bin", 1024);
    http::Request request =
        http::make_get(std::string{kDefaultHost}, "/reply.bin?scan=1");
    RangeSet set;
    for (std::size_t i = 0; i < n; ++i) set.specs.push_back(ByteRangeSpec::open(0));
    request.headers.add("Range", set.to_string());
    const http::Response response = bed.send(request);
    if (response.status != http::kPartialContent) return 0;
    const auto ct = response.headers.get("Content-Type");
    if (!ct) return 0;
    const auto boundary = http::boundary_from_content_type(*ct);
    if (!boundary) return 1;  // single-part 206
    const auto parts =
        http::parse_multipart_byteranges(response.body.materialize(), *boundary);
    return parts ? parts->size() : 0;
  };

  ReplyObservation obs;
  obs.vendor = vendor;
  const std::size_t at5 = honored_parts(5);
  if (at5 == 5) {
    obs.obr_reply_vulnerable = true;
    // Find the honored cap by doubling then bisecting (bounded probe).
    std::size_t lo = 5, hi = 10;
    constexpr std::size_t kBound = 4096;
    while (hi <= kBound && honored_parts(hi) == hi) {
      lo = hi;
      hi *= 2;
    }
    if (hi > kBound) {
      obs.honored_cap = 0;  // unlimited within tested bound
      obs.response_format = "n-part response (overlapping)";
    } else {
      while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (honored_parts(mid) == mid) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      obs.honored_cap = lo;
      obs.response_format =
          "n-part response (overlapping), n <= " + std::to_string(lo);
    }
  } else if (at5 == 0) {
    obs.response_format = "range ignored or rejected";
  } else if (at5 == 1) {
    obs.response_format = "single part (coalesced or first range)";
  } else {
    obs.response_format = std::to_string(at5) + " parts (coalesced)";
  }
  return obs;
}

}  // namespace rangeamp::core
