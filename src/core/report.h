// Plain-text/markdown/CSV table rendering for experiment harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rangeamp::core {

/// A simple column-aligned table that renders as markdown or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// GitHub-flavored markdown with padded columns.
  std::string to_markdown() const;

  /// RFC 4180-ish CSV (no quoting needed for our cell contents).
  std::string to_csv() const;

  /// JSON array of row objects keyed by header names (machine-readable
  /// experiment output).  Cell strings are escaped; numbers stay strings to
  /// preserve the exact formatting of the experiment harnesses.
  std::string to_json() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12345678" -> "12,345,678" (byte counts in experiment output).
std::string with_thousands(std::uint64_t value);

/// Fixed-point decimal rendering.
std::string fixed(double value, int decimals);

/// Writes `content` to `path`, creating parent directories is NOT attempted;
/// returns false on failure.  Benchmarks use it to drop CSV series next to
/// stdout tables.
bool write_file(const std::string& path, const std::string& content);

}  // namespace rangeamp::core
