// Overlapping Byte Ranges (OBR) attack: planning and measurement (sections
// IV-C, V-C of the paper; Table V).
//
// The planner reproduces Table V: for each FCDN x BCDN cascade it builds the
// FCDN-specific exploited multi-range case (column 3), finds the maximum
// number of overlapping ranges n the cascade accepts (column 4) by probing
// against the actual ingress header limits and reply caps, and measures the
// response traffic on the bcdn-origin and fcdn-bcdn segments at that n
// (columns 5-7).  The amplification factor is
//
//     AF = response bytes on fcdn-bcdn / response bytes on bcdn-origin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdn/profiles.h"
#include "http/range.h"
#include "origin/origin_server.h"

namespace rangeamp::core {

/// Fixed harness identity for the OBR experiments.  The host/path lengths
/// matter: Cloudflare's RL + 2*HHL + RHL <= 32411 constraint makes the max n
/// depend on them, so they are pinned to the values that reproduce the
/// paper's n (host 24 chars, path 75 chars -> n = 10750 for Cloudflare).
inline constexpr std::string_view kObrHost = "attack.rangeamp-demo.net";
inline constexpr std::string_view kObrPath =
    "/experiments/obr/amplification/target-payloads/one-kilobyte/payload-1KB.bin";

/// Builds the FCDN-specific exploited Range set with `n` overlapping "0-"
/// ranges (Table V column 3):
///   CDN77:      bytes=-1024,0-,...,0-
///   CDNsun:     bytes=1-,0-,...,0-     (its Deletion rule triggers on a
///                                       leading 0-start, Table II)
///   Cloudflare: bytes=0-,...,0-
///   StackPath:  bytes=0-,...,0-
http::RangeSet obr_range_case(cdn::Vendor fcdn, std::size_t n);

/// The paper's spelling of the exploited case for an FCDN.
std::string obr_case_description(cdn::Vendor fcdn);

/// FCDN candidates (Table II) and BCDN candidates (Table III).
std::vector<cdn::Vendor> obr_fcdn_candidates();
std::vector<cdn::Vendor> obr_bcdn_candidates();

struct ObrMeasurement {
  cdn::Vendor fcdn;
  cdn::Vendor bcdn;
  std::string exploited_case;
  bool feasible = true;            ///< false for a CDN cascaded with itself
  std::size_t max_n = 0;           ///< Table V column 4
  std::uint64_t bcdn_origin_response_bytes = 0;  ///< column 5
  std::uint64_t fcdn_bcdn_response_bytes = 0;    ///< column 6
  std::uint64_t client_response_bytes = 0;       ///< what the aborting
                                                 ///< attacker accepted
  double amplification = 0;        ///< column 7
};

/// Runs one cascade end-to-end: finds max n, then measures at max n with a
/// 1 KB resource and an attacker that aborts the client connection early.
ObrMeasurement measure_obr(cdn::Vendor fcdn, cdn::Vendor bcdn,
                           std::uint64_t resource_size = 1024);

/// All Table V rows: every FCDN x BCDN combination except self-cascades.
std::vector<ObrMeasurement> measure_all_obr(std::uint64_t resource_size = 1024);

/// Origin configuration used by the OBR experiments: range requests disabled
/// by the attacker (section IV-C) and an application-flavored header set
/// matching the paper testbed's per-response footprint (~1.6 KB for a 1 KB
/// resource).
origin::OriginConfig obr_origin_config();

}  // namespace rangeamp::core
