#include "core/mitigations.h"

#include "cdn/logic.h"

namespace rangeamp::core {

std::string_view mitigation_name(Mitigation m) noexcept {
  switch (m) {
    case Mitigation::kLaziness: return "Laziness forwarding";
    case Mitigation::kBoundedExpansion8K: return "Bounded expansion (+8KB)";
    case Mitigation::kCoalesceMulti: return "Coalesce multi-range";
    case Mitigation::kRejectOverlapping: return "Reject overlapping (416)";
    case Mitigation::kRangeCountCap16: return "Range count cap (16)";
    case Mitigation::kSlice1M: return "Slice fetching (1 MiB)";
    case Mitigation::kIgnoreQueryStrings: return "Ignore query strings";
  }
  return "?";
}

cdn::VendorProfile apply_mitigation(cdn::VendorProfile profile, Mitigation m) {
  switch (m) {
    case Mitigation::kLaziness:
      profile.logic = std::make_unique<cdn::LazinessLogic>();
      break;
    case Mitigation::kBoundedExpansion8K:
      profile.logic = std::make_unique<cdn::BoundedExpansionLogic>(8 * 1024);
      break;
    case Mitigation::kCoalesceMulti:
      profile.traits.multi_reply = cdn::MultiRangeReplyPolicy::kCoalesce;
      break;
    case Mitigation::kRejectOverlapping:
      profile.traits.multi_reply = cdn::MultiRangeReplyPolicy::kRejectOverlapping416;
      break;
    case Mitigation::kRangeCountCap16:
      profile.traits.ingress_max_range_count = 16;
      break;
    case Mitigation::kSlice1M:
      profile.logic = std::make_unique<cdn::SliceLogic>(1u << 20);
      break;
    case Mitigation::kIgnoreQueryStrings:
      profile.traits.cache_ignore_query = true;
      break;
  }
  return profile;
}

}  // namespace rangeamp::core
