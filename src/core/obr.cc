#include "core/obr.h"

#include <memory>

#include "core/testbed.h"

namespace rangeamp::core {

using cdn::ProfileOptions;
using cdn::Vendor;
using http::ByteRangeSpec;
using http::RangeSet;

namespace {

ProfileOptions obr_options(Vendor fcdn_or_bcdn, bool as_fcdn) {
  ProfileOptions options;
  // Cloudflare is OBR-FCDN-vulnerable only under a Bypass page rule
  // (Table II); as a BCDN candidate it is never used.
  if (as_fcdn && fcdn_or_bcdn == Vendor::kCloudflare) {
    options.cloudflare_mode = ProfileOptions::CloudflareMode::kBypass;
  }
  return options;
}

std::unique_ptr<CascadeTestbed> make_cascade(Vendor fcdn, Vendor bcdn,
                                             std::uint64_t resource_size) {
  auto bed = std::make_unique<CascadeTestbed>(
      cdn::make_profile(fcdn, obr_options(fcdn, /*as_fcdn=*/true)),
      cdn::make_profile(bcdn, obr_options(bcdn, /*as_fcdn=*/false)),
      obr_origin_config());
  bed->origin().resources().add_synthetic(std::string{kObrPath}, resource_size);
  return bed;
}

// Sends the exploited request with n overlapping ranges through a fresh
// cascade; the attacker aborts after a few KB (the small-receive-window
// trick of section IV-C).  Returns the fcdn-bcdn response byte count.
struct ProbeResult {
  std::uint64_t fcdn_bcdn_response_bytes = 0;
  std::uint64_t bcdn_origin_response_bytes = 0;
  std::uint64_t client_response_bytes = 0;
  int status = 0;
};

ProbeResult probe(Vendor fcdn, Vendor bcdn, std::size_t n,
                  std::uint64_t resource_size) {
  auto bed = make_cascade(fcdn, bcdn, resource_size);
  http::Request request =
      http::make_get(std::string{kObrHost}, std::string{kObrPath});
  request.headers.add("Range", obr_range_case(fcdn, n).to_string());

  net::TransferOptions abort_early;
  abort_early.abort_after_body_bytes = 4096;
  const http::Response response = bed->send(request, abort_early);

  ProbeResult result;
  result.fcdn_bcdn_response_bytes = bed->fcdn_bcdn_traffic().response_bytes();
  result.bcdn_origin_response_bytes = bed->bcdn_origin_traffic().response_bytes();
  result.client_response_bytes = bed->client_traffic().response_bytes();
  result.status = response.status;
  return result;
}

// Success criterion: the BCDN actually produced one part per overlapping
// range, i.e. the fcdn-bcdn segment carried at least n copies of the
// resource.
bool amplified(const ProbeResult& r, std::size_t n, std::uint64_t resource_size) {
  return r.fcdn_bcdn_response_bytes >=
         static_cast<std::uint64_t>(n) * resource_size;
}

}  // namespace

RangeSet obr_range_case(Vendor fcdn, std::size_t n) {
  RangeSet set;
  switch (fcdn) {
    case Vendor::kCdn77:
      // CDN77's Deletion rule triggers on closed first<1024 ranges; a
      // leading suffix keeps the set on the Laziness path (Table II).
      set.specs.push_back(ByteRangeSpec::suffix_of(1024));
      break;
    case Vendor::kCdnsun:
      // CDNsun deletes sets whose first spec starts at byte 0 (Table I);
      // start the set at byte 1 (Table II: start1 >= 1).
      set.specs.push_back(ByteRangeSpec::open(1));
      break;
    default:
      break;
  }
  for (std::size_t i = 0; i < n; ++i) {
    set.specs.push_back(ByteRangeSpec::open(0));
  }
  return set;
}

std::string obr_case_description(Vendor fcdn) {
  switch (fcdn) {
    case Vendor::kCdn77: return "bytes=-1024,0-,...,0-";
    case Vendor::kCdnsun: return "bytes=1-,0-,...,0-";
    default: return "bytes=0-,0-,...,0-";
  }
}

std::vector<Vendor> obr_fcdn_candidates() {
  return {Vendor::kCdn77, Vendor::kCdnsun, Vendor::kCloudflare, Vendor::kStackPath};
}

std::vector<Vendor> obr_bcdn_candidates() {
  return {Vendor::kAkamai, Vendor::kAzure, Vendor::kStackPath};
}

origin::OriginConfig obr_origin_config() {
  origin::OriginConfig config;
  // "the origin server where range requests are disabled by the attacker"
  config.supports_ranges = false;
  // Application-level headers matching the paper testbed's ~1.6 KB response
  // footprint for the 1 KB target (Table V column 5).
  config.extra_headers = {
      {"Cache-Control", "max-age=86400, public"},
      {"Expires", "Wed, 08 Jul 2020 03:14:15 GMT"},
      {"Vary", "Accept-Encoding"},
      {"X-Backend", "web-origin-01.fra1.rangeamp-lab.internal"},
      {"Strict-Transport-Security", "max-age=63072000; includeSubDomains"},
      {"X-Content-Type-Options", "nosniff"},
      {"X-Frame-Options", "SAMEORIGIN"},
      {"Content-Security-Policy", "default-src 'self'"},
      {"X-Request-Context", "origin=apache;tier=prod;dc=fra1"},
      {"X-Cache-Status", "MISS from backend"},
  };
  return config;
}

ObrMeasurement measure_obr(Vendor fcdn, Vendor bcdn, std::uint64_t resource_size) {
  ObrMeasurement m;
  m.fcdn = fcdn;
  m.bcdn = bcdn;
  m.exploited_case = obr_case_description(fcdn);
  if (fcdn == bcdn) {
    // The paper excludes a CDN cascaded with itself (Table V's "-" row).
    m.feasible = false;
    return m;
  }

  // Exponential growth then binary search for the largest accepted n.
  std::size_t lo = 1;
  if (!amplified(probe(fcdn, bcdn, lo, resource_size), lo, resource_size)) {
    m.feasible = false;
    return m;
  }
  std::size_t hi = 2;
  constexpr std::size_t kCeiling = 1 << 17;
  while (hi <= kCeiling &&
         amplified(probe(fcdn, bcdn, hi, resource_size), hi, resource_size)) {
    lo = hi;
    hi *= 2;
  }
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (amplified(probe(fcdn, bcdn, mid, resource_size), mid, resource_size)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  m.max_n = lo;

  const ProbeResult at_max = probe(fcdn, bcdn, m.max_n, resource_size);
  m.bcdn_origin_response_bytes = at_max.bcdn_origin_response_bytes;
  m.fcdn_bcdn_response_bytes = at_max.fcdn_bcdn_response_bytes;
  m.client_response_bytes = at_max.client_response_bytes;
  m.amplification =
      at_max.bcdn_origin_response_bytes == 0
          ? 0
          : static_cast<double>(at_max.fcdn_bcdn_response_bytes) /
                static_cast<double>(at_max.bcdn_origin_response_bytes);
  return m;
}

std::vector<ObrMeasurement> measure_all_obr(std::uint64_t resource_size) {
  std::vector<ObrMeasurement> out;
  for (const Vendor fcdn : obr_fcdn_candidates()) {
    for (const Vendor bcdn : obr_bcdn_candidates()) {
      out.push_back(measure_obr(fcdn, bcdn, resource_size));
    }
  }
  return out;
}

}  // namespace rangeamp::core
