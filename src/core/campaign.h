// Sustained attack campaigns and benign workloads.
//
// The practicability experiment of section V-D is a *campaign*: m crafted
// requests per second, sustained, spread across ingress nodes.  This module
// drives such campaigns end-to-end against an EdgeCluster -- rotating
// cache-busting queries, feeding every exchange to the RangeAmpDetector,
// and projecting the byte totals onto the fluid bandwidth simulator for the
// Fig 7 time series.
//
// It also generates a realistic benign workload (cache-friendly page loads,
// resume-from-offset downloads, multi-threaded segment fetches) used to
// validate the detector's false-positive behaviour.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include <optional>

#include "cdn/cluster.h"
#include "cdn/profiles.h"
#include "core/detector.h"
#include "core/mitigations.h"
#include "net/transport_factory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/attack_load.h"

namespace rangeamp::core {

/// Campaign parameters.  Construct via SbrCampaignConfig::Builder(), which
/// validates at build() time; direct field poking is deprecated (it skips
/// validation and will lose write access when the fields go private).
struct SbrCampaignConfig {
  cdn::Vendor vendor = cdn::Vendor::kCloudflare;
  cdn::ProfileOptions options;
  std::uint64_t file_size = 10 * (1u << 20);
  int requests_per_second = 10;
  int duration_s = 30;
  std::size_t edge_nodes = 8;
  cdn::NodeSelection selection = cdn::NodeSelection::kRoundRobin;
  double origin_uplink_mbps = 1000.0;

  /// Applied to every edge node: run the same campaign against a hardened
  /// deployment to measure a mitigation's effect end-to-end.
  std::optional<Mitigation> mitigation;

  /// Origin-shielding knobs applied to every edge node (all off by default,
  /// so an unshielded campaign replays byte-identically).
  cdn::OriginShieldPolicy shield;

  /// How many consecutive campaign requests reuse one cache-busting URL.
  /// Same-key neighbours land on the same ingress node (as a URL-hashing
  /// load balancer would place them), which is the burst a fill lock can
  /// collapse.  1 = every request busts the cache with a fresh key.
  int same_key_burst = 1;

  /// Sharded execution (src/core/parallel.h, docs/parallel-model.md).
  /// `shards` decomposes the exchange grid into contiguous, burst-aligned
  /// blocks, each run against its own cluster/origin/recorder instances and
  /// merged by a deterministic ordered reduction; `threads` workers execute
  /// the shards.  Results depend only on `shards`, never on `threads` --
  /// shards = 1 (the default) is the exact legacy serial path at any thread
  /// count.  Campaigns whose defenses couple exchanges across key groups
  /// (circuit breaker, overload watermarks) should keep shards = 1; see the
  /// determinism contract in docs/parallel-model.md.
  std::size_t shards = 1;
  int threads = 1;

  /// Observability hooks (non-owning, both null by default so the campaign
  /// replays byte-identically).  With a tracer, every amplification unit
  /// yields an "sbr.request" span tree; with a registry, the cdn_* counters
  /// and the per-vendor amplification histogram are maintained and sampled
  /// once per simulated second.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  /// Backend of every HTTP/1.1 segment the campaign builds (attacker wire,
  /// cluster ingress and upstream wires).  In-memory by default; committed
  /// CSVs must never be generated with anything else.
  net::TransportSpec transport;

  /// Fluent constructor with build-time validation (defined below, once the
  /// enclosing struct is complete).
  class Builder;
};

class SbrCampaignConfig::Builder {
 public:
  Builder& vendor(cdn::Vendor v) { config_.vendor = v; return *this; }
  Builder& options(cdn::ProfileOptions o) {
    config_.options = std::move(o);
    return *this;
  }
  Builder& file_size(std::uint64_t bytes) {
    config_.file_size = bytes;
    return *this;
  }
  Builder& requests_per_second(int m) {
    config_.requests_per_second = m;
    return *this;
  }
  Builder& duration_s(int seconds) {
    config_.duration_s = seconds;
    return *this;
  }
  Builder& edge_nodes(std::size_t n) { config_.edge_nodes = n; return *this; }
  Builder& selection(cdn::NodeSelection s) {
    config_.selection = s;
    return *this;
  }
  Builder& origin_uplink_mbps(double mbps) {
    config_.origin_uplink_mbps = mbps;
    return *this;
  }
  Builder& mitigation(Mitigation m) { config_.mitigation = m; return *this; }
  Builder& shield(cdn::OriginShieldPolicy policy) {
    config_.shield = policy;
    return *this;
  }
  Builder& same_key_burst(int burst) {
    config_.same_key_burst = burst;
    return *this;
  }
  Builder& shards(std::size_t n) { config_.shards = n; return *this; }
  Builder& threads(int n) { config_.threads = n; return *this; }
  Builder& tracer(obs::Tracer* t) { config_.tracer = t; return *this; }
  Builder& metrics(obs::MetricsRegistry* m) {
    config_.metrics = m;
    return *this;
  }
  Builder& transport(const net::TransportSpec& spec) {
    config_.transport = spec;
    return *this;
  }

  /// Validates and returns the config; throws std::invalid_argument on an
  /// unrunnable combination (zero-length campaign, empty cluster, ...).
  SbrCampaignConfig build() const;

 private:
  SbrCampaignConfig config_;
};

struct SbrCampaignResult {
  // Byte totals over the whole campaign, per segment end.  The origin side
  // only aggregates response bytes (per-node request counts stay available
  // through the cluster).
  net::TrafficTotals attacker;
  net::TrafficTotals origin;
  /// Client exchanges whose response the attacker cut short (deliberate
  /// aborts / injected truncation), from TrafficRecorder::truncated_count().
  std::uint64_t attacker_truncated = 0;
  double amplification = 0;

  // Edge spread.
  std::size_t nodes_touched = 0;
  std::vector<std::uint64_t> per_node_upstream_bytes;

  // Time-domain projection (Fig 7 shape).
  sim::AttackLoadSummary bandwidth;
  std::vector<sim::BandwidthSample> series;

  // Detection.
  bool detector_alarmed = false;
  RangeAmpDetector::Stats detector_stats;

  // Shielding counters summed across edge nodes (all zero when the
  // campaign's shield knobs are off).
  cdn::ShieldStats shield_stats;
};

/// Runs a full SBR campaign against a fresh cluster testbed.
SbrCampaignResult run_sbr_campaign(const SbrCampaignConfig& config,
                                   const DetectorConfig& detector_config = {});

// ---------------------------------------------------------------------------
// OBR node-exhaustion campaign.
//
// Section V-D: "In an OBR attack, the victims are specific ingress nodes of
// the FCDN and the BCDN.  Due to an ethical concern, we can't launch a real
// attack to verify whether an ingress node is affected."  The simulation
// can: this campaign drives sustained OBR requests through a cascade pinned
// to one BCDN node and projects the fcdn-bcdn byte stream onto a
// capacity-limited inter-CDN link.
// ---------------------------------------------------------------------------

/// OBR campaign parameters.  Construct via ObrCampaignConfig::Builder(),
/// which validates at build() time; direct field poking is deprecated for
/// the same reason as SbrCampaignConfig.
struct ObrCampaignConfig {
  cdn::Vendor fcdn = cdn::Vendor::kCloudflare;
  cdn::Vendor bcdn = cdn::Vendor::kAkamai;
  std::uint64_t resource_size = 1024;
  std::size_t overlapping_ranges = 0;  ///< 0 = use the cascade's max n
  int requests_per_second = 2;
  int duration_s = 10;
  /// Capacity of the targeted node's uplink toward the FCDN.
  double node_uplink_mbps = 1000.0;
  /// Sharded execution: every OBR exchange is independent (each request
  /// busts both caches), so shard blocks run against their own cascade
  /// testbeds and merge to the serial byte totals exactly.  Results depend
  /// only on `shards`, never on `threads`.
  std::size_t shards = 1;
  int threads = 1;
  /// Backend of the cascade's HTTP/1.1 segments (in-memory by default).
  net::TransportSpec transport;

  class Builder;
};

class ObrCampaignConfig::Builder {
 public:
  Builder& fcdn(cdn::Vendor v) { config_.fcdn = v; return *this; }
  Builder& bcdn(cdn::Vendor v) { config_.bcdn = v; return *this; }
  Builder& resource_size(std::uint64_t bytes) {
    config_.resource_size = bytes;
    return *this;
  }
  Builder& overlapping_ranges(std::size_t n) {
    config_.overlapping_ranges = n;
    return *this;
  }
  Builder& requests_per_second(int m) {
    config_.requests_per_second = m;
    return *this;
  }
  Builder& duration_s(int seconds) {
    config_.duration_s = seconds;
    return *this;
  }
  Builder& node_uplink_mbps(double mbps) {
    config_.node_uplink_mbps = mbps;
    return *this;
  }
  Builder& shards(std::size_t n) { config_.shards = n; return *this; }
  Builder& threads(int n) { config_.threads = n; return *this; }
  Builder& transport(const net::TransportSpec& spec) {
    config_.transport = spec;
    return *this;
  }

  /// Validates and returns the config; throws std::invalid_argument on an
  /// unrunnable combination.
  ObrCampaignConfig build() const;

 private:
  ObrCampaignConfig config_;
};

struct ObrCampaignResult {
  std::size_t n = 0;                       ///< overlapping ranges used
  std::uint64_t fcdn_bcdn_bytes_per_request = 0;
  std::uint64_t bcdn_origin_response_bytes = 0;  ///< whole campaign
  std::uint64_t attacker_response_bytes = 0;     ///< whole campaign
  /// Client exchanges cut short by the attacker's deliberate early abort
  /// (every OBR request, when the abort trick is on).
  std::uint64_t attacker_truncated = 0;
  double amplification = 0;
  /// Time-domain projection of the fcdn-bcdn link.
  sim::AttackLoadSummary bandwidth;
  std::vector<sim::BandwidthSample> series;
  /// Seconds of sustained attack until the node's uplink saturates
  /// (<0 when it never does).
  double seconds_to_saturation = -1;
};

ObrCampaignResult run_obr_campaign(const ObrCampaignConfig& config);

/// Benign-workload parameters.  Construct via
/// LegitWorkloadConfig::Builder(); direct field poking is deprecated.
struct LegitWorkloadConfig {
  cdn::Vendor vendor = cdn::Vendor::kCloudflare;
  std::size_t requests = 200;
  std::uint64_t seed = 2020;
  std::size_t edge_nodes = 4;
  /// Sharded execution.  Each shard draws from its own RNG stream
  /// (SplitMix64 of `seed ^ shard_index`, see core/parallel.h) and warms its
  /// own cluster, so a sharded run is NOT sample-identical to the serial one
  /// -- it is a different (equally valid) workload of the same mix, and it
  /// is byte-identical across thread counts whenever `shards` is pinned.
  /// shards = 1 (the default) preserves the legacy single-stream run.
  std::size_t shards = 1;
  int threads = 1;
  /// Backend of the cluster's HTTP/1.1 segments (in-memory by default).
  net::TransportSpec transport;

  class Builder;
};

class LegitWorkloadConfig::Builder {
 public:
  Builder& vendor(cdn::Vendor v) { config_.vendor = v; return *this; }
  Builder& requests(std::size_t n) { config_.requests = n; return *this; }
  Builder& seed(std::uint64_t s) { config_.seed = s; return *this; }
  Builder& edge_nodes(std::size_t n) {
    config_.edge_nodes = n;
    return *this;
  }
  Builder& shards(std::size_t n) { config_.shards = n; return *this; }
  Builder& threads(int n) { config_.threads = n; return *this; }
  Builder& transport(const net::TransportSpec& spec) {
    config_.transport = spec;
    return *this;
  }

  /// Validates and returns the config; throws std::invalid_argument on an
  /// unrunnable combination.
  LegitWorkloadConfig build() const;

 private:
  LegitWorkloadConfig config_;
};

struct LegitWorkloadResult {
  // Byte totals per segment end (response side only for the origin
  // aggregate, as with SbrCampaignResult).
  net::TrafficTotals client;
  net::TrafficTotals origin;
  double cache_hit_rate = 0;
  bool detector_alarmed = false;
  RangeAmpDetector::Stats detector_stats;
};

/// Replays a benign mixed workload (page loads, resumes, segment downloads)
/// through the same cluster + detector pipeline.
LegitWorkloadResult run_legit_workload(const LegitWorkloadConfig& config,
                                       const DetectorConfig& detector_config = {});

// ---------------------------------------------------------------------------
// Cache-pollution campaign (docs/cache-model.md).
//
// The SBR random-query trick does not only bust the cache -- on a vendor
// with a Deletion forward policy every junk request also *inserts* the full
// entity under a fresh key.  This campaign interleaves such a flood with a
// Zipf-distributed legit workload against a byte-budgeted edge node and
// measures what the pollution costs the legit clients (hit-rate collapse)
// and the origin (amplified fill traffic) under each eviction policy.
// ---------------------------------------------------------------------------

struct CachePollutionConfig {
  /// Akamai by default: closed-range requests use the Deletion policy, so
  /// every attack request pulls and caches the full entity (section III-B).
  cdn::Vendor vendor = cdn::Vendor::kAkamai;

  /// Cache engine under test (budget, shards, eviction policy).  The
  /// default -- unbounded -- is the historic edge and the baseline rows.
  cdn::CacheTraits cache;

  /// Legit catalog: `catalog_objects` resources of `object_bytes` each,
  /// requested with Zipf(1) popularity (rank-k weight 1/k).
  std::size_t catalog_objects = 256;
  std::uint64_t object_bytes = 16 * 1024;

  /// The resource the attacker sprays 1-byte ranges at.  Larger than a
  /// catalog object, so every junk insert displaces several legit entries.
  std::uint64_t attack_object_bytes = 256 * 1024;

  /// Legit-only warmup requests (not measured) that populate the cache
  /// before the flood starts, per shard.
  std::size_t warmup_requests = 512;

  /// Measured phase: total interleaved requests across all shards; each is
  /// an attack request with probability `attack_fraction`.
  std::size_t requests = 2048;
  double attack_fraction = 0.5;

  std::uint64_t seed = 2020;

  /// Sharded execution (docs/parallel-model.md): each shard runs its own
  /// origin + node (per-shard cache ownership) over a contiguous block of
  /// the request grid, seeded from SplitMix64(seed ^ shard index).  As with
  /// the legit workload, a sharded run is a different-but-equivalent
  /// workload of the same mix; results depend only on `shards`, never on
  /// `threads`.  shards = 1 (default) is the canonical serial run.
  std::size_t shards = 1;
  int threads = 1;

  /// Optional registry: per-shard registries are merged in shard order, so
  /// the cdn_cache_* metrics of the run land in one place (null = off, no
  /// behaviour change).
  obs::MetricsRegistry* metrics = nullptr;
};

struct CachePollutionResult {
  std::size_t legit_requests = 0;
  std::size_t attack_requests = 0;
  std::size_t legit_hits = 0;  ///< measured-phase legit requests, zero origin bytes
  double legit_hit_rate = 0;

  /// Attacker-facing traffic of the measured phase (request + 1-byte 206s).
  net::TrafficTotals attacker;
  /// Origin response bytes: whole run, and the slice pulled by attack
  /// requests alone (full-entity fills forced by the Deletion policy).
  std::uint64_t origin_response_bytes = 0;
  std::uint64_t attack_origin_response_bytes = 0;
  /// Origin-traffic amplification of the flood: attack-driven origin
  /// response bytes over attacker-received response bytes.
  double attack_amplification = 0;

  /// Peak and final resident cache bytes (max across shards -- each shard's
  /// node must respect its own budget).
  std::uint64_t cache_bytes_peak = 0;
  std::uint64_t cache_bytes_end = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_admission_rejects = 0;
};

/// Runs the interleaved pollution campaign against a fresh per-shard
/// single-node testbed.
CachePollutionResult run_cache_pollution_campaign(
    const CachePollutionConfig& config);

// ---------------------------------------------------------------------------
// Gossip-detection campaign (docs/detection-model.md).
//
// A node-rotating SBR attacker interleaved with a large Zipf legit workload
// against a detection-enabled EdgeCluster.  Measures how many attacker
// rotations pass before the whole cluster quarantines the attack (detection
// latency) and what the signature propagation costs legitimate clients
// (false-positive collateral), across gossip fanout x rotation rate x
// message loss x node churn.
//
// Determinism contract: gossip couples the nodes, so the exchanges execute
// serially against ONE cluster -- but the exchange *schedule* (who sends
// what to which node at which instant) is derived statelessly per global
// index and materialized by `shards` workers.  The schedule -- and therefore
// the whole campaign -- is byte-identical for any shards/threads setting,
// which is what lets gossip_detection.csv sit under the 8-thread drift gate.
// ---------------------------------------------------------------------------

struct GossipDetectionConfig {
  /// Akamai by default: the Deletion forward policy turns every 1-byte
  /// attack range into a full-entity origin fetch, the asymmetry signature
  /// the detector keys on.
  cdn::Vendor vendor = cdn::Vendor::kAkamai;

  std::size_t edge_nodes = 8;

  /// Legit population: `legit_users` distinct client identities (each pinned
  /// to an ingress node by identity hash, as a DNS load balancer would),
  /// requesting `catalog_objects` resources of `object_bytes` with Zipf(1)
  /// popularity.
  std::size_t legit_users = 120000;
  std::size_t catalog_objects = 256;
  std::uint64_t object_bytes = 16 * 1024;

  /// The attack target; larger than a catalog object so the Deletion-policy
  /// origin fetches dominate the asymmetry ratio.
  std::uint64_t attack_object_bytes = 1u << 20;

  /// Fraction of legit requests that are tiny existence probes
  /// (Range: bytes=0-1) against the attack target's URL -- the traffic
  /// pattern-quarantine collateral is measured on.
  double probe_fraction = 0.01;

  /// Total interleaved exchanges; every `attack_every`-th (0 = no attacker)
  /// is the attacker's.  Exchange i happens at sim time i / requests_per_second.
  std::size_t requests = 40000;
  std::size_t attack_every = 40;
  int requests_per_second = 1000;

  /// The attacker pins ingress node (k / rotation) % edge_nodes for its k-th
  /// request: `attacker_rotation_requests` requests per node, then move on
  /// -- the paper's "completely different ingress nodes" spreading trick.
  std::size_t attacker_rotation_requests = 8;

  /// Detection/gossip/quarantine knobs applied to every edge node.
  cdn::DetectionPolicy detection;

  /// Node churn: every period, the next node (round-robin) has its
  /// detection layer restarted -- detector windows and signature table lost.
  /// 0 = no churn.
  double churn_restart_period_seconds = 0;

  std::uint64_t seed = 2020;

  /// Schedule-materialization sharding (see the determinism contract above;
  /// execution is always serial).
  std::size_t shards = 1;
  int threads = 1;

  /// Observability hooks (non-owning, null = off, no behaviour change).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct GossipDetectionResult {
  std::size_t legit_requests = 0;
  std::size_t attack_requests = 0;
  std::size_t legit_quarantined = 0;   ///< legit exchanges answered 429
  std::size_t attack_quarantined = 0;  ///< attacker exchanges answered 429
  /// False-positive collateral: legit_quarantined / legit_requests.
  double collateral_rate = 0;
  double legit_hit_rate = 0;

  /// First exchange index at which every node held an active signature for
  /// the attacker (-1: never happened during the run).
  std::int64_t convergence_exchange = -1;
  /// Attacker rotations completed at that exchange (-1: never converged).
  double convergence_rotations = -1;
  /// Sim seconds from the first attack request to cluster-wide quarantine.
  double detection_latency_seconds = -1;

  /// Detector alarm transitions summed over nodes.
  std::uint64_t alarms = 0;
  /// Nodes holding an active attacker signature when the run ended.
  std::size_t final_coverage = 0;
  /// TTL-expired signatures summed over nodes.
  std::uint64_t signatures_expired = 0;

  cdn::GossipStats gossip;
};

/// Runs the rotating-attacker + Zipf-legit campaign against a fresh
/// detection-enabled cluster testbed.
GossipDetectionResult run_gossip_detection_campaign(
    const GossipDetectionConfig& config);

}  // namespace rangeamp::core
