// Victim cost estimation.
//
// Section V-E of the paper: "Most CDNs charge their website customers by
// traffic consumption ... its opponent can abuse the CDN to perform a
// RangeAmp attack against it, causing a very high CDN service fee", on top
// of the origin's own bandwidth bill.  This module turns campaign byte
// totals into a rough dollar figure.
//
// Prices are circa-2020 list-price approximations (USD per GB, lowest
// published tier) from the pricing pages the paper cites [17]-[21]; they are
// estimates for illustrating the *scale* of the monetary-loss argument, not
// billing-grade data.
#pragma once

#include <cstdint>
#include <vector>

#include "cdn/profiles.h"

namespace rangeamp::core {

struct PricePlan {
  cdn::Vendor vendor;
  /// Price of CDN edge egress (client-facing traffic), USD/GB.
  double egress_usd_per_gb = 0.08;
  /// Price of back-to-origin transfer where billed (0 when bundled), USD/GB
  /// -- under an SBR attack this is the dominating term.
  double origin_pull_usd_per_gb = 0.0;
  /// The origin host's own bandwidth price (cloud VM egress), USD/GB.
  double origin_bandwidth_usd_per_gb = 0.09;
};

/// Approximate 2020 list prices for the 13 vendors.
std::vector<PricePlan> default_price_plans();

/// Plan for one vendor.
PricePlan price_plan(cdn::Vendor vendor);

struct CostEstimate {
  double cdn_egress_usd = 0;
  double cdn_origin_pull_usd = 0;
  double origin_bandwidth_usd = 0;
  double total_usd = 0;
};

/// Victim cost of a traffic total: `client_cdn_bytes` billed as CDN egress,
/// `cdn_origin_bytes` billed as origin pull (where the plan charges it) and
/// as origin-host bandwidth (always).
CostEstimate estimate_victim_cost(const PricePlan& plan,
                                  std::uint64_t client_cdn_bytes,
                                  std::uint64_t cdn_origin_bytes);

/// Scales a measured per-request cost to a sustained campaign: `rps`
/// requests/second for `hours` hours.
CostEstimate estimate_campaign_cost(const PricePlan& plan,
                                    std::uint64_t client_bytes_per_request,
                                    std::uint64_t origin_bytes_per_request,
                                    double rps, double hours);

}  // namespace rangeamp::core
