// Automatic SBR attack planning.
//
// Table IV's "exploited range case" column is what the paper's authors
// derived by hand from the Table I scan.  This planner automates the step:
// given any vendor profile (built-in or rule-based), it probes the candidate
// exploit shapes against a fresh testbed and returns the case with the
// highest measured amplification -- an attacker armed with the scanner.
#pragma once

#include <functional>
#include <vector>

#include "core/sbr.h"

namespace rangeamp::core {

struct CandidateResult {
  SbrPlan plan;
  double amplification = 0;
  std::uint64_t origin_response_bytes = 0;
  std::uint64_t client_response_bytes = 0;
};

struct AutoPlanResult {
  SbrPlan best;                            ///< highest-amplification case
  double amplification = 0;
  std::vector<CandidateResult> candidates; ///< every case probed
};

/// Probes the candidate corpus against profiles from `factory` (a fresh
/// profile per probe: stateful vendors must not leak state across probes)
/// with a synthetic resource of `file_size` bytes.
AutoPlanResult autoplan_sbr(const std::function<cdn::VendorProfile()>& factory,
                            std::uint64_t file_size);

/// Convenience overload for a built-in vendor.
AutoPlanResult autoplan_sbr(cdn::Vendor vendor, std::uint64_t file_size,
                            const cdn::ProfileOptions& options = {});

}  // namespace rangeamp::core
