#include "core/detector.h"

namespace rangeamp::core {

std::string_view range_class_name(RangeClass c) noexcept {
  switch (c) {
    case RangeClass::kNone: return "none";
    case RangeClass::kTinyClosed: return "tiny_closed";
    case RangeClass::kSingleClosed: return "single_closed";
    case RangeClass::kOpen: return "open";
    case RangeClass::kSuffix: return "suffix";
    case RangeClass::kMulti: return "multi";
  }
  return "unknown";
}

RangeClass classify_range(const std::optional<http::RangeSet>& range) noexcept {
  if (!range || range->empty()) return RangeClass::kNone;
  if (range->count() > 1) return RangeClass::kMulti;
  const http::ByteRangeSpec& spec = range->specs.front();
  if (spec.is_suffix()) return RangeClass::kSuffix;
  if (spec.is_open()) return RangeClass::kOpen;
  if (spec.is_closed()) {
    const std::uint64_t length = *spec.last - *spec.first + 1;
    return length <= kTinyRangeClassBytes ? RangeClass::kTinyClosed
                                          : RangeClass::kSingleClosed;
  }
  return RangeClass::kNone;
}

std::uint64_t selected_bytes_of(const std::optional<http::RangeSet>& range,
                                std::uint64_t resource_bytes) {
  if (!range) return UINT64_MAX;
  return http::total_selected_bytes(http::resolve_all(*range, resource_bytes));
}

DetectorSample make_detector_sample(std::uint64_t selected,
                                    std::uint64_t resource_bytes,
                                    const net::TrafficTotals& client_delta,
                                    const net::TrafficTotals& origin_delta,
                                    std::string client_key,
                                    std::string base_key, RangeClass shape) {
  DetectorSample sample;
  sample.selected_bytes = selected;
  sample.resource_bytes = resource_bytes;
  sample.client = client_delta;
  sample.origin = origin_delta;
  sample.cache_hit = origin_delta.response_bytes == 0;
  sample.client_key = std::move(client_key);
  sample.base_key = std::move(base_key);
  sample.shape = shape;
  return sample;
}

void RangeAmpDetector::observe(const DetectorSample& sample) {
  window_.push_back(sample);
  while (window_.size() > config_.window) window_.pop_front();
  if (!alarmed_) {
    if (evaluate()) {
      alarmed_ = true;
      clean_streak_ = 0;
    }
    return;
  }
  if (config_.decay_clean_windows == 0) return;  // legacy forever-latch
  if (evaluate()) {
    clean_streak_ = 0;
  } else if (++clean_streak_ >=
             config_.decay_clean_windows * config_.window) {
    alarmed_ = false;
    clean_streak_ = 0;
  }
}

RangeAmpDetector::Stats RangeAmpDetector::stats() const noexcept {
  Stats s;
  s.samples = window_.size();
  if (window_.empty()) return s;
  std::uint64_t origin = 0, client = 0;
  std::size_t tiny = 0, misses = 0;
  for (const auto& w : window_) {
    origin += w.origin.response_bytes;
    client += w.client.response_bytes;
    if (!w.cache_hit) ++misses;
    if (w.selected_bytes != UINT64_MAX && w.resource_bytes > 4096 &&
        static_cast<double>(w.selected_bytes) <
            config_.tiny_range_fraction * static_cast<double>(w.resource_bytes)) {
      ++tiny;
    }
  }
  s.asymmetry = client == 0 ? 0
                            : static_cast<double>(origin) / static_cast<double>(client);
  s.tiny_fraction = static_cast<double>(tiny) / static_cast<double>(window_.size());
  s.miss_fraction =
      static_cast<double>(misses) / static_cast<double>(window_.size());
  return s;
}

bool RangeAmpDetector::evaluate() const noexcept {
  if (window_.size() < config_.min_samples) return false;
  const Stats s = stats();
  return s.asymmetry >= config_.asymmetry_threshold &&
         s.tiny_fraction >= config_.tiny_fraction_threshold &&
         s.miss_fraction >= config_.miss_fraction_threshold;
}

void RangeAmpDetector::reset() {
  window_.clear();
  alarmed_ = false;
  clean_streak_ = 0;
}

}  // namespace rangeamp::core
