#include "core/detector.h"

namespace rangeamp::core {

void RangeAmpDetector::observe(const DetectorSample& sample) {
  window_.push_back(sample);
  while (window_.size() > config_.window) window_.pop_front();
  if (!alarmed_ && evaluate()) alarmed_ = true;
}

RangeAmpDetector::Stats RangeAmpDetector::stats() const noexcept {
  Stats s;
  s.samples = window_.size();
  if (window_.empty()) return s;
  std::uint64_t origin = 0, client = 0;
  std::size_t tiny = 0, misses = 0;
  for (const auto& w : window_) {
    origin += w.origin.response_bytes;
    client += w.client.response_bytes;
    if (!w.cache_hit) ++misses;
    if (w.selected_bytes != UINT64_MAX && w.resource_bytes > 4096 &&
        static_cast<double>(w.selected_bytes) <
            config_.tiny_range_fraction * static_cast<double>(w.resource_bytes)) {
      ++tiny;
    }
  }
  s.asymmetry = client == 0 ? 0
                            : static_cast<double>(origin) / static_cast<double>(client);
  s.tiny_fraction = static_cast<double>(tiny) / static_cast<double>(window_.size());
  s.miss_fraction =
      static_cast<double>(misses) / static_cast<double>(window_.size());
  return s;
}

bool RangeAmpDetector::evaluate() const noexcept {
  if (window_.size() < config_.min_samples) return false;
  const Stats s = stats();
  return s.asymmetry >= config_.asymmetry_threshold &&
         s.tiny_fraction >= config_.tiny_fraction_threshold &&
         s.miss_fraction >= config_.miss_fraction_threshold;
}

void RangeAmpDetector::reset() {
  window_.clear();
  alarmed_ = false;
}

}  // namespace rangeamp::core
