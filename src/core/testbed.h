// Experiment testbeds: pre-wired origin/CDN topologies with traffic
// recorders on every segment, matching Fig 3 of the paper.
//
//   SingleCdnTestbed:  client --(client-cdn)--> CDN --(cdn-origin)--> origin
//   CascadeTestbed:    client --(client-fcdn)--> FCDN --(fcdn-bcdn)-->
//                      BCDN --(bcdn-origin)--> origin
//
// The testbeds own every component; wires and recorders are reachable by
// the segment names the paper uses.  Every HTTP/1.1 segment honors a
// net::TransportSpec, so the same topology can run on the deterministic
// in-memory pipe (default; committed CSVs) or on real loopback sockets
// (bench_socket_fig6's wall-clock runs).
#pragma once

#include <string>

#include "cdn/node.h"
#include "cdn/profiles.h"
#include "http2/wire.h"
#include "net/transport_factory.h"
#include "net/wire.h"
#include "origin/origin_server.h"

namespace rangeamp::core {

/// Default identity of the attacker-controlled site in experiments.
inline constexpr std::string_view kDefaultHost = "victim-site.example.com";

class SingleCdnTestbed {
 public:
  explicit SingleCdnTestbed(cdn::VendorProfile profile,
                            origin::OriginConfig origin_config = {},
                            const net::TransportSpec& transport = {})
      : origin_(std::move(origin_config)),
        cdn_(std::move(profile), origin_, "cdn-origin",
             cdn::SegmentFraming::kHttp11, transport),
        client_traffic_("client-cdn"),
        client_wire_(net::make_transport(transport, client_traffic_, cdn_)) {}

  origin::OriginServer& origin() noexcept { return origin_; }
  cdn::CdnNode& cdn() noexcept { return cdn_; }

  /// Sends a request as the client and returns the (possibly truncated)
  /// response.
  http::Response send(const http::Request& request,
                      const net::TransferOptions& options = {}) {
    return client_wire_->transfer(request, options);
  }

  net::TrafficRecorder& client_traffic() noexcept { return client_traffic_; }
  net::TrafficRecorder& origin_traffic() noexcept { return cdn_.upstream_traffic(); }

  /// Attaches a fault schedule to the cdn-origin segment (non-owning;
  /// nullptr detaches).  Faults hit the CDN's upstream transfers -- the
  /// segment the retry-amplification experiments stress.
  void set_origin_fault_injector(net::FaultInjector* injector) {
    cdn_.set_upstream_fault_injector(injector);
  }

  /// Installs one tracer across the whole path (both wires and the node);
  /// non-owning, nullptr detaches.
  void set_tracer(obs::Tracer* tracer) {
    client_wire_->set_tracer(tracer);
    cdn_.set_tracer(tracer);
  }

 private:
  origin::OriginServer origin_;
  cdn::CdnNode cdn_;
  net::TrafficRecorder client_traffic_;
  std::unique_ptr<net::Transport> client_wire_;
};

/// Like SingleCdnTestbed, but the client-cdn segment is HTTP/2-framed --
/// the deployment the paper's section VI-B covers (browsers speak h2 to the
/// edge; CDNs speak HTTP/1.1 to the origin).  Range semantics are identical
/// (RFC 7540 section 8.1 defers to RFC 7233), so the attacks carry over.
/// The h2 client leg is in-memory only; `transport` applies to the
/// HTTP/1.1 cdn-origin segment.
class SingleCdnTestbedH2 {
 public:
  explicit SingleCdnTestbedH2(cdn::VendorProfile profile,
                              origin::OriginConfig origin_config = {},
                              const net::TransportSpec& transport = {})
      : origin_(std::move(origin_config)),
        cdn_(std::move(profile), origin_, "cdn-origin",
             cdn::SegmentFraming::kHttp11, transport),
        client_traffic_("client-cdn (h2)"),
        client_wire_(client_traffic_, cdn_) {}

  origin::OriginServer& origin() noexcept { return origin_; }
  cdn::CdnNode& cdn() noexcept { return cdn_; }

  http::Response send(const http::Request& request,
                      const net::TransferOptions& options = {}) {
    return client_wire_.transfer(request, options);
  }

  net::TrafficRecorder& client_traffic() noexcept { return client_traffic_; }
  net::TrafficRecorder& origin_traffic() noexcept { return cdn_.upstream_traffic(); }

  void set_origin_fault_injector(net::FaultInjector* injector) {
    cdn_.set_upstream_fault_injector(injector);
  }

  void set_tracer(obs::Tracer* tracer) {
    client_wire_.set_tracer(tracer);
    cdn_.set_tracer(tracer);
  }

 private:
  origin::OriginServer origin_;
  cdn::CdnNode cdn_;
  net::TrafficRecorder client_traffic_;
  http2::Http2Wire client_wire_;
};

class CascadeTestbed {
 public:
  CascadeTestbed(cdn::VendorProfile fcdn_profile, cdn::VendorProfile bcdn_profile,
                 origin::OriginConfig origin_config = {},
                 const net::TransportSpec& transport = {})
      : origin_(std::move(origin_config)),
        bcdn_(std::move(bcdn_profile), origin_, "bcdn-origin",
              cdn::SegmentFraming::kHttp11, transport),
        fcdn_(std::move(fcdn_profile), bcdn_, "fcdn-bcdn",
              cdn::SegmentFraming::kHttp11, transport),
        client_traffic_("client-fcdn"),
        client_wire_(net::make_transport(transport, client_traffic_, fcdn_)) {}

  origin::OriginServer& origin() noexcept { return origin_; }
  cdn::CdnNode& fcdn() noexcept { return fcdn_; }
  cdn::CdnNode& bcdn() noexcept { return bcdn_; }

  http::Response send(const http::Request& request,
                      const net::TransferOptions& options = {}) {
    return client_wire_->transfer(request, options);
  }

  net::TrafficRecorder& client_traffic() noexcept { return client_traffic_; }
  net::TrafficRecorder& fcdn_bcdn_traffic() noexcept {
    return fcdn_.upstream_traffic();
  }
  net::TrafficRecorder& bcdn_origin_traffic() noexcept {
    return bcdn_.upstream_traffic();
  }

  /// Fault schedules per cascade segment (non-owning; nullptr detaches).
  void set_bcdn_origin_fault_injector(net::FaultInjector* injector) {
    bcdn_.set_upstream_fault_injector(injector);
  }
  void set_fcdn_bcdn_fault_injector(net::FaultInjector* injector) {
    fcdn_.set_upstream_fault_injector(injector);
  }

  /// Installs one tracer across the whole cascade: a traced send yields the
  /// client-fcdn -> fcdn-bcdn -> bcdn-origin span chain of Fig 3.
  void set_tracer(obs::Tracer* tracer) {
    client_wire_->set_tracer(tracer);
    fcdn_.set_tracer(tracer);
    bcdn_.set_tracer(tracer);
  }

  /// Installs one metrics registry on both CDN nodes.
  void set_metrics(obs::MetricsRegistry* metrics) {
    fcdn_.set_metrics(metrics);
    bcdn_.set_metrics(metrics);
  }

 private:
  origin::OriginServer origin_;
  cdn::CdnNode bcdn_;
  cdn::CdnNode fcdn_;
  net::TrafficRecorder client_traffic_;
  std::unique_ptr<net::Transport> client_wire_;
};

}  // namespace rangeamp::core
