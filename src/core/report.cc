#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace rangeamp::core {

std::string Table::to_markdown() const {
  // Column widths.
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = emit_row(headers_);
  std::string rule = "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  const auto emit = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = emit(headers_);
  for (const auto& row : rows_) out += emit(row);
  return out;
}

std::string Table::to_json() const {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned char>(c));
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  };
  std::string out = "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out += ",";
    out += "{";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += ",";
      const std::string& cell = c < rows_[r].size() ? rows_[r][c] : std::string{};
      out += "\"" + escape(headers_[c]) + "\":\"" + escape(cell) + "\"";
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace rangeamp::core
