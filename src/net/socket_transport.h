// The loopback-socket transport backend.
//
// The same exchange contract as net::InMemoryTransport, but the bytes are
// real: each transfer serializes the http::Request over a loopback TCP
// connection to a SocketServer wrapping the callee, and reads the serialized
// response back.  One blocking connection per exchange (connection-close
// framing), so an aborting receiver really does stop reading and close --
// the paper's section IV-C abort, enacted by the kernel instead of modelled.
//
// What this buys: wall-clock measurement (bench_socket_fig6 times real
// syscall/scheduling cost per amplified byte).  What it costs: timing noise,
// so socket runs never feed committed CSVs -- the in-memory backend stays
// the default everywhere (see docs/transport-model.md).
//
// Byte accounting matches the in-memory backend exactly, by construction:
// the server writes http::to_bytes(response) (whose size is
// http::serialized_size(response)), and the client counts the head plus the
// body prefix it accepted before closing (http::serialized_size_truncated).
// Injected faults that replace the exchange (reset, latency, status) are
// decided client-side before any connection is made, mirroring the
// in-memory short-circuits, so fault scenarios agree too.  The conformance
// suite (tests/net/transport_conformance_test.cc) holds both backends to
// this.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace rangeamp::net {

/// A minimal loopback HTTP/1.1 server wrapping an HttpHandler: binds
/// 127.0.0.1 on an ephemeral port, accepts in a background thread, and
/// serves one exchange per connection (read request, call handler, write
/// response, close).  Handler calls are serialized behind a mutex -- the
/// in-memory handlers (CdnNode chains) are single-threaded objects.
class SocketServer {
 public:
  /// Binds and starts accepting.  Throws std::runtime_error when the socket
  /// layer refuses (no loopback available).  `handler` must outlive the
  /// server.
  explicit SocketServer(HttpHandler& handler);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The ephemeral port the server listens on.
  std::uint16_t port() const noexcept { return port_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  HttpHandler* handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex handler_mutex_;
  std::thread accept_thread_;
};

class SocketTransport final : public Transport {
 public:
  /// Owns a SocketServer wrapped around `callee`; every transfer crosses
  /// loopback to it.  `recorder` and `callee` must outlive the transport.
  SocketTransport(TrafficRecorder& recorder, HttpHandler& callee);

  /// Connects to an already-running server on 127.0.0.1:`port`.
  SocketTransport(TrafficRecorder& recorder, std::uint16_t port)
      : Transport(recorder), port_(port) {}

  std::uint16_t port() const noexcept { return port_; }

 protected:
  TransferOutcome do_transfer_outcome(const http::Request& request,
                                      const TransferOptions& options) override;

 private:
  std::unique_ptr<SocketServer> server_;  ///< null when attached to a port
  std::uint16_t port_ = 0;
};

}  // namespace rangeamp::net
