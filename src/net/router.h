// Host-based request routing.
//
// A CDN serves many customers; the edge picks the upstream by the Host
// header.  This is the surface the paper's threat model leans on twice: the
// attacker "maliciously deploys" its own site on the CDN (section IV-A) and
// points an FCDN distribution at a BCDN ingress -- both are just routes.
#pragma once

#include <string>
#include <unordered_map>

#include "net/handler.h"

namespace rangeamp::net {

class HostRouter final : public HttpHandler {
 public:
  /// Routes requests whose Host equals `host` to `upstream` (must outlive
  /// the router).  Re-adding a host replaces the route.
  void add_route(std::string host, HttpHandler& upstream) {
    routes_[std::move(host)] = &upstream;
  }

  /// Upstream for hosts with no explicit route (nullptr = answer 404).
  void set_default(HttpHandler& upstream) { default_ = &upstream; }

  http::Response handle(const http::Request& request) override {
    const auto host = std::string{request.headers.get_or("Host", "")};
    const auto it = routes_.find(host);
    HttpHandler* target = it != routes_.end() ? it->second : default_;
    if (target == nullptr) {
      http::Response resp;
      resp.status = http::kNotFound;
      resp.headers.add("Content-Length", "0");
      return resp;
    }
    return target->handle(request);
  }

  std::size_t route_count() const noexcept { return routes_.size(); }

 private:
  std::unordered_map<std::string, HttpHandler*> routes_;
  HttpHandler* default_ = nullptr;
};

}  // namespace rangeamp::net
