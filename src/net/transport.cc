#include "net/transport.h"

namespace rangeamp::net {

http::Response Transport::transfer(const http::Request& request,
                                   const TransferOptions& options) {
  TransferOutcome outcome = do_transfer_outcome(request, options);
  if (outcome.ok()) return std::move(outcome.response);
  return response_for_failed_outcome(outcome);
}

ExchangeScope::ExchangeScope(Transport& transport, const http::Request& request,
                             std::string_view proto)
    : transport_(&transport),
      span_(transport.tracer(), "net.transfer",
            transport.recorder().segment()) {
  if (span_) {
    if (!proto.empty()) span_.note("proto", proto);
    span_.note("target", request.target);
    if (const auto range = request.headers.get("Range")) {
      span_.note("range", *range);
    }
  }
  record.target = request.target;
  record.range_header = std::string{request.headers.get_or("Range", "")};
}

void ExchangeScope::finish() {
  if (finished_) return;
  finished_ = true;
  if (span_) {
    span_.add_bytes(record.bytes);
    span_.set_status(record.status);
    if (record.response_truncated) span_.note("truncated", "true");
    if (record.faulted) span_.note("fault", "hit");
  }
  transport_->recorder().record(std::move(record));
}

}  // namespace rangeamp::net
