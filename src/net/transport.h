// The exchange contract of one connection segment.
//
// Every measurement in the paper is per *segment* of the Fig 1/3 topology
// (client-cdn, cdn-origin, fcdn-bcdn, bcdn-origin).  A Transport is one such
// segment: it carries one request/response exchange toward its peer, adds
// the exact byte counts to the segment's TrafficRecorder, consults an
// optional FaultInjector once per attempt, and stamps an optional
// "net.transfer" span with the outcome.  Implementations differ only in how
// the bytes cross the segment:
//
//   * InMemoryTransport (net/wire.h) -- synchronous in-memory pipe; byte
//     counts are computed from serialized sizes without materializing
//     payloads.  Deterministic, and the default backend everywhere, so
//     every committed experiment replays byte-identically.
//   * Http2Wire (http2/wire.h) -- h2 frame sequences with per-connection
//     HPACK state; in-memory and deterministic.
//   * SocketTransport (net/socket_transport.h) -- the same http::Request/
//     http::Response serialized over a real loopback TCP connection per
//     exchange; unlocks wall-clock measurement at the cost of real
//     scheduling noise.
//
// The contract every backend must honor (tests/net/
// transport_conformance_test.cc runs the suite over all of them; see
// docs/transport-model.md for the backend matrix):
//
//   * transfer_outcome() performs exactly one exchange and records exactly
//     one ExchangeRecord whose byte pair equals the serialized bytes that
//     crossed the segment (partial bytes still counted on truncation);
//   * receiver-side caps (head_only, abort_after_body_bytes) bound the
//     received body, and sender-side fault truncation composes with them:
//     whichever cut happens first bounds what is received and counted;
//   * injected faults are decided once per attempt through the attached
//     FaultInjector and surface as typed TransferErrors;
//   * transfer() -- the legacy folding adapter -- is implemented here, once:
//     failed outcomes become responses via response_for_failed_outcome() in
//     exactly one place, never per backend.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"
#include "net/fault.h"
#include "net/handler.h"
#include "net/traffic.h"
#include "obs/trace.h"

namespace rangeamp::net {

struct TransferOptions {
  /// Abort the transfer once this many response *body* bytes were received.
  std::optional<std::uint64_t> abort_after_body_bytes;
  /// Receive only the response head (headers), no body bytes.
  bool head_only = false;
  /// Give up when the response's first byte takes longer than this (injected
  /// latency on in-memory backends, wall-clock receive patience on socket
  /// backends; absent = wait forever).
  std::optional<double> timeout_seconds;
};

/// Wire protocol of a connection segment.
enum class SegmentFraming {
  kHttp11,  ///< plain HTTP/1.1 serialization (InMemoryTransport / SocketTransport)
  kHttp2,   ///< h2 frames + HPACK (http2::Http2Wire)
};

/// One connection segment toward a fixed peer.  Non-copyable: a transport is
/// identified with its segment (recorder), like the TCP connection it models.
class Transport {
 public:
  /// `recorder` must outlive the transport.
  explicit Transport(TrafficRecorder& recorder) : recorder_(&recorder) {}
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Failure-aware exchange: one attempt across the segment, its bytes
  /// recorded, injected faults surfaced as typed TransferErrors.  Fault-free
  /// segments always return ok() outcomes.
  TransferOutcome transfer_outcome(const http::Request& request,
                                   const TransferOptions& options = {}) {
    return do_transfer_outcome(request, options);
  }

  /// Legacy exchange: like transfer_outcome(), but a failed outcome is
  /// folded into a response via response_for_failed_outcome().  This is the
  /// only place that folding happens.
  http::Response transfer(const http::Request& request,
                          const TransferOptions& options = {});

  /// Attaches a fault schedule to this segment (non-owning; nullptr
  /// detaches).  The injector must outlive the transport.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Attaches a tracer (non-owning; nullptr detaches): every transfer then
  /// opens a "net.transfer" span carrying this segment's id and the exact
  /// exchange byte counts; the peer's processing nests under it.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  obs::Tracer* tracer() const noexcept { return tracer_; }

  TrafficRecorder& recorder() noexcept { return *recorder_; }

 protected:
  /// Backend hook behind the public NVI entry points; `options` always
  /// arrives resolved (no defaulting left to the backend).
  virtual TransferOutcome do_transfer_outcome(const http::Request& request,
                                              const TransferOptions& options) = 0;

  /// Consults the attached injector, once per attempt.
  std::optional<FaultSpec> decide_fault(const http::Request& request) {
    return injector_ ? injector_->decide(request) : std::nullopt;
  }

 private:
  TrafficRecorder* recorder_;
  FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

/// The span-and-recorder epilogue shared by every backend: opens the
/// "net.transfer" span of one exchange (target/range/proto notes), exposes
/// the ExchangeRecord the backend fills in, and guarantees that stamping the
/// span and handing the record to the segment's recorder happen exactly once
/// -- the span mirrors exactly what the recorder counts.
class ExchangeScope {
 public:
  /// `proto` annotates non-default framings ("h2"); empty emits no note.
  ExchangeScope(Transport& transport, const http::Request& request,
                std::string_view proto = {});
  ~ExchangeScope() { finish(); }
  ExchangeScope(const ExchangeScope&) = delete;
  ExchangeScope& operator=(const ExchangeScope&) = delete;

  /// Filled by the backend as the exchange progresses.
  ExchangeRecord record;

  /// Stamps the span from `record` and hands it to the recorder.  Runs at
  /// most once; the destructor covers any return path that forgot.
  void finish();

 private:
  Transport* transport_;
  obs::SpanScope span_;
  bool finished_ = false;
};

/// Adapter presenting an owned Transport as an HttpHandler, so a whole
/// counted path can itself serve as someone's upstream.
class TransportHandler final : public HttpHandler {
 public:
  explicit TransportHandler(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)) {}

  http::Response handle(const http::Request& request) override {
    return transport_->transfer(request);
  }

  Transport& transport() noexcept { return *transport_; }

 private:
  std::unique_ptr<Transport> transport_;
};

}  // namespace rangeamp::net
