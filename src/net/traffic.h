// Per-segment traffic accounting.
//
// The paper's measurements are all of the form "response traffic on the
// cdn-origin connection" vs "response traffic on the client-cdn connection"
// (Fig 6, Tables IV/V).  A TrafficRecorder is the tcpdump of this
// reproduction: every Wire transfer adds the exact serialized request and
// response byte counts of its segment.  Byte pairs are spelled with the
// shared TrafficTotals vocabulary from net/accounting.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/accounting.h"

namespace rangeamp::net {

/// Light record of one request/response exchange on a segment.
struct ExchangeRecord {
  std::string target;        ///< request target
  std::string range_header;  ///< request Range value ("" when absent)
  int status = 0;            ///< response status
  TrafficTotals bytes;       ///< exact serialized request/response sizes
  bool response_truncated = false;  ///< receiver aborted mid-body
  bool faulted = false;             ///< an injected fault hit this exchange
};

/// Byte and exchange counters for one connection segment.
class TrafficRecorder {
 public:
  explicit TrafficRecorder(std::string segment_name = {})
      : name_(std::move(segment_name)),
        segment_(segment_from_name(name_)) {}

  void record(ExchangeRecord record) {
    totals_ += record.bytes;
    ++exchanges_count_;
    if (record.faulted) ++faulted_count_;
    if (record.response_truncated) ++truncated_count_;
    if (keep_log_) log_.push_back(std::move(record));
  }

  /// Enables/disables retention of per-exchange records (counters always
  /// accumulate).  Scanners enable it; long benchmark sweeps leave it off.
  void set_keep_log(bool keep) { keep_log_ = keep; }

  void reset() {
    totals_ = {};
    exchanges_count_ = 0;
    faulted_count_ = 0;
    truncated_count_ = 0;
    log_.clear();
  }

  const std::string& name() const noexcept { return name_; }
  /// Canonical classification of this segment (derived from the name).
  SegmentId segment() const noexcept { return segment_; }
  const TrafficTotals& totals() const noexcept { return totals_; }
  std::uint64_t request_bytes() const noexcept { return totals_.request_bytes; }
  std::uint64_t response_bytes() const noexcept { return totals_.response_bytes; }
  std::uint64_t total_bytes() const noexcept { return totals_.total(); }
  std::uint64_t exchange_count() const noexcept { return exchanges_count_; }
  std::uint64_t faulted_count() const noexcept { return faulted_count_; }
  /// Exchanges whose response body the receiver (or a fault) cut short.
  /// The byte counters above already count only the received prefix; this
  /// exposes *how many* exchanges were cut, which the per-exchange log used
  /// to be the only way to learn.
  std::uint64_t truncated_count() const noexcept { return truncated_count_; }
  const std::vector<ExchangeRecord>& log() const noexcept { return log_; }

 private:
  std::string name_;
  SegmentId segment_;
  TrafficTotals totals_;
  std::uint64_t exchanges_count_ = 0;
  std::uint64_t faulted_count_ = 0;
  std::uint64_t truncated_count_ = 0;
  bool keep_log_ = true;
  std::vector<ExchangeRecord> log_;
};

}  // namespace rangeamp::net
