// Shared traffic-accounting vocabulary.
//
// Every claim in the paper is a statement about bytes on one connection
// segment (Fig 6, Tables IV/V): response traffic on the cdn-origin wire vs
// response traffic on the client-cdn wire.  Before this header existed the
// reproduction spelled that vocabulary five times over (ExchangeRecord,
// TrafficRecorder, SbrCampaignResult, DetectorSample, and the bench CSV
// writers each re-declared `request_bytes`/`response_bytes`).  SegmentId and
// TrafficTotals are the single shared spelling; everything that counts bytes
// speaks in these types.
//
// Header-only on purpose: obs/ (the tracing subsystem) consumes these types
// without linking rangeamp_net, and rangeamp_net links rangeamp_obs -- the
// vocabulary must sit below both.
#pragma once

#include <cstdint>
#include <string_view>

namespace rangeamp::net {

/// The connection segments of Fig 1/3.  Recorder names carry free-form
/// suffixes ("cdn-origin[3]", "client-cdn (h2)"); the id is the canonical
/// classification used by span trees, metrics, and per-segment summaries.
enum class SegmentId {
  kNone,        ///< not a wire segment (or an unclassifiable recorder name)
  kClientCdn,   ///< client-cdn (SBR) / client-fcdn (OBR): the attacker's view
  kFcdnBcdn,    ///< the inter-CDN segment of an OBR cascade
  kCdnOrigin,   ///< the back-to-origin segment of a single-CDN deployment
  kBcdnOrigin,  ///< the back CDN's origin pull in a cascade
};

constexpr std::string_view segment_id_name(SegmentId id) noexcept {
  switch (id) {
    case SegmentId::kClientCdn: return "client-cdn";
    case SegmentId::kFcdnBcdn: return "fcdn-bcdn";
    case SegmentId::kCdnOrigin: return "cdn-origin";
    case SegmentId::kBcdnOrigin: return "bcdn-origin";
    case SegmentId::kNone: break;
  }
  return "";
}

/// Classifies a TrafficRecorder name.  Matches on the canonical prefix so
/// per-node suffixes ("cdn-origin[7]") and framing notes ("client-cdn (h2)")
/// map to the same segment; the client-facing aliases the experiment drivers
/// use ("attacker", "clients", "client-fcdn") classify as kClientCdn.
constexpr SegmentId segment_from_name(std::string_view name) noexcept {
  constexpr auto starts_with = [](std::string_view s, std::string_view p) {
    return s.size() >= p.size() && s.substr(0, p.size()) == p;
  };
  if (starts_with(name, "client-cdn") || starts_with(name, "client-fcdn") ||
      starts_with(name, "attacker") || starts_with(name, "clients")) {
    return SegmentId::kClientCdn;
  }
  if (starts_with(name, "fcdn-bcdn")) return SegmentId::kFcdnBcdn;
  if (starts_with(name, "bcdn-origin")) return SegmentId::kBcdnOrigin;
  if (starts_with(name, "cdn-origin")) return SegmentId::kCdnOrigin;
  return SegmentId::kNone;
}

/// Byte totals of one segment (or one exchange on it): exact serialized
/// request and response sizes, as a TrafficRecorder counts them.
struct TrafficTotals {
  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;

  TrafficTotals& operator+=(const TrafficTotals& other) noexcept {
    request_bytes += other.request_bytes;
    response_bytes += other.response_bytes;
    return *this;
  }
  friend TrafficTotals operator+(TrafficTotals lhs,
                                 const TrafficTotals& rhs) noexcept {
    lhs += rhs;
    return lhs;
  }
  bool operator==(const TrafficTotals&) const = default;

  std::uint64_t total() const noexcept { return request_bytes + response_bytes; }

  /// Within-segment amplification: how much larger the responses crossing
  /// this segment are than the requests that elicited them (the DRDoS-style
  /// reflector view).  0 when no request byte was sent.
  double amplification() const noexcept {
    return request_bytes == 0
               ? 0
               : static_cast<double>(response_bytes) /
                     static_cast<double>(request_bytes);
  }
};

/// Attempt accounting for retry-budget experiments: how many wire transfers
/// on one segment (or summed over a path) were first attempts vs retries.
/// The retry-storm claim of the overload experiments is a statement about
/// this split -- `retries` is the traffic a per-request retry policy adds on
/// top of the load the clients actually offered.
struct AttemptTotals {
  std::uint64_t first_attempts = 0;
  std::uint64_t retries = 0;

  AttemptTotals& operator+=(const AttemptTotals& other) noexcept {
    first_attempts += other.first_attempts;
    retries += other.retries;
    return *this;
  }
  friend AttemptTotals operator+(AttemptTotals lhs,
                                 const AttemptTotals& rhs) noexcept {
    lhs += rhs;
    return lhs;
  }
  bool operator==(const AttemptTotals&) const = default;

  std::uint64_t total() const noexcept { return first_attempts + retries; }

  /// Attempt amplification: total wire transfers per offered request.
  /// 1.0 = no retry ever fired; 0 when nothing was attempted.
  double amplification() const noexcept {
    return first_attempts == 0
               ? 0
               : static_cast<double>(total()) /
                     static_cast<double>(first_attempts);
  }
};

/// The paper's cross-segment amplification factor:
///     AF = response bytes on the amplified segment (cdn-origin, fcdn-bcdn)
///        / response bytes on the attacker-facing segment (client-cdn).
/// 0 when the attacker-facing segment carried no response byte.
inline double amplification_factor(const TrafficTotals& amplified,
                                   const TrafficTotals& attacker_facing) noexcept {
  return attacker_facing.response_bytes == 0
             ? 0
             : static_cast<double>(amplified.response_bytes) /
                   static_cast<double>(attacker_facing.response_bytes);
}

}  // namespace rangeamp::net
