#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "http/serialize.h"

namespace rangeamp::net {
namespace {

// Guard against an unframed peer streaming forever into the head search.
constexpr std::size_t kMaxHeadBytes = 4 * 1024 * 1024;
constexpr std::size_t kReadChunk = 64 * 1024;

// Server-side request caps.  A request head far above any legitimate shape
// (the largest this testbed produces is the ~81 KB multi-range OBR header)
// or a Content-Length the server would have to buffer in full are both
// resource-exhaustion vectors against the accept loop, which serves one
// connection at a time: the connection is dropped, not served.
constexpr std::size_t kMaxRequestHeadBytes = 1 * 1024 * 1024;
constexpr std::size_t kMaxRequestBytes = 8 * 1024 * 1024;

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;  // peer closed (an aborting receiver) or error
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void set_receive_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

enum class ReadStatus { kOk, kEof, kTimeout, kError };

ReadStatus read_some(int fd, std::string& buf) {
  char chunk[kReadChunk];
  const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n > 0) {
    buf.append(chunk, static_cast<std::size_t>(n));
    return ReadStatus::kOk;
  }
  if (n == 0) return ReadStatus::kEof;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kTimeout;
  return ReadStatus::kError;
}

/// Reads until `buf` contains the blank line ending the head.  Returns the
/// head end offset (one past "\r\n\r\n"), or a status on failure.
struct HeadRead {
  ReadStatus status = ReadStatus::kOk;
  std::size_t head_end = 0;
};

HeadRead read_head(int fd, std::string& buf,
                   std::size_t max_head_bytes = kMaxHeadBytes) {
  std::size_t scanned = 0;
  while (true) {
    const std::size_t from = scanned > 3 ? scanned - 3 : 0;
    const auto pos = buf.find("\r\n\r\n", from);
    if (pos != std::string::npos) return {ReadStatus::kOk, pos + 4};
    scanned = buf.size();
    if (buf.size() > max_head_bytes) return {ReadStatus::kError, 0};
    const ReadStatus st = read_some(fd, buf);
    if (st != ReadStatus::kOk) return {st, 0};
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::SocketServer(HttpHandler& handler) : handler_(&handler) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("SocketServer: socket() failed");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("SocketServer: bind/listen on loopback failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("SocketServer: getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() {
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
}

void SocketServer::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      continue;
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void SocketServer::serve_connection(int fd) {
  // A connected-but-silent client must not wedge the accept loop.
  set_receive_timeout(fd, 5.0);

  std::string buf;
  const HeadRead head_read = read_head(fd, buf, kMaxRequestHeadBytes);
  if (head_read.status != ReadStatus::kOk) return;
  const auto head = http::parse_request_head(
      std::string_view{buf}.substr(0, head_read.head_end));
  if (!head) return;
  // Refuse to buffer a request body past the cap: check the *declared*
  // length before reading a byte of it, so a "Content-Length: 2^60" never
  // grows buf at all.  (Checked against the cap before the sum so the
  // arithmetic cannot wrap.)
  if (head->content_length > kMaxRequestBytes ||
      head_read.head_end >
          kMaxRequestBytes - static_cast<std::size_t>(head->content_length)) {
    return;
  }
  const std::size_t total =
      head_read.head_end + static_cast<std::size_t>(head->content_length);
  while (buf.size() < total) {
    if (read_some(fd, buf) != ReadStatus::kOk) return;
  }
  const auto request = http::parse_request(std::string_view{buf}.substr(0, total));
  if (!request) return;

  http::Response response;
  {
    // The wrapped handler chains (CdnNode and friends) are single-threaded
    // objects; exchanges are serialized even if connections are not.
    std::lock_guard<std::mutex> lock(handler_mutex_);
    response = handler_->handle(*request);
  }
  // An aborting client (head_only / abort_after_body_bytes) closes early;
  // the resulting EPIPE just ends the write, as a real sender would see.
  send_all(fd, http::to_bytes(response));
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

SocketTransport::SocketTransport(TrafficRecorder& recorder, HttpHandler& callee)
    : Transport(recorder),
      server_(std::make_unique<SocketServer>(callee)),
      port_(server_->port()) {}

TransferOutcome SocketTransport::do_transfer_outcome(
    const http::Request& request, const TransferOptions& options) {
  const std::optional<FaultSpec> fault = decide_fault(request);

  ExchangeScope exchange(*this, request);
  TransferOutcome outcome;
  exchange.record.bytes.request_bytes = http::serialized_size(request);

  // Faults that replace the exchange are decided before any connection is
  // made, mirroring the in-memory short-circuits so both backends record the
  // same bytes for the same fault schedule.
  if (fault && fault->action == FaultAction::kConnectionReset) {
    exchange.record.faulted = true;
    exchange.finish();
    outcome.error = TransferError{TransferErrorKind::kConnectionReset, 0};
    return outcome;
  }
  if (fault && fault->action == FaultAction::kLatency) {
    outcome.latency_seconds = fault->latency_seconds;
    if (options.timeout_seconds &&
        fault->latency_seconds > *options.timeout_seconds) {
      exchange.record.faulted = true;
      exchange.finish();
      outcome.error = TransferError{TransferErrorKind::kTimeout, 0};
      outcome.latency_seconds = *options.timeout_seconds;
      return outcome;
    }
  }
  if (fault && fault->action == FaultAction::kStatus) {
    // Synthesized responses have empty bodies: receiver caps and sender
    // truncation are no-ops, exactly as on the in-memory path.
    http::Response response = synthesized_fault_response(fault->status);
    exchange.record.status = response.status;
    exchange.record.bytes.response_bytes = http::serialized_size(response);
    exchange.finish();
    outcome.response = std::move(response);
    return outcome;
  }

  const auto fail = [&](TransferErrorKind kind, std::uint64_t response_bytes) {
    exchange.record.faulted = true;
    exchange.record.bytes.response_bytes = response_bytes;
    exchange.finish();
    outcome.error = TransferError{kind, 0};
    return std::move(outcome);
  };

  FdCloser conn{::socket(AF_INET, SOCK_STREAM, 0)};
  if (conn.fd < 0) return fail(TransferErrorKind::kConnectionReset, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return fail(TransferErrorKind::kConnectionReset, 0);
  }
  const int one = 1;
  ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.timeout_seconds) set_receive_timeout(conn.fd, *options.timeout_seconds);

  if (!send_all(conn.fd, http::to_bytes(request))) {
    return fail(TransferErrorKind::kConnectionReset, 0);
  }

  std::string buf;
  const HeadRead head_read = read_head(conn.fd, buf);
  if (head_read.status == ReadStatus::kTimeout) {
    return fail(TransferErrorKind::kTimeout, 0);
  }
  if (head_read.status != ReadStatus::kOk) {
    return fail(TransferErrorKind::kConnectionReset, 0);
  }
  const auto head = http::parse_response_head(
      std::string_view{buf}.substr(0, head_read.head_end));
  if (!head) return fail(TransferErrorKind::kConnectionReset, 0);
  exchange.record.status = head->response.status;
  const std::uint64_t head_bytes = head_read.head_end;

  // Receiver-side caps compose with sender-side fault truncation, exactly as
  // on the in-memory path.  The declared Content-Length stands in for the
  // sender's body size; every handler in this codebase frames honestly, and
  // a lying peer merely ends the read at EOF early.
  std::optional<std::uint64_t> body_cap;
  if (options.head_only) {
    body_cap = 0;
  } else if (options.abort_after_body_bytes) {
    body_cap = *options.abort_after_body_bytes;
  }
  bool fault_cut = false;
  if (fault && fault->action == FaultAction::kTruncateBody &&
      head->content_length && fault->truncate_body_at < *head->content_length &&
      (!body_cap || fault->truncate_body_at < *body_cap)) {
    body_cap = fault->truncate_body_at;
    fault_cut = true;
  }

  // Accept body bytes until the cap (deliberate abort: stop reading, close)
  // or the framed end / EOF.
  constexpr std::uint64_t kToEof = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t framed = head->content_length.value_or(kToEof);
  const std::uint64_t wanted = body_cap ? std::min(*body_cap, framed) : framed;
  std::string body{buf.substr(head_read.head_end)};
  bool hit_eof = false;
  while (body.size() < wanted) {
    const ReadStatus st = read_some(conn.fd, body);
    if (st == ReadStatus::kTimeout) {
      return fail(TransferErrorKind::kTimeout, head_bytes + body.size());
    }
    if (st != ReadStatus::kOk) {
      hit_eof = true;
      break;
    }
  }

  const std::uint64_t declared = head->content_length.value_or(body.size());
  std::uint64_t accepted = body.size();
  bool truncated = false;
  if (body_cap && *body_cap < declared && !hit_eof) {
    accepted = std::min<std::uint64_t>(accepted, *body_cap);
    truncated = true;
  }
  body.resize(static_cast<std::size_t>(accepted));

  exchange.record.bytes.response_bytes = head_bytes + accepted;
  exchange.record.response_truncated = truncated;
  if (fault_cut && truncated) {
    exchange.record.faulted = true;
    outcome.error = TransferError{TransferErrorKind::kTruncatedBody, accepted};
  }
  exchange.finish();

  http::Response response = std::move(head->response);
  response.body = http::Body::literal(std::move(body));
  outcome.response = std::move(response);
  return outcome;
}

}  // namespace rangeamp::net
