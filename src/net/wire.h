// A Wire joins two hops and counts every byte that crosses it.
//
// Wires model the TCP connection segments of Fig 1/3 in the paper
// (client-cdn, cdn-origin, fcdn-bcdn, bcdn-origin).  A transfer serializes
// the request toward the callee and the response back; the exact serialized
// sizes are added to the segment's TrafficRecorder.
//
// TransferOptions model the two receiver-side tricks the paper describes:
//   * abort_after_body_bytes -- the receiver closes the connection once that
//     many response body bytes have arrived (Azure's 8 MB back-to-origin
//     cutoff in section V-A; the OBR attacker's deliberate early abort in
//     section IV-C).  The sender stops transmitting, so only the received
//     prefix is counted and delivered.
//   * head_only -- the receiver reads status line + headers, then aborts
//     (models the attacker's tiny TCP receive window degenerate case).
//   * timeout_seconds -- the receiver's per-attempt patience; an injected
//     latency beyond it fails the attempt before any response byte arrives.
//
// A segment can carry a FaultInjector (see net/fault.h); transfer_outcome()
// is the failure-aware variant of transfer(): it returns a TransferOutcome
// whose typed error distinguishes resets, mid-body truncation and timeouts,
// with partial bytes still counted by the TrafficRecorder.
#pragma once

#include <optional>
#include <string>

#include "http/serialize.h"
#include "net/fault.h"
#include "net/handler.h"
#include "net/traffic.h"
#include "obs/trace.h"

namespace rangeamp::net {

struct TransferOptions {
  /// Abort the transfer once this many response *body* bytes were received.
  std::optional<std::uint64_t> abort_after_body_bytes;
  /// Receive only the response head (headers), no body bytes.
  bool head_only = false;
  /// Give up when the response's first byte takes longer than this (injected
  /// latency only; absent = wait forever).
  std::optional<double> timeout_seconds;
};

class Wire {
 public:
  /// `recorder` and `callee` must outlive the wire.
  Wire(TrafficRecorder& recorder, HttpHandler& callee)
      : recorder_(&recorder), callee_(&callee) {}

  /// Performs one exchange across this segment.  The returned response body
  /// is truncated to what the receiver actually accepted.  On a transfer
  /// failure (injected fault) the failed outcome is folded into a response
  /// via response_for_failed_outcome().
  http::Response transfer(const http::Request& request,
                          const TransferOptions& options = {});

  /// Failure-aware exchange: like transfer(), but the caller sees the typed
  /// TransferError instead of a folded response.  Fault-free wires always
  /// return ok() outcomes, byte-identical to transfer().
  TransferOutcome transfer_outcome(const http::Request& request,
                                   const TransferOptions& options = {});

  /// Attaches a fault schedule to this segment (non-owning; nullptr
  /// detaches).  The injector must outlive the wire.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Attaches a tracer (non-owning; nullptr detaches): every transfer then
  /// opens a "net.transfer" span carrying this segment's id and the exact
  /// exchange byte counts; the callee's processing nests under it.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const noexcept { return tracer_; }

  TrafficRecorder& recorder() noexcept { return *recorder_; }

 private:
  TrafficRecorder* recorder_;
  HttpHandler* callee_;
  FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

/// Adapter: presents a Wire (a counted segment toward `callee`) as an
/// HttpHandler, so a whole path can itself serve as someone's upstream.
class WireHandler final : public HttpHandler {
 public:
  WireHandler(TrafficRecorder& recorder, HttpHandler& callee)
      : wire_(recorder, callee) {}

  http::Response handle(const http::Request& request) override {
    return wire_.transfer(request);
  }

  Wire& wire() noexcept { return wire_; }

 private:
  Wire wire_;
};

}  // namespace rangeamp::net
