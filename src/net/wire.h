// The in-memory transport backend (the historical `Wire`).
//
// InMemoryTransport joins two hops through a synchronous in-memory byte pipe
// and counts every byte that would cross the TCP connection segments of
// Fig 1/3 in the paper (client-cdn, cdn-origin, fcdn-bcdn, bcdn-origin).  A
// transfer serializes the request toward the callee and the response back;
// the exact serialized sizes are added to the segment's TrafficRecorder
// without materializing synthetic payloads -- which is what keeps every
// committed experiment deterministic and fast.  The exchange contract
// (options, faults, tracing, accounting) lives in net/transport.h; the
// loopback-socket analogue is net/socket_transport.h.
//
// TransferOptions model the two receiver-side tricks the paper describes:
//   * abort_after_body_bytes -- the receiver closes the connection once that
//     many response body bytes have arrived (Azure's 8 MB back-to-origin
//     cutoff in section V-A; the OBR attacker's deliberate early abort in
//     section IV-C).  The sender stops transmitting, so only the received
//     prefix is counted and delivered.
//   * head_only -- the receiver reads status line + headers, then aborts
//     (models the attacker's tiny TCP receive window degenerate case).
//   * timeout_seconds -- the receiver's per-attempt patience; an injected
//     latency beyond it fails the attempt before any response byte arrives.
#pragma once

#include "http/serialize.h"
#include "net/transport.h"

namespace rangeamp::net {

class InMemoryTransport final : public Transport {
 public:
  /// `recorder` and `callee` must outlive the transport.
  InMemoryTransport(TrafficRecorder& recorder, HttpHandler& callee)
      : Transport(recorder), callee_(&callee) {}

 protected:
  TransferOutcome do_transfer_outcome(const http::Request& request,
                                      const TransferOptions& options) override;

 private:
  HttpHandler* callee_;
};

/// The historical name: every hop of the original reproduction crossed a
/// `Wire`.  Kept as the spelling of the default backend.
using Wire = InMemoryTransport;

/// Adapter: presents a Wire (a counted segment toward `callee`) as an
/// HttpHandler, so a whole path can itself serve as someone's upstream.
class WireHandler final : public HttpHandler {
 public:
  WireHandler(TrafficRecorder& recorder, HttpHandler& callee)
      : wire_(recorder, callee) {}

  http::Response handle(const http::Request& request) override {
    return wire_.transfer(request);
  }

  Wire& wire() noexcept { return wire_; }

 private:
  Wire wire_;
};

}  // namespace rangeamp::net
