// The hop interface: anything that can answer an HTTP request.
//
// Origin servers, CDN nodes and test doubles all implement HttpHandler; a
// network path (client -> FCDN -> BCDN -> origin) is a chain of handlers
// joined by Wires that count the serialized bytes crossing each segment.
#pragma once

#include "http/message.h"

namespace rangeamp::net {

class HttpHandler {
 public:
  virtual ~HttpHandler() = default;

  /// Answers one request.  Handlers are synchronous: the returned Response is
  /// the complete message the peer would emit on the wire.
  virtual http::Response handle(const http::Request& request) = 0;
};

/// A handler whose target is bound after construction.  Handler chains are
/// wired bottom-up through references, which makes a cyclic topology (the
/// FCDN -> BCDN -> FCDN misconfiguration RFC 8586's CDN-Loop exists for)
/// impossible to express directly; a LateBoundHandler closes the cycle by
/// standing in for the upstream and being pointed back at the front node
/// once it exists.  Unbound, it answers 502.
class LateBoundHandler final : public HttpHandler {
 public:
  LateBoundHandler() = default;
  explicit LateBoundHandler(HttpHandler& target) : target_(&target) {}

  /// `target` must outlive this handler; nullptr unbinds.
  void bind(HttpHandler* target) noexcept { target_ = target; }
  bool bound() const noexcept { return target_ != nullptr; }

  http::Response handle(const http::Request& request) override {
    if (target_ != nullptr) return target_->handle(request);
    http::Response resp;
    resp.status = 502;
    resp.headers.add("Content-Length", "0");
    return resp;
  }

 private:
  HttpHandler* target_ = nullptr;
};

}  // namespace rangeamp::net
