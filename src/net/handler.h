// The hop interface: anything that can answer an HTTP request.
//
// Origin servers, CDN nodes and test doubles all implement HttpHandler; a
// network path (client -> FCDN -> BCDN -> origin) is a chain of handlers
// joined by Wires that count the serialized bytes crossing each segment.
#pragma once

#include "http/message.h"

namespace rangeamp::net {

class HttpHandler {
 public:
  virtual ~HttpHandler() = default;

  /// Answers one request.  Handlers are synchronous: the returned Response is
  /// the complete message the peer would emit on the wire.
  virtual http::Response handle(const http::Request& request) = 0;
};

}  // namespace rangeamp::net
