#include "net/wire.h"

namespace rangeamp::net {

http::Response Wire::transfer(const http::Request& request,
                              const TransferOptions& options) {
  http::Response response = callee_->handle(request);

  ExchangeRecord record;
  record.target = request.target;
  record.range_header = std::string{request.headers.get_or("Range", "")};
  record.status = response.status;
  record.request_bytes = http::serialized_size(request);

  std::optional<std::uint64_t> body_cap;
  if (options.head_only) {
    body_cap = 0;
  } else if (options.abort_after_body_bytes) {
    body_cap = *options.abort_after_body_bytes;
  }

  if (body_cap && *body_cap < response.body.size()) {
    record.response_bytes = http::serialized_size_truncated(response, *body_cap);
    record.response_truncated = true;
    response.body.truncate(*body_cap);
  } else {
    record.response_bytes = http::serialized_size(response);
  }
  recorder_->record(std::move(record));
  return response;
}

}  // namespace rangeamp::net
