#include "net/wire.h"

namespace rangeamp::net {

TransferOutcome InMemoryTransport::do_transfer_outcome(
    const http::Request& request, const TransferOptions& options) {
  const std::optional<FaultSpec> fault = decide_fault(request);

  ExchangeScope exchange(*this, request);
  TransferOutcome outcome;
  exchange.record.bytes.request_bytes = http::serialized_size(request);

  // Connection reset before the first response byte: the request crossed the
  // segment, nothing came back.
  if (fault && fault->action == FaultAction::kConnectionReset) {
    exchange.record.faulted = true;
    exchange.finish();
    outcome.error = TransferError{TransferErrorKind::kConnectionReset, 0};
    return outcome;
  }

  if (fault && fault->action == FaultAction::kLatency) {
    outcome.latency_seconds = fault->latency_seconds;
    if (options.timeout_seconds &&
        fault->latency_seconds > *options.timeout_seconds) {
      // The receiver hung up before the first byte; the upstream's response
      // never crossed the segment.
      exchange.record.faulted = true;
      exchange.finish();
      outcome.error = TransferError{TransferErrorKind::kTimeout, 0};
      outcome.latency_seconds = *options.timeout_seconds;
      return outcome;
    }
  }

  http::Response response = fault && fault->action == FaultAction::kStatus
                                ? synthesized_fault_response(fault->status)
                                : callee_->handle(request);
  exchange.record.status = response.status;

  // Receiver-side caps (deliberate aborts) compose with sender-side fault
  // truncation: whichever cut happens first bounds the received body.
  std::optional<std::uint64_t> body_cap;
  if (options.head_only) {
    body_cap = 0;
  } else if (options.abort_after_body_bytes) {
    body_cap = *options.abort_after_body_bytes;
  }
  bool fault_cut = false;
  if (fault && fault->action == FaultAction::kTruncateBody &&
      fault->truncate_body_at < response.body.size() &&
      (!body_cap || fault->truncate_body_at < *body_cap)) {
    body_cap = fault->truncate_body_at;
    fault_cut = true;
  }

  if (body_cap && *body_cap < response.body.size()) {
    exchange.record.bytes.response_bytes =
        http::serialized_size_truncated(response, *body_cap);
    exchange.record.response_truncated = true;
    response.body.truncate(*body_cap);
  } else {
    exchange.record.bytes.response_bytes = http::serialized_size(response);
  }
  if (fault_cut) {
    // The sender died mid-entity: the prefix arrived (and was counted), but
    // the message is incomplete -- a typed error, not a deliberate abort.
    exchange.record.faulted = true;
    outcome.error =
        TransferError{TransferErrorKind::kTruncatedBody, response.body.size()};
  }
  exchange.finish();
  outcome.response = std::move(response);
  return outcome;
}

}  // namespace rangeamp::net
