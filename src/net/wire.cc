#include "net/wire.h"

namespace rangeamp::net {

http::Response Wire::transfer(const http::Request& request,
                              const TransferOptions& options) {
  TransferOutcome outcome = transfer_outcome(request, options);
  if (outcome.ok()) return std::move(outcome.response);
  return response_for_failed_outcome(outcome);
}

TransferOutcome Wire::transfer_outcome(const http::Request& request,
                                       const TransferOptions& options) {
  const std::optional<FaultSpec> fault =
      injector_ ? injector_->decide(request) : std::nullopt;

  obs::SpanScope span(tracer_, "net.transfer", recorder_->segment());
  if (span) {
    span.note("target", request.target);
    if (const auto range = request.headers.get("Range")) {
      span.note("range", *range);
    }
  }
  // Stamps the span with the exchange's outcome and hands the record to the
  // segment's recorder (the span mirrors exactly what the recorder counts).
  const auto finish = [&](ExchangeRecord record) {
    if (span) {
      span.add_bytes(record.bytes);
      span.set_status(record.status);
      if (record.response_truncated) span.note("truncated", "true");
      if (record.faulted) span.note("fault", "hit");
    }
    recorder_->record(std::move(record));
  };

  TransferOutcome outcome;
  ExchangeRecord record;
  record.target = request.target;
  record.range_header = std::string{request.headers.get_or("Range", "")};
  record.bytes.request_bytes = http::serialized_size(request);

  // Connection reset before the first response byte: the request crossed the
  // segment, nothing came back.
  if (fault && fault->action == FaultAction::kConnectionReset) {
    record.faulted = true;
    finish(std::move(record));
    outcome.error = TransferError{TransferErrorKind::kConnectionReset, 0};
    return outcome;
  }

  if (fault && fault->action == FaultAction::kLatency) {
    outcome.latency_seconds = fault->latency_seconds;
    if (options.timeout_seconds &&
        fault->latency_seconds > *options.timeout_seconds) {
      // The receiver hung up before the first byte; the upstream's response
      // never crossed the segment.
      record.faulted = true;
      finish(std::move(record));
      outcome.error = TransferError{TransferErrorKind::kTimeout, 0};
      outcome.latency_seconds = *options.timeout_seconds;
      return outcome;
    }
  }

  http::Response response = fault && fault->action == FaultAction::kStatus
                                ? synthesized_fault_response(fault->status)
                                : callee_->handle(request);
  record.status = response.status;

  // Receiver-side caps (deliberate aborts) compose with sender-side fault
  // truncation: whichever cut happens first bounds the received body.
  std::optional<std::uint64_t> body_cap;
  if (options.head_only) {
    body_cap = 0;
  } else if (options.abort_after_body_bytes) {
    body_cap = *options.abort_after_body_bytes;
  }
  bool fault_cut = false;
  if (fault && fault->action == FaultAction::kTruncateBody &&
      fault->truncate_body_at < response.body.size() &&
      (!body_cap || fault->truncate_body_at < *body_cap)) {
    body_cap = fault->truncate_body_at;
    fault_cut = true;
  }

  if (body_cap && *body_cap < response.body.size()) {
    record.bytes.response_bytes =
        http::serialized_size_truncated(response, *body_cap);
    record.response_truncated = true;
    response.body.truncate(*body_cap);
  } else {
    record.bytes.response_bytes = http::serialized_size(response);
  }
  if (fault_cut) {
    // The sender died mid-entity: the prefix arrived (and was counted), but
    // the message is incomplete -- a typed error, not a deliberate abort.
    record.faulted = true;
    outcome.error =
        TransferError{TransferErrorKind::kTruncatedBody, response.body.size()};
  }
  finish(std::move(record));
  outcome.response = std::move(response);
  return outcome;
}

}  // namespace rangeamp::net
