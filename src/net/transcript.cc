#include "net/transcript.h"

#include <cctype>

namespace rangeamp::net {
namespace {

void append_escaped(std::string_view raw, std::string& out) {
  for (const char c : raw) {
    if (std::isprint(static_cast<unsigned char>(c))) {
      out.push_back(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
}

}  // namespace

std::string Transcript::render(std::size_t body_preview) const {
  std::string out;
  for (const TranscriptEntry& e : entries_) {
    out += "=== " + e.segment + " ===\n";
    out += "> " + std::string{http::method_name(e.request.method)} + " " +
           e.request.target + " " + e.request.version + "\n";
    for (const auto& f : e.request.headers) {
      out += "> " + f.name + ": " + f.value + "\n";
    }
    if (e.request.body.size() > 0) {
      out += "> [" + std::to_string(e.request.body.size()) + " body bytes]\n";
    }
    out += "\n";
    out += "< " + e.response.version + " " + std::to_string(e.response.status) +
           " " + std::string{http::reason_phrase(e.response.status)} + "\n";
    for (const auto& f : e.response.headers) {
      out += "< " + f.name + ": " + f.value + "\n";
    }
    const std::uint64_t body = e.response.body.size();
    out += "< [" + std::to_string(body) + " body bytes";
    if (body_preview > 0 && body > 0) {
      const std::uint64_t take = std::min<std::uint64_t>(body, body_preview);
      out += ": ";
      append_escaped(e.response.body.slice(0, take).materialize(), out);
      if (take < body) out += "...";
    }
    out += "]\n\n";
  }
  return out;
}

}  // namespace rangeamp::net
