#include "net/fault.h"

namespace rangeamp::net {

namespace {

// SplitMix64: the standard 64-bit mixing stream.  Indexed evaluation --
// mix(seed, index) -- keeps rate faults independent of rule-evaluation
// order and reproducible across runs.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t index) noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(splitmix64(seed ^ splitmix64(index)) >> 11) *
         0x1.0p-53;
}

}  // namespace

std::string_view fault_action_name(FaultAction a) noexcept {
  switch (a) {
    case FaultAction::kConnectionReset: return "connection-reset";
    case FaultAction::kTruncateBody: return "truncate-body";
    case FaultAction::kLatency: return "latency";
    case FaultAction::kStatus: return "status";
  }
  return "?";
}

std::string_view transfer_error_name(TransferErrorKind k) noexcept {
  switch (k) {
    case TransferErrorKind::kConnectionReset: return "connection-reset";
    case TransferErrorKind::kTruncatedBody: return "truncated-body";
    case TransferErrorKind::kTimeout: return "timeout";
  }
  return "?";
}

FaultInjector& FaultInjector::fail_nth(std::uint64_t nth, FaultSpec spec,
                                       RequestPredicate match) {
  rules_.push_back({Rule::When::kNth, nth, 0, 0, 0, spec, std::move(match)});
  return *this;
}

FaultInjector& FaultInjector::fail_first(std::uint64_t count, FaultSpec spec,
                                         RequestPredicate match) {
  rules_.push_back({Rule::When::kFirst, count, 0, 0, 0, spec, std::move(match)});
  return *this;
}

FaultInjector& FaultInjector::fail_every(std::uint64_t period, FaultSpec spec,
                                         RequestPredicate match) {
  rules_.push_back(
      {Rule::When::kEvery, period == 0 ? 1 : period, 0, 0, 0, spec,
       std::move(match)});
  return *this;
}

FaultInjector& FaultInjector::fail_rate(double probability, std::uint64_t seed,
                                        FaultSpec spec,
                                        RequestPredicate match) {
  rules_.push_back(
      {Rule::When::kRate, 0, probability, seed, 0, spec, std::move(match)});
  return *this;
}

FaultInjector& FaultInjector::fail_always(FaultSpec spec,
                                          RequestPredicate match) {
  rules_.push_back({Rule::When::kAlways, 0, 0, 0, 0, spec, std::move(match)});
  return *this;
}

std::optional<FaultSpec> FaultInjector::decide(const http::Request& request) {
  ++transfers_;
  if (!enabled_) return std::nullopt;
  for (Rule& rule : rules_) {
    if (rule.match && !rule.match(request)) continue;
    const std::uint64_t index = ++rule.matched;  // 1-based, per rule
    bool fire = false;
    switch (rule.when) {
      case Rule::When::kNth: fire = index == rule.n; break;
      case Rule::When::kFirst: fire = index <= rule.n; break;
      case Rule::When::kEvery: fire = index % rule.n == 0; break;
      case Rule::When::kRate:
        fire = uniform01(rule.seed, index) < rule.probability;
        break;
      case Rule::When::kAlways: fire = true; break;
    }
    if (fire) {
      ++faults_;
      return rule.spec;
    }
  }
  return std::nullopt;
}

void FaultInjector::reset_counters() {
  transfers_ = 0;
  faults_ = 0;
  for (Rule& rule : rules_) rule.matched = 0;
}

http::Response synthesized_fault_response(int status) {
  http::Response resp;
  resp.status = status;
  resp.headers.add("Content-Length", "0");
  resp.headers.add("X-Fault-Injected", "1");
  return resp;
}

http::Response response_for_failed_outcome(const TransferOutcome& outcome) {
  if (outcome.error &&
      outcome.error->kind == TransferErrorKind::kTruncatedBody) {
    return outcome.response;  // partial message, Content-Length > body size
  }
  http::Response resp;
  resp.status = http::kBadGateway;
  resp.headers.add("Content-Length", "0");
  if (outcome.error) {
    resp.headers.add("X-Transfer-Error",
                     std::string{transfer_error_name(outcome.error->kind)});
  }
  return resp;
}

}  // namespace rangeamp::net
