// Backend selection for HTTP/1.1 connection segments.
//
// One knob -- TransportSpec -- travels from experiment configs down through
// EdgeCluster / CdnNode / testbed constructors, so a whole topology (or one
// segment of it) can be lifted from the in-memory pipe onto real loopback
// sockets without touching any call site.  The default spec is the in-memory
// backend, which keeps every committed experiment byte-identical; socket
// runs are opt-in per invocation (bench_socket_fig6, the conformance suite).
//
// The factory covers the HTTP/1.1 backends only: h2 framing is a property
// of the segment (cdn::SegmentFraming::kHttp2), selected by CdnNode itself,
// and has no socket analogue (see docs/transport-model.md).
#pragma once

#include <memory>

#include "net/transport.h"

namespace rangeamp::net {

enum class TransportBackend {
  kInMemory,  ///< synchronous in-memory pipe (the default; deterministic)
  kSocket,    ///< real loopback TCP per exchange (wall-clock measurement)
};

struct TransportSpec {
  TransportBackend backend = TransportBackend::kInMemory;
};

/// Spells for readability at call sites.
inline constexpr TransportSpec kInMemoryTransportSpec{
    TransportBackend::kInMemory};
inline constexpr TransportSpec kSocketTransportSpec{TransportBackend::kSocket};

/// Builds the segment `spec` asks for: bytes recorded into `recorder`,
/// requests delivered to `callee` (directly, or through a loopback
/// SocketServer the transport owns).  `recorder` and `callee` must outlive
/// the transport.
std::unique_ptr<Transport> make_transport(const TransportSpec& spec,
                                          TrafficRecorder& recorder,
                                          HttpHandler& callee);

}  // namespace rangeamp::net
