// Human-readable exchange transcripts.
//
// The paper explains both attacks with message-flow figures (Fig 2, 4, 5).
// A Transcript captures the exchanges crossing chosen segments and renders
// them in that style -- request and response lines prefixed per direction,
// bodies elided to a preview.  TranscriptHandler is a decorator that can be
// spliced between any two hops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/handler.h"

namespace rangeamp::net {

struct TranscriptEntry {
  std::string segment;
  http::Request request;
  http::Response response;
};

class Transcript {
 public:
  void add(std::string segment, http::Request request, http::Response response) {
    entries_.push_back(
        {std::move(segment), std::move(request), std::move(response)});
  }

  const std::vector<TranscriptEntry>& entries() const noexcept { return entries_; }
  void clear() { entries_.clear(); }

  /// Renders all captured exchanges.  Bodies are shown as a byte count plus
  /// up to `body_preview` leading bytes (non-printables escaped).
  std::string render(std::size_t body_preview = 0) const;

 private:
  std::vector<TranscriptEntry> entries_;
};

/// Splices transcript capture in front of `next`.
class TranscriptHandler final : public HttpHandler {
 public:
  TranscriptHandler(std::string segment, Transcript& transcript,
                    HttpHandler& next)
      : segment_(std::move(segment)), transcript_(&transcript), next_(&next) {}

  http::Response handle(const http::Request& request) override {
    http::Response response = next_->handle(request);
    transcript_->add(segment_, request, response);
    return response;
  }

 private:
  std::string segment_;
  Transcript* transcript_;
  HttpHandler* next_;
};

}  // namespace rangeamp::net
