// Deterministic fault injection for connection segments.
//
// The paper's amplification measurements assume every hop succeeds, but the
// interesting production failure mode is the opposite: a CDN that *retries*
// a Deletion/Expansion fetch against a flaky origin multiplies the
// cdn-origin traffic beyond the paper's AF.  A FaultInjector scripts
// failures onto a Wire so that behaviour can be modelled -- and measured --
// reproducibly.
//
// Faults are scheduled, never sampled from ambient randomness: a schedule is
// a list of rules evaluated per transfer, first match wins, and probabilistic
// rules draw from a counter-indexed SplitMix64 stream, so the same seed
// always yields the same fault sequence.  Schedules can target the Nth
// transfer, every Kth transfer, a rate, or all transfers, optionally gated
// by a request predicate (e.g. only conditional revalidations).
//
// The injected faults model the cdn<->origin failures middleboxes actually
// see:
//   * connection reset before the first response byte,
//   * response body truncated at K bytes (sender dies mid-entity),
//   * latency (which trips per-attempt timeout budgets),
//   * upstream 5xx (load balancer / origin app failure).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "http/message.h"

namespace rangeamp::net {

/// What a scheduled fault does to the transfer it hits.
enum class FaultAction {
  kConnectionReset,  ///< connection dies before any response byte arrives
  kTruncateBody,     ///< response head arrives; body is cut at `truncate_body_at`
  kLatency,          ///< response delayed by `latency_seconds` (may trip timeouts)
  kStatus,           ///< the upstream answers `status` instead of the real response
};

std::string_view fault_action_name(FaultAction a) noexcept;

/// One fault, parameterized.
struct FaultSpec {
  FaultAction action = FaultAction::kConnectionReset;
  std::uint64_t truncate_body_at = 0;  ///< kTruncateBody: body bytes delivered
  double latency_seconds = 0;          ///< kLatency: delay before first byte
  int status = 503;                    ///< kStatus: synthesized status code

  static FaultSpec reset() { return {FaultAction::kConnectionReset, 0, 0, 0}; }
  static FaultSpec truncate(std::uint64_t at) {
    return {FaultAction::kTruncateBody, at, 0, 0};
  }
  static FaultSpec latency(double seconds) {
    return {FaultAction::kLatency, 0, seconds, 0};
  }
  static FaultSpec status_code(int status) {
    return {FaultAction::kStatus, 0, 0, status};
  }
};

/// How a transfer failed (the typed error of a TransferOutcome).
enum class TransferErrorKind {
  kConnectionReset,  ///< no response bytes arrived
  kTruncatedBody,    ///< response cut mid-body; partial bytes were received
  kTimeout,          ///< the receiver's per-attempt timeout expired first
};

std::string_view transfer_error_name(TransferErrorKind k) noexcept;

struct TransferError {
  TransferErrorKind kind = TransferErrorKind::kConnectionReset;
  /// Response body bytes that did arrive (and were counted) before failure.
  std::uint64_t body_bytes_received = 0;
};

/// Result of one exchange attempt across a wire.  On success `response`
/// holds the (possibly receiver-truncated) response; on failure `error` is
/// set and `response` holds whatever partial message arrived (a truncated
/// body for kTruncatedBody, a default-constructed message otherwise).
struct TransferOutcome {
  http::Response response;
  std::optional<TransferError> error;
  double latency_seconds = 0;  ///< injected latency observed by the receiver

  bool ok() const noexcept { return !error.has_value(); }
};

/// Deterministic per-segment fault scheduler.  Attach with
/// net::Transport::set_fault_injector (any backend: in-memory, socket, h2);
/// the transport calls decide() exactly once per transfer attempt.
class FaultInjector {
 public:
  using RequestPredicate = std::function<bool(const http::Request&)>;

  /// Fault exactly the nth transfer (1-based) seen by this injector.
  FaultInjector& fail_nth(std::uint64_t nth, FaultSpec spec,
                          RequestPredicate match = nullptr);

  /// Fault the first `count` transfers.
  FaultInjector& fail_first(std::uint64_t count, FaultSpec spec,
                            RequestPredicate match = nullptr);

  /// Fault every `period`-th transfer (period >= 1).
  FaultInjector& fail_every(std::uint64_t period, FaultSpec spec,
                            RequestPredicate match = nullptr);

  /// Fault each transfer independently with `probability`, drawn from a
  /// SplitMix64 stream indexed by (seed, matching-transfer counter) -- the
  /// same seed always produces the same fault pattern.
  FaultInjector& fail_rate(double probability, std::uint64_t seed,
                           FaultSpec spec, RequestPredicate match = nullptr);

  /// Fault every transfer.
  FaultInjector& fail_always(FaultSpec spec, RequestPredicate match = nullptr);

  /// Removes all rules (counters keep running).
  void clear_rules() { rules_.clear(); }

  /// Master switch; a disabled injector never faults (rules persist).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Consulted by wires, once per transfer attempt.  Advances the transfer
  /// counter and returns the fault to apply, if any.
  std::optional<FaultSpec> decide(const http::Request& request);

  std::uint64_t transfers_seen() const noexcept { return transfers_; }
  std::uint64_t faults_injected() const noexcept { return faults_; }
  void reset_counters();

 private:
  struct Rule {
    enum class When { kNth, kFirst, kEvery, kRate, kAlways };
    When when = When::kAlways;
    std::uint64_t n = 0;        ///< kNth: index; kFirst: count; kEvery: period
    double probability = 0;     ///< kRate
    std::uint64_t seed = 0;     ///< kRate
    std::uint64_t matched = 0;  ///< transfers this rule's predicate matched
    FaultSpec spec;
    RequestPredicate match;
  };

  bool enabled_ = true;
  std::uint64_t transfers_ = 0;
  std::uint64_t faults_ = 0;
  std::vector<Rule> rules_;
};

/// The wire-level stand-in for an upstream that answered with a failure
/// status before producing a real response (load-balancer 5xx).  Minimal and
/// deterministic: status line, Content-Length: 0, a marker header.
http::Response synthesized_fault_response(int status);

/// The response a legacy (Response-returning) transfer yields for a failed
/// outcome: the partial response for truncated bodies, otherwise a
/// synthesized 502 carrying an X-Transfer-Error header.  Never cacheable.
http::Response response_for_failed_outcome(const TransferOutcome& outcome);

}  // namespace rangeamp::net
