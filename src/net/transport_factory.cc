#include "net/transport_factory.h"

#include "net/socket_transport.h"
#include "net/wire.h"

namespace rangeamp::net {

std::unique_ptr<Transport> make_transport(const TransportSpec& spec,
                                          TrafficRecorder& recorder,
                                          HttpHandler& callee) {
  switch (spec.backend) {
    case TransportBackend::kSocket:
      return std::make_unique<SocketTransport>(recorder, callee);
    case TransportBackend::kInMemory:
      break;
  }
  return std::make_unique<InMemoryTransport>(recorder, callee);
}

}  // namespace rangeamp::net
