// Fluid-flow bandwidth simulation.
//
// Experiment 4 of the paper (Fig 7) is a time-domain measurement: m SBR
// requests per second for 30 seconds against a 1000 Mbps origin uplink; the
// observable is outgoing bandwidth of the origin and incoming bandwidth of
// the client, sampled per second.  Byte counts alone cannot show the
// saturation knee at m ~ 12, so this module adds the missing dimension:
// a capacity-limited link whose concurrent transfers share bandwidth
// max-min fairly (with one shared bottleneck, equal sharing).
//
// The model is fluid (continuous rates integrated over small steps), which
// is the standard abstraction for TCP bulk transfers over a common
// bottleneck and fully determines the shape of Fig 7.
#pragma once

#include <cstdint>
#include <vector>

namespace rangeamp::sim {

/// One bulk transfer crossing the link.
struct Flow {
  std::uint64_t id = 0;
  double start_time = 0;        ///< seconds
  std::uint64_t total_bytes = 0;
  double transferred = 0;       ///< bytes moved so far
  double completion_time = -1;  ///< seconds; <0 while in flight

  bool complete() const noexcept { return completion_time >= 0; }
  double remaining() const noexcept {
    return static_cast<double>(total_bytes) - transferred;
  }
};

/// A capacity-limited link with equal-share scheduling among active flows.
class FluidLink {
 public:
  explicit FluidLink(double capacity_bytes_per_sec)
      : capacity_(capacity_bytes_per_sec) {}

  /// Registers a flow of `bytes` starting at the current time.
  /// Returns the flow id.
  std::uint64_t start_flow(std::uint64_t bytes);

  /// Advances time by `dt` seconds, moving bytes across the link.
  /// Within the step, capacity freed by completing flows is redistributed to
  /// the remaining ones (processor-sharing semantics).
  void step(double dt);

  double now() const noexcept { return now_; }
  double capacity() const noexcept { return capacity_; }

  /// Flows still in flight.
  std::size_t active_flows() const noexcept;

  /// Total bytes moved across the link since construction.
  double total_transferred() const noexcept { return total_transferred_; }

  /// Flows completed since the last call (drained).
  std::vector<Flow> take_completed();

  const std::vector<Flow>& flows() const noexcept { return flows_; }

 private:
  double capacity_;
  double now_ = 0;
  double total_transferred_ = 0;
  std::uint64_t next_id_ = 1;
  std::vector<Flow> flows_;      ///< in flight
  std::vector<Flow> completed_;  ///< finished, not yet drained
};

}  // namespace rangeamp::sim
