#include "sim/des.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace rangeamp::sim {

EventQueue::EventId EventQueue::schedule(double at, Event event) {
  const EventId id = next_seq_++;
  queue_.push({std::max(at, now_), id, std::move(event)});
  live_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;  // already ran, cancelled, or bogus
  cancelled_.insert(id);
  return true;
}

bool EventQueue::discard_cancelled_top() {
  while (!queue_.empty()) {
    const EventId seq = queue_.top().seq;
    const auto it = cancelled_.find(seq);
    if (it == cancelled_.end()) return true;
    cancelled_.erase(it);
    queue_.pop();  // cancelled: drop without running or advancing time
  }
  return false;
}

bool EventQueue::run_next() {
  if (!discard_cancelled_top()) return false;
  // priority_queue::top() is const; the event is moved out via const_cast,
  // which is safe because the entry is popped immediately.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  live_.erase(entry.seq);
  now_ = entry.at;
  entry.event();
  return true;
}

void EventQueue::run_until(double horizon) {
  while (discard_cancelled_top() && queue_.top().at < horizon) {
    run_next();
  }
  now_ = std::max(now_, horizon);
}

std::uint64_t PsLink::start_flow(std::uint64_t bytes) {
  advance_to_now();
  PsFlow flow;
  flow.id = next_id_++;
  flow.total = static_cast<double>(bytes);
  flow.remaining = static_cast<double>(bytes);
  flow.start_time = queue_->now();
  flows_.push_back(flow);
  if (bytes == 0) {
    // Degenerate flow: completes immediately.
    const std::uint64_t id = flow.id;
    const double start = flow.start_time;
    flows_.pop_back();
    queue_->schedule(queue_->now(), [this, id, start] {
      if (on_completion_) on_completion_(id, 0, start);
    });
    return flow.id;
  }
  arm_next_completion();
  return flow.id;
}

bool PsLink::cancel_flow(std::uint64_t id) {
  advance_to_now();
  const auto it = std::find_if(flows_.begin(), flows_.end(),
                               [&](const PsFlow& f) { return f.id == id; });
  if (it == flows_.end()) return false;
  cancelled_bytes_ += it->total - it->remaining;
  flows_.erase(it);
  // The survivors' shares just grew; their next completion moves earlier.
  arm_next_completion();
  return true;
}

void PsLink::advance_to_now() {
  const double now = queue_->now();
  const double dt = now - last_update_;
  if (dt > 0 && !flows_.empty()) {
    const double share = capacity_ / static_cast<double>(flows_.size());
    for (PsFlow& f : flows_) {
      f.remaining = std::max(0.0, f.remaining - share * dt);
    }
  }
  last_update_ = now;
}

void PsLink::arm_next_completion() {
  if (flows_.empty()) return;
  const double share = capacity_ / static_cast<double>(flows_.size());
  double min_remaining = flows_.front().remaining;
  for (const PsFlow& f : flows_) min_remaining = std::min(min_remaining, f.remaining);
  const double eta = queue_->now() + min_remaining / share;

  const std::uint64_t generation = ++arm_generation_;
  queue_->schedule(eta, [this, generation] {
    if (generation != arm_generation_) return;  // superseded by a newer arm
    advance_to_now();
    // Retire every flow that is (numerically) done.
    std::vector<PsFlow> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->remaining <= 1e-6) {
        done.push_back(*it);
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    for (const PsFlow& f : done) {
      completed_bytes_ += f.total;
      if (on_completion_) {
        on_completion_(f.id, static_cast<std::uint64_t>(f.total), f.start_time);
      }
    }
    arm_next_completion();
  });
}

std::vector<BandwidthSample> simulate_attack_load_des(
    const AttackLoadConfig& config) {
  const double capacity = config.origin_uplink_mbps * 1e6 / 8.0;
  const double horizon = config.duration_s + config.drain_s;
  const std::size_t seconds = static_cast<std::size_t>(std::ceil(horizon));
  std::vector<BandwidthSample> series(seconds);
  for (std::size_t s = 0; s < seconds; ++s) series[s].second = static_cast<double>(s);

  EventQueue queue;
  // Per-flow byte sizes, and classification of benign flows.
  std::unordered_set<std::uint64_t> benign_ids;
  struct Tally {
    double client_bytes = 0;
    double benign_bytes = 0;
    double benign_latency = 0;
    std::size_t benign_completions = 0;
  };
  std::vector<Tally> tallies(seconds);
  const auto bucket_of = [&](double t) {
    return std::min(seconds - 1, static_cast<std::size_t>(t));
  };

  PsLink* link_ptr = nullptr;
  PsLink link(queue, capacity, [&](std::uint64_t id, std::uint64_t, double start) {
    Tally& tally = tallies[bucket_of(queue.now())];
    if (benign_ids.erase(id)) {
      tally.benign_bytes += static_cast<double>(config.benign_response_bytes);
      tally.benign_latency += queue.now() - start + config.network_rtt_s;
      ++tally.benign_completions;
    } else {
      tally.client_bytes += static_cast<double>(config.client_response_bytes);
    }
  });
  link_ptr = &link;

  // Arrival events at whole seconds.
  for (int burst = 0; burst < static_cast<int>(config.duration_s); ++burst) {
    queue.schedule(static_cast<double>(burst), [&, burst] {
      (void)burst;
      for (int i = 0; i < config.requests_per_second; ++i) {
        link_ptr->start_flow(config.origin_response_bytes);
      }
      for (int i = 0; i < config.benign_requests_per_second; ++i) {
        benign_ids.insert(link_ptr->start_flow(config.benign_response_bytes));
      }
    });
  }
  // Per-second sampling of link utilization via completed-byte deltas is not
  // available from PsLink directly (it tracks remaining); instead sample the
  // active-flow count at second boundaries and derive utilization: a PS link
  // moves capacity bytes/second whenever any flow is active.
  std::vector<std::size_t> active_at_end(seconds, 0);
  std::vector<double> busy_fraction(seconds, 0);
  for (std::size_t s = 0; s < seconds; ++s) {
    queue.schedule(static_cast<double>(s) + 0.999999, [&, s] {
      active_at_end[s] = link_ptr->active_flows();
    });
  }
  // Busy time needs finer sampling: probe activity on a small grid.
  constexpr int kProbes = 100;
  for (std::size_t s = 0; s < seconds; ++s) {
    for (int p = 0; p < kProbes; ++p) {
      const double t = static_cast<double>(s) + (p + 0.5) / kProbes;
      queue.schedule(t, [&, s] {
        if (link_ptr->active_flows() > 0) {
          busy_fraction[s] += 1.0 / kProbes;
        }
      });
    }
  }

  queue.run_until(horizon + 1.0);

  for (std::size_t s = 0; s < seconds; ++s) {
    series[s].origin_out_mbps = busy_fraction[s] * config.origin_uplink_mbps;
    series[s].client_in_kbps = tallies[s].client_bytes * 8.0 / 1e3;
    series[s].in_flight = active_at_end[s];
    series[s].benign_goodput_mbps = tallies[s].benign_bytes * 8.0 / 1e6;
    series[s].benign_latency_s =
        tallies[s].benign_completions
            ? tallies[s].benign_latency /
                  static_cast<double>(tallies[s].benign_completions)
            : -1;
  }
  return series;
}

ShieldedLoadResult simulate_attack_load_shielded(const ShieldedLoadConfig& config) {
  const AttackLoadConfig& base = config.base;
  const double capacity = base.origin_uplink_mbps * 1e6 / 8.0;
  const double horizon = base.duration_s + base.drain_s;
  const std::size_t seconds = static_cast<std::size_t>(std::ceil(horizon));

  ShieldedLoadResult result;
  result.series.resize(seconds);
  for (std::size_t s = 0; s < seconds; ++s) {
    result.series[s].second = static_cast<double>(s);
  }

  EventQueue queue;
  std::vector<double> client_bytes(seconds, 0);
  const auto bucket_of = [&](double t) {
    return std::min(seconds - 1, static_cast<std::size_t>(t));
  };

  // Deadline machinery: each admitted flow arms a cancellation event; the
  // completion handler disarms it (EventQueue::cancel), and a firing event
  // cuts the flow (PsLink::cancel_flow).  Declared before the link so the
  // completion lambda's by-reference capture outlives every event.
  std::unordered_map<std::uint64_t, EventQueue::EventId> deadline_events;

  PsLink* link_ptr = nullptr;
  PsLink link(queue, capacity, [&](std::uint64_t id, std::uint64_t, double) {
    if (config.deadline_seconds > 0) {
      const auto armed = deadline_events.find(id);
      if (armed != deadline_events.end()) {
        queue.cancel(armed->second);
        deadline_events.erase(armed);
      }
    }
    // An origin flow completing also completes the client-facing 206.
    client_bytes[bucket_of(queue.now())] +=
        static_cast<double>(base.client_response_bytes);
  });
  link_ptr = &link;

  const int burst = std::max(1, config.same_key_burst);
  for (int second = 0; second < static_cast<int>(base.duration_s); ++second) {
    queue.schedule(static_cast<double>(second), [&] {
      for (int i = 0; i < base.requests_per_second; ++i) {
        if (config.coalesce && i % burst != 0) {
          // Follower of this second's key group: answered from the leader's
          // fill, no origin flow.  The client still gets its tiny 206 now.
          ++result.coalesced;
          client_bytes[bucket_of(queue.now())] +=
              static_cast<double>(base.client_response_bytes);
          continue;
        }
        if (config.max_pending != 0 &&
            link_ptr->active_flows() >= config.max_pending) {
          ++result.shed;
          client_bytes[bucket_of(queue.now())] +=
              static_cast<double>(config.shed_response_bytes);
          continue;
        }
        ++result.origin_fetches;
        const std::uint64_t flow_id =
            link_ptr->start_flow(base.origin_response_bytes);
        if (config.deadline_seconds > 0 && base.origin_response_bytes > 0) {
          deadline_events[flow_id] =
              queue.schedule_in(config.deadline_seconds, [&, flow_id] {
                deadline_events.erase(flow_id);
                if (link_ptr->cancel_flow(flow_id)) {
                  ++result.deadline_cancelled;
                  // The client leg is abandoned: a 504 the size of the shed
                  // response, not a 206.
                  client_bytes[bucket_of(queue.now())] +=
                      static_cast<double>(config.shed_response_bytes);
                }
              });
        }
      }
    });
  }

  // Same observation grid as the unshielded DES run: active flows at second
  // boundaries, busy-time probing for utilization.
  std::vector<std::size_t> active_at_end(seconds, 0);
  std::vector<double> busy_fraction(seconds, 0);
  constexpr int kProbes = 100;
  for (std::size_t s = 0; s < seconds; ++s) {
    queue.schedule(static_cast<double>(s) + 0.999999,
                   [&, s] { active_at_end[s] = link_ptr->active_flows(); });
    for (int p = 0; p < kProbes; ++p) {
      queue.schedule(static_cast<double>(s) + (p + 0.5) / kProbes, [&, s] {
        if (link_ptr->active_flows() > 0) busy_fraction[s] += 1.0 / kProbes;
      });
    }
  }

  queue.run_until(horizon + 1.0);

  for (std::size_t s = 0; s < seconds; ++s) {
    result.series[s].origin_out_mbps = busy_fraction[s] * base.origin_uplink_mbps;
    result.series[s].client_in_kbps = client_bytes[s] * 8.0 / 1e3;
    result.series[s].in_flight = active_at_end[s];
  }
  result.cancelled_origin_bytes = link.cancelled_bytes();
  return result;
}

}  // namespace rangeamp::sim
