#include "sim/fluid.h"

#include <algorithm>

namespace rangeamp::sim {

std::uint64_t FluidLink::start_flow(std::uint64_t bytes) {
  Flow f;
  f.id = next_id_++;
  f.start_time = now_;
  f.total_bytes = bytes;
  if (bytes == 0) {
    f.completion_time = now_;
    completed_.push_back(f);
  } else {
    flows_.push_back(f);
  }
  return f.id;
}

void FluidLink::step(double dt) {
  const double step_end = now_ + dt;
  // Processor sharing: within the step, repeatedly advance to the next flow
  // completion (or the step end), giving each active flow an equal share.
  while (!flows_.empty() && now_ < step_end) {
    const double share = capacity_ / static_cast<double>(flows_.size());
    // Time until the first in-flight flow would finish at this share.
    double min_finish = step_end - now_;
    for (const Flow& f : flows_) {
      min_finish = std::min(min_finish, f.remaining() / share);
    }
    const double advance = std::max(min_finish, 0.0);
    for (Flow& f : flows_) {
      const double moved = std::min(share * advance, f.remaining());
      f.transferred += moved;
      total_transferred_ += moved;
    }
    now_ += advance;
    // Retire completed flows (tolerate floating-point dust).
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->remaining() <= 1e-6) {
        it->transferred = static_cast<double>(it->total_bytes);
        it->completion_time = now_;
        completed_.push_back(*it);
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    if (advance <= 0) break;  // nothing can progress (degenerate)
  }
  now_ = step_end;
}

std::size_t FluidLink::active_flows() const noexcept { return flows_.size(); }

std::vector<Flow> FluidLink::take_completed() {
  std::vector<Flow> out;
  out.swap(completed_);
  return out;
}

}  // namespace rangeamp::sim
