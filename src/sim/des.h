// Discrete-event simulation engine and an exact processor-sharing link.
//
// The fluid model in fluid.h integrates with a fixed step; this module
// computes the same dynamics *exactly*: a processor-sharing (PS) queue's
// next completion time is analytic (min remaining / fair share), so the
// simulation can jump from event to event with no integration error.  The
// attack-load experiment exists in both engines, and
// `tests/sim/des_test.cc` pins them against each other -- the kind of
// cross-validation a simulation result needs before it is trusted.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/attack_load.h"

namespace rangeamp::sim {

/// A time-ordered event queue.  Events scheduled for the same instant run
/// in scheduling order (stable).
class EventQueue {
 public:
  using Event = std::function<void()>;
  /// Handle returned by schedule(); pass to cancel().
  using EventId = std::uint64_t;

  /// Schedules `event` at absolute time `at` (must be >= now()); returns a
  /// handle the event can be cancelled with.
  EventId schedule(double at, Event event);

  /// Schedules `event` `delay` seconds from now.
  EventId schedule_in(double delay, Event event) {
    return schedule(now_ + delay, std::move(event));
  }

  /// Cancels a pending event.  A cancelled event never runs and never
  /// advances the clock.  Returns false when the event already ran (or was
  /// already cancelled) -- the caller can use that to disarm exactly once.
  bool cancel(EventId id);

  /// Runs the earliest live event; returns false when none remain.
  bool run_next();

  /// Runs every live event scheduled strictly before `horizon`; time ends
  /// at `horizon` (or at the last event if beyond).
  void run_until(double horizon);

  double now() const noexcept { return now_; }
  /// Live (non-cancelled) events still scheduled.
  std::size_t pending() const noexcept { return live_.size(); }

 private:
  struct Entry {
    double at;
    std::uint64_t seq;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  /// Pops cancelled entries off the top; true when a live entry remains.
  bool discard_cancelled_top();

  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Lazy deletion: cancel() moves the seq from live_ to cancelled_; the
  // heap entry itself is discarded when it surfaces (a heap cannot remove
  // from the middle).  live_ makes cancel-after-run detection exact and
  // pending() O(1).
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
};

/// An exact processor-sharing link driven by an EventQueue: flows share the
/// capacity equally, and completions fire as events at their analytic times.
class PsLink {
 public:
  using CompletionHandler = std::function<void(std::uint64_t flow_id,
                                               std::uint64_t bytes,
                                               double start_time)>;

  PsLink(EventQueue& queue, double capacity_bytes_per_sec,
         CompletionHandler on_completion)
      : queue_(&queue),
        capacity_(capacity_bytes_per_sec),
        on_completion_(std::move(on_completion)) {}

  /// Starts a flow now; returns its id.
  std::uint64_t start_flow(std::uint64_t bytes);

  /// Cancels an active flow (deadline expiry): its remaining demand leaves
  /// the link immediately -- the survivors' shares rescale from now -- and
  /// the bytes it had already moved are counted into cancelled_bytes(), not
  /// completed_bytes().  The completion handler never fires for it.
  /// Returns false when the flow already completed (or never existed).
  bool cancel_flow(std::uint64_t id);

  std::size_t active_flows() const noexcept { return flows_.size(); }

  /// Total bytes that have fully crossed the link (completed flows).
  double completed_bytes() const noexcept { return completed_bytes_; }

  /// Bytes moved by flows that were cancelled mid-transfer (wasted work the
  /// deadline could not claw back).
  double cancelled_bytes() const noexcept { return cancelled_bytes_; }

 private:
  struct PsFlow {
    std::uint64_t id;
    double total;
    double remaining;
    double start_time;
  };

  void advance_to_now();
  void arm_next_completion();

  EventQueue* queue_;
  double capacity_;
  CompletionHandler on_completion_;
  std::vector<PsFlow> flows_;
  double last_update_ = 0;
  double completed_bytes_ = 0;
  double cancelled_bytes_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t arm_generation_ = 0;  ///< invalidates stale completion events
};

/// The Fig 7 attack-load experiment on the event-driven engine.  Semantics
/// match simulate_attack_load() exactly; outputs are directly comparable.
std::vector<BandwidthSample> simulate_attack_load_des(const AttackLoadConfig& config);

/// The Fig 7 experiment with an origin shield in front of the uplink:
/// request coalescing collapses same-key bursts into one back-to-origin
/// flow, and admission control sheds arrivals beyond a pending cap.  The
/// knobs mirror cdn::OriginShieldPolicy so a campaign's shield settings
/// project directly onto the time series.
struct ShieldedLoadConfig {
  AttackLoadConfig base;

  /// How many of each second's arrivals share one cache key (the attacker's
  /// reuse of a cache-busting URL within a burst).  1 = every arrival has a
  /// distinct key, so coalescing has nothing to collapse.
  int same_key_burst = 1;

  /// Fill-lock coalescing on: each key group costs one origin flow; the
  /// followers are answered from the held fill at no origin cost.
  bool coalesce = false;

  /// Shed arrivals once this many back-to-origin flows are in flight
  /// (0 = unlimited).  A shed answer is a local 503, not an origin flow.
  std::size_t max_pending = 0;

  /// Client-side bytes of a shed 503 (counted into client_in_kbps so the
  /// attacker's view of a shedding origin stays visible in the series).
  std::uint64_t shed_response_bytes = 0;

  /// Per-exchange deadline (seconds): an origin flow still in flight this
  /// long after it started is cancelled -- the projection of
  /// cdn::DeadlinePolicy onto the PS model (0 = off).  Cancellation frees
  /// the remaining demand; the bytes already moved stay as wasted work in
  /// cancelled_origin_bytes.
  double deadline_seconds = 0;
};

struct ShieldedLoadResult {
  std::vector<BandwidthSample> series;
  std::uint64_t origin_fetches = 0;  ///< flows that actually hit the uplink
  std::uint64_t coalesced = 0;       ///< arrivals absorbed by a fill lock
  std::uint64_t shed = 0;            ///< arrivals refused by admission control
  std::uint64_t deadline_cancelled = 0;  ///< flows cut by the deadline
  double cancelled_origin_bytes = 0;     ///< bytes those flows had moved

  /// Seconds the uplink spent busy (the "pinned resource time" of the OBR
  /// node-exhaustion scenario): sum of per-second busy fractions, recovered
  /// from the series by dividing out the configured uplink capacity.
  double busy_seconds(double uplink_mbps) const noexcept {
    if (uplink_mbps <= 0) return 0;
    double busy = 0;
    for (const BandwidthSample& s : series) {
      busy += s.origin_out_mbps / uplink_mbps;
    }
    return busy;
  }
};

ShieldedLoadResult simulate_attack_load_shielded(const ShieldedLoadConfig& config);

}  // namespace rangeamp::sim
