// Time-domain SBR attack-load simulation (experiment 4 / Fig 7).
//
// Drives a FluidLink with the paper's workload: m range requests per second
// for `duration_s` seconds.  Each request costs the origin one back-to-origin
// response of `origin_response_bytes` on its 1000 Mbps uplink, while the
// client receives only a `client_response_bytes` 206 once the CDN has pulled
// the resource.  Output is the per-second bandwidth series the paper plots.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fluid.h"

namespace rangeamp::sim {

struct AttackLoadConfig {
  /// Origin uplink capacity (the paper's testbed: 1000 Mbps).
  double origin_uplink_mbps = 1000.0;

  /// Attack rate: requests sent concurrently at each whole second.
  int requests_per_second = 1;

  /// Attack duration in seconds (paper: 30 s).
  double duration_s = 30.0;

  /// How long to keep simulating after the last request is sent, so
  /// in-flight transfers can drain into the series.
  double drain_s = 10.0;

  /// Integration step.
  double dt = 0.001;

  /// Bytes the origin sends per attack request (measured on the testbed;
  /// ~ resource size + response headers under a Deletion-policy CDN).
  std::uint64_t origin_response_bytes = 0;

  /// Bytes the client receives per attack request (the tiny 206).
  std::uint64_t client_response_bytes = 0;

  /// Benign cross-traffic sharing the origin uplink (collateral-damage
  /// experiments): full-resource pulls at this rate and size.
  int benign_requests_per_second = 0;
  std::uint64_t benign_response_bytes = 0;

  /// Round-trip network latency added to every reported benign fetch
  /// latency (request travel + first byte back).  Transfer times come from
  /// the fluid link; this models the propagation floor.
  double network_rtt_s = 0;
};

struct BandwidthSample {
  double second = 0;            ///< sample interval [second, second+1)
  double origin_out_mbps = 0;   ///< origin outgoing bandwidth
  double client_in_kbps = 0;    ///< client incoming bandwidth
  std::size_t in_flight = 0;    ///< back-to-origin transfers still active at
                                ///< the end of the interval
  /// Benign cross-traffic (when configured): bytes completed this second
  /// and the mean fetch latency of flows completing this second (<0 when
  /// none completed).
  double benign_goodput_mbps = 0;
  double benign_latency_s = -1;
};

/// Runs the attack-load simulation and returns one sample per second.
std::vector<BandwidthSample> simulate_attack_load(const AttackLoadConfig& config);

/// Steady-state utilization summary over the attack window.
struct AttackLoadSummary {
  double peak_origin_out_mbps = 0;
  double mean_origin_out_mbps = 0;  ///< over [5s, duration) -- warmed up
  double peak_client_in_kbps = 0;
  bool saturated = false;  ///< origin uplink pinned at capacity
};

AttackLoadSummary summarize(const AttackLoadConfig& config,
                            const std::vector<BandwidthSample>& series);

}  // namespace rangeamp::sim
