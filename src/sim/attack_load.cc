#include "sim/attack_load.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rangeamp::sim {

std::vector<BandwidthSample> simulate_attack_load(const AttackLoadConfig& config) {
  const double capacity_bps = config.origin_uplink_mbps * 1e6 / 8.0;  // bytes/s
  FluidLink uplink(capacity_bps);

  const double horizon = config.duration_s + config.drain_s;
  const std::size_t seconds = static_cast<std::size_t>(std::ceil(horizon));
  std::vector<BandwidthSample> series(seconds);
  for (std::size_t s = 0; s < seconds; ++s) series[s].second = static_cast<double>(s);

  double next_burst = 0;
  double prev_transferred = 0;
  std::unordered_set<std::uint64_t> benign_ids;
  for (std::size_t s = 0; s < seconds; ++s) {
    double origin_bytes_this_second = 0;
    double client_bytes_this_second = 0;
    double benign_bytes_this_second = 0;
    double benign_latency_sum = 0;
    std::size_t benign_completions = 0;
    const double sec_end = static_cast<double>(s) + 1.0;
    while (uplink.now() < sec_end - 1e-9) {
      if (uplink.now() + 1e-9 >= next_burst && next_burst < config.duration_s) {
        for (int i = 0; i < config.requests_per_second; ++i) {
          uplink.start_flow(config.origin_response_bytes);
        }
        for (int i = 0; i < config.benign_requests_per_second; ++i) {
          benign_ids.insert(uplink.start_flow(config.benign_response_bytes));
        }
        next_burst += 1.0;
      }
      const double until_burst =
          next_burst < config.duration_s ? next_burst - uplink.now() : horizon;
      const double dt =
          std::min({config.dt, sec_end - uplink.now(), std::max(until_burst, 1e-9)});
      uplink.step(dt);
      for (const Flow& f : uplink.take_completed()) {
        if (const auto it = benign_ids.find(f.id); it != benign_ids.end()) {
          benign_ids.erase(it);
          benign_bytes_this_second += static_cast<double>(f.total_bytes);
          benign_latency_sum +=
              f.completion_time - f.start_time + config.network_rtt_s;
          ++benign_completions;
          continue;
        }
        // The CDN forwards the tiny 206 to the client once its back-to-origin
        // pull finishes.
        client_bytes_this_second += static_cast<double>(config.client_response_bytes);
      }
    }
    series[s].benign_goodput_mbps = benign_bytes_this_second * 8.0 / 1e6;
    series[s].benign_latency_s =
        benign_completions ? benign_latency_sum / benign_completions : -1;
    origin_bytes_this_second = uplink.total_transferred() - prev_transferred;
    prev_transferred = uplink.total_transferred();
    series[s].origin_out_mbps = origin_bytes_this_second * 8.0 / 1e6;
    series[s].client_in_kbps = client_bytes_this_second * 8.0 / 1e3;
    series[s].in_flight = uplink.active_flows();
  }
  return series;
}

AttackLoadSummary summarize(const AttackLoadConfig& config,
                            const std::vector<BandwidthSample>& series) {
  AttackLoadSummary out;
  double sum = 0;
  std::size_t n = 0;
  for (const auto& s : series) {
    out.peak_origin_out_mbps = std::max(out.peak_origin_out_mbps, s.origin_out_mbps);
    out.peak_client_in_kbps = std::max(out.peak_client_in_kbps, s.client_in_kbps);
    if (s.second >= 5.0 && s.second < config.duration_s) {
      sum += s.origin_out_mbps;
      ++n;
    }
  }
  out.mean_origin_out_mbps = n ? sum / static_cast<double>(n) : 0;
  out.saturated = out.mean_origin_out_mbps >= 0.98 * config.origin_uplink_mbps;
  return out;
}

}  // namespace rangeamp::sim
