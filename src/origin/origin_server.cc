#include "origin/origin_server.h"

#include "http/chunked.h"
#include "http/date.h"
#include "http/multipart.h"
#include "http/range.h"

namespace rangeamp::origin {

using http::Body;
using http::Request;
using http::Response;

void OriginServer::add_common_headers(Response& resp) const {
  resp.headers.add("Date", config_.date);
  resp.headers.add("Server", config_.server_banner);
  for (const auto& f : config_.extra_headers) resp.headers.add(f.name, f.value);
}

Response OriginServer::error_response(int status, std::string_view text) const {
  Response resp;
  resp.status = status;
  add_common_headers(resp);
  resp.headers.add("Content-Type", "text/html; charset=iso-8859-1");
  resp.body = Body::literal(std::string{text});
  resp.headers.add("Content-Length", std::to_string(resp.body.size()));
  resp.headers.add("Connection", "keep-alive");
  return resp;
}

Response OriginServer::respond_full(const Resource& res) const {
  Response resp;
  resp.status = http::kOk;
  add_common_headers(resp);
  resp.headers.add("Last-Modified", res.last_modified);
  resp.headers.add("ETag", res.etag);
  if (config_.supports_ranges) resp.headers.add("Accept-Ranges", "bytes");
  resp.headers.add("Content-Length", std::to_string(res.size()));
  resp.headers.add("Content-Type", res.content_type);
  resp.headers.add("Connection", "keep-alive");
  resp.body = res.entity;
  if (config_.chunked_full_responses) http::apply_chunked_coding(resp);
  return resp;
}

Response OriginServer::respond_single_range(const Resource& res,
                                            const http::ResolvedRange& range) const {
  Response resp;
  resp.status = http::kPartialContent;
  add_common_headers(resp);
  resp.headers.add("Last-Modified", res.last_modified);
  resp.headers.add("ETag", res.etag);
  resp.headers.add("Accept-Ranges", "bytes");
  resp.headers.add("Content-Length", std::to_string(range.length()));
  resp.headers.add("Content-Range", http::content_range(range, res.size()));
  resp.headers.add("Content-Type", res.content_type);
  resp.headers.add("Connection", "keep-alive");
  resp.body = res.entity.slice(range.first, range.length());
  return resp;
}

Response OriginServer::respond_multipart(
    const Resource& res, const std::vector<http::ResolvedRange>& ranges) const {
  Response resp;
  resp.status = http::kPartialContent;
  add_common_headers(resp);
  resp.headers.add("Last-Modified", res.last_modified);
  resp.headers.add("ETag", res.etag);
  resp.headers.add("Accept-Ranges", "bytes");
  resp.body = http::build_multipart_byteranges(res.entity, ranges, res.size(),
                                               res.content_type,
                                               config_.multipart_boundary);
  resp.headers.add("Content-Length", std::to_string(resp.body.size()));
  resp.headers.add("Content-Type",
                   http::multipart_content_type(config_.multipart_boundary));
  resp.headers.add("Connection", "keep-alive");
  return resp;
}

Response OriginServer::respond_416(const Resource& res) const {
  Response resp;
  resp.status = http::kRangeNotSatisfiable;
  add_common_headers(resp);
  resp.headers.add("Content-Range", http::content_range_unsatisfied(res.size()));
  resp.headers.add("Content-Length", "0");
  resp.headers.add("Content-Type", res.content_type);
  resp.headers.add("Connection", "keep-alive");
  return resp;
}

Response OriginServer::handle(const Request& request) {
  log_.push_back(request);

  std::optional<net::FaultSpec> fault;
  if (config_.fault_injector) fault = config_.fault_injector->decide(request);
  if (fault && fault->action == net::FaultAction::kStatus) {
    return error_response(fault->status,
                          "<html>" + std::to_string(fault->status) +
                              " Origin Fault</html>");
  }

  if (request.method != http::Method::GET && request.method != http::Method::HEAD) {
    return error_response(http::kBadRequest, "<html>400 Bad Request</html>");
  }
  const Resource* res = resources_.find(request.path());
  if (res == nullptr) {
    return error_response(http::kNotFound, "<html>404 Not Found</html>");
  }

  // RFC 7232: If-None-Match with a current validator short-circuits to 304;
  // If-Modified-Since does the same by instant comparison (it is only
  // consulted when If-None-Match is absent, per section 3.3).
  const auto not_modified_response = [&] {
    Response not_modified;
    not_modified.status = 304;
    add_common_headers(not_modified);
    not_modified.headers.add("ETag", res->etag);
    not_modified.headers.add("Last-Modified", res->last_modified);
    not_modified.headers.add("Connection", "keep-alive");
    return not_modified;
  };
  if (const auto inm = request.headers.get("If-None-Match")) {
    if (*inm == res->etag || *inm == "*") return not_modified_response();
  } else if (const auto ims = request.headers.get("If-Modified-Since")) {
    const auto since = http::parse_http_date(*ims);
    const auto modified = http::parse_http_date(res->last_modified);
    if (since && modified && *modified <= *since) return not_modified_response();
  }

  // RFC 7233 section 3.2: If-Range makes the Range conditional on the
  // validator still matching -- a stale validator downgrades to a full 200.
  bool if_range_ok = true;
  if (const auto if_range = request.headers.get("If-Range")) {
    if_range_ok = *if_range == res->etag || *if_range == res->last_modified;
  }

  Response resp;
  const auto range_value = request.headers.get("Range");
  if (!config_.supports_ranges || !range_value || !if_range_ok) {
    resp = respond_full(*res);
  } else {
    // A malformed Range header MUST be ignored (RFC 7233 section 3.1).
    const auto set = http::parse_range_header(*range_value);
    if (!set) {
      resp = respond_full(*res);
    } else if (config_.max_ranges != 0 && set->count() > config_.max_ranges) {
      // Apache MaxRanges exceeded: ignore the header, serve the entity.
      resp = respond_full(*res);
    } else {
      auto resolved = http::resolve_all(*set, res->size());
      if (resolved.empty()) {
        resp = respond_416(*res);
      } else {
        if (config_.coalesce_overlapping &&
            !http::is_ascending_disjoint(resolved)) {
          resolved = http::coalesce(std::move(resolved));
        }
        if (resolved.size() == 1) {
          resp = respond_single_range(*res, resolved.front());
        } else {
          resp = respond_multipart(*res, resolved);
        }
      }
    }
  }
  if (request.method == http::Method::HEAD) resp.body = Body{};
  // Truncation happens after framing (Content-Length / chunked coding are
  // already in place), so the message arrives short of its own promise.
  if (fault && fault->action == net::FaultAction::kTruncateBody &&
      fault->truncate_body_at < resp.body.size()) {
    resp.body = resp.body.slice(0, fault->truncate_body_at);
  }
  return resp;
}

}  // namespace rangeamp::origin
