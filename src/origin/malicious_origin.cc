#include "origin/malicious_origin.h"

#include <string>
#include <utility>

#include "http/chunked.h"
#include "http/multipart.h"
#include "http/range.h"

namespace rangeamp::origin {

using http::Body;
using http::Request;
using http::Response;

namespace {

const std::vector<MaliciousBehavior>& default_rotation() {
  static const std::vector<MaliciousBehavior> kAll = {
      MaliciousBehavior::kLyingContentLength,
      MaliciousBehavior::kShortBody,
      MaliciousBehavior::kOutOfBoundsContentRange,
      MaliciousBehavior::kOverlappingExtraParts,
      MaliciousBehavior::kBoundaryInjection,
      MaliciousBehavior::kClTeSmuggle,
      MaliciousBehavior::kDuplicateContentLength,
      MaliciousBehavior::kUnboundedChunked,
      MaliciousBehavior::kStatusRangeMismatch,
  };
  return kAll;
}

}  // namespace

std::string_view malicious_behavior_name(MaliciousBehavior b) noexcept {
  switch (b) {
    case MaliciousBehavior::kHonest: return "honest";
    case MaliciousBehavior::kLyingContentLength: return "lying-content-length";
    case MaliciousBehavior::kShortBody: return "short-body";
    case MaliciousBehavior::kOutOfBoundsContentRange:
      return "oob-content-range";
    case MaliciousBehavior::kOverlappingExtraParts:
      return "overlapping-extra-parts";
    case MaliciousBehavior::kBoundaryInjection: return "boundary-injection";
    case MaliciousBehavior::kClTeSmuggle: return "cl-te-smuggle";
    case MaliciousBehavior::kDuplicateContentLength:
      return "duplicate-content-length";
    case MaliciousBehavior::kUnboundedChunked: return "unbounded-chunked";
    case MaliciousBehavior::kStatusRangeMismatch:
      return "status-range-mismatch";
  }
  return "unknown";
}

bool behavior_can_poison_cache(MaliciousBehavior b) noexcept {
  // The other behaviours are refused by the legacy ingestion guards
  // (entity_from_response): a body that contradicts its single Content-Length
  // or fails to de-chunk never enters the cache even unvalidated.  These
  // shapes slip past them.
  return b == MaliciousBehavior::kDuplicateContentLength ||
         b == MaliciousBehavior::kOverlappingExtraParts ||
         b == MaliciousBehavior::kBoundaryInjection ||
         b == MaliciousBehavior::kStatusRangeMismatch ||
         b == MaliciousBehavior::kOutOfBoundsContentRange;
}

MaliciousOrigin::MaliciousOrigin(MaliciousOriginConfig config)
    : config_(std::move(config)),
      honest_(config_.origin),
      rng_(config_.seed) {}

Response MaliciousOrigin::handle(const Request& request) {
  MaliciousBehavior behavior;
  if (pinned_) {
    behavior = *pinned_;
  } else {
    const auto& rotation =
        config_.rotation.empty() ? default_rotation() : config_.rotation;
    behavior = rotation[static_cast<std::size_t>(rng_.below(rotation.size()))];
  }
  served_.push_back(behavior);
  return corrupt(behavior, request, honest_.handle(request));
}

Response MaliciousOrigin::corrupt(MaliciousBehavior behavior,
                                  const Request& request, Response honest) {
  switch (behavior) {
    case MaliciousBehavior::kHonest:
      return honest;

    case MaliciousBehavior::kLyingContentLength: {
      // Promise more bytes than will ever arrive; the connection "dies"
      // before the remainder.
      honest.headers.set(
          "Content-Length",
          std::to_string(honest.body.size() + config_.lie_extra_bytes));
      return honest;
    }

    case MaliciousBehavior::kShortBody: {
      // Cut the entity in half while the headers keep promising all of it.
      honest.body = honest.body.slice(0, honest.body.size() / 2);
      return honest;
    }

    case MaliciousBehavior::kOutOfBoundsContentRange: {
      if (const auto cr = honest.headers.get("Content-Range")) {
        // Point the range past the declared total.
        const auto parsed = http::parse_content_range(*cr);
        const std::uint64_t total =
            parsed ? parsed->resource_size : honest.body.size();
        honest.headers.set("Content-Range",
                           "bytes " + std::to_string(total) + "-" +
                               std::to_string(total + 999) + "/" +
                               std::to_string(total));
      } else {
        // A Content-Range where none belongs (200/416 carrying one).
        honest.headers.set(
            "Content-Range",
            "bytes 0-" +
                std::to_string(honest.body.empty() ? 0
                                                   : honest.body.size() - 1) +
                "/" + std::to_string(honest.body.size()));
      }
      return honest;
    }

    case MaliciousBehavior::kOverlappingExtraParts: {
      // OBR served straight from the origin: every requested range appears
      // `overlap_extra_parts` times in the multipart answer.
      const Resource* res = honest_.resources().find(request.path());
      if (res == nullptr || res->size() == 0) return honest;
      std::vector<http::ResolvedRange> resolved;
      if (const auto value = request.headers.get("Range")) {
        if (const auto set = http::parse_range_header(*value)) {
          resolved = http::resolve_all(*set, res->size());
        }
      }
      if (resolved.empty()) resolved.push_back({0, res->size() - 1});
      std::vector<http::ResolvedRange> inflated;
      for (std::size_t copy = 0; copy < config_.overlap_extra_parts; ++copy) {
        inflated.insert(inflated.end(), resolved.begin(), resolved.end());
      }
      Body body = http::build_multipart_byteranges(
          res->entity, inflated, res->size(), res->content_type,
          config_.origin.multipart_boundary);
      Response resp;
      resp.status = http::kPartialContent;
      resp.headers.add("Date", config_.origin.date);
      resp.headers.add("Server", config_.origin.server_banner);
      resp.headers.add("Last-Modified", res->last_modified);
      if (!res->etag.empty()) resp.headers.add("ETag", res->etag);
      resp.headers.add("Accept-Ranges", "bytes");
      resp.headers.add("Content-Length", std::to_string(body.size()));
      resp.headers.add(
          "Content-Type",
          http::multipart_content_type(config_.origin.multipart_boundary));
      resp.body = std::move(body);
      return resp;
    }

    case MaliciousBehavior::kBoundaryInjection: {
      // Declare a boundary the body is not framed with: any delimiter the
      // receiver trusts is attacker-chosen, so the only safe parse outcome
      // is a framing error.
      honest.status = http::kPartialContent;
      honest.headers.remove("Content-Range");
      honest.headers.set("Content-Type",
                         "multipart/byteranges; boundary=injected_boundary");
      return honest;
    }

    case MaliciousBehavior::kClTeSmuggle: {
      // RFC 7230 section 3.3.3 conflict: keep the identity Content-Length
      // AND chunk the body.
      const std::string declared =
          std::string{honest.headers.get_or("Content-Length",
                                            std::to_string(honest.body.size()))};
      honest.body = http::encode_chunked(honest.body);
      honest.headers.set("Content-Length", declared);
      honest.headers.set("Transfer-Encoding", "chunked");
      return honest;
    }

    case MaliciousBehavior::kDuplicateContentLength: {
      // The cache-poison vector: a garbage tail covered by the *first*
      // Content-Length (the one naive ingestion trusts), with the honest
      // length smuggled in a second field.
      const std::string honest_length = std::to_string(honest.body.size());
      honest.body.append_literal(
          std::string(static_cast<std::size_t>(config_.garbage_tail_bytes),
                      'Z'));
      honest.headers.set("Content-Length", std::to_string(honest.body.size()));
      honest.headers.add("Content-Length", honest_length);
      return honest;
    }

    case MaliciousBehavior::kUnboundedChunked: {
      // A stream that keeps coming: `chunked_stream_bytes` of chunked data
      // with the terminating "0\r\n\r\n" never sent.
      Body stream = Body::synthetic(config_.seed ^ 0x9e3779b97f4a7c15ull, 0,
                                    config_.chunked_stream_bytes);
      Body framed = http::encode_chunked(stream);
      honest.body = framed.slice(0, framed.size() - 5);
      honest.headers.remove("Content-Length");
      honest.headers.remove("Content-Range");
      honest.status = http::kOk;
      honest.headers.set("Transfer-Encoding", "chunked");
      return honest;
    }

    case MaliciousBehavior::kStatusRangeMismatch: {
      // A 206 that never says which bytes it carries.
      honest.status = http::kPartialContent;
      honest.headers.remove("Content-Range");
      return honest;
    }
  }
  return honest;
}

}  // namespace rangeamp::origin
