// Byzantine origin model: an origin that answers with adversarial responses.
//
// The paper's attacks need only a *cooperating* origin (the attacker often
// controls it, section IV); this model goes further and makes the origin
// actively hostile toward the CDN in front of it -- the threat the
// Byzantine-origin hardening layer (http::ResponseValidator +
// cdn::ConformancePolicy) defends against.  Each behaviour below corrupts
// the honest Apache-flavored response in one specific way:
//
//   * kLyingContentLength    -- Content-Length larger than the body;
//   * kShortBody             -- body cut short of the declared length;
//   * kOutOfBoundsContentRange -- Content-Range pointing outside the
//                               declared total (or onto a 200);
//   * kOverlappingExtraParts -- multipart/byteranges with the requested
//                               range duplicated N times (OBR-style inflation
//                               served directly by the origin);
//   * kBoundaryInjection     -- multipart framed against a boundary the
//                               Content-Type does not (legally) declare;
//   * kClTeSmuggle           -- Content-Length alongside Transfer-Encoding:
//                               chunked (RFC 7230 section 3.3.3 smuggle shape);
//   * kDuplicateContentLength -- two differing Content-Length fields, body
//                               padded with a garbage tail the first one
//                               covers (the cache-poison vector);
//   * kUnboundedChunked      -- a large chunked stream that never terminates;
//   * kStatusRangeMismatch   -- a 206 status with no Content-Range at all.
//
// Behaviours rotate per request under a seeded Rng, so a chaos run is fully
// reproducible from its seed; `served_log()` records what each request got.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "http/generator.h"
#include "net/handler.h"
#include "origin/origin_server.h"

namespace rangeamp::origin {

enum class MaliciousBehavior {
  kHonest,
  kLyingContentLength,
  kShortBody,
  kOutOfBoundsContentRange,
  kOverlappingExtraParts,
  kBoundaryInjection,
  kClTeSmuggle,
  kDuplicateContentLength,
  kUnboundedChunked,
  kStatusRangeMismatch,
};

inline constexpr std::size_t kMaliciousBehaviorCount = 10;

std::string_view malicious_behavior_name(MaliciousBehavior b) noexcept;

/// True when a CDN ingesting this behaviour's response unvalidated could end
/// up with a wrong entity in its cache (as opposed to merely wasted bytes).
bool behavior_can_poison_cache(MaliciousBehavior b) noexcept;

struct MaliciousOriginConfig {
  /// The honest Apache model underneath; corruption starts from its output.
  OriginConfig origin;

  /// Seed for the per-request behaviour rotation.
  std::uint64_t seed = 1;

  /// Behaviours the rotation draws from.  Empty = every non-honest one.
  std::vector<MaliciousBehavior> rotation;

  /// kLyingContentLength: bytes added to the declared length.
  std::uint64_t lie_extra_bytes = 4096;

  /// kOverlappingExtraParts: copies of the requested range in the multipart.
  std::size_t overlap_extra_parts = 8;

  /// kDuplicateContentLength: garbage bytes appended to the entity.
  std::uint64_t garbage_tail_bytes = 512;

  /// kUnboundedChunked: bytes streamed before the (missing) terminator.
  std::uint64_t chunked_stream_bytes = 8ull * 1024 * 1024;
};

class MaliciousOrigin final : public net::HttpHandler {
 public:
  explicit MaliciousOrigin(MaliciousOriginConfig config = {});

  ResourceStore& resources() noexcept { return honest_.resources(); }
  OriginServer& honest() noexcept { return honest_; }
  const MaliciousOriginConfig& config() const noexcept { return config_; }

  /// Pin every subsequent response to one behaviour (tests); nullopt
  /// restores the seeded rotation.
  void set_behavior(std::optional<MaliciousBehavior> behavior) {
    pinned_ = behavior;
  }

  /// The behaviour each handled request was served with, in arrival order.
  const std::vector<MaliciousBehavior>& served_log() const noexcept {
    return served_;
  }
  void clear_log() { served_.clear(); }

  http::Response handle(const http::Request& request) override;

 private:
  http::Response corrupt(MaliciousBehavior behavior,
                         const http::Request& request, http::Response honest);

  MaliciousOriginConfig config_;
  OriginServer honest_;
  http::Rng rng_;
  std::vector<MaliciousBehavior> served_;
  std::optional<MaliciousBehavior> pinned_;
};

}  // namespace rangeamp::origin
