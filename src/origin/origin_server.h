// Apache-2.4-flavored origin server model.
//
// The paper's testbed origin is "Apache/2.4.18 with the default
// configuration applied" (section V).  This model reproduces the behaviours
// the experiments depend on:
//
//   * range support can be toggled -- the OBR attacker disables range
//     requests on the origin so it always answers 200 with the full entity
//     (section IV-C);
//   * single-range 206 with Content-Range, multi-range 206 as
//     multipart/byteranges;
//   * RFC 7233 / post-CVE-2011-3192 hygiene: overlapping or out-of-order
//     range sets are coalesced, and sets larger than `max_ranges` (Apache's
//     MaxRanges, default 200) fall back to a 200 full-entity response;
//   * a fully unsatisfiable set yields 416 with "Content-Range: bytes */size".
//
// The server keeps a request log so the policy scanner can diff what the
// client sent against what actually arrived behind the CDN (experiment 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/range.h"
#include "net/fault.h"
#include "net/handler.h"
#include "origin/resource_store.h"

namespace rangeamp::origin {

struct OriginConfig {
  /// Whether the origin honors Range (Accept-Ranges: bytes).  When false the
  /// Range header is ignored and every hit returns 200 + full entity.
  bool supports_ranges = true;

  /// Apache MaxRanges: sets with more ranges are answered with 200 + full
  /// entity (0 disables the limit).
  std::size_t max_ranges = 200;

  /// Coalesce overlapping/adjacent ranges before answering (Apache >= 2.2.20
  /// behaviour, the CVE-2011-3192 fix).  When false, ranges are honored
  /// verbatim -- useful to model naive servers in tests.
  bool coalesce_overlapping = true;

  /// Server identity banner.
  std::string server_banner = "Apache/2.4.18 (Ubuntu)";

  /// Fixed Date header value: experiments must be byte-deterministic.
  std::string date = "Tue, 07 Jul 2020 03:14:15 GMT";

  /// Boundary used for multipart/byteranges responses.
  std::string multipart_boundary = "0a1b2c3d4e5f6a7b";

  /// Stream full-entity 200 responses with Transfer-Encoding: chunked
  /// instead of Content-Length (dynamic-content servers).
  bool chunked_full_responses = false;

  /// Extra headers appended to every response (application-level headers a
  /// real deployment would add: Cache-Control, Vary, ...).  Benchmarks use
  /// this to match the paper testbed's response header footprint.
  std::vector<http::HeaderField> extra_headers;

  /// Deterministic failure modeling (non-owning; must outlive the server).
  /// When set, the injector is consulted once per handled request:
  ///   * kStatus faults answer an Apache-style error page with that status
  ///     (load balancer / app failure behind the origin's front);
  ///   * kTruncateBody faults serve the normal response with the body cut at
  ///     the scheduled byte while the framing headers keep promising the full
  ///     entity -- for chunked responses the cut lands mid-chunk, so
  ///     downstream de-framing fails exactly as it would on a died socket.
  /// kConnectionReset and kLatency are transport-level concerns; schedule
  /// them on the segment's transport (net::Transport::set_fault_injector)
  /// instead -- this layer ignores them.
  net::FaultInjector* fault_injector = nullptr;
};

class OriginServer final : public net::HttpHandler {
 public:
  explicit OriginServer(OriginConfig config = {}) : config_(std::move(config)) {}

  ResourceStore& resources() noexcept { return resources_; }
  const ResourceStore& resources() const noexcept { return resources_; }

  OriginConfig& config() noexcept { return config_; }
  const OriginConfig& config() const noexcept { return config_; }

  http::Response handle(const http::Request& request) override;

  /// Every request observed, in arrival order (scanner input).
  const std::vector<http::Request>& request_log() const noexcept { return log_; }
  void clear_log() { log_.clear(); }

 private:
  http::Response respond_full(const Resource& res) const;
  http::Response respond_single_range(const Resource& res,
                                      const http::ResolvedRange& range) const;
  http::Response respond_multipart(const Resource& res,
                                   const std::vector<http::ResolvedRange>& ranges) const;
  http::Response respond_416(const Resource& res) const;
  http::Response error_response(int status, std::string_view text) const;
  void add_common_headers(http::Response& resp) const;

  OriginConfig config_;
  ResourceStore resources_;
  std::vector<http::Request> log_;
};

}  // namespace rangeamp::origin
