#include "origin/resource_store.h"

namespace rangeamp::origin {
namespace {

std::uint64_t path_seed(std::string_view path) {
  // FNV-1a 64-bit: stable content seed per path.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string weak_etag(std::string_view path, std::uint64_t size) {
  // Apache-style "inode-size-mtime" flavored tag, derived deterministically.
  const std::uint64_t seed = path_seed(path);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%llx-%llx\"",
                static_cast<unsigned long long>(seed & 0xFFFFFF),
                static_cast<unsigned long long>(size));
  return buf;
}

}  // namespace

Resource& ResourceStore::add_synthetic(std::string path, std::uint64_t size,
                                       std::string content_type) {
  Resource res;
  res.path = path;
  res.content_type = std::move(content_type);
  res.entity = http::Body::synthetic(path_seed(path), 0, size);
  res.etag = weak_etag(path, size);
  auto [it, _] = resources_.insert_or_assign(std::move(path), std::move(res));
  return it->second;
}

Resource& ResourceStore::add_literal(std::string path, std::string bytes,
                                     std::string content_type) {
  Resource res;
  res.path = path;
  res.content_type = std::move(content_type);
  res.etag = weak_etag(path, bytes.size());
  res.entity = http::Body::literal(std::move(bytes));
  auto [it, _] = resources_.insert_or_assign(std::move(path), std::move(res));
  return it->second;
}

const Resource* ResourceStore::find(std::string_view path) const {
  const auto it = resources_.find(path);
  return it == resources_.end() ? nullptr : &it->second;
}

}  // namespace rangeamp::origin
