// Static resource store backing an origin server.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "http/body.h"

namespace rangeamp::origin {

/// A static web resource.
struct Resource {
  std::string path;
  std::string content_type = "application/octet-stream";
  http::Body entity;  ///< the full representation
  std::string etag;
  std::string last_modified = "Mon, 06 Jul 2020 11:22:33 GMT";

  std::uint64_t size() const noexcept { return entity.size(); }
};

/// Path-keyed resource collection.  Lookups ignore the query string, as a
/// static file server would (which is exactly why appending a random query
/// string busts CDN caches without changing what the origin serves -- the
/// cache-miss trick of section II-A).
class ResourceStore {
 public:
  /// Adds a resource with synthetic content of `size` bytes.  The seed is
  /// derived from the path so re-adding the same path yields identical bytes.
  Resource& add_synthetic(std::string path, std::uint64_t size,
                          std::string content_type = "application/octet-stream");

  /// Adds a resource with literal content.
  Resource& add_literal(std::string path, std::string bytes,
                        std::string content_type = "text/plain");

  /// Looks up by request path (query ignored by the caller).
  const Resource* find(std::string_view path) const;

  std::size_t size() const noexcept { return resources_.size(); }

 private:
  std::map<std::string, Resource, std::less<>> resources_;
};

}  // namespace rangeamp::origin
