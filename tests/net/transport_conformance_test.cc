// Conformance suite for the net::Transport exchange contract
// (src/net/transport.h): every backend must record the same bytes, surface
// the same typed errors, and deliver the same (possibly truncated) response
// for the same scenario.  Parameterized over the HTTP/1.1 backends; the
// cross-backend tests at the bottom run the identical scenario against both
// and compare recorder totals directly.
#include <gtest/gtest.h>

#include <atomic>

#include "http/serialize.h"
#include "net/socket_transport.h"
#include "net/transport_factory.h"
#include "net/wire.h"

namespace rangeamp::net {
namespace {

using http::Body;
using http::Request;
using http::Response;

// A handler returning a canned, honestly-framed response (Content-Length
// present -- the framing every handler in this codebase emits, and what the
// socket backend's exact byte parity is specified against).  The counter is
// atomic: the socket backend calls handle() from the server's accept thread.
class StubHandler final : public HttpHandler {
 public:
  explicit StubHandler(Response response) : response_(std::move(response)) {}

  Response handle(const Request&) override {
    seen.fetch_add(1);
    return response_;
  }

  std::atomic<int> seen{0};

 private:
  Response response_;
};

Response canned(std::uint64_t body_size) {
  Response resp =
      http::make_response(http::kOk, Body::synthetic(3, 0, body_size));
  resp.headers.add("Content-Length", std::to_string(body_size));
  return resp;
}

Request request_for(const char* target) {
  return http::make_get("conformance.example", target);
}

class TransportConformanceTest
    : public ::testing::TestWithParam<TransportBackend> {
 protected:
  TransportSpec spec() const { return TransportSpec{GetParam()}; }
};

TEST_P(TransportConformanceTest, FullExchangeCountsSerializedBytes) {
  StubHandler stub(canned(512));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);

  Request req = request_for("/full");
  req.headers.add("Range", "bytes=0-0");
  const TransferOutcome outcome = transport->transfer_outcome(req);

  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.response.status, 200);
  EXPECT_EQ(outcome.response.body.size(), 512u);
  EXPECT_EQ(rec.request_bytes(), http::serialized_size(req));
  EXPECT_EQ(rec.response_bytes(), http::serialized_size(canned(512)));
  EXPECT_EQ(rec.exchange_count(), 1u);
  ASSERT_EQ(rec.log().size(), 1u);
  EXPECT_EQ(rec.log()[0].target, "/full");
  EXPECT_EQ(rec.log()[0].range_header, "bytes=0-0");
  EXPECT_EQ(rec.log()[0].status, 200);
  EXPECT_FALSE(rec.log()[0].response_truncated);
  EXPECT_EQ(stub.seen.load(), 1);
}

TEST_P(TransportConformanceTest, HeadOnlyReceivesNoBodyBytes) {
  StubHandler stub(canned(777));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);

  TransferOptions options;
  options.head_only = true;
  const TransferOutcome outcome =
      transport->transfer_outcome(request_for("/head"), options);

  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.response.body.size(), 0u);
  EXPECT_EQ(rec.response_bytes(),
            http::serialized_size_truncated(canned(777), 0));
  EXPECT_EQ(rec.truncated_count(), 1u);
}

TEST_P(TransportConformanceTest, AbortAfterBodyBytesCountsAcceptedPrefix) {
  StubHandler stub(canned(4096));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);

  TransferOptions options;
  options.abort_after_body_bytes = 100;
  const TransferOutcome outcome =
      transport->transfer_outcome(request_for("/abort"), options);

  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.response.body.size(), 100u);
  EXPECT_EQ(rec.response_bytes(),
            http::serialized_size_truncated(canned(4096), 100));
  EXPECT_EQ(rec.truncated_count(), 1u);
  EXPECT_EQ(rec.faulted_count(), 0u);  // a deliberate abort is not a fault
}

TEST_P(TransportConformanceTest, AbortBeyondBodyIsNoop) {
  StubHandler stub(canned(50));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);

  TransferOptions options;
  options.abort_after_body_bytes = 5000;
  const TransferOutcome outcome =
      transport->transfer_outcome(request_for("/noop"), options);

  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.response.body.size(), 50u);
  EXPECT_EQ(rec.response_bytes(), http::serialized_size(canned(50)));
  EXPECT_EQ(rec.truncated_count(), 0u);
}

TEST_P(TransportConformanceTest, InjectedLatencyBeyondTimeoutFails) {
  StubHandler stub(canned(64));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);
  FaultInjector injector;
  injector.fail_always(FaultSpec::latency(9.0));
  transport->set_fault_injector(&injector);

  TransferOptions options;
  options.timeout_seconds = 0.5;
  const TransferOutcome outcome =
      transport->transfer_outcome(request_for("/slow"), options);

  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, TransferErrorKind::kTimeout);
  EXPECT_DOUBLE_EQ(outcome.latency_seconds, 0.5);
  // The request crossed the segment; no response byte did.
  EXPECT_EQ(rec.request_bytes(),
            http::serialized_size(request_for("/slow")));
  EXPECT_EQ(rec.response_bytes(), 0u);
  EXPECT_EQ(rec.faulted_count(), 1u);
  EXPECT_EQ(stub.seen.load(), 0);
}

TEST_P(TransportConformanceTest, InjectedTruncationIsATypedError) {
  StubHandler stub(canned(1000));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);
  FaultInjector injector;
  injector.fail_always(FaultSpec::truncate(40));
  transport->set_fault_injector(&injector);

  const TransferOutcome outcome =
      transport->transfer_outcome(request_for("/cut"));

  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, TransferErrorKind::kTruncatedBody);
  EXPECT_EQ(outcome.error->body_bytes_received, 40u);
  EXPECT_EQ(outcome.response.body.size(), 40u);
  EXPECT_EQ(rec.response_bytes(),
            http::serialized_size_truncated(canned(1000), 40));
  EXPECT_EQ(rec.truncated_count(), 1u);
  EXPECT_EQ(rec.faulted_count(), 1u);
}

TEST_P(TransportConformanceTest, ReceiverCapComposesWithInjectedTruncation) {
  // The receiver aborts at 100, the sender dies at 40: the earlier cut wins
  // and it is the sender's, so the outcome is an error.
  StubHandler stub(canned(1000));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);
  FaultInjector injector;
  injector.fail_always(FaultSpec::truncate(40));
  transport->set_fault_injector(&injector);

  TransferOptions options;
  options.abort_after_body_bytes = 100;
  const TransferOutcome outcome =
      transport->transfer_outcome(request_for("/race"), options);

  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, TransferErrorKind::kTruncatedBody);
  EXPECT_EQ(outcome.response.body.size(), 40u);
  EXPECT_EQ(rec.response_bytes(),
            http::serialized_size_truncated(canned(1000), 40));
}

TEST_P(TransportConformanceTest, ConnectionResetFaultYieldsNoResponseBytes) {
  StubHandler stub(canned(64));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);
  FaultInjector injector;
  injector.fail_always(FaultSpec::reset());
  transport->set_fault_injector(&injector);

  const TransferOutcome outcome =
      transport->transfer_outcome(request_for("/reset"));

  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, TransferErrorKind::kConnectionReset);
  EXPECT_EQ(rec.request_bytes(),
            http::serialized_size(request_for("/reset")));
  EXPECT_EQ(rec.response_bytes(), 0u);
  EXPECT_EQ(rec.faulted_count(), 1u);
  EXPECT_EQ(stub.seen.load(), 0);
}

TEST_P(TransportConformanceTest, StatusFaultSynthesizesUpstreamAnswer) {
  StubHandler stub(canned(64));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);
  FaultInjector injector;
  injector.fail_always(FaultSpec::status_code(503));
  transport->set_fault_injector(&injector);

  const TransferOutcome outcome =
      transport->transfer_outcome(request_for("/5xx"));

  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.response.status, 503);
  EXPECT_EQ(rec.response_bytes(),
            http::serialized_size(synthesized_fault_response(503)));
  EXPECT_EQ(stub.seen.load(), 0);  // the fault pre-empts the peer
}

TEST_P(TransportConformanceTest, TransferFoldsFailedOutcomes) {
  // transfer() is implemented once, in the base: a reset becomes the
  // synthesized 502 on every backend.
  StubHandler stub(canned(64));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);
  FaultInjector injector;
  injector.fail_always(FaultSpec::reset());
  transport->set_fault_injector(&injector);

  const Response resp = transport->transfer(request_for("/fold"));
  EXPECT_EQ(resp.status, 502);
  EXPECT_TRUE(resp.headers.get("X-Transfer-Error").has_value());
}

TEST_P(TransportConformanceTest, ByteConservationAcrossMixedSequence) {
  // Recorder totals must equal the sum of per-exchange serialized sizes,
  // whatever mix of full reads and aborts crossed the segment.
  StubHandler stub(canned(2048));
  TrafficRecorder rec("seg");
  auto transport = make_transport(spec(), rec, stub);

  std::uint64_t expected_request = 0;
  std::uint64_t expected_response = 0;
  const Response full = canned(2048);
  for (int i = 0; i < 8; ++i) {
    Request req = request_for("/mixed");
    TransferOptions options;
    if (i % 2 == 1) options.abort_after_body_bytes = 64 * i;
    const TransferOutcome outcome = transport->transfer_outcome(req, options);
    ASSERT_TRUE(outcome.ok());
    expected_request += http::serialized_size(req);
    expected_response +=
        i % 2 == 1 ? http::serialized_size_truncated(full, 64 * i)
                   : http::serialized_size(full);
  }
  EXPECT_EQ(rec.request_bytes(), expected_request);
  EXPECT_EQ(rec.response_bytes(), expected_response);
  EXPECT_EQ(rec.exchange_count(), 8u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportConformanceTest,
    ::testing::Values(TransportBackend::kInMemory, TransportBackend::kSocket),
    [](const ::testing::TestParamInfo<TransportBackend>& info) {
      return info.param == TransportBackend::kSocket ? "Socket" : "InMemory";
    });

// ---------------------------------------------------------------------------
// Cross-backend agreement: the same scenario, both backends, equal recorders.
// ---------------------------------------------------------------------------

struct ScenarioTotals {
  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;
  std::uint64_t truncated = 0;
  std::uint64_t faulted = 0;
};

ScenarioTotals run_scenario(TransportBackend backend) {
  StubHandler stub(canned(4096));
  TrafficRecorder rec("seg");
  auto transport = make_transport(TransportSpec{backend}, rec, stub);
  FaultInjector injector;
  injector.fail_nth(3, FaultSpec::truncate(13));
  injector.fail_nth(5, FaultSpec::reset());
  transport->set_fault_injector(&injector);

  for (int i = 0; i < 6; ++i) {
    Request req = request_for("/agree");
    req.headers.add("Range", "bytes=0-1023");
    TransferOptions options;
    if (i == 1) options.head_only = true;
    if (i == 2) options.abort_after_body_bytes = 512;
    transport->transfer_outcome(req, options);
  }
  return {rec.request_bytes(), rec.response_bytes(), rec.truncated_count(),
          rec.faulted_count()};
}

TEST(TransportCrossBackend, RecordersAgreeOnIdenticalScenario) {
  const ScenarioTotals in_memory = run_scenario(TransportBackend::kInMemory);
  const ScenarioTotals socket = run_scenario(TransportBackend::kSocket);
  EXPECT_EQ(in_memory.request_bytes, socket.request_bytes);
  EXPECT_EQ(in_memory.response_bytes, socket.response_bytes);
  EXPECT_EQ(in_memory.truncated, socket.truncated);
  EXPECT_EQ(in_memory.faulted, socket.faulted);
}

TEST(TransportCrossBackend, SocketServerSurvivesManyExchanges) {
  // One server, many sequential connections -- the accept loop must not
  // wedge after aborted exchanges.
  StubHandler stub(canned(100));
  TrafficRecorder rec("seg");
  SocketTransport transport(rec, stub);
  for (int i = 0; i < 32; ++i) {
    TransferOptions options;
    if (i % 3 == 0) options.head_only = true;
    const TransferOutcome outcome =
        transport.transfer_outcome(request_for("/many"), options);
    ASSERT_TRUE(outcome.ok()) << "exchange " << i;
  }
  EXPECT_EQ(rec.exchange_count(), 32u);
  EXPECT_EQ(stub.seen.load(), 32);
}

}  // namespace
}  // namespace rangeamp::net
