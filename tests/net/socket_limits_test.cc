// Resource-exhaustion hardening of the loopback SocketServer
// (src/net/socket_transport.cc): a peer streaming an unbounded request head,
// or declaring a Content-Length the server would have to buffer past the cap,
// gets its connection dropped without a response -- and without the server
// allocating the attacker-controlled bytes.  Companion to the exchange
// contract in transport_conformance_test.cc.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>

#include "http/serialize.h"
#include "net/socket_transport.h"

namespace rangeamp::net {
namespace {

class CountingHandler final : public HttpHandler {
 public:
  http::Response handle(const http::Request&) override {
    seen.fetch_add(1);
    http::Response resp =
        http::make_response(http::kOk, http::Body::literal("ok"));
    resp.headers.add("Content-Length", "2");
    return resp;
  }

  std::atomic<int> seen{0};
};

// A raw loopback client: the malformed shapes under test cannot be produced
// through SocketTransport (it only sends well-formed serialized requests).
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends as much of `bytes` as the peer accepts.  Returns false once the
  /// peer closed or reset the connection -- the expected outcome when the
  /// server's caps kick in mid-stream.
  bool send_bytes(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads to EOF (or error) and returns everything received.
  std::string read_all() {
    std::string out;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

// A well-formed request must still round-trip after a capped connection was
// dropped -- the cap protects the accept loop, it must not wedge it.
void expect_serves_normally(SocketServer& server, CountingHandler& handler) {
  const int seen_before = handler.seen.load();
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_bytes(
      "GET /ok HTTP/1.1\r\nHost: limits.example\r\nContent-Length: 0\r\n\r\n"));
  const std::string response = client.read_all();
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_EQ(handler.seen.load(), seen_before + 1);
}

TEST(SocketServerLimits, UnboundedRequestHeadDropsConnection) {
  CountingHandler handler;
  SocketServer server(handler);

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Header lines forever, never the terminating blank line.  The server must
  // stop reading at its head cap (1 MiB) and close; we stream well past it.
  const std::string line = "X-Filler: " + std::string(4096, 'a') + "\r\n";
  bool closed = !client.send_bytes("GET /flood HTTP/1.1\r\n");
  for (int i = 0; !closed && i < 1024; ++i) {  // ~4 MiB if never stopped
    closed = !client.send_bytes(line);
  }
  // Either the kernel surfaced the close mid-send, or the read sees EOF with
  // no response bytes.  In no case does the handler run.
  EXPECT_TRUE(client.read_all().empty());
  EXPECT_EQ(handler.seen.load(), 0);

  expect_serves_normally(server, handler);
}

TEST(SocketServerLimits, OversizedContentLengthDropsConnectionUnread) {
  CountingHandler handler;
  SocketServer server(handler);

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Declared body over the 8 MiB buffered-request cap: the head parses, the
  // declared total is rejected before a single body byte is read.
  ASSERT_TRUE(client.send_bytes(
      "POST /upload HTTP/1.1\r\nHost: limits.example\r\n"
      "Content-Length: 16777216\r\n\r\n"));
  EXPECT_TRUE(client.read_all().empty());
  EXPECT_EQ(handler.seen.load(), 0);

  expect_serves_normally(server, handler);
}

TEST(SocketServerLimits, AbsurdContentLengthDoesNotOverflow) {
  CountingHandler handler;
  SocketServer server(handler);

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  // 2^60: naive head_end + content_length arithmetic would wrap on 32-bit
  // size_t and buffer "only" the wrapped total.  The cap check compares the
  // declared length first, so the sum is never formed.
  ASSERT_TRUE(client.send_bytes(
      "POST /upload HTTP/1.1\r\nHost: limits.example\r\n"
      "Content-Length: 1152921504606846976\r\n\r\n"));
  EXPECT_TRUE(client.read_all().empty());
  EXPECT_EQ(handler.seen.load(), 0);

  expect_serves_normally(server, handler);
}

TEST(SocketServerLimits, LargeLegitimateHeadStillServed) {
  CountingHandler handler;
  SocketServer server(handler);

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  // ~100 KB of Range header -- the OBR many-ranges shape, the largest head
  // any legitimate experiment in this repo produces.  Well under the 1 MiB
  // head cap, so it must be served, not dropped.
  std::string ranges = "bytes=0-0";
  while (ranges.size() < 100 * 1024) {
    ranges += ",5-5";
  }
  ASSERT_TRUE(client.send_bytes("GET /big-head HTTP/1.1\r\n"
                                "Host: limits.example\r\n"
                                "Range: " +
                                ranges + "\r\nContent-Length: 0\r\n\r\n"));
  const std::string response = client.read_all();
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_EQ(handler.seen.load(), 1);
}

TEST(SocketServerLimits, BodyWithinCapIsStillBuffered) {
  CountingHandler handler;
  SocketServer server(handler);

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string body(64 * 1024, 'b');
  ASSERT_TRUE(client.send_bytes(
      "POST /upload HTTP/1.1\r\nHost: limits.example\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body));
  const std::string response = client.read_all();
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_EQ(handler.seen.load(), 1);
}

}  // namespace
}  // namespace rangeamp::net
