// FaultInjector scheduling and Wire fault semantics: deterministic
// schedules, typed transfer errors, and exact byte accounting for every
// failure mode.
#include "net/fault.h"

#include <gtest/gtest.h>

#include "http/serialize.h"
#include "net/wire.h"

namespace rangeamp::net {
namespace {

using http::Body;
using http::Request;
using http::Response;

class StubHandler final : public HttpHandler {
 public:
  explicit StubHandler(Response response) : response_(std::move(response)) {}

  Response handle(const Request& request) override {
    requests.push_back(request);
    return response_;
  }

  std::vector<Request> requests;

 private:
  Response response_;
};

Response canned(std::uint64_t body_size) {
  return http::make_response(http::kOk, Body::synthetic(3, 0, body_size));
}

Request simple_get() { return http::make_get("h.example", "/x"); }

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

TEST(FaultInjector, FailNthHitsExactlyThatTransfer) {
  FaultInjector inj;
  inj.fail_nth(3, FaultSpec::reset());
  const Request req = simple_get();
  EXPECT_FALSE(inj.decide(req));
  EXPECT_FALSE(inj.decide(req));
  EXPECT_TRUE(inj.decide(req));
  EXPECT_FALSE(inj.decide(req));
  EXPECT_EQ(inj.transfers_seen(), 4u);
  EXPECT_EQ(inj.faults_injected(), 1u);
}

TEST(FaultInjector, FailFirstAndEvery) {
  FaultInjector first;
  first.fail_first(2, FaultSpec::reset());
  const Request req = simple_get();
  EXPECT_TRUE(first.decide(req));
  EXPECT_TRUE(first.decide(req));
  EXPECT_FALSE(first.decide(req));

  FaultInjector every;
  every.fail_every(3, FaultSpec::reset());
  int faults = 0;
  for (int i = 0; i < 9; ++i) faults += every.decide(req).has_value();
  EXPECT_EQ(faults, 3);
}

TEST(FaultInjector, RateIsSeedDeterministic) {
  const Request req = simple_get();
  const auto pattern = [&](std::uint64_t seed) {
    FaultInjector inj;
    inj.fail_rate(0.5, seed, FaultSpec::reset());
    std::string out;
    for (int i = 0; i < 64; ++i) out += inj.decide(req) ? '1' : '0';
    return out;
  };
  EXPECT_EQ(pattern(42), pattern(42));
  EXPECT_NE(pattern(42), pattern(43));

  FaultInjector inj;
  inj.fail_rate(0.25, 7, FaultSpec::reset());
  for (int i = 0; i < 4000; ++i) inj.decide(req);
  // The SplitMix64 stream should land near the requested rate.
  EXPECT_NEAR(static_cast<double>(inj.faults_injected()) / 4000.0, 0.25, 0.03);
}

TEST(FaultInjector, RateBoundsAreExact) {
  const Request req = simple_get();
  FaultInjector never;
  never.fail_rate(0.0, 1, FaultSpec::reset());
  FaultInjector always;
  always.fail_rate(1.0, 1, FaultSpec::reset());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.decide(req));
    EXPECT_TRUE(always.decide(req));
  }
}

TEST(FaultInjector, PredicateGatesTheRule) {
  FaultInjector inj;
  inj.fail_always(FaultSpec::status_code(503), [](const Request& r) {
    return r.headers.get("If-None-Match").has_value();
  });
  Request plain = simple_get();
  Request conditional = simple_get();
  conditional.headers.add("If-None-Match", "\"v1\"");
  EXPECT_FALSE(inj.decide(plain));
  EXPECT_TRUE(inj.decide(conditional));
  EXPECT_FALSE(inj.decide(plain));
}

TEST(FaultInjector, FirstMatchingRuleWins) {
  FaultInjector inj;
  inj.fail_nth(1, FaultSpec::status_code(500));
  inj.fail_always(FaultSpec::reset());
  const Request req = simple_get();
  const auto first = inj.decide(req);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->action, FaultAction::kStatus);
  const auto second = inj.decide(req);
  ASSERT_TRUE(second);
  EXPECT_EQ(second->action, FaultAction::kConnectionReset);
}

TEST(FaultInjector, DisabledInjectorNeverFaults) {
  FaultInjector inj;
  inj.fail_always(FaultSpec::reset());
  inj.set_enabled(false);
  const Request req = simple_get();
  EXPECT_FALSE(inj.decide(req));
  inj.set_enabled(true);
  EXPECT_TRUE(inj.decide(req));
}

// ---------------------------------------------------------------------------
// Wire integration: every failure mode keeps the books exact
// ---------------------------------------------------------------------------

TEST(WireFaults, ConnectionResetCountsRequestOnly) {
  StubHandler stub(canned(100));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::reset());
  wire.set_fault_injector(&inj);

  const Request req = simple_get();
  const TransferOutcome outcome = wire.transfer_outcome(req);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, TransferErrorKind::kConnectionReset);
  EXPECT_EQ(outcome.error->body_bytes_received, 0u);
  // The request crossed the segment; nothing came back, and the origin
  // handler never ran.
  EXPECT_EQ(rec.request_bytes(), http::serialized_size(req));
  EXPECT_EQ(rec.response_bytes(), 0u);
  EXPECT_EQ(rec.faulted_count(), 1u);
  EXPECT_TRUE(stub.requests.empty());
}

TEST(WireFaults, TruncationCountsPartialBytesExactly) {
  StubHandler stub(canned(1000));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::truncate(300));
  wire.set_fault_injector(&inj);

  const TransferOutcome outcome = wire.transfer_outcome(simple_get());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, TransferErrorKind::kTruncatedBody);
  EXPECT_EQ(outcome.error->body_bytes_received, 300u);
  EXPECT_EQ(outcome.response.body.size(), 300u);
  EXPECT_EQ(rec.response_bytes(),
            http::serialized_size_truncated(canned(1000), 300));
  EXPECT_EQ(rec.faulted_count(), 1u);
}

TEST(WireFaults, TruncationBeyondBodyIsNotAFault) {
  StubHandler stub(canned(10));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::truncate(10));
  wire.set_fault_injector(&inj);
  const TransferOutcome outcome = wire.transfer_outcome(simple_get());
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(rec.faulted_count(), 0u);
}

TEST(WireFaults, TruncationComposesWithReceiverAbort) {
  StubHandler stub(canned(1000));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::truncate(300));
  wire.set_fault_injector(&inj);

  // Receiver aborts at 100 < fault cut 300: a deliberate abort, not a fault.
  TransferOptions options;
  options.abort_after_body_bytes = 100;
  const TransferOutcome outcome = wire.transfer_outcome(simple_get(), options);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.response.body.size(), 100u);
  EXPECT_EQ(rec.faulted_count(), 0u);
}

TEST(WireFaults, LatencyBelowTimeoutIsObservedNotFatal) {
  StubHandler stub(canned(10));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::latency(0.2));
  wire.set_fault_injector(&inj);

  TransferOptions options;
  options.timeout_seconds = 1.0;
  const TransferOutcome outcome = wire.transfer_outcome(simple_get(), options);
  EXPECT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome.latency_seconds, 0.2);
}

TEST(WireFaults, LatencyPastTimeoutFailsWithoutResponseBytes) {
  StubHandler stub(canned(10));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::latency(5.0));
  wire.set_fault_injector(&inj);

  TransferOptions options;
  options.timeout_seconds = 1.0;
  const TransferOutcome outcome = wire.transfer_outcome(simple_get(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, TransferErrorKind::kTimeout);
  // The receiver hung up at its budget, not at the full injected delay.
  EXPECT_DOUBLE_EQ(outcome.latency_seconds, 1.0);
  EXPECT_EQ(rec.response_bytes(), 0u);
}

TEST(WireFaults, StatusFaultSynthesizesWithoutCallingUpstream) {
  StubHandler stub(canned(10));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::status_code(503));
  wire.set_fault_injector(&inj);

  const TransferOutcome outcome = wire.transfer_outcome(simple_get());
  EXPECT_TRUE(outcome.ok());  // a response arrived; it is just a 5xx
  EXPECT_EQ(outcome.response.status, 503);
  EXPECT_TRUE(stub.requests.empty());
  EXPECT_EQ(rec.response_bytes(), http::serialized_size(outcome.response));
}

TEST(WireFaults, LegacyTransferFoldsFailuresIntoA502) {
  StubHandler stub(canned(10));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::reset());
  wire.set_fault_injector(&inj);

  const Response resp = wire.transfer(simple_get());
  EXPECT_EQ(resp.status, http::kBadGateway);
  EXPECT_EQ(resp.headers.get_or("X-Transfer-Error", ""), "connection-reset");
}

TEST(WireFaults, DetachedInjectorRestoresCleanTransfers) {
  StubHandler stub(canned(10));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  FaultInjector inj;
  inj.fail_always(FaultSpec::reset());
  wire.set_fault_injector(&inj);
  EXPECT_FALSE(wire.transfer_outcome(simple_get()).ok());
  wire.set_fault_injector(nullptr);
  EXPECT_TRUE(wire.transfer_outcome(simple_get()).ok());
}

}  // namespace
}  // namespace rangeamp::net
