#include "net/wire.h"

#include <gtest/gtest.h>

#include "http/serialize.h"

namespace rangeamp::net {
namespace {

using http::Body;
using http::Request;
using http::Response;

// A handler returning a canned response and remembering what it saw.
class StubHandler final : public HttpHandler {
 public:
  explicit StubHandler(Response response) : response_(std::move(response)) {}

  Response handle(const Request& request) override {
    requests.push_back(request);
    return response_;
  }

  std::vector<Request> requests;

 private:
  Response response_;
};

Response canned(std::uint64_t body_size) {
  Response resp = http::make_response(http::kOk, Body::synthetic(3, 0, body_size));
  return resp;
}

TEST(Wire, CountsExactSerializedBytes) {
  StubHandler stub(canned(100));
  TrafficRecorder rec("seg");
  Wire wire(rec, stub);

  Request req = http::make_get("h.example", "/x");
  req.headers.add("Range", "bytes=0-0");
  const Response resp = wire.transfer(req);

  EXPECT_EQ(rec.request_bytes(), http::serialized_size(req));
  EXPECT_EQ(rec.response_bytes(), http::serialized_size(resp));
  EXPECT_EQ(rec.exchange_count(), 1u);
  EXPECT_EQ(rec.total_bytes(), rec.request_bytes() + rec.response_bytes());
  ASSERT_EQ(rec.log().size(), 1u);
  EXPECT_EQ(rec.log()[0].target, "/x");
  EXPECT_EQ(rec.log()[0].range_header, "bytes=0-0");
  EXPECT_EQ(rec.log()[0].status, 200);
  EXPECT_FALSE(rec.log()[0].response_truncated);
}

TEST(Wire, AccumulatesAcrossExchanges) {
  StubHandler stub(canned(10));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  const Request req = http::make_get("h", "/a");
  wire.transfer(req);
  wire.transfer(req);
  wire.transfer(req);
  EXPECT_EQ(rec.exchange_count(), 3u);
  EXPECT_EQ(rec.request_bytes(), 3 * http::serialized_size(req));
}

TEST(Wire, AbortAfterBodyBytesTruncatesBodyAndAccounting) {
  StubHandler stub(canned(1000));
  TrafficRecorder rec;
  Wire wire(rec, stub);

  TransferOptions options;
  options.abort_after_body_bytes = 100;
  const Request req = http::make_get("h", "/a");
  const Response resp = wire.transfer(req, options);

  EXPECT_EQ(resp.body.size(), 100u);
  // Headers counted in full, body only up to the abort point.
  const Response full = canned(1000);
  EXPECT_EQ(rec.response_bytes(), http::serialized_size(full) - 900);
  ASSERT_EQ(rec.log().size(), 1u);
  EXPECT_TRUE(rec.log()[0].response_truncated);
}

TEST(Wire, AbortBeyondBodyIsNoop) {
  StubHandler stub(canned(50));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  TransferOptions options;
  options.abort_after_body_bytes = 5000;
  const Response resp = wire.transfer(http::make_get("h", "/a"), options);
  EXPECT_EQ(resp.body.size(), 50u);
  EXPECT_FALSE(rec.log()[0].response_truncated);
}

TEST(Wire, HeadOnlyReceivesNoBody) {
  StubHandler stub(canned(777));
  TrafficRecorder rec;
  Wire wire(rec, stub);
  TransferOptions options;
  options.head_only = true;
  const Response resp = wire.transfer(http::make_get("h", "/a"), options);
  EXPECT_EQ(resp.body.size(), 0u);
  const Response full = canned(777);
  EXPECT_EQ(rec.response_bytes(), http::serialized_size(full) - 777);
}

TEST(Wire, RecorderResetAndLogToggle) {
  StubHandler stub(canned(10));
  TrafficRecorder rec;
  rec.set_keep_log(false);
  Wire wire(rec, stub);
  wire.transfer(http::make_get("h", "/a"));
  EXPECT_TRUE(rec.log().empty());
  EXPECT_GT(rec.total_bytes(), 0u);
  rec.reset();
  EXPECT_EQ(rec.total_bytes(), 0u);
  EXPECT_EQ(rec.exchange_count(), 0u);
}

TEST(WireHandler, ComposesAsHandler) {
  StubHandler stub(canned(10));
  TrafficRecorder inner_rec("inner");
  WireHandler inner(inner_rec, stub);
  TrafficRecorder outer_rec("outer");
  Wire outer(outer_rec, inner);

  const Request req = http::make_get("h", "/a");
  outer.transfer(req);
  // Both segments saw the same exchange.
  EXPECT_EQ(inner_rec.exchange_count(), 1u);
  EXPECT_EQ(outer_rec.exchange_count(), 1u);
  EXPECT_EQ(inner_rec.request_bytes(), outer_rec.request_bytes());
}

}  // namespace
}  // namespace rangeamp::net
