// Receiver-side aborts (TransferOptions::abort_after_body_bytes) against
// framed bodies: cutting a chunked or multipart/byteranges response
// mid-chunk / mid-part must keep the byte accounting exact and must leave a
// body downstream de-framing rejects.
#include <gtest/gtest.h>

#include "http/chunked.h"
#include "http/multipart.h"
#include "http/serialize.h"
#include "net/wire.h"

namespace rangeamp::net {
namespace {

using http::Body;
using http::Request;
using http::Response;

class StubHandler final : public HttpHandler {
 public:
  explicit StubHandler(Response response) : response_(std::move(response)) {}
  Response handle(const Request&) override { return response_; }

 private:
  Response response_;
};

Response chunked_200(std::uint64_t entity_size, std::uint64_t chunk_size) {
  Response resp =
      http::make_response(http::kOk, Body::synthetic(5, 0, entity_size));
  resp.headers.set("Content-Length", std::to_string(entity_size));
  http::apply_chunked_coding(resp, chunk_size);
  return resp;
}

Response multipart_206(std::uint64_t entity_size,
                       const std::vector<http::ResolvedRange>& ranges) {
  const Body entity = Body::synthetic(6, 0, entity_size);
  Response resp;
  resp.status = http::kPartialContent;
  resp.body = http::build_multipart_byteranges(entity, ranges, entity_size,
                                               "application/octet-stream",
                                               "BOUNDARY");
  resp.headers.add("Content-Type", http::multipart_content_type("BOUNDARY"));
  resp.headers.add("Content-Length", std::to_string(resp.body.size()));
  return resp;
}

// Runs one transfer aborted after `cap` body bytes and checks the exact
// accounting invariants shared by every framing.
Response transfer_capped(const Response& full, std::uint64_t cap,
                         TrafficRecorder& rec) {
  StubHandler stub(full);
  Wire wire(rec, stub);
  TransferOptions options;
  options.abort_after_body_bytes = cap;
  const Response got = wire.transfer(http::make_get("h", "/x"), options);
  EXPECT_EQ(got.body.size(), std::min<std::uint64_t>(cap, full.body.size()));
  EXPECT_EQ(rec.response_bytes(),
            cap < full.body.size()
                ? http::serialized_size_truncated(full, cap)
                : http::serialized_size(full));
  // serialized_size_truncated = full size minus the body bytes that never
  // crossed the wire; cross-check against the independent computation.
  EXPECT_EQ(rec.response_bytes(),
            http::serialized_size(full) -
                (full.body.size() - got.body.size()));
  return got;
}

// ---------------------------------------------------------------------------
// Chunked bodies
// ---------------------------------------------------------------------------

TEST(ChunkedTruncation, MidChunkCutKeepsAccountingExact) {
  constexpr std::uint64_t kEntity = 100 * 1024;
  constexpr std::uint64_t kChunk = 8 * 1024;
  const Response full = chunked_200(kEntity, kChunk);
  ASSERT_EQ(full.body.size(), http::chunked_size(kEntity, kChunk));

  TrafficRecorder rec;
  const std::uint64_t cap = 5000;  // inside the first chunk's payload
  const Response got = transfer_capped(full, cap, rec);

  // The cut prefix is bytewise the start of the framed stream ...
  EXPECT_EQ(got.body.materialize(),
            full.body.materialize().substr(0, cap));
  // ... and no longer decodes as chunked (the chunk promises more bytes).
  EXPECT_FALSE(http::decode_chunked(got.body.materialize()));
  EXPECT_TRUE(rec.log()[0].response_truncated);
}

TEST(ChunkedTruncation, CutAtChunkBoundaryStillFailsDecode) {
  constexpr std::uint64_t kEntity = 64 * 1024;
  constexpr std::uint64_t kChunk = 8 * 1024;
  const Response full = chunked_200(kEntity, kChunk);

  // One whole chunk frame: "2000\r\n" + payload + "\r\n".
  const std::uint64_t frame = 6 + kChunk + 2;
  TrafficRecorder rec;
  const Response got = transfer_capped(full, frame, rec);
  // A clean frame boundary is still a truncated stream: the last-chunk
  // terminator never arrived.
  EXPECT_FALSE(http::decode_chunked(got.body.materialize()));
}

TEST(ChunkedTruncation, CutInsideChunkSizeLineKeepsAccountingExact) {
  const Response full = chunked_200(64 * 1024, 8 * 1024);
  TrafficRecorder rec;
  // 3 bytes: inside the very first "2000\r\n" size line.
  const Response got = transfer_capped(full, 3, rec);
  EXPECT_EQ(got.body.materialize(), full.body.materialize().substr(0, 3));
  EXPECT_FALSE(http::decode_chunked(got.body.materialize()));
}

TEST(ChunkedTruncation, CapBeyondFramedBodyIsANoop) {
  const Response full = chunked_200(16 * 1024, 8 * 1024);
  TrafficRecorder rec;
  const Response got = transfer_capped(full, full.body.size() + 100, rec);
  EXPECT_FALSE(rec.log()[0].response_truncated);
  EXPECT_TRUE(http::decode_chunked(got.body.materialize()));
}

// ---------------------------------------------------------------------------
// multipart/byteranges bodies
// ---------------------------------------------------------------------------

TEST(MultipartTruncation, MidPartCutKeepsAccountingExact) {
  constexpr std::uint64_t kEntity = 1u << 20;
  // The OBR shape: many parts selecting the same large window.
  std::vector<http::ResolvedRange> ranges(16,
                                          http::ResolvedRange{0, 64 * 1024 - 1});
  const Response full = multipart_206(kEntity, ranges);
  ASSERT_EQ(full.body.size(),
            http::multipart_byteranges_size(ranges, kEntity,
                                            "application/octet-stream",
                                            "BOUNDARY"));

  // Land the cut inside the third part's payload.
  TrafficRecorder rec;
  const std::uint64_t cap = 2 * (full.body.size() / 16) + 1000;
  const Response got = transfer_capped(full, cap, rec);
  EXPECT_EQ(got.body.materialize(), full.body.materialize().substr(0, cap));
  EXPECT_TRUE(rec.log()[0].response_truncated);
}

TEST(MultipartTruncation, MidPartHeaderCutKeepsAccountingExact) {
  std::vector<http::ResolvedRange> ranges = {{0, 999}, {2000, 2999}};
  const Response full = multipart_206(1u << 16, ranges);
  // A handful of bytes into the first part's "--BOUNDARY\r\n" framing.
  TrafficRecorder rec;
  const Response got = transfer_capped(full, 4, rec);
  EXPECT_EQ(got.body.materialize(), "--BO");
}

TEST(MultipartTruncation, AbortCapsEveryPartOfAnOverlappingSet) {
  // An amplified multipart response aborted early: the receiver pays only
  // the cap, however many (overlapping) parts the sender would have framed.
  constexpr std::uint64_t kEntity = 1u << 20;
  std::vector<http::ResolvedRange> ranges(128,
                                          http::ResolvedRange{0, kEntity - 1});
  const Response full = multipart_206(kEntity, ranges);
  ASSERT_GT(full.body.size(), 128 * kEntity);  // ~128x amplified

  TrafficRecorder rec;
  const std::uint64_t cap = 4096;
  transfer_capped(full, cap, rec);
  const std::uint64_t header_overhead =
      http::serialized_size(full) - full.body.size();
  EXPECT_EQ(rec.response_bytes(), header_overhead + cap);
}

}  // namespace
}  // namespace rangeamp::net
