#include "net/transcript.h"

#include <gtest/gtest.h>

#include "origin/origin_server.h"

namespace rangeamp::net {
namespace {

TEST(Transcript, CapturesExchangesInOrder) {
  origin::OriginServer origin;
  origin.resources().add_literal("/a", "payload-a", "text/plain");
  origin.resources().add_literal("/b", "payload-b", "text/plain");

  Transcript transcript;
  TranscriptHandler tap("seg", transcript, origin);
  tap.handle(http::make_get("h.example", "/a"));
  tap.handle(http::make_get("h.example", "/b"));

  ASSERT_EQ(transcript.entries().size(), 2u);
  EXPECT_EQ(transcript.entries()[0].request.target, "/a");
  EXPECT_EQ(transcript.entries()[1].request.target, "/b");
  EXPECT_EQ(transcript.entries()[0].response.status, 200);
}

TEST(Transcript, RenderShowsDirectionsAndBodies) {
  origin::OriginServer origin;
  origin.resources().add_literal("/x", "hello world", "text/plain");
  Transcript transcript;
  TranscriptHandler tap("client-cdn", transcript, origin);
  auto req = http::make_get("h.example", "/x");
  req.headers.add("Range", "bytes=0-4");
  tap.handle(req);

  const std::string text = transcript.render(/*body_preview=*/8);
  EXPECT_NE(text.find("=== client-cdn ==="), std::string::npos);
  EXPECT_NE(text.find("> GET /x HTTP/1.1"), std::string::npos);
  EXPECT_NE(text.find("> Range: bytes=0-4"), std::string::npos);
  EXPECT_NE(text.find("< HTTP/1.1 206 Partial Content"), std::string::npos);
  EXPECT_NE(text.find("[5 body bytes: hello]"), std::string::npos);
}

TEST(Transcript, RenderEscapesBinaryPreview) {
  origin::OriginServer origin;
  origin.resources().add_literal("/bin", std::string("\x01\x02\x7f", 3),
                                 "application/octet-stream");
  Transcript transcript;
  TranscriptHandler tap("s", transcript, origin);
  tap.handle(http::make_get("h", "/bin"));
  const std::string text = transcript.render(8);
  EXPECT_NE(text.find("\\x01\\x02"), std::string::npos);
}

TEST(Transcript, ZeroPreviewShowsCountOnly) {
  origin::OriginServer origin;
  origin.resources().add_literal("/x", "secret", "text/plain");
  Transcript transcript;
  TranscriptHandler tap("s", transcript, origin);
  tap.handle(http::make_get("h", "/x"));
  const std::string text = transcript.render(0);
  EXPECT_NE(text.find("[6 body bytes]"), std::string::npos);
  EXPECT_EQ(text.find("secret"), std::string::npos);
}

TEST(Transcript, ClearEmpties) {
  Transcript transcript;
  transcript.add("s", http::make_get("h", "/"), http::make_response(200));
  transcript.clear();
  EXPECT_TRUE(transcript.entries().empty());
  EXPECT_EQ(transcript.render(), "");
}

}  // namespace
}  // namespace rangeamp::net
