#include "core/scanner.h"

#include <gtest/gtest.h>

namespace rangeamp::core {
namespace {

using cdn::Vendor;

TEST(ForwardProbes, CoverTheAttackShapes) {
  const auto probes = standard_forward_probes();
  EXPECT_GE(probes.size(), 8u);
  for (const auto& probe : probes) {
    EXPECT_FALSE(probe.range.empty()) << probe.label;
    // Every probe is grammar-valid.
    EXPECT_TRUE(http::parse_range_header(probe.range.to_string()))
        << probe.label;
  }
}

TEST(OriginView, SummaryJoinsWithAmpersand) {
  OriginView view;
  EXPECT_EQ(view.summary(), "(no origin request)");
  view.forwarded = {"None"};
  EXPECT_EQ(view.summary(), "None");
  view.forwarded = {"None", "bytes=8388608-16777215"};
  EXPECT_EQ(view.summary(), "None & bytes=8388608-16777215");
}

TEST(ScanForwarding, FindsAllThirteenSbrVulnerable) {
  std::size_t vulnerable = 0;
  for (const Vendor vendor : cdn::kAllVendors) {
    const auto observations = scan_forwarding(vendor);
    bool any = false;
    for (const auto& obs : observations) {
      if (obs.sbr_vulnerable) any = true;
    }
    if (any) ++vulnerable;
  }
  EXPECT_EQ(vulnerable, 13u);  // Table I: all 13 CDNs
}

TEST(ScanForwarding, AkamaiSignature) {
  const auto observations = scan_forwarding(Vendor::kAkamai, {}, {1u << 20});
  bool tiny_deleted = false, suffix_deleted = false, open_lazy = false;
  for (const auto& obs : observations) {
    if (obs.probe_label == "bytes=first-last (tiny)") {
      tiny_deleted = obs.first_request.summary() == "None";
    }
    if (obs.probe_label == "bytes=-suffix") {
      suffix_deleted = obs.first_request.summary() == "None";
    }
    if (obs.probe_label == "bytes=first-") {
      open_lazy = obs.first_request.summary() == "Unchanged";
    }
  }
  EXPECT_TRUE(tiny_deleted);
  EXPECT_TRUE(suffix_deleted);
  EXPECT_TRUE(open_lazy);
}

TEST(ScanForwarding, KeyCdnStatefulSignature) {
  const auto observations = scan_forwarding(Vendor::kKeyCdn, {}, {1u << 20});
  for (const auto& obs : observations) {
    if (obs.probe_label != "bytes=first-last (tiny)") continue;
    EXPECT_EQ(obs.first_request.summary(), "Unchanged");
    EXPECT_EQ(obs.second_request.summary(), "None");
    EXPECT_TRUE(obs.sbr_vulnerable);
  }
}

TEST(ScanForwarding, AzureSizeConditionalSignature) {
  const auto small = scan_forwarding(Vendor::kAzure, {}, {1u << 20});
  const auto large = scan_forwarding(Vendor::kAzure, {}, {12u << 20});
  for (const auto& obs : small) {
    if (obs.probe_label == "bytes=first-last (second 8MiB window)") {
      // 8388608 >= 1MB file: unsatisfiable -> still a Deletion fetch, but
      // whatever happens it must not be the window pattern.
      EXPECT_EQ(obs.first_request.forwarded[0], "None");
    }
  }
  bool window_seen = false;
  for (const auto& obs : large) {
    if (obs.probe_label == "bytes=first-last (second 8MiB window)") {
      window_seen = obs.first_request.summary() == "None & bytes=8388608-16777215";
    }
  }
  EXPECT_TRUE(window_seen);
}

TEST(ScanForwarding, ObrVulnerabilityOnlyForLazyMultiForwarders) {
  std::set<std::string_view> fcdn_capable;
  for (const Vendor vendor : cdn::kAllVendors) {
    cdn::ProfileOptions options;
    if (vendor == Vendor::kCloudflare) {
      options.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
    }
    for (const auto& obs : scan_forwarding(vendor, options, {1u << 20})) {
      if (obs.obr_forward_vulnerable) fcdn_capable.insert(cdn::vendor_name(vendor));
    }
  }
  EXPECT_EQ(fcdn_capable,
            (std::set<std::string_view>{"CDN77", "CDNsun", "Cloudflare",
                                        "StackPath"}));
}

TEST(ScanCorpus, ClassifiesDeterministically) {
  const auto a = scan_corpus(Vendor::kFastly, 7, 35, 1u << 20);
  const auto b = scan_corpus(Vendor::kFastly, 7, 35, 1u << 20);
  ASSERT_EQ(a.size(), b.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total, b[i].total);
    EXPECT_EQ(a[i].deleted, b[i].deleted);
    EXPECT_EQ(a[i].lazy, b[i].lazy);
    total += a[i].total;
  }
  EXPECT_EQ(total, 35u);
}

TEST(ScanCorpus, TinyClosedAlwaysDeletedOnDeletionVendor) {
  const auto rows = scan_corpus(Vendor::kGcoreLabs, 11, 70, 1u << 20);
  for (const auto& row : rows) {
    if (row.shape == http::RangeShape::kTinyClosed) {
      EXPECT_EQ(row.deleted, row.total);
      EXPECT_EQ(row.lazy, 0u);
    }
    if (row.shape == http::RangeShape::kSingleOpen) {
      EXPECT_EQ(row.lazy, row.total);
    }
  }
}

TEST(ScanReplying, MatchesTableIII) {
  const auto akamai = scan_replying(Vendor::kAkamai);
  EXPECT_TRUE(akamai.obr_reply_vulnerable);
  EXPECT_EQ(akamai.honored_cap, 0u);  // unlimited within tested bound

  const auto azure = scan_replying(Vendor::kAzure);
  EXPECT_TRUE(azure.obr_reply_vulnerable);
  EXPECT_EQ(azure.honored_cap, 64u);

  const auto stackpath = scan_replying(Vendor::kStackPath);
  EXPECT_TRUE(stackpath.obr_reply_vulnerable);

  for (const Vendor vendor :
       {Vendor::kAlibabaCloud, Vendor::kCdn77, Vendor::kCloudflare,
        Vendor::kFastly, Vendor::kGcoreLabs, Vendor::kTencentCloud}) {
    EXPECT_FALSE(scan_replying(vendor).obr_reply_vulnerable)
        << cdn::vendor_name(vendor);
  }
}

}  // namespace
}  // namespace rangeamp::core
