#include "core/obr.h"

#include <gtest/gtest.h>

namespace rangeamp::core {
namespace {

using cdn::Vendor;

TEST(ObrCase, BuildersMatchTableVColumn3) {
  // CDN77 leads with -1024; CDNsun with 1-; the rest are pure 0- chains.
  EXPECT_EQ(obr_range_case(Vendor::kCdn77, 2).to_string(), "bytes=-1024,0-,0-");
  EXPECT_EQ(obr_range_case(Vendor::kCdnsun, 2).to_string(), "bytes=1-,0-,0-");
  EXPECT_EQ(obr_range_case(Vendor::kCloudflare, 3).to_string(), "bytes=0-,0-,0-");
  EXPECT_EQ(obr_range_case(Vendor::kStackPath, 1).to_string(), "bytes=0-");
  EXPECT_EQ(obr_case_description(Vendor::kCdn77), "bytes=-1024,0-,...,0-");
  EXPECT_EQ(obr_case_description(Vendor::kCloudflare), "bytes=0-,0-,...,0-");
}

TEST(ObrCase, AllCasesAreGrammarValidAndOverlapping) {
  for (const Vendor fcdn : obr_fcdn_candidates()) {
    const auto set = obr_range_case(fcdn, 16);
    const auto parsed = http::parse_range_header(set.to_string());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, set);
    const auto resolved = http::resolve_all(set, 1024);
    EXPECT_TRUE(http::any_overlap(resolved));
  }
}

TEST(ObrCandidates, MatchTablesIIandIII) {
  const auto fcdns = obr_fcdn_candidates();
  EXPECT_EQ(fcdns.size(), 4u);
  const auto bcdns = obr_bcdn_candidates();
  EXPECT_EQ(bcdns.size(), 3u);
}

TEST(ObrOriginConfig, RangesDisabled) {
  const auto config = obr_origin_config();
  EXPECT_FALSE(config.supports_ranges);
  EXPECT_FALSE(config.extra_headers.empty());
}

TEST(ObrMeasure, SelfCascadeExcluded) {
  const auto m = measure_obr(Vendor::kStackPath, Vendor::kStackPath);
  EXPECT_FALSE(m.feasible);
  EXPECT_EQ(m.max_n, 0u);
}

TEST(ObrMeasure, MaxNMatchesTableV) {
  // The header-limit arithmetic of section V-C, end to end.
  EXPECT_EQ(measure_obr(Vendor::kCdn77, Vendor::kAkamai).max_n, 5455u);
  EXPECT_EQ(measure_obr(Vendor::kCdnsun, Vendor::kAkamai).max_n, 5456u);
  EXPECT_EQ(measure_obr(Vendor::kCloudflare, Vendor::kAkamai).max_n, 10750u);
  EXPECT_EQ(measure_obr(Vendor::kStackPath, Vendor::kAkamai).max_n, 10801u);
}

TEST(ObrMeasure, AzureBcdnCappedNear64) {
  // Azure honors at most 64 ranges; with CDN77/CDNsun's leading extra spec
  // the overlapping-n lands at 63, with pure 0- chains at 64 (the paper
  // reports 64 for all; the off-by-one is the leading spec's accounting).
  EXPECT_EQ(measure_obr(Vendor::kCloudflare, Vendor::kAzure).max_n, 64u);
  EXPECT_EQ(measure_obr(Vendor::kStackPath, Vendor::kAzure).max_n, 64u);
  EXPECT_EQ(measure_obr(Vendor::kCdn77, Vendor::kAzure).max_n, 63u);
  EXPECT_EQ(measure_obr(Vendor::kCdnsun, Vendor::kAzure).max_n, 63u);
}

TEST(ObrMeasure, AmplificationScalesWithN) {
  // fcdn-bcdn traffic is ~n * (resource + part overhead): the headline
  // Cloudflare->Akamai cascade must land in Table V's range.
  const auto m = measure_obr(Vendor::kCloudflare, Vendor::kAkamai);
  ASSERT_TRUE(m.feasible);
  EXPECT_NEAR(m.amplification, 7432.0, 150.0);
  EXPECT_GT(m.fcdn_bcdn_response_bytes, m.max_n * 1024u);
  // The origin served the 1 KB resource exactly once.
  EXPECT_LT(m.bcdn_origin_response_bytes, 2000u);
  EXPECT_NEAR(static_cast<double>(m.bcdn_origin_response_bytes), 1676.0, 30.0);
}

TEST(ObrMeasure, AttackerReceivesAlmostNothing) {
  const auto m = measure_obr(Vendor::kCloudflare, Vendor::kAkamai);
  // The early-abort trick: the attacker accepted a few KB of a 12 MB body.
  EXPECT_LT(m.client_response_bytes, 8 * 1024u);
  EXPECT_GT(m.fcdn_bcdn_response_bytes, 1000 * m.client_response_bytes);
}

TEST(ObrMeasure, AllElevenCombinationsFeasible) {
  const auto all = measure_all_obr();
  std::size_t feasible = 0;
  for (const auto& m : all) {
    if (m.feasible) {
      ++feasible;
      EXPECT_GT(m.amplification, 10.0)
          << cdn::vendor_name(m.fcdn) << "->" << cdn::vendor_name(m.bcdn);
    }
  }
  EXPECT_EQ(all.size(), 12u);
  EXPECT_EQ(feasible, 11u);  // paper: 11 combinations
}

TEST(ObrMeasure, AkamaiBcdnBeatsAzureBcdn) {
  // Table V shape: Azure's 64-range cap keeps its amplification ~50, two
  // orders of magnitude below Akamai's.
  const auto akamai = measure_obr(Vendor::kCdn77, Vendor::kAkamai);
  const auto azure = measure_obr(Vendor::kCdn77, Vendor::kAzure);
  EXPECT_GT(akamai.amplification, 50 * azure.amplification);
  EXPECT_NEAR(azure.amplification, 53.0, 5.0);
}

TEST(ObrMeasure, BiggerResourceRaisesTrafficNotN) {
  const auto small = measure_obr(Vendor::kCloudflare, Vendor::kAkamai, 1024);
  const auto large = measure_obr(Vendor::kCloudflare, Vendor::kAkamai, 4096);
  EXPECT_EQ(small.max_n, large.max_n);
  EXPECT_GT(large.fcdn_bcdn_response_bytes, 3 * small.fcdn_bcdn_response_bytes);
}

}  // namespace
}  // namespace rangeamp::core
