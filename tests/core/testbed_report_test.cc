#include <gtest/gtest.h>

#include <cstdio>

#include "core/report.h"
#include "core/testbed.h"
#include "http/serialize.h"

namespace rangeamp::core {
namespace {

using cdn::Vendor;

// ---------------------------------------------------------------------------
// Testbeds
// ---------------------------------------------------------------------------

TEST(SingleCdnTestbed, WiresSegmentsWithMatchingByteCounts) {
  SingleCdnTestbed bed(cdn::make_profile(Vendor::kFastly));
  bed.origin().resources().add_synthetic("/a.bin", 2048);
  auto req = http::make_get("h.example", "/a.bin");
  const auto resp = bed.send(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(bed.client_traffic().request_bytes(), http::serialized_size(req));
  EXPECT_EQ(bed.client_traffic().response_bytes(), http::serialized_size(resp));
  EXPECT_GT(bed.origin_traffic().response_bytes(), 2048u);
  EXPECT_EQ(bed.client_traffic().name(), "client-cdn");
  EXPECT_EQ(bed.origin_traffic().name(), "cdn-origin");
}

TEST(CascadeTestbed, ThreeSegmentsAllRecorded) {
  cdn::ProfileOptions bypass;
  bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  CascadeTestbed bed(cdn::make_profile(Vendor::kCloudflare, bypass),
                     cdn::make_profile(Vendor::kAkamai));
  bed.origin().resources().add_synthetic("/a.bin", 2048);
  const auto resp = bed.send(http::make_get("h.example", "/a.bin"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_GT(bed.client_traffic().response_bytes(), 2048u);
  EXPECT_GT(bed.fcdn_bcdn_traffic().response_bytes(), 2048u);
  EXPECT_GT(bed.bcdn_origin_traffic().response_bytes(), 2048u);
  EXPECT_EQ(bed.fcdn_bcdn_traffic().name(), "fcdn-bcdn");
  EXPECT_EQ(bed.bcdn_origin_traffic().name(), "bcdn-origin");
}

TEST(CascadeTestbed, BcdnCacheShieldsOrigin) {
  cdn::ProfileOptions bypass;
  bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  CascadeTestbed bed(cdn::make_profile(Vendor::kCloudflare, bypass),
                     cdn::make_profile(Vendor::kAkamai));
  bed.origin().resources().add_synthetic("/a.bin", 2048);
  bed.send(http::make_get("h.example", "/a.bin"));
  const auto origin_bytes = bed.bcdn_origin_traffic().response_bytes();
  bed.send(http::make_get("h.example", "/a.bin"));
  // FCDN is bypass (no cache) so the BCDN sees the request again -- but
  // serves it from its own cache.
  EXPECT_EQ(bed.bcdn_origin_traffic().response_bytes(), origin_bytes);
  EXPECT_GT(bed.fcdn_bcdn_traffic().exchange_count(), 1u);
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

TEST(Report, MarkdownShapesUp) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(md.find("|-----|----|"), std::string::npos);
  EXPECT_NE(md.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Report, MarkdownToleratesShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| only |"), std::string::npos);
}

TEST(Report, CsvIsPlain) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Report, JsonShapesUpAndEscapes) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"tricky \"x\"", "a\\b\nc"});
  EXPECT_EQ(t.to_json(),
            "[{\"name\":\"plain\",\"value\":\"1\"},"
            "{\"name\":\"tricky \\\"x\\\"\",\"value\":\"a\\\\b\\nc\"}]");
  Table empty({"a"});
  EXPECT_EQ(empty.to_json(), "[]");
}

TEST(Report, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(26214400), "26,214,400");
  EXPECT_EQ(with_thousands(1234567890123ULL), "1,234,567,890,123");
}

TEST(Report, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(43093.0, 0), "43093");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

TEST(Report, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rangeamp_report_test.csv";
  ASSERT_TRUE(write_file(path, "a,b\n1,2\n"));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const auto n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Report, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(write_file("/nonexistent-dir-xyz/file.csv", "x"));
}

}  // namespace
}  // namespace rangeamp::core
