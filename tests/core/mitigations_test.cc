#include "core/mitigations.h"

#include <gtest/gtest.h>

#include "core/obr.h"
#include "core/testbed.h"

namespace rangeamp::core {
namespace {

using cdn::Vendor;

double sbr_af(cdn::VendorProfile profile) {
  SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/p.bin", 10u << 20);
  auto req = http::make_get("h.example", "/p.bin?cb=1");
  req.headers.add("Range", "bytes=0-0");
  bed.send(req);
  return static_cast<double>(bed.origin_traffic().response_bytes()) /
         static_cast<double>(bed.client_traffic().response_bytes());
}

double obr_af(cdn::VendorProfile bcdn_profile) {
  cdn::ProfileOptions bypass;
  bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  CascadeTestbed bed(cdn::make_profile(Vendor::kCloudflare, bypass),
                     std::move(bcdn_profile), obr_origin_config());
  bed.origin().resources().add_synthetic("/p.bin", 1024);
  auto req = http::make_get("h.example", "/p.bin");
  req.headers.add("Range", obr_range_case(Vendor::kCloudflare, 256).to_string());
  net::TransferOptions abort_early;
  abort_early.abort_after_body_bytes = 4096;
  bed.send(req, abort_early);
  if (bed.bcdn_origin_traffic().response_bytes() == 0) return 0;
  return static_cast<double>(bed.fcdn_bcdn_traffic().response_bytes()) /
         static_cast<double>(bed.bcdn_origin_traffic().response_bytes());
}

TEST(Mitigations, BaselineIsVulnerableBothWays) {
  EXPECT_GT(sbr_af(cdn::make_profile(Vendor::kAkamai)), 10000.0);
  EXPECT_GT(obr_af(cdn::make_profile(Vendor::kAkamai)), 150.0);
}

TEST(Mitigations, LazinessKillsSbr) {
  const double af = sbr_af(apply_mitigation(cdn::make_profile(Vendor::kAkamai),
                                            Mitigation::kLaziness));
  EXPECT_LT(af, 2.0);
}

TEST(Mitigations, BoundedExpansionCapsSbrAt8KB) {
  const double af = sbr_af(apply_mitigation(cdn::make_profile(Vendor::kAkamai),
                                            Mitigation::kBoundedExpansion8K));
  // Origin exposure ~8 KB against a ~600 B client response: AF ~ 14, four
  // orders of magnitude below the vulnerable ~17000.
  EXPECT_LT(af, 30.0);
  EXPECT_GT(af, 1.0);
}

TEST(Mitigations, SliceFetchingCapsSbrAtOneSlice) {
  const double af = sbr_af(apply_mitigation(cdn::make_profile(Vendor::kAkamai),
                                            Mitigation::kSlice1M));
  // One 1 MiB slice against a ~600 B client response: ~1700x on the first
  // request -- 10x below the vulnerable 10 MB case, and (unlike Deletion)
  // repeated cache-busted requests hit the slice cache and cost nothing.
  EXPECT_LT(af, 2000.0);
}

TEST(Mitigations, SliceCacheMakesRepeatedAttackFree) {
  cdn::VendorProfile profile = apply_mitigation(
      cdn::make_profile(Vendor::kAkamai), Mitigation::kSlice1M);
  SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/p.bin", 10u << 20);
  for (int i = 0; i < 10; ++i) {
    auto req = http::make_get("h.example", "/p.bin?cb=" + std::to_string(i));
    req.headers.add("Range", "bytes=0-0");
    bed.send(req);
  }
  // Only the first request touched the origin; the sustained campaign's
  // amortized amplification collapses toward zero.
  EXPECT_LT(bed.origin_traffic().response_bytes(), (1u << 20) + 4096u);
  const double sustained_af =
      static_cast<double>(bed.origin_traffic().response_bytes()) /
      static_cast<double>(bed.client_traffic().response_bytes());
  EXPECT_LT(sustained_af, 200.0);
}

TEST(Mitigations, IgnoreQueryStringsDefeatsSustainedCacheBusting) {
  // The customer-side page rule from the disclosure discussion: the first
  // request still amplifies, but the attacker's query rotation then hits the
  // cache forever.
  cdn::VendorProfile profile = apply_mitigation(
      cdn::make_profile(Vendor::kCloudflare), Mitigation::kIgnoreQueryStrings);
  SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/p.bin", 10u << 20);
  for (int i = 0; i < 20; ++i) {
    auto req = http::make_get("h.example", "/p.bin?cb=" + std::to_string(i));
    req.headers.add("Range", "bytes=0-0");
    bed.send(req);
  }
  // One origin pull total, not twenty.
  EXPECT_EQ(bed.origin().request_log().size(), 1u);
  const double sustained_af =
      static_cast<double>(bed.origin_traffic().response_bytes()) /
      static_cast<double>(bed.client_traffic().response_bytes());
  EXPECT_LT(sustained_af, 700.0);
}

TEST(Mitigations, IgnoreQueryStringsBreaksQueryDependentContent) {
  // The flip side the paper points out: customers whose URLs are
  // query-addressed cannot deploy this rule -- different queries collapse
  // onto one cached entity.
  cdn::VendorProfile profile = apply_mitigation(
      cdn::make_profile(Vendor::kCloudflare), Mitigation::kIgnoreQueryStrings);
  SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/p.bin", 4096);
  const auto a = bed.send(http::make_get("h.example", "/p.bin?v=1"));
  const auto b = bed.send(http::make_get("h.example", "/p.bin?v=2"));
  EXPECT_EQ(a.body, b.body);
  EXPECT_EQ(bed.origin().request_log().size(), 1u);
}

TEST(Mitigations, ReplyGuardsKillObrButNotSbr) {
  for (const Mitigation m :
       {Mitigation::kCoalesceMulti, Mitigation::kRejectOverlapping,
        Mitigation::kRangeCountCap16}) {
    const double obr =
        obr_af(apply_mitigation(cdn::make_profile(Vendor::kAkamai), m));
    EXPECT_LT(obr, 5.0) << mitigation_name(m);
    // SBR is a single-range attack: reply-side guards do not help (the
    // paper's point that both flaws need fixing).
    const double sbr =
        sbr_af(apply_mitigation(cdn::make_profile(Vendor::kAkamai), m));
    EXPECT_GT(sbr, 10000.0) << mitigation_name(m);
  }
}

TEST(Mitigations, RangeCountCapStillAllowsSmallLegitimateSets) {
  cdn::VendorProfile profile = apply_mitigation(
      cdn::make_profile(Vendor::kAkamai), Mitigation::kRangeCountCap16);
  SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/p.bin", 4096);
  auto req = http::make_get("h.example", "/p.bin");
  req.headers.add("Range", "bytes=0-9,100-109");
  EXPECT_EQ(bed.send(req).status, 206);
}

TEST(Mitigations, LazinessPreservesRangeSemantics) {
  cdn::VendorProfile profile = apply_mitigation(
      cdn::make_profile(Vendor::kGcoreLabs), Mitigation::kLaziness);
  SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/p.bin", 4096);
  const std::string expected =
      bed.origin().resources().find("/p.bin")->entity.materialize();
  auto req = http::make_get("h.example", "/p.bin");
  req.headers.add("Range", "bytes=100-199");
  const auto resp = bed.send(req);
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.materialize(), expected.substr(100, 100));
}

TEST(Mitigations, NamesAreStable) {
  for (const auto m : kAllMitigations) {
    EXPECT_FALSE(mitigation_name(m).empty());
  }
  EXPECT_EQ(mitigation_name(Mitigation::kLaziness), "Laziness forwarding");
}

}  // namespace
}  // namespace rangeamp::core
