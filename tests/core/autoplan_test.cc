#include "core/autoplan.h"

#include <gtest/gtest.h>

#include "cdn/rules.h"

namespace rangeamp::core {
namespace {

using cdn::Vendor;

TEST(AutoPlan, MatchesHandDerivedPlansForEveryVendor) {
  // The planner must find a case at least as good as Table IV's hand-derived
  // one, for every vendor, at a size exercising all conditional behaviours.
  constexpr std::uint64_t kSize = 12u << 20;
  for (const Vendor vendor : cdn::kAllVendors) {
    const auto table_plan = measure_sbr(vendor, kSize);
    const auto automatic = autoplan_sbr(vendor, kSize);
    EXPECT_GE(automatic.amplification, table_plan.amplification * 0.95)
        << cdn::vendor_name(vendor) << ": auto " << automatic.best.description
        << " (" << automatic.amplification << ") vs table "
        << table_plan.exploited_case << " (" << table_plan.amplification << ")";
  }
}

TEST(AutoPlan, FindsKeyCdnDoubleSendVectorAmongCandidates) {
  const auto result = autoplan_sbr(Vendor::kKeyCdn, 10u << 20);
  EXPECT_GT(result.amplification, 5000.0);
  // The paper's double-send vector is discovered...
  bool double_send_amplifies = false;
  for (const auto& c : result.candidates) {
    if (c.plan.sends == 2 && c.amplification > 5000.0) {
      double_send_amplifies = true;
    }
  }
  EXPECT_TRUE(double_send_amplifies);
  // ...though against this model the planner may prefer the (undocumented)
  // multi-range Deletion path, which amplifies in a single send.
}

TEST(AutoPlan, PicksSecondWindowForAzureLargeFiles) {
  const auto result = autoplan_sbr(Vendor::kAzure, 25u << 20);
  EXPECT_EQ(result.best.description, "bytes=8388608-8388608");
  EXPECT_GT(result.amplification, 20000.0);
}

TEST(AutoPlan, ReportsAllCandidates) {
  const auto result = autoplan_sbr(Vendor::kAkamai, 10u << 20);
  EXPECT_GE(result.candidates.size(), 6u);
  double best = 0;
  for (const auto& c : result.candidates) best = std::max(best, c.amplification);
  EXPECT_DOUBLE_EQ(best, result.amplification);
}

TEST(AutoPlan, FindsNothingOnAHardenedProfile) {
  const auto result = autoplan_sbr(
      [] {
        return *cdn::parse_profile_spec("name: Hardened\nrule: default -> lazy\n");
      },
      10u << 20);
  // Laziness everywhere: no candidate amplifies meaningfully.
  EXPECT_LT(result.amplification, 3.0);
}

TEST(AutoPlan, DiscoversVulnerabilityInACustomSpec) {
  const auto result = autoplan_sbr(
      [] {
        return *cdn::parse_profile_spec(
            "name: NaiveCDN\n"
            "rule: single-suffix -> delete\n"
            "rule: default -> lazy\n");
      },
      10u << 20);
  EXPECT_EQ(result.best.description, "bytes=-1");
  EXPECT_GT(result.amplification, 5000.0);
}

}  // namespace
}  // namespace rangeamp::core
