#include <gtest/gtest.h>

#include <stdexcept>

#include "core/campaign.h"
#include "core/cost.h"
#include "core/detector.h"

namespace rangeamp::core {
namespace {

// ---------------------------------------------------------------------------
// Detector unit behaviour
// ---------------------------------------------------------------------------

DetectorSample attack_sample() {
  DetectorSample s;
  s.selected_bytes = 1;
  s.resource_bytes = 10u << 20;
  s.client.response_bytes = 800;
  s.origin.response_bytes = 10u << 20;
  s.cache_hit = false;
  return s;
}

DetectorSample benign_page_sample() {
  DetectorSample s;
  s.selected_bytes = UINT64_MAX;  // no Range
  s.resource_bytes = 128 * 1024;
  s.client.response_bytes = 128 * 1024;
  s.origin.response_bytes = 0;  // cache hit
  s.cache_hit = true;
  return s;
}

TEST(Detector, AlarmsOnSustainedAttackPattern) {
  RangeAmpDetector detector;
  for (int i = 0; i < 19; ++i) {
    detector.observe(attack_sample());
    EXPECT_FALSE(detector.alarmed()) << "below min_samples at " << i;
  }
  detector.observe(attack_sample());
  EXPECT_TRUE(detector.alarmed());
  const auto stats = detector.stats();
  EXPECT_GT(stats.asymmetry, 1000.0);
  EXPECT_DOUBLE_EQ(stats.tiny_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.miss_fraction, 1.0);
}

TEST(Detector, AlarmIsLatched) {
  RangeAmpDetector detector;
  for (int i = 0; i < 25; ++i) detector.observe(attack_sample());
  ASSERT_TRUE(detector.alarmed());
  for (int i = 0; i < 100; ++i) detector.observe(benign_page_sample());
  EXPECT_TRUE(detector.alarmed());
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
}

TEST(Detector, DecayUnlatchesAfterCleanWindows) {
  // decay_clean_windows=2 @ window=10: the alarm clears after 20
  // *consecutive* samples during which the window never evaluates hot.  The
  // first 2 benign samples after the burst still leave the blended window
  // hot (miss_fraction 8/10 >= 0.8), so the streak starts at the 3rd and
  // sample 22 is the one that clears.
  DetectorConfig config;
  config.window = 10;
  config.min_samples = 5;
  config.decay_clean_windows = 2;
  RangeAmpDetector detector(config);

  for (int i = 0; i < 12; ++i) detector.observe(attack_sample());
  ASSERT_TRUE(detector.alarmed());

  // One sample short of the decay horizon: still alarmed.
  for (int i = 0; i < 21; ++i) detector.observe(benign_page_sample());
  EXPECT_TRUE(detector.alarmed());
  detector.observe(benign_page_sample());
  EXPECT_FALSE(detector.alarmed()) << "22nd clean sample must clear the alarm";
}

TEST(Detector, DecayedDetectorReAlarmsOnSecondBurst) {
  // The regression the distributed campaign depends on: alarm -> recovery ->
  // re-alarm across two attack bursts.  A decayed detector must be armed
  // again, not stuck half-latched.
  DetectorConfig config;
  config.window = 10;
  config.min_samples = 5;
  config.decay_clean_windows = 1;
  RangeAmpDetector detector(config);

  for (int i = 0; i < 12; ++i) detector.observe(attack_sample());
  ASSERT_TRUE(detector.alarmed());
  for (int i = 0; i < 12; ++i) detector.observe(benign_page_sample());
  ASSERT_FALSE(detector.alarmed()) << "first burst must decay";

  for (int i = 0; i < 12; ++i) detector.observe(attack_sample());
  EXPECT_TRUE(detector.alarmed()) << "second burst must re-alarm";
}

TEST(Detector, ResumedAttackRestartsDecayStreak) {
  // decay_clean_windows=2 (20 clean samples to clear): an attacker who
  // resumes mid-decay re-heats the window, which zeroes the streak -- so a
  // benign tail that would have cleared a *fresh* countdown must not clear
  // this one.
  DetectorConfig config;
  config.window = 10;
  config.min_samples = 5;
  config.decay_clean_windows = 2;
  RangeAmpDetector detector(config);

  for (int i = 0; i < 12; ++i) detector.observe(attack_sample());
  ASSERT_TRUE(detector.alarmed());
  for (int i = 0; i < 9; ++i) detector.observe(benign_page_sample());
  for (int i = 0; i < 10; ++i) detector.observe(attack_sample());  // re-heat
  ASSERT_TRUE(detector.alarmed());
  for (int i = 0; i < 15; ++i) detector.observe(benign_page_sample());
  EXPECT_TRUE(detector.alarmed())
      << "15 clean samples after the resume must not clear a 20-sample decay";
}

TEST(Detector, SilentOnBenignTraffic) {
  RangeAmpDetector detector;
  for (int i = 0; i < 200; ++i) detector.observe(benign_page_sample());
  EXPECT_FALSE(detector.alarmed());
}

TEST(Detector, SilentOnColdCacheWarmup) {
  // A burst of cache misses without tiny ranges (a crawler, a deploy) must
  // not alarm: asymmetry ~1 and no tiny ranges.
  RangeAmpDetector detector;
  for (int i = 0; i < 100; ++i) {
    DetectorSample s;
    s.selected_bytes = UINT64_MAX;
    s.resource_bytes = 1u << 20;
    s.client.response_bytes = 1u << 20;
    s.origin.response_bytes = 1u << 20;
    s.cache_hit = false;
    detector.observe(s);
  }
  EXPECT_FALSE(detector.alarmed());
}

TEST(Detector, SilentOnLegitProbeRequests) {
  // Occasional tiny probes (players asking bytes=0-1 for metadata) mixed
  // into normal traffic stay under the tiny-fraction threshold.
  RangeAmpDetector detector;
  for (int i = 0; i < 200; ++i) {
    if (i % 5 == 0) {
      DetectorSample s = attack_sample();
      s.origin.response_bytes = 0;  // served from cache
      s.cache_hit = true;
      detector.observe(s);
    } else {
      detector.observe(benign_page_sample());
    }
  }
  EXPECT_FALSE(detector.alarmed());
}

TEST(Detector, SlidingWindowForgetsOldAttack) {
  DetectorConfig config;
  config.window = 30;
  RangeAmpDetector detector(config);
  for (int i = 0; i < 10; ++i) detector.observe(attack_sample());
  for (int i = 0; i < 60; ++i) detector.observe(benign_page_sample());
  EXPECT_FALSE(detector.alarmed());
  EXPECT_EQ(detector.stats().samples, 30u);
  EXPECT_DOUBLE_EQ(detector.stats().tiny_fraction, 0.0);
}

// ---------------------------------------------------------------------------
// Campaign end-to-end
// ---------------------------------------------------------------------------

TEST(Campaign, BuilderValidatesAtBuildTime) {
  EXPECT_NO_THROW(SbrCampaignConfig::Builder().build());
  EXPECT_THROW(SbrCampaignConfig::Builder().same_key_burst(0).build(),
               std::invalid_argument);
  EXPECT_THROW(SbrCampaignConfig::Builder().edge_nodes(0).build(),
               std::invalid_argument);
  EXPECT_THROW(SbrCampaignConfig::Builder().requests_per_second(0).build(),
               std::invalid_argument);
  EXPECT_THROW(SbrCampaignConfig::Builder().duration_s(-1).build(),
               std::invalid_argument);
  EXPECT_THROW(SbrCampaignConfig::Builder().file_size(0).build(),
               std::invalid_argument);
  EXPECT_THROW(SbrCampaignConfig::Builder().origin_uplink_mbps(0).build(),
               std::invalid_argument);
}

TEST(Campaign, SbrCampaignAmplifiesAndTripsDetector) {
  const auto config = SbrCampaignConfig::Builder()
                          .requests_per_second(5)
                          .duration_s(10)
                          .edge_nodes(4)
                          .build();
  const auto result = run_sbr_campaign(config);
  EXPECT_GT(result.amplification, 5000.0);
  EXPECT_EQ(result.nodes_touched, 4u);
  EXPECT_TRUE(result.detector_alarmed);
  // 50 requests x ~10 MB from the origin.
  EXPECT_NEAR(static_cast<double>(result.origin.response_bytes),
              50.0 * 10 * (1u << 20), 50.0 * 64 * 1024);
}

TEST(Campaign, RoundRobinSpreadsOriginLoadEvenly) {
  const auto config = SbrCampaignConfig::Builder()
                          .requests_per_second(4)
                          .duration_s(8)
                          .edge_nodes(4)
                          .build();
  const auto result = run_sbr_campaign(config);
  ASSERT_EQ(result.per_node_upstream_bytes.size(), 4u);
  const auto expect = result.origin.response_bytes / 4;
  for (const auto bytes : result.per_node_upstream_bytes) {
    EXPECT_NEAR(static_cast<double>(bytes), static_cast<double>(expect),
                static_cast<double>(expect) * 0.05);
  }
}

TEST(Campaign, PinnedTargetsOneNode) {
  const auto config = SbrCampaignConfig::Builder()
                          .requests_per_second(3)
                          .duration_s(5)
                          .edge_nodes(6)
                          .selection(cdn::NodeSelection::kPinned)
                          .build();
  const auto result = run_sbr_campaign(config);
  EXPECT_EQ(result.nodes_touched, 1u);
  EXPECT_EQ(result.per_node_upstream_bytes[0], result.origin.response_bytes);
}

TEST(Campaign, TimeSeriesSaturatesForHighRate) {
  const auto config = SbrCampaignConfig::Builder()
                          .requests_per_second(14)
                          .duration_s(10)
                          .build();
  const auto result = run_sbr_campaign(config);
  EXPECT_TRUE(result.bandwidth.saturated);
  EXPECT_LT(result.bandwidth.peak_client_in_kbps, 500.0);
}

TEST(Campaign, KeyCdnCampaignUsesDoubleSends) {
  const auto config = SbrCampaignConfig::Builder()
                          .vendor(cdn::Vendor::kKeyCdn)
                          .requests_per_second(3)
                          .duration_s(10)
                          .build();
  const auto result = run_sbr_campaign(config);
  EXPECT_GT(result.amplification, 3000.0);
  EXPECT_TRUE(result.detector_alarmed);
}

TEST(Campaign, MitigatedDeploymentNeitherAmplifiesNorAlarms) {
  const auto config = SbrCampaignConfig::Builder()
                          .requests_per_second(4)
                          .duration_s(10)
                          .mitigation(Mitigation::kLaziness)
                          .build();
  const auto result = run_sbr_campaign(config);
  // With Laziness everywhere, the "attack" is just tiny requests: no
  // amplification, no uplink pressure -- and the detector correctly stays
  // silent (there is nothing to detect).
  EXPECT_LT(result.amplification, 2.0);
  EXPECT_FALSE(result.bandwidth.saturated);
  EXPECT_FALSE(result.detector_alarmed);
}

TEST(Campaign, SliceMitigatedClusterCostsOneFillPerNode) {
  const auto config = SbrCampaignConfig::Builder()
                          .requests_per_second(5)
                          .duration_s(10)
                          .edge_nodes(4)
                          .mitigation(Mitigation::kSlice1M)
                          .build();
  const auto result = run_sbr_campaign(config);
  // Each node's slice cache fills once (~1 MiB each); 50 attack requests
  // cost the origin ~4 slices total instead of 50 x 10 MB.
  EXPECT_LT(result.origin.response_bytes, 4ull * ((1u << 20) + 65536));
  EXPECT_GT(result.origin.response_bytes, 3ull << 20);
}

TEST(Campaign, LegitWorkloadDoesNotAlarm) {
  const auto config = LegitWorkloadConfig::Builder{}.requests(300).build();
  const auto result = run_legit_workload(config);
  EXPECT_FALSE(result.detector_alarmed);
  // A healthy cache: hit rate well above zero.
  EXPECT_GT(result.cache_hit_rate, 0.1);
  // And no amplification: origin traffic is bounded by client traffic plus
  // cold-cache pulls of the catalog (~70 MB).
  EXPECT_LT(result.detector_stats.asymmetry, 50.0);
}

TEST(Campaign, LegitWorkloadIsSeedDeterministic) {
  const auto config = LegitWorkloadConfig::Builder{}.requests(100).build();
  const auto a = run_legit_workload(config);
  const auto b = run_legit_workload(config);
  EXPECT_EQ(a.client, b.client);
  EXPECT_EQ(a.origin, b.origin);
}

// ---------------------------------------------------------------------------
// OBR campaign (the node-exhaustion experiment the paper could not run)
// ---------------------------------------------------------------------------

TEST(ObrCampaign, SustainedCascadeKeepsFullPerRequestTraffic) {
  const auto config =
      ObrCampaignConfig::Builder{}.requests_per_second(2).duration_s(5).build();
  const auto result = run_obr_campaign(config);
  ASSERT_GT(result.n, 10000u);
  // Every request moves ~n * 1KB across fcdn-bcdn: the FCDN cache must not
  // absorb the campaign (queries rotate).
  EXPECT_GT(result.fcdn_bcdn_bytes_per_request, result.n * 1024ull);
  // The origin serves each (cache-busted) request once: ~1.7 KB each.
  EXPECT_LT(result.bcdn_origin_response_bytes, 10ull * 2000);
  EXPECT_GT(result.amplification, 5000.0);
  // The attacker aborts every client download early (the OBR cost trick);
  // the recorder-level truncation tally must surface that in the result.
  EXPECT_EQ(result.attacker_truncated,
            static_cast<std::uint64_t>(config.requests_per_second) *
                config.duration_s);
}

TEST(ObrCampaign, SaturatesAGigabitNodeUplinkInSeconds) {
  const auto config = ObrCampaignConfig::Builder{}
                          .requests_per_second(20)
                          .duration_s(10)
                          .node_uplink_mbps(1000.0)
                          .build();
  const auto result = run_obr_campaign(config);
  EXPECT_TRUE(result.bandwidth.saturated);
  EXPECT_GE(result.seconds_to_saturation, 0.0);
  EXPECT_LE(result.seconds_to_saturation, 3.0);
}

TEST(ObrCampaign, AzureCapPreventsSaturation) {
  const auto config = ObrCampaignConfig::Builder{}
                          .bcdn(cdn::Vendor::kAzure)
                          .requests_per_second(20)
                          .duration_s(5)
                          .build();
  const auto result = run_obr_campaign(config);
  EXPECT_LE(result.n, 64u);
  EXPECT_FALSE(result.bandwidth.saturated);
  EXPECT_LT(result.seconds_to_saturation, 0.0);
}

TEST(ObrCampaign, InfeasibleCascadeReportsZero) {
  const auto config = ObrCampaignConfig::Builder{}
                          .fcdn(cdn::Vendor::kStackPath)
                          .bcdn(cdn::Vendor::kStackPath)
                          .build();
  const auto result = run_obr_campaign(config);
  EXPECT_EQ(result.n, 0u);
}

TEST(ObrCampaign, ExplicitNOverridesPlanner) {
  const auto config = ObrCampaignConfig::Builder{}
                          .overlapping_ranges(100)
                          .requests_per_second(1)
                          .duration_s(3)
                          .build();
  const auto result = run_obr_campaign(config);
  EXPECT_EQ(result.n, 100u);
  EXPECT_GT(result.fcdn_bcdn_bytes_per_request, 100u * 1024);
  EXPECT_LT(result.fcdn_bcdn_bytes_per_request, 140u * 1024);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(Cost, PlansExistForAllVendors) {
  EXPECT_EQ(default_price_plans().size(), 13u);
  for (const cdn::Vendor vendor : cdn::kAllVendors) {
    const auto plan = price_plan(vendor);
    EXPECT_EQ(plan.vendor, vendor);
    EXPECT_GE(plan.egress_usd_per_gb, 0.0);
  }
}

TEST(Cost, EstimateArithmetic) {
  PricePlan plan;
  plan.egress_usd_per_gb = 0.10;
  plan.origin_pull_usd_per_gb = 0.05;
  plan.origin_bandwidth_usd_per_gb = 0.09;
  constexpr std::uint64_t kGiB = 1024ull * 1024 * 1024;
  const auto cost = estimate_victim_cost(plan, 10 * kGiB, 100 * kGiB);
  EXPECT_NEAR(cost.cdn_egress_usd, 1.0, 1e-9);
  EXPECT_NEAR(cost.cdn_origin_pull_usd, 5.0, 1e-9);
  EXPECT_NEAR(cost.origin_bandwidth_usd, 9.0, 1e-9);
  EXPECT_NEAR(cost.total_usd, 15.0, 1e-9);
}

TEST(Cost, SbrCampaignCostIsAsymmetric) {
  // One laptop at 10 req/s for a day against a 25 MB target: the victim's
  // origin-side bill dwarfs the attacker's tiny egress share.
  const auto plan = price_plan(cdn::Vendor::kCloudFront);
  const auto cost = estimate_campaign_cost(plan, /*client=*/700,
                                           /*origin=*/25u << 20,
                                           /*rps=*/10, /*hours=*/24);
  EXPECT_GT(cost.total_usd, 1000.0);  // thousands of dollars/day
  EXPECT_LT(cost.cdn_egress_usd, 1.0);
  EXPECT_GT(cost.origin_bandwidth_usd, 100.0 * cost.cdn_egress_usd);
}

}  // namespace
}  // namespace rangeamp::core
