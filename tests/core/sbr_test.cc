#include "core/sbr.h"

#include <gtest/gtest.h>

namespace rangeamp::core {
namespace {

using cdn::Vendor;
constexpr std::uint64_t kMiB = 1u << 20;

TEST(SbrPlan, MatchesTableIVColumn2) {
  EXPECT_EQ(sbr_plan(Vendor::kAkamai, kMiB).description, "bytes=0-0");
  EXPECT_EQ(sbr_plan(Vendor::kAlibabaCloud, kMiB).description, "bytes=-1");
  EXPECT_EQ(sbr_plan(Vendor::kAzure, kMiB).description, "bytes=0-0 (F<=8MB)");
  EXPECT_EQ(sbr_plan(Vendor::kAzure, 25 * kMiB).description,
            "bytes=8388608-8388608 (F>8MB)");
  EXPECT_EQ(sbr_plan(Vendor::kCloudFront, kMiB).description,
            "bytes=0-0,9437184-9437184");
  EXPECT_EQ(sbr_plan(Vendor::kHuaweiCloud, kMiB).description, "bytes=-1 (F<10MB)");
  EXPECT_EQ(sbr_plan(Vendor::kHuaweiCloud, 10 * kMiB).description,
            "bytes=0-0 (F>=10MB)");
  EXPECT_EQ(sbr_plan(Vendor::kKeyCdn, kMiB).sends, 2);
  EXPECT_EQ(sbr_plan(Vendor::kAkamai, kMiB).sends, 1);
}

TEST(SbrPlan, RangeSetsAreValid) {
  for (const Vendor vendor : cdn::kAllVendors) {
    for (const std::uint64_t size : {kMiB, 10 * kMiB, 25 * kMiB}) {
      const SbrPlan plan = sbr_plan(vendor, size);
      EXPECT_FALSE(plan.range.empty());
      const auto reparsed = http::parse_range_header(plan.range.to_string());
      ASSERT_TRUE(reparsed) << plan.description;
    }
  }
}

TEST(SbrMeasure, EveryVendorAmplifiesAboveThousandAt10MB) {
  // Table IV: the smallest 10 MB amplification factor is KeyCDN's ~7100;
  // everything must clear 1000 by a wide margin.
  for (const Vendor vendor : cdn::kAllVendors) {
    const auto m = measure_sbr(vendor, 10 * kMiB);
    EXPECT_GT(m.amplification, 1000.0) << cdn::vendor_name(vendor);
    EXPECT_LT(m.client_response_bytes, 2000u) << cdn::vendor_name(vendor);
  }
}

TEST(SbrMeasure, PaperHeadlineNumbers) {
  // "using Akamai or G-Core Labs ... response traffic 43000 times larger".
  EXPECT_NEAR(measure_sbr(Vendor::kAkamai, 25 * kMiB).amplification, 43093, 500);
  EXPECT_NEAR(measure_sbr(Vendor::kGcoreLabs, 25 * kMiB).amplification, 43330, 500);
  EXPECT_NEAR(measure_sbr(Vendor::kCloudflare, 25 * kMiB).amplification, 31836,
              500);
  EXPECT_NEAR(measure_sbr(Vendor::kKeyCdn, 25 * kMiB).amplification, 17744, 300);
}

TEST(SbrMeasure, AzureFlattensPast16MB) {
  const auto at17 = measure_sbr(Vendor::kAzure, 17 * kMiB);
  const auto at25 = measure_sbr(Vendor::kAzure, 25 * kMiB);
  EXPECT_NEAR(at17.amplification, at25.amplification, at25.amplification * 0.02);
  // And both ship ~16 MB from the origin, not the file size.
  EXPECT_NEAR(static_cast<double>(at25.origin_response_bytes), 16.0 * kMiB,
              0.1 * kMiB);
}

TEST(SbrMeasure, CloudFrontFlattensPast10MB) {
  const auto at10 = measure_sbr(Vendor::kCloudFront, 10 * kMiB);
  const auto at25 = measure_sbr(Vendor::kCloudFront, 25 * kMiB);
  EXPECT_NEAR(at10.amplification, at25.amplification, at25.amplification * 0.02);
  EXPECT_NEAR(static_cast<double>(at25.origin_response_bytes), 10.0 * kMiB,
              0.1 * kMiB);
}

TEST(SbrMeasure, KeyCdnClientTrafficIsLargest) {
  // Fig 6b: KeyCDN generates the largest client-side response traffic
  // (two responses per amplification unit).
  const auto keycdn = measure_sbr(Vendor::kKeyCdn, 10 * kMiB);
  for (const Vendor vendor : cdn::kAllVendors) {
    if (vendor == Vendor::kKeyCdn) continue;
    const auto other = measure_sbr(vendor, 10 * kMiB);
    EXPECT_GT(keycdn.client_response_bytes, other.client_response_bytes)
        << cdn::vendor_name(vendor);
  }
}

TEST(SbrMeasure, AkamaiAndGcoreHaveSteepestSlopes) {
  // Fig 6a: fewer response headers -> larger amplification.
  const auto akamai = measure_sbr(Vendor::kAkamai, 25 * kMiB);
  const auto gcore = measure_sbr(Vendor::kGcoreLabs, 25 * kMiB);
  for (const Vendor vendor : cdn::kAllVendors) {
    if (vendor == Vendor::kAkamai || vendor == Vendor::kGcoreLabs) continue;
    const auto other = measure_sbr(vendor, 25 * kMiB);
    EXPECT_GT(akamai.amplification, other.amplification)
        << cdn::vendor_name(vendor);
    EXPECT_GT(gcore.amplification, other.amplification)
        << cdn::vendor_name(vendor);
  }
}

// Property sweep: amplification grows monotonically with file size for
// Deletion-policy vendors (Fig 6a's "basically proportional").
class SbrMonotonicity : public ::testing::TestWithParam<Vendor> {};

TEST_P(SbrMonotonicity, AmplificationGrowsWithFileSize) {
  const auto sweep =
      sweep_sbr(GetParam(), {1 * kMiB, 5 * kMiB, 10 * kMiB, 20 * kMiB});
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].amplification, sweep[i - 1].amplification)
        << sweep[i].file_size;
  }
  // And it is roughly linear: AF(20MB) ~ 20 * AF(1MB) within 15%.
  EXPECT_NEAR(sweep[3].amplification, 20.0 * sweep[0].amplification,
              3.0 * sweep[0].amplification);
}

INSTANTIATE_TEST_SUITE_P(DeletionVendors, SbrMonotonicity,
                         ::testing::Values(Vendor::kAkamai, Vendor::kCdn77,
                                           Vendor::kCdnsun, Vendor::kCloudflare,
                                           Vendor::kFastly, Vendor::kGcoreLabs,
                                           Vendor::kStackPath,
                                           Vendor::kTencentCloud,
                                           Vendor::kAlibabaCloud,
                                           Vendor::kKeyCdn));

TEST(SbrMeasure, MeasurementIsDeterministic) {
  const auto a = measure_sbr(Vendor::kFastly, 3 * kMiB);
  const auto b = measure_sbr(Vendor::kFastly, 3 * kMiB);
  EXPECT_EQ(a.client_response_bytes, b.client_response_bytes);
  EXPECT_EQ(a.origin_response_bytes, b.origin_response_bytes);
}

}  // namespace
}  // namespace rangeamp::core
