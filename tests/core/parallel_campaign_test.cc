// Determinism contract of the sharded campaign engine
// (src/core/parallel.h, docs/parallel-model.md):
//
//   * a ShardPlan is a pure function of (total, shards, seed, group) --
//     never of the thread count, the hardware, or a clock;
//   * per-shard RNG streams depend only on (seed, shard index), so pinning
//     the shard count pins every stream;
//   * a sharded campaign produces identical results at every thread count,
//     and -- for campaigns without cross-shard state -- identical results
//     to the serial run, down to recorder byte totals, per-node byte
//     vectors, detector stats, merged metrics counters, and merged traces.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/rangeamp.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rangeamp {
namespace {

// ---------------------------------------------------------------------------
// ShardPlan
// ---------------------------------------------------------------------------

TEST(ShardPlanTest, CoversGridContiguouslyAndBalanced) {
  const core::ShardPlan plan(103, 8);
  ASSERT_EQ(plan.size(), 8u);
  std::uint64_t expected_begin = 0;
  std::uint64_t min_size = UINT64_MAX, max_size = 0;
  for (const core::Shard& shard : plan.shards()) {
    EXPECT_EQ(shard.begin, expected_begin);
    EXPECT_GT(shard.end, shard.begin);  // no empty shards
    expected_begin = shard.end;
    min_size = std::min(min_size, shard.size());
    max_size = std::max(max_size, shard.size());
  }
  EXPECT_EQ(expected_begin, 103u);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlanTest, AlignsBoundariesToGroups) {
  // A same-key burst group must never straddle a shard boundary.
  const core::ShardPlan plan(100, 4, /*seed=*/0, /*group=*/8);
  std::uint64_t expected_begin = 0;
  for (const core::Shard& shard : plan.shards()) {
    EXPECT_EQ(shard.begin % 8, 0u);
    EXPECT_EQ(shard.begin, expected_begin);
    expected_begin = shard.end;
  }
  EXPECT_EQ(plan.shards().back().end, 100u);
}

TEST(ShardPlanTest, ClampsShardCountToGroupCount) {
  const core::ShardPlan plan(5, 16);
  EXPECT_EQ(plan.size(), 5u);  // never an empty shard
  const core::ShardPlan grouped(64, 16, 0, /*group=*/32);
  EXPECT_EQ(grouped.size(), 2u);  // only two whole groups to hand out
  const core::ShardPlan empty(0, 4);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(ShardPlanTest, SeedsDependOnlyOnSeedAndIndex) {
  // Stream stability: shard i's seed must not move when the shard count
  // changes -- growing a campaign appends streams, never perturbs them.
  const core::ShardPlan two(1000, 2, 2020);
  const core::ShardPlan eight(1000, 8, 2020);
  for (std::size_t i = 0; i < two.size(); ++i) {
    EXPECT_EQ(two.shards()[i].seed, eight.shards()[i].seed);
    EXPECT_EQ(two.shards()[i].seed, core::shard_seed(2020, i));
  }
  // Distinct indices and distinct campaign seeds give distinct streams.
  EXPECT_NE(core::shard_seed(2020, 0), core::shard_seed(2020, 1));
  EXPECT_NE(core::shard_seed(2020, 0), core::shard_seed(2021, 0));
}

// ---------------------------------------------------------------------------
// ThreadPool / run_shards
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesEveryTask) {
  std::atomic<int> done{0};
  {
    core::ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 100);
  }
}

TEST(RunShardsTest, RethrowsFirstShardError) {
  const core::ShardPlan plan(8, 8);
  const auto boom = [](const core::Shard& shard) {
    if (shard.index >= 2) throw std::runtime_error("shard failed");
  };
  EXPECT_THROW(core::run_shards(plan, 4, boom), std::runtime_error);
  EXPECT_THROW(core::run_shards(plan, 1, boom), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Sharded SBR campaign
// ---------------------------------------------------------------------------

core::SbrCampaignConfig::Builder small_campaign() {
  return core::SbrCampaignConfig::Builder()
      .vendor(cdn::Vendor::kCloudflare)
      .file_size(256u << 10)
      .requests_per_second(20)
      .duration_s(5)
      .edge_nodes(4);
}

void expect_same_result(const core::SbrCampaignResult& a,
                        const core::SbrCampaignResult& b) {
  EXPECT_EQ(a.attacker.request_bytes, b.attacker.request_bytes);
  EXPECT_EQ(a.attacker.response_bytes, b.attacker.response_bytes);
  EXPECT_EQ(a.attacker_truncated, b.attacker_truncated);
  EXPECT_EQ(a.origin.response_bytes, b.origin.response_bytes);
  EXPECT_DOUBLE_EQ(a.amplification, b.amplification);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.per_node_upstream_bytes, b.per_node_upstream_bytes);
  EXPECT_EQ(a.detector_alarmed, b.detector_alarmed);
  EXPECT_EQ(a.detector_stats.samples, b.detector_stats.samples);
  EXPECT_DOUBLE_EQ(a.detector_stats.asymmetry, b.detector_stats.asymmetry);
  EXPECT_DOUBLE_EQ(a.detector_stats.tiny_fraction, b.detector_stats.tiny_fraction);
  EXPECT_DOUBLE_EQ(a.detector_stats.miss_fraction, b.detector_stats.miss_fraction);
  ASSERT_EQ(a.series.size(), b.series.size());
}

TEST(ParallelSbrCampaignTest, ShardedEqualsSerial) {
  // Cache-busting SBR exchanges are independent, so the sharded reduction
  // must reproduce the serial run exactly -- not just statistically.
  const auto serial = core::run_sbr_campaign(small_campaign().build());
  const auto sharded =
      core::run_sbr_campaign(small_campaign().shards(8).threads(2).build());
  expect_same_result(serial, sharded);
  EXPECT_GT(serial.amplification, 1.0);
  EXPECT_TRUE(serial.detector_alarmed);
}

TEST(ParallelSbrCampaignTest, ResultsStableAcrossThreadCounts) {
  // `shards` pins the decomposition; `threads` must be unobservable.
  const auto base = small_campaign().shards(8);
  const auto t1 = core::run_sbr_campaign(
      core::SbrCampaignConfig::Builder(base).threads(1).build());
  const auto t2 = core::run_sbr_campaign(
      core::SbrCampaignConfig::Builder(base).threads(2).build());
  const auto t8 = core::run_sbr_campaign(
      core::SbrCampaignConfig::Builder(base).threads(8).build());
  expect_same_result(t1, t2);
  expect_same_result(t1, t8);
}

TEST(ParallelSbrCampaignTest, SameKeyBurstShardedEqualsSerial) {
  // Burst-aligned shard boundaries keep every same-key group (whose later
  // members hit the cache the first member filled) inside one shard.
  const auto config = small_campaign().same_key_burst(5);
  const auto serial = core::run_sbr_campaign(
      core::SbrCampaignConfig::Builder(config).build());
  const auto sharded = core::run_sbr_campaign(
      core::SbrCampaignConfig::Builder(config).shards(4).threads(8).build());
  expect_same_result(serial, sharded);
}

TEST(ParallelSbrCampaignTest, MergedMetricsCountersEqualSerial) {
  obs::MetricsRegistry serial_metrics;
  auto serial_config = small_campaign().build();
  serial_config.metrics = &serial_metrics;
  core::run_sbr_campaign(serial_config);

  obs::MetricsRegistry sharded_metrics;
  auto sharded_config = small_campaign().shards(4).threads(2).build();
  sharded_config.metrics = &sharded_metrics;
  core::run_sbr_campaign(sharded_config);

  // Counters and histograms add across shards; the Prometheus exposition
  // (which excludes the time series) must come out identical.
  EXPECT_EQ(serial_metrics.to_prometheus(), sharded_metrics.to_prometheus());
  EXPECT_GT(sharded_metrics.metric_count(), 0u);
  EXPECT_GT(sharded_metrics.sample_count(), 0u);
}

TEST(ParallelSbrCampaignTest, MergedTraceKeepsParentageAndByteTotals) {
  obs::Tracer serial_tracer;
  auto serial_config = small_campaign().build();
  serial_config.tracer = &serial_tracer;
  core::run_sbr_campaign(serial_config);

  obs::Tracer tracer;
  auto config = small_campaign().shards(4).threads(2).build();
  config.tracer = &tracer;
  const auto result = core::run_sbr_campaign(config);

  ASSERT_FALSE(tracer.spans().empty());
  // Rebased ids must stay self-consistent: ids are 1..N in order, parents
  // precede children, and a child's trace equals its parent's.
  for (std::size_t i = 0; i < tracer.spans().size(); ++i) {
    const obs::Span& span = tracer.spans()[i];
    EXPECT_EQ(span.id, i + 1);
    if (span.parent != 0) {
      ASSERT_LT(span.parent, span.id);
      EXPECT_EQ(tracer.spans()[span.parent - 1].trace, span.trace);
    }
  }
  // The merged tracer is the serial tracer: same span count, same trace
  // count, same per-segment byte sums.
  EXPECT_EQ(tracer.spans().size(), serial_tracer.spans().size());
  EXPECT_EQ(tracer.trace_count(), serial_tracer.trace_count());
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kClientCdn),
            serial_tracer.segment_totals(net::SegmentId::kClientCdn));
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kCdnOrigin),
            serial_tracer.segment_totals(net::SegmentId::kCdnOrigin));
  // The cdn-origin segment has a single wire layer, so its trace-side sum
  // is the recorder total.  (The client segment is observed twice per
  // exchange -- the attacker's wire and the cluster's ingress wire both
  // trace it, in serial and sharded runs alike -- so it is compared against
  // the serial tracer above, not against the single-view recorder.)
  const net::TrafficTotals origin = tracer.segment_totals(net::SegmentId::kCdnOrigin);
  EXPECT_EQ(origin.response_bytes, result.origin.response_bytes);
}

// ---------------------------------------------------------------------------
// Sharded OBR campaign
// ---------------------------------------------------------------------------

TEST(ParallelObrCampaignTest, ShardedEqualsSerialAndStableAcrossThreads) {
  const auto base =
      core::ObrCampaignConfig::Builder{}.requests_per_second(2).duration_s(6);

  const auto serial = core::run_obr_campaign(base.build());
  ASSERT_GT(serial.n, 0u);

  for (const int threads : {1, 8}) {
    const auto config =
        core::ObrCampaignConfig::Builder{base}.shards(4).threads(threads).build();
    const auto sharded = core::run_obr_campaign(config);
    EXPECT_EQ(sharded.n, serial.n);
    EXPECT_EQ(sharded.fcdn_bcdn_bytes_per_request,
              serial.fcdn_bcdn_bytes_per_request);
    EXPECT_EQ(sharded.bcdn_origin_response_bytes,
              serial.bcdn_origin_response_bytes);
    EXPECT_EQ(sharded.attacker_response_bytes, serial.attacker_response_bytes);
    EXPECT_EQ(sharded.attacker_truncated, serial.attacker_truncated);
    EXPECT_DOUBLE_EQ(sharded.amplification, serial.amplification);
  }
}

// ---------------------------------------------------------------------------
// Sharded benign workload
// ---------------------------------------------------------------------------

TEST(ParallelLegitWorkloadTest, ShardedStableAcrossThreadCounts) {
  // The sharded workload draws different streams than the serial one (each
  // shard owns SplitMix64(seed ^ index)), but with `shards` pinned the run
  // must be byte-identical at every thread count.
  const auto with_threads = [](int threads) {
    return core::LegitWorkloadConfig::Builder{}
        .requests(300)
        .shards(3)
        .threads(threads)
        .build();
  };
  const auto t1 = core::run_legit_workload(with_threads(1));
  const auto t2 = core::run_legit_workload(with_threads(2));
  const auto t8 = core::run_legit_workload(with_threads(8));

  for (const auto* other : {&t2, &t8}) {
    EXPECT_EQ(t1.client.request_bytes, other->client.request_bytes);
    EXPECT_EQ(t1.client.response_bytes, other->client.response_bytes);
    EXPECT_EQ(t1.origin.response_bytes, other->origin.response_bytes);
    EXPECT_DOUBLE_EQ(t1.cache_hit_rate, other->cache_hit_rate);
    EXPECT_EQ(t1.detector_alarmed, other->detector_alarmed);
    EXPECT_EQ(t1.detector_stats.samples, other->detector_stats.samples);
  }
  // The benign mix must stay benign when sharded.
  EXPECT_FALSE(t1.detector_alarmed);
  EXPECT_GT(t1.cache_hit_rate, 0.0);
}

TEST(ParallelLegitWorkloadTest, SerialPathUnchangedByDefault) {
  // shards = 1 must keep using config.seed directly (the legacy stream):
  // two default-config runs agree with each other and with a shards=1,
  // threads=8 run.
  const auto a =
      core::run_legit_workload(core::LegitWorkloadConfig::Builder{}.build());
  // threads without shards must change nothing
  const auto b = core::run_legit_workload(
      core::LegitWorkloadConfig::Builder{}.threads(8).build());
  EXPECT_EQ(a.client.request_bytes, b.client.request_bytes);
  EXPECT_EQ(a.client.response_bytes, b.client.response_bytes);
  EXPECT_EQ(a.origin.response_bytes, b.origin.response_bytes);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
}

// ---------------------------------------------------------------------------
// Parallel SBR sweep
// ---------------------------------------------------------------------------

TEST(ParallelSweepTest, SweepSbrStableAcrossThreadCounts) {
  const std::vector<std::uint64_t> sizes{1u << 20, 2u << 20, 3u << 20,
                                         4u << 20, 5u << 20};
  const auto serial = core::sweep_sbr(cdn::Vendor::kAkamai, sizes);
  const auto parallel = core::sweep_sbr(cdn::Vendor::kAkamai, sizes, {},
                                        nullptr, /*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].client_response_bytes, parallel[i].client_response_bytes);
    EXPECT_EQ(serial[i].origin_response_bytes, parallel[i].origin_response_bytes);
    EXPECT_EQ(serial[i].client_request_bytes, parallel[i].client_request_bytes);
    EXPECT_EQ(serial[i].origin_request_bytes, parallel[i].origin_request_bytes);
    EXPECT_DOUBLE_EQ(serial[i].amplification, parallel[i].amplification);
    EXPECT_EQ(serial[i].exploited_case, parallel[i].exploited_case);
  }
}

// ---------------------------------------------------------------------------
// Obs-layer merges
// ---------------------------------------------------------------------------

TEST(ObsMergeTest, MetricsRegistryMergeAddsAndOrders) {
  obs::MetricsRegistry a, b;
  a.counter("c_total").inc(3);
  b.counter("c_total").inc(4);
  b.counter("only_b_total").inc(1);
  a.gauge("g").set(1.5);
  b.gauge("g").set(2.5);
  a.histogram("h", {1, 10}).observe(0.5);
  b.histogram("h", {1, 10}).observe(5);
  a.sample(2.0);
  b.sample(1.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("c_total").value(), 7u);
  EXPECT_EQ(a.counter("only_b_total").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 4.0);
  EXPECT_EQ(a.histogram("h", {1, 10}).count(), 2u);
  // Merged series is stable-sorted by timestamp.
  const std::string csv = a.series_csv();
  EXPECT_LT(csv.find("1.000"), csv.find("2.000"));
}

TEST(ObsMergeTest, HistogramMergeRejectsMismatchedBounds) {
  obs::Histogram a({1, 10});
  obs::Histogram b({1, 100});
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(ObsMergeTest, TracerMergeRebasesIdsAndTraces) {
  obs::Tracer a, b;
  {
    const obs::SpanId root = a.begin_span("a.root");
    a.end_span(root);
  }
  {
    const obs::SpanId root = b.begin_span("b.root");
    const obs::SpanId child = b.begin_span("b.child");
    b.note(child, "k", "v");
    b.end_span(child);
    b.end_span(root);
  }
  a.merge_from(b);
  ASSERT_EQ(a.spans().size(), 3u);
  EXPECT_EQ(a.trace_count(), 2u);
  EXPECT_EQ(a.spans()[1].name, "b.root");
  EXPECT_EQ(a.spans()[1].parent, 0u);
  EXPECT_EQ(a.spans()[2].parent, a.spans()[1].id);
  EXPECT_EQ(a.spans()[2].trace, a.spans()[1].trace);
  EXPECT_NE(a.spans()[0].trace, a.spans()[1].trace);
}

// ---------------------------------------------------------------------------
// Cache-pollution campaign
// ---------------------------------------------------------------------------

core::CachePollutionConfig small_pollution() {
  core::CachePollutionConfig config;
  config.cache.max_bytes = 2ull << 20;
  config.cache.policy = cdn::CacheEvictionPolicy::kS3Fifo;
  config.catalog_objects = 64;
  config.object_bytes = 8 * 1024;
  config.attack_object_bytes = 64 * 1024;
  config.warmup_requests = 128;
  config.requests = 512;
  config.seed = 2020;
  return config;
}

void expect_same_pollution(const core::CachePollutionResult& a,
                           const core::CachePollutionResult& b) {
  EXPECT_EQ(a.legit_requests, b.legit_requests);
  EXPECT_EQ(a.attack_requests, b.attack_requests);
  EXPECT_EQ(a.legit_hits, b.legit_hits);
  EXPECT_EQ(a.attacker.request_bytes, b.attacker.request_bytes);
  EXPECT_EQ(a.attacker.response_bytes, b.attacker.response_bytes);
  EXPECT_EQ(a.origin_response_bytes, b.origin_response_bytes);
  EXPECT_EQ(a.attack_origin_response_bytes, b.attack_origin_response_bytes);
  EXPECT_EQ(a.cache_bytes_peak, b.cache_bytes_peak);
  EXPECT_EQ(a.cache_bytes_end, b.cache_bytes_end);
  EXPECT_EQ(a.cache_evictions, b.cache_evictions);
  EXPECT_EQ(a.cache_admission_rejects, b.cache_admission_rejects);
}

TEST(CachePollutionCampaignTest, ReplaysByteIdentically) {
  const core::CachePollutionConfig config = small_pollution();
  expect_same_pollution(core::run_cache_pollution_campaign(config),
                        core::run_cache_pollution_campaign(config));
}

TEST(CachePollutionCampaignTest, ShardedResultIndependentOfThreadCount) {
  core::CachePollutionConfig config = small_pollution();
  config.shards = 2;
  config.threads = 1;
  const core::CachePollutionResult serial_threads =
      core::run_cache_pollution_campaign(config);
  config.threads = 4;
  const core::CachePollutionResult parallel_threads =
      core::run_cache_pollution_campaign(config);
  expect_same_pollution(serial_threads, parallel_threads);
}

TEST(CachePollutionCampaignTest, MixesBothWorkloadsAndRespectsBudget) {
  const core::CachePollutionConfig config = small_pollution();
  const core::CachePollutionResult r =
      core::run_cache_pollution_campaign(config);
  EXPECT_EQ(r.legit_requests + r.attack_requests, config.requests);
  EXPECT_GT(r.legit_requests, 0u);
  EXPECT_GT(r.attack_requests, 0u);
  EXPECT_LE(r.cache_bytes_peak, config.cache.max_bytes);
  EXPECT_GT(r.cache_evictions, 0u);
  // Every 1-byte attack range pulls the full entity upstream (Deletion
  // policy): amplification well above 1.
  EXPECT_GT(r.attack_amplification, 10.0);
}

TEST(CachePollutionCampaignTest, ShardedMergesMetricsInShardOrder) {
  core::CachePollutionConfig config = small_pollution();
  config.shards = 2;
  config.threads = 2;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const core::CachePollutionResult r =
      core::run_cache_pollution_campaign(config);
  EXPECT_EQ(
      metrics.counter("cdn_cache_evictions_total{vendor=\"Akamai\"}").value(),
      r.cache_evictions);
  EXPECT_GT(metrics.counter("cdn_requests_total{vendor=\"Akamai\"}").value(),
            0u);
}

}  // namespace
}  // namespace rangeamp
