// Cross-vendor property sweeps: invariants every one of the 13 profiles must
// satisfy, parameterized over the whole vendor registry (TEST_P).
#include <gtest/gtest.h>

#include "core/rangeamp.h"

namespace rangeamp {
namespace {

using cdn::Vendor;

class VendorInvariants : public ::testing::TestWithParam<Vendor> {
 protected:
  static core::SingleCdnTestbed make_bed(std::uint64_t size) {
    core::SingleCdnTestbed bed(cdn::make_profile(GetParam()));
    bed.origin().resources().add_synthetic("/inv.bin", size);
    return bed;
  }
};

TEST_P(VendorInvariants, RangeSemanticsMatchOriginBytesForManyRanges) {
  auto bed = make_bed(96 * 1024);
  const std::string entity =
      bed.origin().resources().find("/inv.bin")->entity.materialize();
  http::Rng rng{static_cast<std::uint64_t>(GetParam()) + 1};
  for (int i = 0; i < 24; ++i) {
    const auto generated =
        http::generate_range(rng, i % 2 ? http::RangeShape::kSingleClosed
                                        : http::RangeShape::kSingleSuffix,
                             96 * 1024);
    http::Request request =
        http::make_get("site.example", "/inv.bin?cb=" + std::to_string(i));
    request.headers.add("Range", generated.set.to_string());
    const http::Response response = bed.send(request);
    const auto resolved = http::resolve_all(generated.set, 96 * 1024);
    ASSERT_EQ(resolved.size(), 1u);
    ASSERT_EQ(response.status, 206)
        << cdn::vendor_name(GetParam()) << " " << generated.set.to_string();
    EXPECT_EQ(response.body.materialize(),
              entity.substr(static_cast<std::size_t>(resolved[0].first),
                            static_cast<std::size_t>(resolved[0].length())));
  }
}

TEST_P(VendorInvariants, SecondIdenticalRequestNeverCostsMoreOrigin) {
  // Whatever the vendor's policy, repeating the exact same request must not
  // increase the per-request origin cost (caches only help).
  auto bed = make_bed(512 * 1024);
  http::Request request = http::make_get("site.example", "/inv.bin?cb=0");
  request.headers.add("Range", "bytes=0-99");
  bed.send(request);
  bed.send(request);
  const auto after_two = bed.origin_traffic().response_bytes();
  bed.send(request);
  const auto third_cost = bed.origin_traffic().response_bytes() - after_two;
  EXPECT_LE(third_cost, after_two) << cdn::vendor_name(GetParam());
}

TEST_P(VendorInvariants, CachedEntityServesByteIdenticalContent) {
  auto bed = make_bed(256 * 1024);
  http::Request plain = http::make_get("site.example", "/inv.bin");
  const http::Response first = bed.send(plain);
  const http::Response second = bed.send(plain);
  ASSERT_EQ(first.status, 200) << cdn::vendor_name(GetParam());
  EXPECT_EQ(first.body, second.body);
}

TEST_P(VendorInvariants, UnsatisfiableRangeNeverLeaksEntityToClient) {
  auto bed = make_bed(1024);
  http::Request request = http::make_get("site.example", "/inv.bin?cb=9");
  request.headers.add("Range", "bytes=4096-8192");
  const http::Response response = bed.send(request);
  EXPECT_EQ(response.status, 416) << cdn::vendor_name(GetParam());
  EXPECT_EQ(response.body.size(), 0u);
}

TEST_P(VendorInvariants, HeadersAdvertiseRangeSupport) {
  // Section III-B: all 13 CDNs answer range requests with Accept-Ranges:
  // bytes even when the origin does not support ranges.
  origin::OriginConfig config;
  config.supports_ranges = false;
  core::SingleCdnTestbed bed(cdn::make_profile(GetParam()), config);
  bed.origin().resources().add_synthetic("/inv.bin", 4096);
  http::Request request = http::make_get("site.example", "/inv.bin");
  request.headers.add("Range", "bytes=0-99");
  const http::Response response = bed.send(request);
  EXPECT_EQ(response.headers.get("Accept-Ranges"), "bytes")
      << cdn::vendor_name(GetParam());
  // And the CDN itself satisfies the range from the 200 entity (RFC 2616's
  // proxy rule) -- the exact behaviour section III-B measures.
  EXPECT_EQ(response.status, 206) << cdn::vendor_name(GetParam());
}

TEST_P(VendorInvariants, TrafficRecordersOnlyGrow) {
  auto bed = make_bed(4096);
  std::uint64_t last_client = 0, last_origin = 0;
  for (int i = 0; i < 5; ++i) {
    http::Request request =
        http::make_get("site.example", "/inv.bin?cb=" + std::to_string(i));
    bed.send(request);
    EXPECT_GT(bed.client_traffic().response_bytes(), last_client);
    EXPECT_GE(bed.origin_traffic().response_bytes(), last_origin);
    last_client = bed.client_traffic().response_bytes();
    last_origin = bed.origin_traffic().response_bytes();
  }
}

TEST_P(VendorInvariants, MitigatedProfileStillServesCorrectly) {
  for (const auto mitigation :
       {core::Mitigation::kLaziness, core::Mitigation::kBoundedExpansion8K,
        core::Mitigation::kCoalesceMulti}) {
    core::SingleCdnTestbed bed(
        core::apply_mitigation(cdn::make_profile(GetParam()), mitigation));
    bed.origin().resources().add_synthetic("/inv.bin", 64 * 1024);
    http::Request request = http::make_get("site.example", "/inv.bin");
    request.headers.add("Range", "bytes=1000-1999");
    const http::Response response = bed.send(request);
    ASSERT_EQ(response.status, 206)
        << cdn::vendor_name(GetParam()) << " " << core::mitigation_name(mitigation);
    EXPECT_EQ(response.body.size(), 1000u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVendors, VendorInvariants, ::testing::ValuesIn(cdn::kAllVendors),
    [](const ::testing::TestParamInfo<Vendor>& info) {
      std::string name{cdn::vendor_name(info.param)};
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rangeamp
