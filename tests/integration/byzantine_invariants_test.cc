// Invariant suite for the Byzantine-origin hardening layer: fixed-seed
// chaos cascades against MaliciousOrigin, asserting the same global
// invariants the bench_byzantine_origin harness checks --
//
//   I1  byte conservation per hop (tracer wire-span sums == recorder totals),
//   I2  no validator-flagged response ever enters a cache (strict/lenient),
//   I3  strict-mode client bytes bounded by the client's own range selections
//       plus a fixed per-response header allowance,
//
// plus targeted end-to-end checks for individual malicious behaviours
// (cache poisoning in off mode, its suppression under conformance, budget
// overflows answered 502).
#include <gtest/gtest.h>

#include <string>

#include "core/rangeamp.h"
#include "obs/trace.h"
#include "origin/malicious_origin.h"

namespace rangeamp {
namespace {

constexpr std::uint64_t kFileSize = 256 * 1024;
constexpr std::string_view kPath = "/asset.bin";
constexpr std::uint64_t kSeed = 0xFEED5EED;
constexpr std::uint64_t kHeaderAllowance = 8 * 1024;

cdn::ConformancePolicy conformance(cdn::ConformanceMode mode) {
  cdn::ConformancePolicy cp;
  cp.mode = mode;
  cp.max_body_bytes = 1ull * 1024 * 1024;
  cp.max_multipart_assembly_bytes = 1ull * 1024 * 1024;
  return cp;
}

origin::MaliciousOriginConfig malicious_config(std::uint64_t seed) {
  origin::MaliciousOriginConfig cfg;
  cfg.seed = seed;
  cfg.chunked_stream_bytes = 2ull * 1024 * 1024;  // over the body budget
  return cfg;
}

int poisoned_entries(const cdn::Cache& cache, const std::string& honest) {
  int poisoned = 0;
  cache.for_each([&](const std::string&, const cdn::CachedEntity& entry) {
    if (entry.content_type == "#negative") return;
    if (entry.entity.empty() && !entry.vary.empty()) return;
    if (entry.entity.size() != honest.size() ||
        entry.entity.materialize() != honest) {
      ++poisoned;
    }
  });
  return poisoned;
}

struct ChaosOutcome {
  std::uint64_t requested_bytes = 0;
  std::uint64_t client_response_bytes = 0;
  int requests = 0;
  int poisoned = 0;
  cdn::ValidationStats stats;
  bool bytes_conserved = true;
};

// Single-CDN chaos run: Akamai profile (Deletion) over MaliciousOrigin.
ChaosOutcome run_chaos(cdn::ConformanceMode mode) {
  origin::MaliciousOrigin mal(malicious_config(kSeed));
  mal.resources().add_synthetic(std::string{kPath}, kFileSize);

  cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
  profile.traits.conformance = conformance(mode);
  cdn::CdnNode cdn(std::move(profile), mal, "cdn-origin");

  net::TrafficRecorder client_traffic("client-cdn");
  net::Wire client_wire(client_traffic, cdn);

  obs::Tracer tracer;
  client_wire.set_tracer(&tracer);
  cdn.set_tracer(&tracer);

  http::Rng rng(kSeed ^ 0xABCD);
  ChaosOutcome out;
  out.requests = 32;
  for (int i = 0; i < out.requests; ++i) {
    auto request = http::make_get(std::string{core::kDefaultHost},
                                  std::string{kPath} + "?cb=" + std::to_string(i));
    const std::uint64_t first = rng.below(kFileSize);
    const std::uint64_t last =
        std::min<std::uint64_t>(kFileSize - 1, first + rng.below(512));
    request.headers.add("Range", "bytes=" + std::to_string(first) + "-" +
                                     std::to_string(last));
    out.requested_bytes += last - first + 1;
    client_wire.transfer(request);
  }

  for (const net::TrafficRecorder* rec :
       {&client_traffic, &cdn.upstream_traffic()}) {
    const net::TrafficTotals traced = tracer.segment_totals(rec->segment());
    if (traced.request_bytes != rec->totals().request_bytes ||
        traced.response_bytes != rec->totals().response_bytes) {
      out.bytes_conserved = false;
    }
  }
  out.client_response_bytes = client_traffic.response_bytes();
  out.stats = cdn.validation_stats();
  const std::string honest = mal.resources().find(kPath)->entity.materialize();
  out.poisoned = poisoned_entries(cdn.cache(), honest);
  return out;
}

TEST(ByzantineInvariants, BytesConservedInEveryMode) {
  for (const auto mode :
       {cdn::ConformanceMode::kOff, cdn::ConformanceMode::kLenient,
        cdn::ConformanceMode::kStrict}) {
    EXPECT_TRUE(run_chaos(mode).bytes_conserved)
        << cdn::conformance_mode_name(mode);
  }
}

TEST(ByzantineInvariants, OffModePermitsCachePoisoning) {
  // The baseline the hardening exists for: at least one poisoned entity
  // survives in cache when validation is off.
  const ChaosOutcome off = run_chaos(cdn::ConformanceMode::kOff);
  EXPECT_GT(off.poisoned, 0);
  EXPECT_EQ(off.stats.upstream_responses_validated, 0u);
}

TEST(ByzantineInvariants, ConformanceEliminatesCachePoisoning) {
  for (const auto mode :
       {cdn::ConformanceMode::kLenient, cdn::ConformanceMode::kStrict}) {
    const ChaosOutcome hardened = run_chaos(mode);
    EXPECT_EQ(hardened.poisoned, 0) << cdn::conformance_mode_name(mode);
    EXPECT_GT(hardened.stats.violations, 0u);
  }
}

TEST(ByzantineInvariants, StrictModeBoundsClientBytes) {
  const ChaosOutcome strict = run_chaos(cdn::ConformanceMode::kStrict);
  const std::uint64_t bound =
      strict.requested_bytes +
      static_cast<std::uint64_t>(strict.requests) * kHeaderAllowance;
  EXPECT_LE(strict.client_response_bytes, bound);
  EXPECT_EQ(strict.stats.passed_uncached, 0u);  // strict never passes a lie
}

TEST(ByzantineInvariants, OffModeIsByteIdenticalToSeedBehaviour) {
  // An honest origin behind a conformance-off node must produce exactly the
  // bytes a pre-hardening node produced: the validator must not run at all.
  auto run_bytes = [](cdn::ConformanceMode mode) {
    origin::MaliciousOriginConfig cfg = malicious_config(kSeed);
    cfg.rotation = {origin::MaliciousBehavior::kHonest};
    origin::MaliciousOrigin mal(cfg);
    mal.resources().add_synthetic(std::string{kPath}, kFileSize);
    cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
    profile.traits.conformance = conformance(mode);
    cdn::CdnNode cdn(std::move(profile), mal, "cdn-origin");
    net::TrafficRecorder client_traffic("client-cdn");
    net::Wire client_wire(client_traffic, cdn);
    auto request =
        http::make_get(std::string{core::kDefaultHost}, std::string{kPath});
    request.headers.add("Range", "bytes=0-0");
    client_wire.transfer(request);
    return client_traffic.response_bytes();
  };
  EXPECT_EQ(run_bytes(cdn::ConformanceMode::kOff),
            run_bytes(cdn::ConformanceMode::kStrict));
}

// ---------------------------------------------------------------------------
// Targeted behaviour-level checks.
// ---------------------------------------------------------------------------

struct PinnedBed {
  origin::MaliciousOrigin mal;
  cdn::CdnNode cdn;
  net::TrafficRecorder client_traffic{"client-cdn"};
  net::Wire client_wire;

  PinnedBed(origin::MaliciousBehavior behavior, cdn::ConformanceMode mode)
      : mal(malicious_config(kSeed)),
        cdn(make_node_profile(mode), mal, "cdn-origin"),
        client_wire(client_traffic, cdn) {
    mal.resources().add_synthetic(std::string{kPath}, kFileSize);
    mal.set_behavior(behavior);
  }

  static cdn::VendorProfile make_node_profile(cdn::ConformanceMode mode) {
    cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
    profile.traits.conformance = conformance(mode);
    return profile;
  }

  http::Response get(const std::string& target) {
    auto request = http::make_get(std::string{core::kDefaultHost}, target);
    request.headers.add("Range", "bytes=0-0");
    return client_wire.transfer(request);
  }
};

TEST(ByzantineBehaviors, DuplicateContentLengthPoisonsOffModeCache) {
  PinnedBed bed(origin::MaliciousBehavior::kDuplicateContentLength,
                cdn::ConformanceMode::kOff);
  bed.get(std::string{kPath});
  const std::string honest =
      bed.mal.resources().find(kPath)->entity.materialize();
  // The garbage-tail entity slipped past the legacy Content-Length guard.
  EXPECT_EQ(poisoned_entries(bed.cdn.cache(), honest), 1);
}

TEST(ByzantineBehaviors, StrictModeRejectsDuplicateContentLength) {
  PinnedBed bed(origin::MaliciousBehavior::kDuplicateContentLength,
                cdn::ConformanceMode::kStrict);
  const auto response = bed.get(std::string{kPath});
  EXPECT_EQ(response.status, http::kBadGateway);
  EXPECT_EQ(bed.cdn.cache().size(), 0u);
  EXPECT_EQ(bed.cdn.validation_stats().rejected_502, 1u);
}

TEST(ByzantineBehaviors, LenientModeNeverCachesSoftLiars) {
  // status-range-mismatch is soft: lenient relays it but must not cache.
  PinnedBed bed(origin::MaliciousBehavior::kStatusRangeMismatch,
                cdn::ConformanceMode::kLenient);
  bed.get(std::string{kPath});
  EXPECT_EQ(bed.cdn.cache().size(), 0u);
  EXPECT_EQ(bed.cdn.validation_stats().passed_uncached, 1u);
}

TEST(ByzantineBehaviors, BodyBudgetOverflowIsAnswered502) {
  PinnedBed bed(origin::MaliciousBehavior::kUnboundedChunked,
                cdn::ConformanceMode::kStrict);
  const auto response = bed.get(std::string{kPath});
  EXPECT_EQ(response.status, http::kBadGateway);
  EXPECT_GE(bed.cdn.validation_stats().budget_overflows, 1u);
}

TEST(ByzantineBehaviors, HonestTrafficSurvivesStrictMode) {
  PinnedBed bed(origin::MaliciousBehavior::kHonest,
                cdn::ConformanceMode::kStrict);
  const auto response = bed.get(std::string{kPath});
  EXPECT_EQ(response.status, http::kPartialContent);
  EXPECT_EQ(bed.cdn.validation_stats().violations, 0u);
  EXPECT_EQ(bed.cdn.cache().size(), 1u);
}

TEST(ByzantineBehaviors, ServedLogRecordsRotation) {
  origin::MaliciousOrigin mal(malicious_config(kSeed));
  mal.resources().add_synthetic(std::string{kPath}, kFileSize);
  for (int i = 0; i < 8; ++i) {
    mal.handle(http::make_get(std::string{core::kDefaultHost},
                              std::string{kPath}));
  }
  EXPECT_EQ(mal.served_log().size(), 8u);
}

}  // namespace
}  // namespace rangeamp
