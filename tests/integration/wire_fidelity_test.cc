// Integration: wire fidelity across whole topologies.
//
// The byte counts every experiment reports are meaningful only if the
// serialized messages are real HTTP -- i.e. what a Wire counts must parse
// back into exactly the message the peer handles.  These tests materialize
// messages at every hop of SBR/OBR topologies and round-trip them through
// the parser, multipart reassembly included.
#include <gtest/gtest.h>

#include "core/rangeamp.h"

namespace rangeamp {
namespace {

using cdn::Vendor;

TEST(WireFidelity, SbrExchangeSurvivesSerializationAtBothHops) {
  core::SingleCdnTestbed bed(cdn::make_profile(Vendor::kAkamai));
  bed.origin().resources().add_synthetic("/f.bin", 64 * 1024);

  http::Request request = http::make_get("site.example", "/f.bin?cb=1");
  request.headers.add("Range", "bytes=100-163");
  const http::Response response = bed.send(request);

  // Client-side: the response materializes and parses back identically.
  const std::string wire_bytes = http::to_bytes(response);
  EXPECT_EQ(wire_bytes.size(), http::serialized_size(response));
  const auto reparsed = http::parse_response(wire_bytes);
  ASSERT_TRUE(reparsed);
  EXPECT_EQ(reparsed->status, 206);
  EXPECT_EQ(reparsed->body, response.body);
  EXPECT_EQ(reparsed->headers.get("Content-Range"), "bytes 100-163/65536");
  // Content-Length is truthful.
  EXPECT_EQ(reparsed->headers.get("Content-Length"),
            std::to_string(response.body.size()));

  // Origin-side: the forwarded request parses and matches what the origin
  // logged.
  ASSERT_EQ(bed.origin().request_log().size(), 1u);
  const http::Request& forwarded = bed.origin().request_log()[0];
  const auto forwarded_reparsed = http::parse_request(http::to_bytes(forwarded));
  ASSERT_TRUE(forwarded_reparsed);
  EXPECT_EQ(forwarded_reparsed->target, forwarded.target);
  EXPECT_EQ(forwarded_reparsed->headers.has("Range"), forwarded.headers.has("Range"));
}

TEST(WireFidelity, ObrMultipartBodyReassemblesAtTheAttacker) {
  cdn::ProfileOptions bypass;
  bypass.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  core::CascadeTestbed bed(cdn::make_profile(Vendor::kCloudflare, bypass),
                           cdn::make_profile(Vendor::kAkamai),
                           core::obr_origin_config());
  bed.origin().resources().add_synthetic("/t.bin", 1024);

  http::Request request = http::make_get("attack.example", "/t.bin");
  request.headers.add("Range", core::obr_range_case(Vendor::kCloudflare, 9)
                                   .to_string());
  const http::Response response = bed.send(request);  // no abort: full body
  ASSERT_EQ(response.status, 206);

  const auto ct = response.headers.get("Content-Type");
  ASSERT_TRUE(ct);
  const auto boundary = http::boundary_from_content_type(*ct);
  ASSERT_TRUE(boundary);
  const auto parts =
      http::parse_multipart_byteranges(response.body.materialize(), *boundary);
  ASSERT_TRUE(parts);
  ASSERT_EQ(parts->size(), 9u);
  const std::string entity =
      bed.origin().resources().find("/t.bin")->entity.materialize();
  for (const auto& part : *parts) {
    EXPECT_EQ(part.range, (http::ResolvedRange{0, 1023}));
    EXPECT_EQ(part.resource_size, 1024u);
    EXPECT_EQ(part.payload.materialize(), entity);
  }
}

TEST(WireFidelity, TrafficConservationAcrossCascade) {
  // Response bytes shrink monotonically toward the client in SBR (each hop
  // strips the amplification), and the recorded sizes equal the exactly
  // serialized messages at each segment.
  core::SingleCdnTestbed bed(cdn::make_profile(Vendor::kGcoreLabs));
  bed.origin().resources().add_synthetic("/f.bin", 1u << 20);
  http::Request request = http::make_get("site.example", "/f.bin?cb=2");
  request.headers.add("Range", "bytes=0-0");
  const http::Response response = bed.send(request);
  EXPECT_EQ(bed.client_traffic().response_bytes(), http::serialized_size(response));
  EXPECT_GT(bed.origin_traffic().response_bytes(),
            bed.client_traffic().response_bytes() * 1000);
}

TEST(WireFidelity, H2AndH11CarryIdenticalSemantics) {
  // The same request through an h2-framed and an h1.1 client segment must
  // produce byte-identical response bodies and equal origin traffic.
  const auto run = [](auto& bed) {
    http::Request request = http::make_get("site.example", "/f.bin?cb=3");
    request.headers.add("Range", "bytes=5000-5999");
    return bed.send(request);
  };
  core::SingleCdnTestbed h1(cdn::make_profile(Vendor::kCloudflare));
  h1.origin().resources().add_synthetic("/f.bin", 64 * 1024);
  core::SingleCdnTestbedH2 h2(cdn::make_profile(Vendor::kCloudflare));
  h2.origin().resources().add_synthetic("/f.bin", 64 * 1024);

  const auto r1 = run(h1);
  const auto r2 = run(h2);
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_EQ(r1.body, r2.body);
  EXPECT_EQ(h1.origin_traffic().response_bytes(),
            h2.origin_traffic().response_bytes());
}

TEST(WireFidelity, EveryVendorEmitsParseableResponses) {
  // Fuzz-lite: a mixed bag of range shapes against every vendor; every
  // client-facing response must be well-formed HTTP with a truthful
  // Content-Length, whatever the vendor decided to do.
  const auto corpus = http::generate_corpus(77, 35, 256 * 1024);
  for (const Vendor vendor : cdn::kAllVendors) {
    core::SingleCdnTestbed bed(cdn::make_profile(vendor));
    bed.origin().resources().add_synthetic("/f.bin", 256 * 1024);
    std::uint64_t serial = 0;
    for (const auto& generated : corpus) {
      http::Request request = http::make_get(
          "site.example", "/f.bin?cb=" + std::to_string(++serial));
      request.headers.add("Range", generated.set.to_string());
      const http::Response response = bed.send(request);
      ASSERT_TRUE(response.status == 200 || response.status == 206 ||
                  response.status == 416)
          << cdn::vendor_name(vendor) << " " << generated.set.to_string()
          << " -> " << response.status;
      const auto reparsed = http::parse_response(http::to_bytes(response));
      ASSERT_TRUE(reparsed) << cdn::vendor_name(vendor);
      EXPECT_EQ(reparsed->body.size(), response.body.size());
      if (const auto cl = response.headers.get("Content-Length")) {
        EXPECT_EQ(*cl, std::to_string(response.body.size()))
            << cdn::vendor_name(vendor) << " " << generated.set.to_string();
      }
    }
  }
}

TEST(WireFidelity, MalformedClientHeadersNeverCrashTheChain) {
  // Hostile inputs: malformed Range values must be ignored end-to-end, not
  // amplified and not crash anything.
  core::SingleCdnTestbed bed(cdn::make_profile(Vendor::kAkamai));
  bed.origin().resources().add_synthetic("/f.bin", 8192);
  int serial = 0;
  for (const char* evil :
       {"bytes=9-2", "bytes=", "bytes=-", "bytes=a-b", "rocks=1-2",
        "bytes=1-2-3", "bytes=,,,,", "BYTES=--1", "bytes=0x10-0x20",
        "bytes=18446744073709551616-"}) {
    http::Request request = http::make_get(
        "site.example", "/f.bin?cb=" + std::to_string(++serial));
    request.headers.add("Range", evil);
    const http::Response response = bed.send(request);
    EXPECT_EQ(response.status, 200) << evil;  // header ignored
    EXPECT_EQ(response.body.size(), 8192u) << evil;
  }
}

}  // namespace
}  // namespace rangeamp
