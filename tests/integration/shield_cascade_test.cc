// Multi-hop origin-shielding: CDN-Loop accumulation across a cascade,
// per-segment attribution, and loop/hop-cap termination in topologies the
// single-node tests cannot express.
#include <gtest/gtest.h>

#include "cdn/node.h"
#include "cdn/profiles.h"
#include "core/obr.h"
#include "http/generator.h"
#include "net/handler.h"
#include "net/wire.h"

namespace rangeamp {
namespace {

class CaptureOrigin final : public net::HttpHandler {
 public:
  http::Response handle(const http::Request& request) override {
    requests_.push_back(request);
    http::Response resp;
    resp.status = 200;
    resp.body = http::Body::literal("0123456789abcdef");
    resp.headers.add("Content-Length", std::to_string(resp.body.size()));
    resp.headers.add("Content-Type", "application/octet-stream");
    resp.headers.add("ETag", "\"cap-1\"");
    return resp;
  }

  const std::vector<http::Request>& requests() const noexcept {
    return requests_;
  }

 private:
  std::vector<http::Request> requests_;
};

cdn::VendorProfile hop_profile(cdn::Vendor vendor, const std::string& token,
                               std::size_t max_hops = 8) {
  cdn::ProfileOptions options;
  if (vendor == cdn::Vendor::kCloudflare) {
    options.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  }
  cdn::VendorProfile profile = cdn::make_profile(vendor, options);
  profile.traits.shield.loop.enabled = true;
  profile.traits.shield.loop.max_hops = max_hops;
  if (!token.empty()) profile.traits.shield.loop.token = token;
  return profile;
}

http::Request cascade_get(const std::string& path) {
  auto request = http::make_get(std::string{core::kObrHost}, path);
  request.headers.add("Range", "bytes=0-0");
  return request;
}

TEST(ShieldCascade, ThreeHopChainAccumulatesCdnLoopPerSegment) {
  // client -> FCDN (Cloudflare bypass) -> BCDN (Akamai) -> origin: the
  // origin must see the full forwarding history, one CDN-Loop entry per hop
  // in forwarding order, and each inter-CDN segment carries exactly one
  // exchange per attack request.
  CaptureOrigin origin;
  cdn::CdnNode bcdn(hop_profile(cdn::Vendor::kAkamai, ""), origin,
                    "bcdn-origin");
  cdn::CdnNode fcdn(hop_profile(cdn::Vendor::kCloudflare, ""), bcdn,
                    "fcdn-bcdn");
  net::TrafficRecorder client_traffic("client-fcdn");
  net::Wire client_wire(client_traffic, fcdn);

  const auto response = client_wire.transfer(cascade_get("/leak.bin?1"));
  EXPECT_LT(response.status, 500);
  ASSERT_EQ(origin.requests().size(), 1u);
  const auto chain = origin.requests().front().headers.get_all("CDN-Loop");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], "cloudflare");
  EXPECT_EQ(chain[1], "akamai");

  // Per-segment attribution: one exchange each, no amplification of the
  // forwarding count by the defense.
  EXPECT_EQ(fcdn.upstream_traffic().exchange_count(), 1u);
  EXPECT_EQ(bcdn.upstream_traffic().exchange_count(), 1u);
  EXPECT_EQ(client_traffic.exchange_count(), 1u);
  EXPECT_EQ(fcdn.shield_stats().loop_rejects_total(), 0u);
  EXPECT_EQ(bcdn.shield_stats().loop_rejects_total(), 0u);
}

TEST(ShieldCascade, FcdnBcdnCycleTerminatesWith508) {
  // The OBR cascade bent into a loop: the BCDN's "origin" is the FCDN
  // itself.  Undefended this recurses without bound; with CDN-Loop enabled
  // the FCDN recognises its own token on re-entry and answers 508, so each
  // attack request costs exactly one forward per inter-CDN segment.
  net::LateBoundHandler loopback;
  cdn::CdnNode bcdn(hop_profile(cdn::Vendor::kAkamai, ""), loopback,
                    "bcdn-fcdn");
  cdn::CdnNode fcdn(hop_profile(cdn::Vendor::kCloudflare, ""), bcdn,
                    "fcdn-bcdn");
  loopback.bind(&fcdn);
  net::TrafficRecorder client_traffic("client-fcdn");
  net::Wire client_wire(client_traffic, fcdn);

  for (int i = 0; i < 3; ++i) {
    const auto response =
        client_wire.transfer(cascade_get("/leak.bin?cb=" + std::to_string(i)));
    EXPECT_GE(response.status, 500) << i;
  }
  EXPECT_EQ(fcdn.upstream_traffic().exchange_count(), 3u);
  EXPECT_EQ(bcdn.upstream_traffic().exchange_count(), 3u);
  EXPECT_EQ(fcdn.shield_stats().loop_rejected, 3u);
  EXPECT_EQ(bcdn.shield_stats().loop_rejected, 0u);
}

TEST(ShieldCascade, HopCapBoundsChainsOfDistinctNodes) {
  // Four distinct surrogates chained in front of the origin, hop cap 3 on
  // every node: the chain dies at the node that already sees three entries,
  // before any origin byte moves.  Distinct tokens keep self-recurrence out
  // of the picture -- only the cap terminates this topology.
  CaptureOrigin origin;
  cdn::CdnNode hop4(hop_profile(cdn::Vendor::kAkamai, "hop-4", 3), origin,
                    "hop4-origin");
  cdn::CdnNode hop3(hop_profile(cdn::Vendor::kAkamai, "hop-3", 3), hop4,
                    "hop3-hop4");
  cdn::CdnNode hop2(hop_profile(cdn::Vendor::kAkamai, "hop-2", 3), hop3,
                    "hop2-hop3");
  cdn::CdnNode hop1(hop_profile(cdn::Vendor::kAkamai, "hop-1", 3), hop2,
                    "hop1-hop2");
  net::TrafficRecorder client_traffic("client-hop1");
  net::Wire client_wire(client_traffic, hop1);

  const auto response = client_wire.transfer(cascade_get("/leak.bin?1"));
  EXPECT_GE(response.status, 500);
  EXPECT_TRUE(origin.requests().empty());
  EXPECT_EQ(hop1.upstream_traffic().exchange_count(), 1u);
  EXPECT_EQ(hop2.upstream_traffic().exchange_count(), 1u);
  EXPECT_EQ(hop3.upstream_traffic().exchange_count(), 1u);
  // hop4 saw three entries (hop-1, hop-2, hop-3) at ingress and refused.
  EXPECT_EQ(hop4.upstream_traffic().exchange_count(), 0u);
  EXPECT_EQ(hop4.shield_stats().hop_cap_rejected, 1u);
}

TEST(ShieldCascade, RetriedUpstream5xxCountsOneBreakerFailure) {
  // Regression: the breaker is fed ONE verdict per fetch, not one per
  // attempt.  Per-attempt feeding coupled the trip threshold to the retry
  // budget -- a single request with max_retries=2 contributed three
  // failures and tripped a 3-failure breaker on its own.
  cdn::VendorProfile profile = cdn::make_profile(cdn::Vendor::kAkamai);
  profile.traits.resilience.max_retries = 2;
  profile.traits.resilience.retry_on_5xx = true;
  profile.traits.shield.breaker.enabled = true;
  profile.traits.shield.breaker.consecutive_failures_trip = 3;
  CaptureOrigin origin;
  cdn::CdnNode node(std::move(profile), origin, "cdn-origin");
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::status_code(503));
  node.set_upstream_fault_injector(&faults);

  // Request 1: three attempts (1 + 2 retries), but a single breaker failure.
  node.handle(cascade_get("/leak.bin?1"));
  EXPECT_EQ(faults.transfers_seen(), 3u);
  EXPECT_EQ(node.breaker().consecutive_failures(), 1);
  EXPECT_EQ(node.breaker().state(), cdn::UpstreamBreaker::State::kClosed);

  // Two more failed fetches reach the trip threshold; only then does the
  // breaker open and start shedding.
  node.handle(cascade_get("/leak.bin?2"));
  EXPECT_EQ(node.breaker().state(), cdn::UpstreamBreaker::State::kClosed);
  node.handle(cascade_get("/leak.bin?3"));
  EXPECT_EQ(node.breaker().state(), cdn::UpstreamBreaker::State::kOpen);
  EXPECT_EQ(faults.transfers_seen(), 9u);

  const auto shed = node.handle(cascade_get("/leak.bin?4"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(faults.transfers_seen(), 9u);  // shed before any wire transfer
  EXPECT_EQ(node.shield_stats().shed_breaker_open, 1u);
}

}  // namespace
}  // namespace rangeamp
