// End-to-end observability: one tracer across a full OBR cascade must yield
// a causally-ordered span tree whose per-segment wire byte sums exactly
// reproduce the TrafficRecorder totals, and the shield state machines
// (fill lock, circuit breaker) must annotate the spans they decide on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "cdn/profiles.h"
#include "core/obr.h"
#include "core/testbed.h"
#include "http/generator.h"
#include "net/fault.h"
#include "obs/trace.h"

namespace rangeamp {
namespace {

cdn::VendorProfile profile_for(cdn::Vendor vendor) {
  cdn::ProfileOptions options;
  if (vendor == cdn::Vendor::kCloudflare) {
    options.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  }
  return cdn::make_profile(vendor, options);
}

const obs::Span* find_span(const obs::Tracer& tracer, std::uint64_t trace,
                           const std::string& name,
                           net::SegmentId segment = net::SegmentId::kNone) {
  for (const obs::Span& span : tracer.spans()) {
    if (span.trace == trace && span.name == name && span.segment == segment) {
      return &span;
    }
  }
  return nullptr;
}

bool has_note(const obs::Span& span, const std::string& key,
              const std::string& value) {
  return std::any_of(span.notes.begin(), span.notes.end(),
                     [&](const auto& kv) {
                       return kv.first == key && kv.second == value;
                     });
}

TEST(ObsCascade, ObrSpanTreeMatchesRecorderTotalsPerSegment) {
  // client -> FCDN (Cloudflare bypass) -> BCDN (Akamai) -> origin, the
  // Table V cascade, driven with the FCDN's exploited multi-range case.
  core::CascadeTestbed bed(profile_for(cdn::Vendor::kCloudflare),
                           profile_for(cdn::Vendor::kAkamai),
                           core::obr_origin_config());
  obs::Tracer tracer;
  bed.set_tracer(&tracer);

  const int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) {
    auto request = http::make_get(std::string{core::kObrHost},
                                  std::string{core::kObrPath} +
                                      "?cb=" + std::to_string(i));
    request.headers.add(
        "Range", core::obr_range_case(cdn::Vendor::kCloudflare, 4).to_string());
    bed.send(request);
  }

  // One trace per crafted request; each trace is the full Fig 3 chain:
  //   net.transfer(client-cdn)
  //     -> cdn.handle(FCDN) -> cdn.fetch -> net.transfer(fcdn-bcdn)
  //       -> cdn.handle(BCDN) -> cdn.fetch -> net.transfer(bcdn-origin)
  ASSERT_EQ(tracer.trace_count(), static_cast<std::uint64_t>(kRequests));
  for (std::uint64_t t = 1; t <= tracer.trace_count(); ++t) {
    const auto* client =
        find_span(tracer, t, "net.transfer", net::SegmentId::kClientCdn);
    const auto* inter =
        find_span(tracer, t, "net.transfer", net::SegmentId::kFcdnBcdn);
    const auto* origin =
        find_span(tracer, t, "net.transfer", net::SegmentId::kBcdnOrigin);
    ASSERT_NE(client, nullptr) << "trace " << t;
    ASSERT_NE(inter, nullptr) << "trace " << t;
    ASSERT_NE(origin, nullptr) << "trace " << t;
    EXPECT_EQ(client->parent, 0u);  // the client wire roots the trace

    // Causal chain: each wire hop must be a strict descendant of the
    // previous one, through the cdn.handle/cdn.fetch spans in between.
    const auto is_ancestor = [&](const obs::Span* ancestor,
                                 const obs::Span* node) {
      for (obs::SpanId p = node->parent; p != 0;
           p = tracer.spans()[p - 1].parent) {
        if (p == ancestor->id) return true;
      }
      return false;
    };
    EXPECT_TRUE(is_ancestor(client, inter));
    EXPECT_TRUE(is_ancestor(inter, origin));

    const auto* fcdn_handle = find_span(tracer, t, "cdn.handle");
    ASSERT_NE(fcdn_handle, nullptr);
    EXPECT_EQ(fcdn_handle->parent, client->id);
    EXPECT_TRUE(has_note(*fcdn_handle, "vendor", "Cloudflare"));
    // The FCDN's miss ran a traced fetch under its handle span.
    const auto* fetch = find_span(tracer, t, "cdn.fetch");
    ASSERT_NE(fetch, nullptr);
    EXPECT_TRUE(is_ancestor(fcdn_handle, fetch));
    EXPECT_TRUE(has_note(*fcdn_handle, "cache", "miss"));
  }

  // The tracer-side per-segment byte sums ARE the recorder totals -- the
  // invariant that makes traces trustworthy as an accounting source.
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kClientCdn),
            bed.client_traffic().totals());
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kFcdnBcdn),
            bed.fcdn_bcdn_traffic().totals());
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kBcdnOrigin),
            bed.bcdn_origin_traffic().totals());
  // And the cascade actually amplified: more inter-CDN response bytes than
  // the attacker paid for on the client segment.
  EXPECT_GT(tracer.segment_totals(net::SegmentId::kFcdnBcdn).response_bytes,
            0u);
}

TEST(ObsCascade, FillLockAnnotatesLeaderAndCoalescedHit) {
  // Coalescing on a pass-through (no-store) edge, no clock: every request
  // is a miss and the fill window never expires, so the second same-key
  // miss must replay the leader's response and say so on its span.
  cdn::VendorProfile profile = profile_for(cdn::Vendor::kCloudflare);
  profile.traits.shield.coalescing.enabled = true;
  profile.traits.cache_enabled = false;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/video.mp4", 1u << 20);
  obs::Tracer tracer;
  bed.set_tracer(&tracer);

  auto request = http::make_get(std::string{core::kDefaultHost},
                                "/video.mp4?burst=1");
  request.headers.add("Range", "bytes=0-1023");
  bed.send(request);
  bed.send(request);

  ASSERT_EQ(tracer.trace_count(), 2u);
  const auto* first = find_span(tracer, 1, "cdn.handle");
  const auto* second = find_span(tracer, 2, "cdn.handle");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(has_note(*first, "fill_lock", "leader"));
  EXPECT_TRUE(has_note(*second, "fill_lock", "coalesced-hit"));
  // The coalesced hit never touched the origin: exactly one upstream
  // exchange, and exactly one traced cdn-origin wire span.
  EXPECT_EQ(bed.origin_traffic().exchange_count(), 1u);
  EXPECT_EQ(find_span(tracer, 2, "net.transfer", net::SegmentId::kCdnOrigin),
            nullptr);
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kCdnOrigin),
            bed.origin_traffic().totals());
}

TEST(ObsCascade, BreakerStateAndShedLandOnFetchSpans) {
  // Breaker trips on the first upstream failure; the next fetch is shed
  // before any wire transfer, and both decisions must be readable from the
  // cdn.fetch spans.
  cdn::VendorProfile profile = profile_for(cdn::Vendor::kCloudflare);
  profile.traits.shield.breaker.enabled = true;
  profile.traits.shield.breaker.consecutive_failures_trip = 1;
  profile.traits.resilience.max_retries = 0;
  core::SingleCdnTestbed bed(std::move(profile));
  bed.origin().resources().add_synthetic("/video.mp4", 1u << 20);
  obs::Tracer tracer;
  bed.set_tracer(&tracer);
  net::FaultInjector faults;
  faults.fail_always(net::FaultSpec::reset());
  bed.set_origin_fault_injector(&faults);

  auto miss = [&](int i) {
    auto request = http::make_get(std::string{core::kDefaultHost},
                                  "/video.mp4?cb=" + std::to_string(i));
    request.headers.add("Range", "bytes=0-1023");
    bed.send(request);
  };
  miss(1);  // fails upstream, trips the breaker
  miss(2);  // shed: circuit open

  ASSERT_EQ(tracer.trace_count(), 2u);
  const auto* tripped = find_span(tracer, 1, "cdn.fetch");
  ASSERT_NE(tripped, nullptr);
  EXPECT_TRUE(has_note(*tripped, "breaker", "closed"));
  EXPECT_TRUE(has_note(*tripped, "transfer_error", "connection-reset"));
  EXPECT_TRUE(has_note(*tripped, "attempts", "1"));

  const auto* shed = find_span(tracer, 2, "cdn.fetch");
  ASSERT_NE(shed, nullptr);
  EXPECT_TRUE(has_note(*shed, "breaker", "open"));
  EXPECT_TRUE(has_note(*shed, "shed", "breaker-open"));
  // The shed fetch produced no wire span and no recorded exchange.
  EXPECT_EQ(find_span(tracer, 2, "net.transfer", net::SegmentId::kCdnOrigin),
            nullptr);
  EXPECT_EQ(bed.origin_traffic().exchange_count(), 1u);
  EXPECT_EQ(bed.cdn().shield_stats().shed_breaker_open, 1u);
}

}  // namespace
}  // namespace rangeamp
