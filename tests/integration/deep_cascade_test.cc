// Deeper topologies: three-level cascades and h2 segments composed freely.
//
// Nodes are plain HttpHandlers, so any chain composes.  A three-CDN chain
// with two Laziness forwarders in front of an overlap-honoring tail carries
// the n-part blob across TWO inter-CDN segments -- the damage compounds
// with cascade depth, a corollary of the paper's OBR analysis.
#include <gtest/gtest.h>

#include "core/rangeamp.h"
#include "http2/wire.h"

namespace rangeamp {
namespace {

using cdn::Vendor;

cdn::ProfileOptions bypass_options() {
  cdn::ProfileOptions options;
  options.cloudflare_mode = cdn::ProfileOptions::CloudflareMode::kBypass;
  return options;
}

TEST(DeepCascade, TripleChainCarriesObrBlobOnTwoSegments) {
  origin::OriginServer origin(core::obr_origin_config());
  origin.resources().add_synthetic("/t.bin", 1024);

  cdn::CdnNode tail(cdn::make_profile(Vendor::kAkamai), origin, "tail-origin");
  cdn::CdnNode middle(cdn::make_profile(Vendor::kCdn77), tail, "middle-tail");
  cdn::CdnNode front(cdn::make_profile(Vendor::kCloudflare, bypass_options()),
                     middle, "front-middle");

  net::TrafficRecorder client_rec("client-front");
  net::Wire client_wire(client_rec, front);

  constexpr std::size_t kN = 64;
  auto request = http::make_get("victim.example", "/t.bin");
  request.headers.add("Range",
                      core::obr_range_case(Vendor::kCdn77, kN).to_string());
  net::TransferOptions abort_early;
  abort_early.abort_after_body_bytes = 2048;
  const auto response = client_wire.transfer(request, abort_early);
  EXPECT_EQ(response.status, 206);

  // The n-part blob crossed BOTH inter-CDN segments; the origin served 1 KB.
  EXPECT_GT(middle.upstream_traffic().response_bytes(), kN * 1024u);
  EXPECT_GT(front.upstream_traffic().response_bytes(), kN * 1024u);
  EXPECT_LT(tail.upstream_traffic().response_bytes(), 2048u);
  // The attacker aborted early.
  EXPECT_LT(client_rec.response_bytes(), 8 * 1024u);
}

TEST(DeepCascade, CachesAtAnyLevelShieldEverythingBehindThem) {
  origin::OriginServer origin;
  origin.resources().add_synthetic("/a.bin", 8192);
  cdn::CdnNode tail(cdn::make_profile(Vendor::kAkamai), origin, "tail-origin");
  cdn::CdnNode front(cdn::make_profile(Vendor::kFastly), tail, "front-tail");

  front.handle(http::make_get("h.example", "/a.bin"));
  const auto tail_pull = tail.upstream_traffic().response_bytes();
  ASSERT_GT(tail_pull, 8192u);
  // Second request: the FRONT cache answers; neither segment behind moves.
  const auto front_pull = front.upstream_traffic().response_bytes();
  front.handle(http::make_get("h.example", "/a.bin"));
  EXPECT_EQ(front.upstream_traffic().response_bytes(), front_pull);
  EXPECT_EQ(tail.upstream_traffic().response_bytes(), tail_pull);
}

TEST(DeepCascade, MixedFramingChainWorks) {
  // client ==h2==> front ==h1.1==> tail ==h2==> origin.
  origin::OriginServer origin;
  origin.resources().add_synthetic("/m.bin", 32 * 1024);
  cdn::CdnNode tail(cdn::make_profile(Vendor::kAkamai), origin, "tail-origin",
                    cdn::SegmentFraming::kHttp2);
  cdn::CdnNode front(cdn::make_profile(Vendor::kCdn77), tail, "front-tail");
  net::TrafficRecorder client_rec("client(h2)");
  http2::Http2Wire client_wire(client_rec, front);

  auto request = http::make_get("h.example", "/m.bin");
  request.headers.add("Range", "bytes=1000-1999");
  const auto response = client_wire.transfer(request);
  ASSERT_EQ(response.status, 206);
  EXPECT_EQ(response.body.size(), 1000u);
  EXPECT_EQ(response.body.materialize(),
            origin.resources().find("/m.bin")->entity.materialize().substr(
                1000, 1000));
}

TEST(DeepCascade, Http2WireHandlerComposesAsUpstream) {
  // An Http2WireHandler makes any handler reachable over a counted h2 hop.
  origin::OriginServer origin;
  origin.resources().add_synthetic("/x.bin", 4096);
  net::TrafficRecorder rec("h2-hop");
  http2::Http2WireHandler hop(rec, origin);
  const auto response = hop.handle(http::make_get("h.example", "/x.bin"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), 4096u);
  EXPECT_GT(rec.response_bytes(), 4096u);
  EXPECT_EQ(rec.exchange_count(), 1u);
}

}  // namespace
}  // namespace rangeamp
