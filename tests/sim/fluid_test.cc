#include "sim/fluid.h"

#include <gtest/gtest.h>

namespace rangeamp::sim {
namespace {

TEST(FluidLink, SingleFlowTransfersAtCapacity) {
  FluidLink link(1000.0);  // 1000 B/s
  link.start_flow(500);
  link.step(0.25);
  EXPECT_DOUBLE_EQ(link.total_transferred(), 250.0);
  EXPECT_EQ(link.active_flows(), 1u);
  link.step(0.25);
  EXPECT_DOUBLE_EQ(link.total_transferred(), 500.0);
  const auto done = link.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].completion_time, 0.5, 1e-9);
  EXPECT_EQ(link.active_flows(), 0u);
}

TEST(FluidLink, EqualSharingBetweenConcurrentFlows) {
  FluidLink link(1000.0);
  link.start_flow(1000);
  link.start_flow(1000);
  link.step(1.0);
  // Each got 500 B/s.
  for (const Flow& f : link.flows()) {
    EXPECT_NEAR(f.transferred, 500.0, 1e-6);
  }
}

TEST(FluidLink, CapacityConservation) {
  FluidLink link(1000.0);
  for (int i = 0; i < 7; ++i) link.start_flow(10'000);
  link.step(3.0);
  // No more than capacity * time can cross the link.
  EXPECT_LE(link.total_transferred(), 3000.0 + 1e-6);
  EXPECT_NEAR(link.total_transferred(), 3000.0, 1e-6);
}

TEST(FluidLink, FreedCapacityRedistributedWithinStep) {
  // A tiny flow and a big flow: once the tiny one finishes, the big one gets
  // the whole link for the rest of the step (processor sharing).
  FluidLink link(1000.0);
  link.start_flow(100);   // finishes at t = 0.2 under 500 B/s share
  link.start_flow(10000);
  link.step(1.0);
  const auto done = link.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].completion_time, 0.2, 1e-9);
  // Big flow: 0.2s at 500 B/s + 0.8s at 1000 B/s = 900 B.
  ASSERT_EQ(link.active_flows(), 1u);
  EXPECT_NEAR(link.flows()[0].transferred, 900.0, 1e-6);
}

TEST(FluidLink, CompletionOrderFollowsSize) {
  FluidLink link(300.0);
  link.start_flow(300);
  link.start_flow(600);
  link.start_flow(900);
  link.step(10.0);
  const auto done = link.take_completed();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_LE(done[0].completion_time, done[1].completion_time);
  EXPECT_LE(done[1].completion_time, done[2].completion_time);
  EXPECT_EQ(done[0].total_bytes, 300u);
  EXPECT_EQ(done[2].total_bytes, 900u);
}

TEST(FluidLink, ZeroByteFlowCompletesImmediately) {
  FluidLink link(100.0);
  link.start_flow(0);
  const auto done = link.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].completion_time, 0.0);
}

TEST(FluidLink, IdleLinkAdvancesTimeOnly) {
  FluidLink link(100.0);
  link.step(5.0);
  EXPECT_DOUBLE_EQ(link.now(), 5.0);
  EXPECT_DOUBLE_EQ(link.total_transferred(), 0.0);
}

TEST(FluidLink, FlowIdsAreUnique) {
  FluidLink link(100.0);
  const auto a = link.start_flow(10);
  const auto b = link.start_flow(10);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rangeamp::sim
