#include "sim/des.h"

#include <gtest/gtest.h>

namespace rangeamp::sim {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  while (queue.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, SameInstantIsStable) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(1.0, [&, i] { order.push_back(i); });
  }
  while (queue.run_next()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&] {
    ++fired;
    queue.schedule_in(0.5, [&] { ++fired; });
  });
  queue.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&] { ++fired; });
  queue.schedule(5.0, [&] { ++fired; });
  queue.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, PastSchedulesClampToNow) {
  EventQueue queue;
  queue.schedule(2.0, [] {});
  queue.run_until(3.0);
  double fired_at = -1;
  queue.schedule(1.0, [&] { fired_at = queue.now(); });  // in the past
  queue.run_next();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

// ---------------------------------------------------------------------------
// PsLink: analytic processor sharing
// ---------------------------------------------------------------------------

TEST(PsLink, SingleFlowCompletesAtExactTime) {
  EventQueue queue;
  double completed_at = -1;
  PsLink link(queue, 1000.0, [&](std::uint64_t, std::uint64_t, double) {
    completed_at = queue.now();
  });
  link.start_flow(500);
  queue.run_until(10.0);
  EXPECT_DOUBLE_EQ(completed_at, 0.5);
  EXPECT_DOUBLE_EQ(link.completed_bytes(), 500.0);
}

TEST(PsLink, TwoFlowsShareExactly) {
  // Flow A (300 B) and flow B (600 B) on a 300 B/s link, both at t=0:
  // share 150 B/s each; A done at t=2 (300/150); then B alone finishes its
  // remaining 300 B at 300 B/s -> t=3.
  EventQueue queue;
  std::vector<double> completions;
  PsLink link(queue, 300.0, [&](std::uint64_t, std::uint64_t, double) {
    completions.push_back(queue.now());
  });
  link.start_flow(300);
  link.start_flow(600);
  queue.run_until(10.0);
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(completions[0], 2.0, 1e-9);
  EXPECT_NEAR(completions[1], 3.0, 1e-9);
}

TEST(PsLink, LateArrivalRescalesShares) {
  // 1000 B at t=0 on 100 B/s; at t=5 another 1000 B arrives.
  // First flow: 500 B done by t=5, then 50 B/s -> finishes at t=15.
  // Second: 50 B/s until t=15 (500 B), then 100 B/s -> finishes at t=20.
  EventQueue queue;
  std::vector<double> completions;
  PsLink link(queue, 100.0, [&](std::uint64_t, std::uint64_t, double) {
    completions.push_back(queue.now());
  });
  link.start_flow(1000);
  queue.schedule(5.0, [&] { link.start_flow(1000); });
  queue.run_until(50.0);
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(completions[0], 15.0, 1e-9);
  EXPECT_NEAR(completions[1], 20.0, 1e-9);
}

TEST(PsLink, ZeroByteFlowCompletesImmediately) {
  EventQueue queue;
  int completions = 0;
  PsLink link(queue, 100.0, [&](std::uint64_t, std::uint64_t bytes, double) {
    ++completions;
    EXPECT_EQ(bytes, 0u);
  });
  link.start_flow(0);
  queue.run_until(1.0);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(link.active_flows(), 0u);
}

// ---------------------------------------------------------------------------
// Cancellation: EventQueue handles and PsLink flow cuts
// ---------------------------------------------------------------------------

TEST(EventQueue, CancelledEventNeverRuns) {
  EventQueue queue;
  std::vector<int> order;
  const auto doomed = queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_TRUE(queue.cancel(doomed));
  EXPECT_EQ(queue.pending(), 1u);
  while (queue.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, CancelledEventDoesNotAdvanceTheClock) {
  EventQueue queue;
  const auto doomed = queue.schedule(5.0, [] {});
  EXPECT_TRUE(queue.cancel(doomed));
  EXPECT_FALSE(queue.run_next());  // nothing live to run
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
  queue.run_until(10.0);
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(EventQueue, CancelIsExactAboutLiveness) {
  EventQueue queue;
  const auto ran = queue.schedule(1.0, [] {});
  const auto doomed = queue.schedule(2.0, [] {});
  queue.run_next();
  EXPECT_FALSE(queue.cancel(ran));     // already ran
  EXPECT_TRUE(queue.cancel(doomed));
  EXPECT_FALSE(queue.cancel(doomed));  // double-cancel
  EXPECT_FALSE(queue.cancel(9999));    // never scheduled
}

TEST(EventQueue, SameInstantOrderingIsStableAcrossCancellation) {
  // Regression: cancelling one of several same-instant events must not
  // perturb the FIFO order of the survivors, and an event scheduled *from
  // within* an event at the current instant runs after the already-queued
  // same-instant events.
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&] {
    order.push_back(0);
    queue.schedule(1.0, [&] { order.push_back(9); });  // same instant, last
  });
  const auto doomed = queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(1.0, [&] { order.push_back(2); });
  queue.schedule(1.0, [&] { order.push_back(3); });
  EXPECT_TRUE(queue.cancel(doomed));
  while (queue.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 9}));
}

TEST(PsLink, CancelFlowFreesCapacityForSurvivors) {
  // A (1000 B) and B (1000 B) on 100 B/s share 50 B/s each.  B is cancelled
  // at t=5 with 750 B remaining; A then runs alone at 100 B/s and finishes
  // its remaining 750 B at t=12.5.  B's 250 moved bytes are wasted work.
  EventQueue queue;
  std::vector<double> completions;
  PsLink link(queue, 100.0, [&](std::uint64_t, std::uint64_t, double) {
    completions.push_back(queue.now());
  });
  link.start_flow(1000);
  const std::uint64_t b = link.start_flow(1000);
  queue.schedule(5.0, [&] { EXPECT_TRUE(link.cancel_flow(b)); });
  queue.run_until(50.0);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0], 12.5, 1e-9);
  EXPECT_NEAR(link.cancelled_bytes(), 250.0, 1e-9);
  EXPECT_DOUBLE_EQ(link.completed_bytes(), 1000.0);
}

TEST(PsLink, CancelUnknownOrCompletedFlowIsANoOp) {
  EventQueue queue;
  PsLink link(queue, 100.0, [](std::uint64_t, std::uint64_t, double) {});
  EXPECT_FALSE(link.cancel_flow(42));  // never started
  const std::uint64_t id = link.start_flow(100);
  queue.run_until(10.0);               // flow completed at t=1
  EXPECT_FALSE(link.cancel_flow(id));  // already done
  EXPECT_DOUBLE_EQ(link.cancelled_bytes(), 0.0);
}

TEST(ShieldedLoad, DeadlineCancellationCutsPinnedResourceTime) {
  // A saturating OBR load: 5 x 10 MB fetches per second against a 1 MB/s
  // uplink.  Unprotected, the backlog pins the uplink far past the attack
  // window; a 2s per-exchange deadline cancels the stuck flows instead.
  ShieldedLoadConfig config;
  config.base.requests_per_second = 5;
  config.base.origin_response_bytes = 10'000'000;
  config.base.client_response_bytes = 822;
  config.base.origin_uplink_mbps = 8.0;  // 1e6 B/s
  config.base.duration_s = 5.0;
  config.base.drain_s = 30.0;
  config.shed_response_bytes = 500;

  const ShieldedLoadResult baseline = simulate_attack_load_shielded(config);
  config.deadline_seconds = 2.0;
  const ShieldedLoadResult protected_run = simulate_attack_load_shielded(config);

  EXPECT_EQ(baseline.deadline_cancelled, 0u);
  EXPECT_GT(protected_run.deadline_cancelled, 0u);
  EXPECT_GT(protected_run.cancelled_origin_bytes, 0.0);
  EXPECT_LT(protected_run.busy_seconds(8.0),
            baseline.busy_seconds(8.0) * 0.5);
}

// ---------------------------------------------------------------------------
// Cross-validation: DES vs fluid engine on the Fig 7 experiment
// ---------------------------------------------------------------------------

AttackLoadConfig fig7_config(int m) {
  AttackLoadConfig config;
  config.requests_per_second = m;
  config.origin_response_bytes = 10'486'029;
  config.client_response_bytes = 822;
  config.duration_s = 20.0;
  config.drain_s = 20.0;
  return config;
}

TEST(DesVsFluid, SteadyStateUtilizationAgrees) {
  for (const int m : {2, 8, 12, 15}) {
    const auto config = fig7_config(m);
    const auto fluid = simulate_attack_load(config);
    const auto des = simulate_attack_load_des(config);
    ASSERT_EQ(fluid.size(), des.size());
    double fluid_sum = 0, des_sum = 0;
    for (std::size_t s = 5; s < 20; ++s) {
      fluid_sum += fluid[s].origin_out_mbps;
      des_sum += des[s].origin_out_mbps;
    }
    EXPECT_NEAR(des_sum, fluid_sum, fluid_sum * 0.02 + 1.0) << "m=" << m;
  }
}

TEST(DesVsFluid, CompletionDrivenClientTrafficAgrees) {
  const auto config = fig7_config(8);
  const auto fluid = simulate_attack_load(config);
  const auto des = simulate_attack_load_des(config);
  double fluid_total = 0, des_total = 0;
  for (std::size_t s = 0; s < fluid.size(); ++s) {
    fluid_total += fluid[s].client_in_kbps;
    des_total += des[s].client_in_kbps;
  }
  // All 160 requests complete in both engines.
  EXPECT_NEAR(des_total, fluid_total, fluid_total * 0.01 + 0.1);
}

TEST(DesVsFluid, BenignLatencyAgreesBelowSaturation) {
  auto config = fig7_config(5);
  config.benign_requests_per_second = 2;
  config.benign_response_bytes = 5u << 20;
  const auto fluid = simulate_attack_load(config);
  const auto des = simulate_attack_load_des(config);
  double fluid_latency = 0, des_latency = 0;
  std::size_t fn = 0, dn = 0;
  for (std::size_t s = 5; s < 20; ++s) {
    if (fluid[s].benign_latency_s >= 0) {
      fluid_latency += fluid[s].benign_latency_s;
      ++fn;
    }
    if (des[s].benign_latency_s >= 0) {
      des_latency += des[s].benign_latency_s;
      ++dn;
    }
  }
  ASSERT_GT(fn, 0u);
  ASSERT_GT(dn, 0u);
  EXPECT_NEAR(des_latency / dn, fluid_latency / fn,
              0.05 * fluid_latency / fn + 0.002);
}

}  // namespace
}  // namespace rangeamp::sim
