#include "sim/attack_load.h"

#include <gtest/gtest.h>

namespace rangeamp::sim {
namespace {

AttackLoadConfig base_config(int m) {
  AttackLoadConfig config;
  config.requests_per_second = m;
  config.origin_response_bytes = 10'486'029;  // 10 MB + headers
  config.client_response_bytes = 822;
  config.duration_s = 30.0;
  return config;
}

TEST(AttackLoad, SubSaturationIsProportionalToM) {
  // Paper: "When m <= 10, it is ... almost proportional to m."
  for (const int m : {1, 4, 8, 10}) {
    const auto config = base_config(m);
    const auto series = simulate_attack_load(config);
    const auto stats = summarize(config, series);
    const double expected_mbps = m * 10'486'029 * 8.0 / 1e6;
    EXPECT_NEAR(stats.mean_origin_out_mbps, expected_mbps, expected_mbps * 0.02)
        << m;
    EXPECT_FALSE(stats.saturated) << m;
  }
}

TEST(AttackLoad, SaturatesAtUplinkCapacityForLargeM) {
  // Paper: "when m >= 14, the outgoing bandwidth ... is exhausted completely."
  for (const int m : {12, 14, 15}) {
    const auto config = base_config(m);
    const auto stats = summarize(config, simulate_attack_load(config));
    EXPECT_TRUE(stats.saturated) << m;
    EXPECT_LE(stats.peak_origin_out_mbps, 1000.0 + 1e-6);
    EXPECT_GE(stats.mean_origin_out_mbps, 995.0);
  }
}

TEST(AttackLoad, ClientIncomingStaysUnder500Kbps) {
  // Paper Fig 7a: the client's incoming bandwidth never exceeds 500 Kbps.
  for (const int m : {1, 5, 10, 15}) {
    const auto config = base_config(m);
    const auto stats = summarize(config, simulate_attack_load(config));
    EXPECT_LT(stats.peak_client_in_kbps, 500.0) << m;
    EXPECT_GT(stats.peak_client_in_kbps, 0.0) << m;
  }
}

TEST(AttackLoad, BacklogGrowsOnlyUnderSaturation) {
  const auto sub = simulate_attack_load(base_config(5));
  const auto sat = simulate_attack_load(base_config(15));
  // At t=29 (last attack second) the saturated run has a big backlog.
  const auto& sub29 = sub[29];
  const auto& sat29 = sat[29];
  EXPECT_LE(sub29.in_flight, 6u);
  EXPECT_GT(sat29.in_flight, 20u);
}

TEST(AttackLoad, TransfersDrainAfterAttackEnds) {
  auto config = base_config(5);
  config.drain_s = 20.0;
  const auto series = simulate_attack_load(config);
  EXPECT_EQ(series.back().in_flight, 0u);
  // Total bytes moved equal requests * per-request size.
  double total_mb = 0;
  for (const auto& s : series) total_mb += s.origin_out_mbps / 8.0;  // MB/s * 1s
  EXPECT_NEAR(total_mb * 1e6, 30.0 * 5 * 10'486'029, 30.0 * 5 * 10'486'029 * 0.001);
}

TEST(AttackLoad, SeriesCoversDurationPlusDrain) {
  auto config = base_config(2);
  config.duration_s = 10.0;
  config.drain_s = 5.0;
  const auto series = simulate_attack_load(config);
  EXPECT_EQ(series.size(), 15u);
  EXPECT_DOUBLE_EQ(series.front().second, 0.0);
  EXPECT_DOUBLE_EQ(series.back().second, 14.0);
}

TEST(AttackLoad, BenignTrafficSuffersOnlyPastTheKnee) {
  const auto run = [](int m) {
    auto config = base_config(m);
    config.benign_requests_per_second = 2;
    config.benign_response_bytes = 5u << 20;
    config.drain_s = 30.0;
    const auto series = simulate_attack_load(config);
    double goodput = 0, latency = 0;
    std::size_t n = 0, ln = 0;
    for (const auto& s : series) {
      if (s.second < 5 || s.second >= 30) continue;
      goodput += s.benign_goodput_mbps;
      ++n;
      if (s.benign_latency_s >= 0) {
        latency += s.benign_latency_s;
        ++ln;
      }
    }
    return std::pair{goodput / static_cast<double>(n),
                     ln ? latency / static_cast<double>(ln) : -1.0};
  };
  const auto [goodput0, latency0] = run(0);
  const auto [goodput8, latency8] = run(8);
  const auto [goodput15, latency15] = run(15);
  // Below the knee: goodput preserved, latency only inflated by sharing.
  EXPECT_NEAR(goodput8, goodput0, goodput0 * 0.05);
  EXPECT_GT(latency8, latency0);
  EXPECT_LT(latency8, 10 * latency0);
  // Past the knee: goodput degrades and latency explodes.
  EXPECT_LT(goodput15, goodput0 * 0.85);
  EXPECT_GT(latency15, 20 * latency0);
}

TEST(AttackLoad, BenignOnlyBaselineIsUnconstrained) {
  auto config = base_config(0);
  config.benign_requests_per_second = 2;
  config.benign_response_bytes = 5u << 20;
  const auto series = simulate_attack_load(config);
  for (const auto& s : series) {
    if (s.second >= 5 && s.second < 25 && s.benign_latency_s >= 0) {
      // 2 x 5 MB/s over 1000 Mbps: each fetch takes ~42 ms alone, ~84 ms
      // when both flows of a burst share the link.
      EXPECT_LT(s.benign_latency_s, 0.15);
    }
  }
}

TEST(AttackLoad, NetworkRttSetsTheLatencyFloor) {
  auto config = base_config(0);
  config.benign_requests_per_second = 1;
  config.benign_response_bytes = 1024;  // negligible transfer time
  config.network_rtt_s = 0.080;
  const auto series = simulate_attack_load(config);
  for (const auto& s : series) {
    if (s.benign_latency_s >= 0) {
      EXPECT_GE(s.benign_latency_s, 0.080);
      EXPECT_LT(s.benign_latency_s, 0.082);
    }
  }
}

TEST(AttackLoad, SaturationKneeMatchesArithmetic) {
  // 1000 Mbps / (10 MB * 8 bits) = 11.92 requests/s: m=11 fits, m=12 doesn't.
  const auto at11 = summarize(base_config(11), simulate_attack_load(base_config(11)));
  const auto at12 = summarize(base_config(12), simulate_attack_load(base_config(12)));
  EXPECT_FALSE(at11.saturated);
  EXPECT_TRUE(at12.saturated);
}

}  // namespace
}  // namespace rangeamp::sim
