#include <gtest/gtest.h>

#include "core/sbr.h"
#include "core/testbed.h"
#include "http/serialize.h"
#include "http2/frame.h"
#include "http2/session.h"
#include "http2/wire.h"

namespace rangeamp::http2 {
namespace {

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

TEST(Frame, SerializeParseRoundTrip) {
  Frame frame;
  frame.type = FrameType::kHeaders;
  frame.flags = kFlagEndHeaders | kFlagEndStream;
  frame.stream_id = 7;
  frame.payload = http::Body::literal("header-block");
  const std::string bytes = to_bytes(frame);
  EXPECT_EQ(bytes.size(), frame.serialized_size());

  std::size_t pos = 0;
  const auto parsed = parse_frame(bytes, pos);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, FrameType::kHeaders);
  EXPECT_EQ(parsed->flags, frame.flags);
  EXPECT_EQ(parsed->stream_id, 7u);
  EXPECT_EQ(parsed->payload.materialize(), "header-block");
  EXPECT_EQ(pos, bytes.size());
}

TEST(Frame, ParseSequence) {
  Frame a{FrameType::kSettings, 0, 0, {}};
  Frame b{FrameType::kData, kFlagEndStream, 1, http::Body::literal("xyz")};
  const auto frames = parse_frames(to_bytes(a) + to_bytes(b));
  ASSERT_TRUE(frames);
  ASSERT_EQ(frames->size(), 2u);
  EXPECT_EQ((*frames)[0].type, FrameType::kSettings);
  EXPECT_EQ((*frames)[1].payload.size(), 3u);
}

TEST(Frame, ParseRejectsTruncatedAndOversized) {
  Frame f{FrameType::kData, 0, 1, http::Body::literal("abc")};
  std::string bytes = to_bytes(f);
  EXPECT_FALSE(parse_frames(bytes.substr(0, bytes.size() - 1)));
  EXPECT_FALSE(parse_frames(bytes.substr(0, 5)));
  EXPECT_FALSE(parse_frames(bytes, /*max_frame_size=*/2));
}

TEST(Frame, StreamIdHighBitMaskedOff) {
  Frame f{FrameType::kData, 0, 0x7FFFFFFF, {}};
  std::size_t pos = 0;
  const auto parsed = parse_frame(to_bytes(f), pos);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->stream_id, 0x7FFFFFFFu);
}

// ---------------------------------------------------------------------------
// Session: message <-> frames
// ---------------------------------------------------------------------------

TEST(Session, RequestRoundTripsThroughFrames) {
  Http2Session session;
  Http2Peer peer;
  http::Request request = http::make_get("victim.example.com", "/a.bin?cb=1");
  request.headers.add("Range", "bytes=0-0");

  const auto frames = session.encode_request(request, 1);
  ASSERT_GE(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kHeaders);
  EXPECT_TRUE(frames[0].end_stream());  // no body

  const auto decoded = peer.decode_request(frames);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->method, http::Method::GET);
  EXPECT_EQ(decoded->target, "/a.bin?cb=1");
  EXPECT_EQ(decoded->headers.get("Host"), "victim.example.com");
  EXPECT_EQ(decoded->headers.get("range"), "bytes=0-0");
}

TEST(Session, ResponseRoundTripsWithBody) {
  Http2Session session;
  Http2Peer peer;
  http::Response response = http::make_response(
      http::kPartialContent, http::Body::synthetic(5, 0, 50000));
  response.headers.add("Content-Range", "bytes 0-49999/100000");

  const auto frames = session.encode_response(response, 1);
  // 50000 bytes / 16384 max frame size -> HEADERS + 4 DATA frames.
  std::size_t data_frames = 0;
  for (const auto& f : frames) {
    if (f.type == FrameType::kData) ++data_frames;
  }
  EXPECT_EQ(data_frames, 4u);
  EXPECT_TRUE(frames.back().end_stream());

  const auto decoded = peer.decode_response(frames);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->status, 206);
  EXPECT_EQ(decoded->body.size(), 50000u);
  EXPECT_EQ(decoded->body, response.body);
  EXPECT_EQ(decoded->headers.get("content-range"), "bytes 0-49999/100000");
}

TEST(Session, HugeHeaderBlockSplitsIntoContinuations) {
  Http2Session session;
  Http2Peer peer;
  http::Request request = http::make_get("h.example", "/p");
  std::string value = "bytes=0-";
  for (int i = 0; i < 10749; ++i) value += ",0-";  // ~32 KB OBR header
  request.headers.add("Range", value);

  const auto frames = session.encode_request(request, 1);
  ASSERT_GE(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHeaders);
  EXPECT_FALSE(frames[0].end_headers());
  EXPECT_EQ(frames[1].type, FrameType::kContinuation);
  EXPECT_TRUE(frames.back().end_headers());

  const auto decoded = peer.decode_request(frames);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->headers.get("range"), value);
}

TEST(Session, ConnectionSpecificHeadersDropped) {
  Http2Session session;
  Http2Peer peer;
  http::Request request = http::make_get("h.example", "/p");
  request.headers.add("Connection", "keep-alive");
  request.headers.add("Transfer-Encoding", "chunked");
  const auto decoded = peer.decode_request(session.encode_request(request, 1));
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->headers.has("connection"));
  EXPECT_FALSE(decoded->headers.has("transfer-encoding"));
}

TEST(Session, RepeatedRequestsShrinkOnTheWire) {
  Http2Session session;
  http::Request request = http::make_get("victim.example.com", "/payload.bin");
  request.headers.add("Range", "bytes=0-0");
  const auto first = frames_size(session.encode_request(request, 1));
  const auto second = frames_size(session.encode_request(request, 3));
  EXPECT_LT(second, first / 2);  // HPACK dynamic table at work
}

TEST(Session, HeaderListTranslation) {
  http::Request request = http::make_get("h.example", "/p?x=1");
  const auto list = request_header_list(request);
  ASSERT_GE(list.size(), 4u);
  EXPECT_EQ(list[0], (HeaderEntry{":method", "GET"}));
  EXPECT_EQ(list[2], (HeaderEntry{":authority", "h.example"}));
  EXPECT_EQ(list[3], (HeaderEntry{":path", "/p?x=1"}));

  http::Response response = http::make_response(http::kOk);
  const auto rlist = response_header_list(response);
  EXPECT_EQ(rlist[0], (HeaderEntry{":status", "200"}));
}

// ---------------------------------------------------------------------------
// Http2Wire: byte accounting
// ---------------------------------------------------------------------------

class EchoOrigin final : public net::HttpHandler {
 public:
  http::Response handle(const http::Request&) override {
    return http::make_response(http::kOk, http::Body::synthetic(9, 0, 40000));
  }
};

TEST(Http2Wire, FirstTransferIncludesConnectionSetup) {
  EchoOrigin origin;
  net::TrafficRecorder rec("h2");
  Http2Wire wire(rec, origin);
  wire.transfer(http::make_get("h", "/a"));
  const auto first_req = rec.log()[0].bytes.request_bytes;
  wire.transfer(http::make_get("h", "/a"));
  const auto second_req = rec.log()[1].bytes.request_bytes;
  // Setup (preface + SETTINGS exchange) only on the first transfer, and
  // HPACK shrinks the repeat.
  EXPECT_GT(first_req, second_req + Http2Wire::connection_setup_request_bytes() - 1);
}

TEST(Http2Wire, ResponseBytesMatchFrameArithmetic) {
  EchoOrigin origin;
  net::TrafficRecorder rec;
  Http2Wire wire(rec, origin);
  wire.transfer(http::make_get("h", "/a"));
  // 40000 body bytes -> 3 DATA frames (16384+16384+7232) = 27 B framing;
  // plus HEADERS + setup.
  const auto resp_bytes = rec.log()[0].bytes.response_bytes;
  EXPECT_GT(resp_bytes, 40000u + 27u);
  EXPECT_LT(resp_bytes, 40000u + 400u);
}

TEST(Http2Wire, FlowControlCreditCountsTowardRequestBytes) {
  EchoOrigin origin;  // 40000-byte body
  net::TrafficRecorder rec;
  Http2Wire wire(rec, origin);
  wire.transfer(http::make_get("h", "/a"));
  const auto first_req = rec.log()[0].bytes.request_bytes;
  wire.transfer(http::make_get("h", "/a"));
  const auto second_req = rec.log()[1].bytes.request_bytes;
  // 40000 bytes = 0 full 65535-byte windows -> no WINDOW_UPDATEs; a bigger
  // body grants credit: compare with a 200 KB origin.
  class BigOrigin final : public net::HttpHandler {
   public:
    http::Response handle(const http::Request&) override {
      return http::make_response(http::kOk, http::Body::synthetic(9, 0, 200000));
    }
  };
  BigOrigin big;
  net::TrafficRecorder big_rec;
  Http2Wire big_wire(big_rec, big);
  big_wire.transfer(http::make_get("h", "/a"));
  big_wire.transfer(http::make_get("h", "/a"));
  // 200000 / 65535 = 3 windows -> 3 x 13 bytes of credit per transfer.
  EXPECT_EQ(big_rec.log()[1].bytes.request_bytes, second_req + 3 * 13);
  (void)first_req;
}

TEST(Http2Wire, AbortCountsPartialDataAndRstStream) {
  EchoOrigin origin;
  net::TrafficRecorder rec;
  Http2Wire wire(rec, origin);
  net::TransferOptions options;
  options.abort_after_body_bytes = 1000;
  const auto resp = wire.transfer(http::make_get("h", "/a"), options);
  EXPECT_EQ(resp.body.size(), 1000u);
  EXPECT_TRUE(rec.log()[0].response_truncated);
  // Received ~1000 body bytes + one DATA header + response HEADERS.
  EXPECT_LT(rec.log()[0].bytes.response_bytes, 1400u);
}

// ---------------------------------------------------------------------------
// The paper's section VI-B claim, end to end.
// ---------------------------------------------------------------------------

TEST(Http2RangeAmp, FullH2ChainPreservesSemanticsAndAmplification) {
  // h2 on BOTH legs: client->CDN and CDN->origin.
  origin::OriginServer origin;
  origin.resources().add_synthetic("/f.bin", 1u << 20);
  cdn::CdnNode node(cdn::make_profile(cdn::Vendor::kAkamai), origin,
                    "cdn-origin(h2)", cdn::SegmentFraming::kHttp2);
  net::TrafficRecorder client_rec("client-cdn(h2)");
  Http2Wire client_wire(client_rec, node);

  http::Request request = http::make_get("site.example", "/f.bin?cb=1");
  request.headers.add("Range", "bytes=0-0");
  const http::Response response = client_wire.transfer(request);
  EXPECT_EQ(response.status, 206);
  EXPECT_EQ(response.body.size(), 1u);
  // The origin leg carried the full entity, framed as h2 DATA frames.
  EXPECT_GT(node.upstream_traffic().response_bytes(), 1u << 20);
  const double af =
      static_cast<double>(node.upstream_traffic().response_bytes()) /
      static_cast<double>(client_rec.response_bytes());
  EXPECT_GT(af, 800.0);
  // And content correctness survives double framing.
  http::Request full = http::make_get("site.example", "/f.bin?cb=1");
  const http::Response whole = client_wire.transfer(full);
  EXPECT_EQ(whole.body.size(), 1u << 20);
}

TEST(Http2RangeAmp, SbrAmplificationCarriesOverH2) {
  const auto h1 = core::measure_sbr(cdn::Vendor::kAkamai, 10u << 20);
  const auto h2 = core::measure_sbr_h2(cdn::Vendor::kAkamai, 10u << 20);
  // Same order of magnitude; the single-request h2 case pays connection
  // setup but saves header bytes.
  EXPECT_GT(h2.amplification, 0.5 * h1.amplification);
  EXPECT_GT(h2.amplification, 1000.0);
}

TEST(Http2RangeAmp, SustainedH2CampaignAmplifiesMoreThanH11) {
  // Across repeated requests HPACK compresses the tiny 206s, so the h2
  // amplification factor overtakes HTTP/1.1.
  const auto h1 = core::measure_sbr(cdn::Vendor::kAkamai, 10u << 20);
  const auto h2 = core::measure_sbr_h2(cdn::Vendor::kAkamai, 10u << 20,
                                       /*requests=*/20);
  EXPECT_GT(h2.amplification, h1.amplification);
}

}  // namespace
}  // namespace rangeamp::http2
