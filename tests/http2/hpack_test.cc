#include "http2/hpack.h"

#include <gtest/gtest.h>

namespace rangeamp::http2 {
namespace {

// ---------------------------------------------------------------------------
// Prefix integers (RFC 7541 section 5.1, incl. the C.1 examples)
// ---------------------------------------------------------------------------

std::string enc(std::uint64_t value, int prefix, std::uint8_t flags = 0) {
  std::string out;
  encode_integer(value, prefix, flags, out);
  return out;
}

TEST(HpackInteger, Rfc7541ExampleC11) {
  // Encoding 10 with a 5-bit prefix -> 0x0A.
  EXPECT_EQ(enc(10, 5), std::string{"\x0a"});
}

TEST(HpackInteger, Rfc7541ExampleC12) {
  // Encoding 1337 with a 5-bit prefix -> 1F 9A 0A.
  EXPECT_EQ(enc(1337, 5), std::string("\x1f\x9a\x0a", 3));
}

TEST(HpackInteger, Rfc7541ExampleC13) {
  // Encoding 42 on 8 bits -> 0x2A.
  EXPECT_EQ(enc(42, 8), std::string{"\x2a"});
}

TEST(HpackInteger, RoundTripSweep) {
  for (const int prefix : {1, 4, 5, 6, 7, 8}) {
    for (const std::uint64_t value :
         {0ULL, 1ULL, 30ULL, 31ULL, 127ULL, 128ULL, 1337ULL, 65535ULL,
          1000000ULL, (1ULL << 40)}) {
      const std::string bytes = enc(value, prefix);
      std::size_t pos = 0;
      const auto decoded = decode_integer(bytes, pos, prefix);
      ASSERT_TRUE(decoded) << value << "/" << prefix;
      EXPECT_EQ(*decoded, value);
      EXPECT_EQ(pos, bytes.size());
    }
  }
}

TEST(HpackInteger, FlagsPreservedInFirstByte) {
  const std::string bytes = enc(2, 7, 0x80);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]), 0x82);  // :method GET index
}

TEST(HpackInteger, DecodeRejectsTruncation) {
  std::string bytes = enc(1337, 5);
  bytes.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(decode_integer(bytes, pos, 5));
}

// ---------------------------------------------------------------------------
// Static & dynamic tables
// ---------------------------------------------------------------------------

TEST(HpackTable, StaticEntriesMatchRfcAppendixA) {
  EXPECT_EQ(static_table_entry(2), (HeaderEntry{":method", "GET"}));
  EXPECT_EQ(static_table_entry(8), (HeaderEntry{":status", "200"}));
  EXPECT_EQ(static_table_entry(10), (HeaderEntry{":status", "206"}));
  EXPECT_EQ(static_table_entry(50), (HeaderEntry{"range", ""}));
  EXPECT_EQ(static_table_entry(61), (HeaderEntry{"www-authenticate", ""}));
}

TEST(HpackTable, DynamicInsertLookupAndIndexing) {
  DynamicTable table;
  table.insert({"x-a", "1"});
  table.insert({"x-b", "2"});
  // 62 = most recent.
  ASSERT_NE(table.lookup(62), nullptr);
  EXPECT_EQ(table.lookup(62)->name, "x-b");
  EXPECT_EQ(table.lookup(63)->name, "x-a");
  EXPECT_EQ(table.lookup(64), nullptr);
  EXPECT_EQ(table.find("x-a", "1"), 63u);
  EXPECT_EQ(table.find("x-a", "9"), std::nullopt);
  EXPECT_EQ(table.find_name("x-a"), 63u);
}

TEST(HpackTable, EvictionOnOverflow) {
  DynamicTable table(100);  // each small entry ~ 32 + a few bytes
  table.insert({"a", "1"});  // 34
  table.insert({"b", "2"});  // 34 -> 68
  table.insert({"c", "3"});  // 34 -> 102 > 100 -> evict "a"
  EXPECT_EQ(table.entry_count(), 2u);
  EXPECT_EQ(table.find_name("a"), std::nullopt);
  EXPECT_TRUE(table.find_name("c").has_value());
}

TEST(HpackTable, OversizedEntryEmptiesTable) {
  DynamicTable table(64);
  table.insert({"a", "1"});
  table.insert({"huge-name", std::string(100, 'v')});
  EXPECT_EQ(table.entry_count(), 0u);
}

TEST(HpackTable, SetMaxSizeEvicts) {
  DynamicTable table(200);
  table.insert({"a", "1"});
  table.insert({"b", "2"});
  table.set_max_size(40);
  EXPECT_EQ(table.entry_count(), 1u);
  EXPECT_EQ(table.lookup(62)->name, "b");
}

// ---------------------------------------------------------------------------
// Encoder/decoder
// ---------------------------------------------------------------------------

std::vector<HeaderEntry> sample_headers() {
  return {
      {":method", "GET"},
      {":scheme", "https"},
      {":authority", "victim.example.com"},
      {":path", "/payload.bin?cb=1"},
      {"range", "bytes=0-0"},
      {"user-agent", "rangeamp/1.0"},
  };
}

TEST(Hpack, EncodeDecodeRoundTrip) {
  Encoder encoder;
  Decoder decoder;
  const auto headers = sample_headers();
  const std::string block = encoder.encode(headers);
  const auto decoded = decoder.decode(block);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, headers);
}

TEST(Hpack, StaticMatchesEncodeToOneByte) {
  Encoder encoder;
  const std::string block = encoder.encode({{":method", "GET"}});
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(static_cast<std::uint8_t>(block[0]), 0x82);
}

TEST(Hpack, RepeatedHeadersCompressToIndexedForm) {
  Encoder encoder;
  Decoder decoder;
  const auto headers = sample_headers();
  const std::string first = encoder.encode(headers);
  const std::string second = encoder.encode(headers);
  // Every field of the second block is an index into the dynamic table.
  EXPECT_LT(second.size(), first.size() / 3);
  EXPECT_LE(second.size(), headers.size() * 2);
  // And both decode identically with shared state.
  EXPECT_EQ(decoder.decode(first), headers);
  EXPECT_EQ(decoder.decode(second), headers);
}

TEST(Hpack, HugeRangeHeaderRoundTrips) {
  // The OBR attack header: ~32 KB of overlapping ranges.
  std::string value = "bytes=0-";
  for (int i = 0; i < 10749; ++i) value += ",0-";
  Encoder encoder;
  Decoder decoder;
  const std::string block = encoder.encode({{"range", value}});
  const auto decoded = decoder.decode(block);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].value, value);
  // Raw-string literal coding: the block is value + small framing.
  EXPECT_LT(block.size(), value.size() + 8);
}

TEST(Hpack, DecoderRejectsGarbage) {
  Decoder decoder;
  EXPECT_FALSE(decoder.decode(std::string_view{"\x80", 1}));  // index 0
  // Indexed reference beyond both tables.
  std::string bad;
  encode_integer(1000, 7, 0x80, bad);
  EXPECT_FALSE(decoder.decode(bad));
  // Huffman-flagged string (unsupported).
  EXPECT_FALSE(decoder.decode(std::string("\x40\x01" "a" "\x81", 4)));
  // Truncated literal.
  EXPECT_FALSE(decoder.decode(std::string("\x40\x05" "ab", 4)));
}

TEST(Hpack, DynamicTableSizeUpdateHonored) {
  Encoder encoder;
  Decoder decoder;
  // Prime the decoder's dynamic table.
  const std::string block = encoder.encode({{"x-key", "value"}});
  ASSERT_TRUE(decoder.decode(block));
  EXPECT_EQ(decoder.table().entry_count(), 1u);
  // A size-0 update (0x20 prefix) must flush it.
  EXPECT_TRUE(decoder.decode(std::string_view{"\x20", 1}));
  EXPECT_EQ(decoder.table().entry_count(), 0u);
}

// RFC 7541 appendix C.3: three requests on one connection, encoded without
// Huffman coding.  The expected byte strings are copied from the RFC.
TEST(Hpack, Rfc7541AppendixC3ExactBytes) {
  Encoder encoder;
  Decoder decoder;

  // C.3.1 -- first request.
  const std::vector<HeaderEntry> first = {
      {":method", "GET"},
      {":scheme", "http"},
      {":path", "/"},
      {":authority", "www.example.com"},
  };
  const std::string block1 = encoder.encode(first);
  EXPECT_EQ(block1, std::string("\x82\x86\x84\x41\x0f"
                                "www.example.com",
                                20));
  EXPECT_EQ(decoder.decode(block1), first);

  // C.3.2 -- second request: :authority now sits in the dynamic table
  // (index 62 -> 0xbe) and cache-control uses static name index 24 (0x58).
  const std::vector<HeaderEntry> second = {
      {":method", "GET"},
      {":scheme", "http"},
      {":path", "/"},
      {":authority", "www.example.com"},
      {"cache-control", "no-cache"},
  };
  const std::string block2 = encoder.encode(second);
  EXPECT_EQ(block2, std::string("\x82\x86\x84\xbe\x58\x08"
                                "no-cache",
                                14));
  EXPECT_EQ(decoder.decode(block2), second);

  // C.3.3 -- third request: https/index.html static matches, both earlier
  // dynamic entries referenced, one brand-new custom header.
  const std::vector<HeaderEntry> third = {
      {":method", "GET"},
      {":scheme", "https"},
      {":path", "/index.html"},
      {":authority", "www.example.com"},
      {"custom-key", "custom-value"},
  };
  const std::string block3 = encoder.encode(third);
  EXPECT_EQ(block3, std::string("\x82\x87\x85\xbf\x40\x0a"
                                "custom-key"
                                "\x0c"
                                "custom-value",
                                29));
  EXPECT_EQ(decoder.decode(block3), third);

  // Dynamic table state after C.3.3 (RFC: 3 entries, 164 bytes).
  EXPECT_EQ(decoder.table().entry_count(), 3u);
  EXPECT_EQ(decoder.table().size(), 164u);
}

TEST(Hpack, ValueOnlyDifferenceUsesNameIndex) {
  Encoder encoder;
  const std::string first = encoder.encode({{"range", "bytes=0-0"}});
  // "range" is static index 50: the literal starts with 0x40 | 50.
  EXPECT_EQ(static_cast<std::uint8_t>(first[0]), 0x40 | 50);
}

}  // namespace
}  // namespace rangeamp::http2
