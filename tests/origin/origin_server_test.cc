#include "origin/origin_server.h"

#include <gtest/gtest.h>

#include "http/multipart.h"
#include "http/serialize.h"

namespace rangeamp::origin {
namespace {

using http::Body;
using http::Request;
using http::Response;

Request ranged(std::string target, std::string range) {
  Request req = http::make_get("origin.example", std::move(target));
  if (!range.empty()) req.headers.add("Range", std::move(range));
  return req;
}

class OriginServerTest : public ::testing::Test {
 protected:
  OriginServerTest() {
    server_.resources().add_synthetic("/1KB.jpg", 1000, "image/jpeg");
    server_.resources().add_synthetic("/big.bin", 1u << 20);
  }
  OriginServer server_;
};

TEST_F(OriginServerTest, PlainGetReturns200WithFullEntity) {
  const Response resp = server_.handle(ranged("/1KB.jpg", ""));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
  EXPECT_EQ(resp.headers.get("Content-Length"), "1000");
  EXPECT_EQ(resp.headers.get("Content-Type"), "image/jpeg");
  EXPECT_EQ(resp.headers.get("Accept-Ranges"), "bytes");
  EXPECT_TRUE(resp.headers.has("ETag"));
  EXPECT_TRUE(resp.headers.has("Last-Modified"));
  EXPECT_EQ(resp.headers.get("Server"), "Apache/2.4.18 (Ubuntu)");
}

TEST_F(OriginServerTest, QueryStringIgnoredForLookup) {
  const Response resp = server_.handle(ranged("/1KB.jpg?rand=123456", ""));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
}

TEST_F(OriginServerTest, MissingResourceIs404) {
  const Response resp = server_.handle(ranged("/nope", ""));
  EXPECT_EQ(resp.status, 404);
}

TEST_F(OriginServerTest, SingleRangeIs206WithContentRange) {
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=0-0"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 1u);
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes 0-0/1000");
  EXPECT_EQ(resp.headers.get("Content-Length"), "1");
  // Fig 2c: single-part 206 carries the part directly, no multipart type.
  EXPECT_EQ(resp.headers.get("Content-Type"), "image/jpeg");
}

TEST_F(OriginServerTest, RangePayloadMatchesEntitySlice) {
  const Response full = server_.handle(ranged("/1KB.jpg", ""));
  const Response part = server_.handle(ranged("/1KB.jpg", "bytes=100-199"));
  EXPECT_EQ(part.body.materialize(), full.body.materialize().substr(100, 100));
}

TEST_F(OriginServerTest, SuffixRange) {
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=-2"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes 998-999/1000");
}

TEST_F(OriginServerTest, OpenRangeRunsToEnd) {
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=990-"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 10u);
}

TEST_F(OriginServerTest, UnsatisfiableRangeIs416) {
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=1000-1001"));
  EXPECT_EQ(resp.status, 416);
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes */1000");
  EXPECT_EQ(resp.body.size(), 0u);
}

TEST_F(OriginServerTest, MalformedRangeIsIgnored) {
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=5-4"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
}

TEST_F(OriginServerTest, MultiRangeDisjointIsMultipart206) {
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=1-1,998-999"));
  EXPECT_EQ(resp.status, 206);
  const auto ct = resp.headers.get("Content-Type");
  ASSERT_TRUE(ct);
  const auto boundary = http::boundary_from_content_type(*ct);
  ASSERT_TRUE(boundary);
  const auto parts =
      http::parse_multipart_byteranges(resp.body.materialize(), *boundary);
  ASSERT_TRUE(parts);
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0].range, (http::ResolvedRange{1, 1}));
  EXPECT_EQ((*parts)[1].range, (http::ResolvedRange{998, 999}));
  // Multipart reassembly equals the requested slices of the entity.
  const Response full = server_.handle(ranged("/1KB.jpg", ""));
  EXPECT_EQ((*parts)[0].payload.materialize(),
            full.body.materialize().substr(1, 1));
  // Content-Length covers the whole multipart body.
  EXPECT_EQ(resp.headers.get("Content-Length"),
            std::to_string(resp.body.size()));
}

TEST_F(OriginServerTest, OverlappingRangesAreCoalescedByDefault) {
  // Apache post-CVE-2011-3192 behaviour: "0-,0-,0-" collapses to one range,
  // answered as a single-part 206 of the whole entity.
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=0-,0-,0-"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_EQ(resp.body.size(), 1000u);
  EXPECT_EQ(resp.headers.get("Content-Range"), "bytes 0-999/1000");
}

TEST_F(OriginServerTest, NaiveModeHonorsOverlaps) {
  server_.config().coalesce_overlapping = false;
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=0-,0-,0-"));
  EXPECT_EQ(resp.status, 206);
  EXPECT_GE(resp.body.size(), 3000u);
}

TEST_F(OriginServerTest, MaxRangesFallsBackToFullEntity) {
  server_.config().max_ranges = 3;
  const Response resp =
      server_.handle(ranged("/1KB.jpg", "bytes=0-0,2-2,4-4,6-6"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
  // At the limit it is still honored.
  const Response ok = server_.handle(ranged("/1KB.jpg", "bytes=0-0,2-2,4-4"));
  EXPECT_EQ(ok.status, 206);
}

TEST_F(OriginServerTest, RangesDisabledIgnoresHeaderEntirely) {
  server_.config().supports_ranges = false;
  const Response resp = server_.handle(ranged("/1KB.jpg", "bytes=0-0"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
  EXPECT_FALSE(resp.headers.has("Accept-Ranges"));
}

TEST_F(OriginServerTest, IfRangeWithCurrentValidatorServesRange) {
  const Resource* res = server_.resources().find("/1KB.jpg");
  Request req = ranged("/1KB.jpg", "bytes=0-0");
  req.headers.add("If-Range", res->etag);
  EXPECT_EQ(server_.handle(req).status, 206);
  Request by_date = ranged("/1KB.jpg", "bytes=0-0");
  by_date.headers.add("If-Range", res->last_modified);
  EXPECT_EQ(server_.handle(by_date).status, 206);
}

TEST_F(OriginServerTest, IfRangeWithStaleValidatorDowngradesTo200) {
  Request req = ranged("/1KB.jpg", "bytes=0-0");
  req.headers.add("If-Range", "\"stale-etag\"");
  const Response resp = server_.handle(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 1000u);
}

TEST_F(OriginServerTest, IfRangeWithoutRangeIsIgnored) {
  Request req = ranged("/1KB.jpg", "");
  req.headers.add("If-Range", "\"stale-etag\"");
  EXPECT_EQ(server_.handle(req).status, 200);
}

TEST_F(OriginServerTest, HeadHasHeadersButNoBody) {
  Request req = ranged("/big.bin", "");
  req.method = http::Method::HEAD;
  const Response resp = server_.handle(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 0u);
  EXPECT_EQ(resp.headers.get("Content-Length"), std::to_string(1u << 20));
}

TEST_F(OriginServerTest, NonGetMethodsRejected) {
  Request req = ranged("/1KB.jpg", "");
  req.method = http::Method::POST;
  EXPECT_EQ(server_.handle(req).status, 400);
}

TEST_F(OriginServerTest, RequestLogRecordsEverything) {
  server_.handle(ranged("/1KB.jpg", "bytes=0-0"));
  server_.handle(ranged("/big.bin", ""));
  ASSERT_EQ(server_.request_log().size(), 2u);
  EXPECT_EQ(server_.request_log()[0].headers.get("Range"), "bytes=0-0");
  EXPECT_FALSE(server_.request_log()[1].headers.has("Range"));
  server_.clear_log();
  EXPECT_TRUE(server_.request_log().empty());
}

TEST_F(OriginServerTest, ExtraHeadersAppendedToEveryResponse) {
  server_.config().extra_headers = {{"Cache-Control", "max-age=60"}};
  EXPECT_EQ(server_.handle(ranged("/1KB.jpg", "")).headers.get("Cache-Control"),
            "max-age=60");
  EXPECT_EQ(server_.handle(ranged("/nope", "")).headers.get("Cache-Control"),
            "max-age=60");
}

TEST_F(OriginServerTest, DeterministicAcrossInstances) {
  OriginServer other;
  other.resources().add_synthetic("/1KB.jpg", 1000, "image/jpeg");
  const Response a = server_.handle(ranged("/1KB.jpg", ""));
  const Response b = other.handle(ranged("/1KB.jpg", ""));
  EXPECT_EQ(http::serialized_size(a), http::serialized_size(b));
  EXPECT_EQ(a.body.materialize(), b.body.materialize());
}

TEST(ResourceStore, LiteralAndLookup) {
  ResourceStore store;
  store.add_literal("/hello.txt", "hi there", "text/plain");
  const Resource* res = store.find("/hello.txt");
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->size(), 8u);
  EXPECT_EQ(res->content_type, "text/plain");
  EXPECT_FALSE(res->etag.empty());
  EXPECT_EQ(store.find("/other"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ResourceStore, SamePathSameBytes) {
  ResourceStore a, b;
  a.add_synthetic("/x.bin", 128);
  b.add_synthetic("/x.bin", 128);
  EXPECT_EQ(a.find("/x.bin")->entity.materialize(),
            b.find("/x.bin")->entity.materialize());
  // Different paths produce different content streams.
  a.add_synthetic("/y.bin", 128);
  EXPECT_NE(a.find("/x.bin")->entity.materialize(),
            a.find("/y.bin")->entity.materialize());
}

}  // namespace
}  // namespace rangeamp::origin
