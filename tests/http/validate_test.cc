#include "http/validate.h"

#include <gtest/gtest.h>

#include "http/chunked.h"
#include "http/multipart.h"
#include "http/range.h"

namespace rangeamp::http {
namespace {

RangeSet ranges(std::string_view header) {
  const auto parsed = parse_range_header(header);
  EXPECT_TRUE(parsed.has_value()) << header;
  return *parsed;
}

Response full_200(std::string body_bytes) {
  Response resp;
  resp.status = kOk;
  resp.headers.add("Content-Length", std::to_string(body_bytes.size()));
  resp.headers.add("Content-Type", "application/octet-stream");
  resp.body = Body::literal(std::move(body_bytes));
  return resp;
}

Response single_206(std::uint64_t first, std::uint64_t last,
                    std::uint64_t total, std::string body_bytes) {
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Length", std::to_string(body_bytes.size()));
  resp.headers.add("Content-Range", "bytes " + std::to_string(first) + "-" +
                                        std::to_string(last) + "/" +
                                        std::to_string(total));
  resp.headers.add("Content-Type", "application/octet-stream");
  resp.body = Body::literal(std::move(body_bytes));
  return resp;
}

TEST(ResponseValidator, CleanFullResponsePasses) {
  const ResponseValidator v;
  EXPECT_TRUE(v.validate(full_200("hello"), std::nullopt).ok());
}

TEST(ResponseValidator, CleanSingleRangePasses) {
  const ResponseValidator v;
  const auto report =
      v.validate(single_206(0, 4, 100, "hello"), ranges("bytes=0-4"));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ResponseValidator, Clean416Passes) {
  Response resp;
  resp.status = kRangeNotSatisfiable;
  resp.headers.add("Content-Range", "bytes */100");
  resp.headers.add("Content-Length", "0");
  const ResponseValidator v;
  EXPECT_TRUE(v.validate(resp, ranges("bytes=200-300")).ok());
}

TEST(ResponseValidator, CleanMultipartPasses) {
  const Body entity = Body::literal(std::string(100, 'a'));
  const std::vector<ResolvedRange> parts = {{0, 4}, {10, 19}};
  Body body = build_multipart_byteranges(entity, parts, 100, "text/plain",
                                         "BOUNDARY");
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Length", std::to_string(body.size()));
  resp.headers.add("Content-Type", multipart_content_type("BOUNDARY"));
  resp.body = std::move(body);
  const ResponseValidator v;
  const auto report = v.validate(resp, ranges("bytes=0-4,10-19"));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ResponseValidator, ContentLengthLieIsFlagged) {
  Response resp = full_200("hello");
  resp.headers.set("Content-Length", "4096");
  const ResponseValidator v;
  const auto report = v.validate(resp, std::nullopt);
  EXPECT_TRUE(report.has(ValidationCheck::kContentLengthMismatch));
  EXPECT_FALSE(report.any_fatal());  // soft: a downstream could re-measure
  EXPECT_EQ(report.declared_content_length, 4096u);
}

TEST(ResponseValidator, DuplicateDifferingContentLengthIsFatal) {
  Response resp = full_200("hello");
  resp.headers.add("Content-Length", "3");  // second, differing field
  const ResponseValidator v;
  const auto report = v.validate(resp, std::nullopt);
  EXPECT_TRUE(report.has(ValidationCheck::kDuplicateContentLength));
  EXPECT_TRUE(report.any_fatal());
  // No single authoritative length exists once the fields disagree.
  EXPECT_FALSE(report.declared_content_length.has_value());
}

TEST(ResponseValidator, DuplicateIdenticalContentLengthIsTolerated) {
  Response resp = full_200("hello");
  resp.headers.add("Content-Length", "5");  // second, identical field
  const ResponseValidator v;
  EXPECT_FALSE(v.validate(resp, std::nullopt)
                   .has(ValidationCheck::kDuplicateContentLength));
}

TEST(ResponseValidator, ContentLengthWithChunkedIsFatal) {
  Response resp = full_200("hello");
  resp.body = encode_chunked(resp.body);
  resp.headers.set("Transfer-Encoding", "chunked");  // CL kept: the smuggle
  const ResponseValidator v;
  const auto report = v.validate(resp, std::nullopt);
  EXPECT_TRUE(report.has(ValidationCheck::kContentLengthWithChunked));
  EXPECT_TRUE(report.any_fatal());
}

TEST(ResponseValidator, UndecodableChunkedIsFatal) {
  Response resp;
  resp.status = kOk;
  resp.headers.add("Transfer-Encoding", "chunked");
  resp.body = Body::literal("5\r\nhel");  // cut mid-chunk
  const ResponseValidator v;
  EXPECT_TRUE(v.validate(resp, std::nullopt)
                  .has(ValidationCheck::kChunkedFraming));
}

TEST(ResponseValidator, ChunkedBodyIsValidatedAfterDecoding) {
  // A well-framed chunked 206 whose decoded size matches its Content-Range.
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Range", "bytes 0-4/100");
  resp.headers.add("Transfer-Encoding", "chunked");
  resp.body = encode_chunked(Body::literal("hello"));
  const ResponseValidator v;
  const auto report = v.validate(resp, ranges("bytes=0-4"));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ResponseValidator, PartialWithoutContentRangeIsFlagged) {
  Response resp = single_206(0, 4, 100, "hello");
  resp.headers.remove("Content-Range");
  const ResponseValidator v;
  EXPECT_TRUE(v.validate(resp, ranges("bytes=0-4"))
                  .has(ValidationCheck::kStatusRangeAgreement));
}

TEST(ResponseValidator, FullResponseWithContentRangeIsFlagged) {
  Response resp = full_200("hello");
  resp.headers.add("Content-Range", "bytes 0-4/5");
  const ResponseValidator v;
  EXPECT_TRUE(v.validate(resp, std::nullopt)
                  .has(ValidationCheck::kStatusRangeAgreement));
}

TEST(ResponseValidator, UnsolicitedPartialIsFlagged) {
  const ResponseValidator v;
  EXPECT_TRUE(v.validate(single_206(0, 4, 100, "hello"), std::nullopt)
                  .has(ValidationCheck::kStatusRangeAgreement));
}

TEST(ResponseValidator, OutOfBoundsContentRangeIsFlagged) {
  // "bytes 100-1099/100": both endpoints past the declared total.
  const ResponseValidator v;
  Response resp = single_206(100, 1099, 100, std::string(1000, 'x'));
  EXPECT_TRUE(v.validate(resp, ranges("bytes=0-999"))
                  .has(ValidationCheck::kContentRangeBounds));
}

TEST(ResponseValidator, ContentRangeBodyLengthMismatchIsFlagged) {
  const ResponseValidator v;
  // Range claims 5 bytes, body carries 3.
  Response resp = single_206(0, 4, 100, "abc");
  resp.headers.set("Content-Length", "3");
  EXPECT_TRUE(v.validate(resp, ranges("bytes=0-4"))
                  .has(ValidationCheck::kContentRangeBounds));
}

TEST(ResponseValidator, MultipartWithIllegalBoundaryIsFatal) {
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Type",
                   "multipart/byteranges; boundary=bad{boundary}");
  resp.headers.add("Content-Length", "5");
  resp.body = Body::literal("xxxxx");
  const ResponseValidator v;
  const auto report = v.validate(resp, ranges("bytes=0-1,3-4"));
  EXPECT_TRUE(report.has(ValidationCheck::kMultipartFraming));
  EXPECT_TRUE(report.any_fatal());
}

TEST(ResponseValidator, MultipartBodyNotFramedWithBoundaryIsFatal) {
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Type", multipart_content_type("DECLARED"));
  resp.headers.add("Content-Length", "9");
  resp.body = Body::literal("--OTHER\r\n");
  const ResponseValidator v;
  EXPECT_TRUE(v.validate(resp, ranges("bytes=0-1,3-4"))
                  .has(ValidationCheck::kMultipartFraming));
}

TEST(ResponseValidator, MultipartExtraPartsAreFlagged) {
  const Body entity = Body::literal(std::string(100, 'a'));
  // Four parts where the client asked for two ranges.
  const std::vector<ResolvedRange> parts = {{0, 4}, {0, 4}, {0, 4}, {10, 19}};
  Body body = build_multipart_byteranges(entity, parts, 100, "text/plain",
                                         "BOUNDARY");
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Length", std::to_string(body.size()));
  resp.headers.add("Content-Type", multipart_content_type("BOUNDARY"));
  resp.body = std::move(body);
  const ResponseValidator v;
  const auto report = v.validate(resp, ranges("bytes=0-4,10-19"));
  EXPECT_TRUE(report.has(ValidationCheck::kMultipartPartCount));
  EXPECT_FALSE(report.any_fatal());
}

TEST(ResponseValidator, MultipartInconsistentTotalsAreFlagged) {
  // Two parts declaring different representation sizes.
  std::string body;
  body += "--B\r\nContent-Range: bytes 0-1/100\r\n\r\nab\r\n";
  body += "--B\r\nContent-Range: bytes 0-1/999\r\n\r\nab\r\n";
  body += "--B--\r\n";
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Length", std::to_string(body.size()));
  resp.headers.add("Content-Type", multipart_content_type("B"));
  resp.body = Body::literal(std::move(body));
  const ResponseValidator v;
  EXPECT_TRUE(v.validate(resp, ranges("bytes=0-1,0-1"))
                  .has(ValidationCheck::kContentRangeBounds));
}

TEST(ResponseValidator, BodyBudgetRefusesBeforeOtherChecks) {
  const ResponseValidator v({/*max_body_bytes=*/16, /*max_multipart_bytes=*/0});
  Response resp = full_200(std::string(64, 'x'));
  const auto report = v.validate(resp, std::nullopt);
  ASSERT_EQ(report.violations.size(), 1u);  // nothing else runs past budget
  EXPECT_TRUE(report.has(ValidationCheck::kBodyBudget));
  EXPECT_TRUE(report.any_fatal());
}

TEST(ResponseValidator, MultipartBudgetIsEnforced) {
  const Body entity = Body::literal(std::string(100, 'a'));
  const std::vector<ResolvedRange> parts = {{0, 99}, {0, 99}};
  Body body = build_multipart_byteranges(entity, parts, 100, "text/plain",
                                         "BOUNDARY");
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Length", std::to_string(body.size()));
  resp.headers.add("Content-Type", multipart_content_type("BOUNDARY"));
  resp.body = std::move(body);
  const ResponseValidator v({/*max_body_bytes=*/0, /*max_multipart_bytes=*/64});
  const auto report = v.validate(resp, ranges("bytes=0-99,0-99"));
  EXPECT_TRUE(report.has(ValidationCheck::kMultipartBudget));
  EXPECT_TRUE(report.any_fatal());
}

TEST(ResponseValidator, SummaryJoinsCheckNames) {
  Response resp = full_200("hello");
  resp.headers.set("Content-Length", "4096");
  resp.headers.add("Content-Range", "bytes 0-4/5");
  const ResponseValidator v;
  const auto report = v.validate(resp, std::nullopt);
  EXPECT_EQ(report.summary(), "content-length-mismatch,status-range-agreement");
}

TEST(ResponseValidator, CheckNamesAreStableAndDistinct) {
  for (std::size_t i = 0; i < kValidationCheckCount; ++i) {
    for (std::size_t j = i + 1; j < kValidationCheckCount; ++j) {
      EXPECT_NE(validation_check_name(static_cast<ValidationCheck>(i)),
                validation_check_name(static_cast<ValidationCheck>(j)));
    }
  }
  EXPECT_EQ(validation_check_name(ValidationCheck::kChunkedFraming),
            "chunked-framing");
}

}  // namespace
}  // namespace rangeamp::http
