#include "http/range.h"

#include <gtest/gtest.h>

namespace rangeamp::http {
namespace {

// ---------------------------------------------------------------------------
// Grammar: parse_range_header
// ---------------------------------------------------------------------------

TEST(ParseRange, SingleClosed) {
  const auto set = parse_range_header("bytes=0-499");
  ASSERT_TRUE(set);
  ASSERT_EQ(set->count(), 1u);
  EXPECT_EQ(set->specs[0], ByteRangeSpec::closed(0, 499));
}

TEST(ParseRange, SingleOpen) {
  const auto set = parse_range_header("bytes=9500-");
  ASSERT_TRUE(set);
  EXPECT_EQ(set->specs[0], ByteRangeSpec::open(9500));
}

TEST(ParseRange, SingleSuffix) {
  const auto set = parse_range_header("bytes=-500");
  ASSERT_TRUE(set);
  EXPECT_EQ(set->specs[0], ByteRangeSpec::suffix_of(500));
}

TEST(ParseRange, MultipleMixed) {
  const auto set = parse_range_header("bytes=1-1,-2,7-");
  ASSERT_TRUE(set);
  ASSERT_EQ(set->count(), 3u);
  EXPECT_EQ(set->specs[0], ByteRangeSpec::closed(1, 1));
  EXPECT_EQ(set->specs[1], ByteRangeSpec::suffix_of(2));
  EXPECT_EQ(set->specs[2], ByteRangeSpec::open(7));
}

TEST(ParseRange, ToleratesOwsAndEmptyListElements) {
  // RFC 7230 #rule: empty elements and OWS around elements are legal.
  const auto set = parse_range_header("bytes= 0-0 , , 5-9 ,");
  ASSERT_TRUE(set);
  ASSERT_EQ(set->count(), 2u);
  EXPECT_EQ(set->specs[1], ByteRangeSpec::closed(5, 9));
}

TEST(ParseRange, UnitIsCaseInsensitive) {
  EXPECT_TRUE(parse_range_header("Bytes=0-0"));
  EXPECT_TRUE(parse_range_header("BYTES=0-0"));
}

TEST(ParseRange, RejectsMalformed) {
  // Unknown unit.
  EXPECT_FALSE(parse_range_header("items=0-5"));
  // No unit.
  EXPECT_FALSE(parse_range_header("0-5"));
  // Empty set.
  EXPECT_FALSE(parse_range_header("bytes="));
  EXPECT_FALSE(parse_range_header("bytes=,"));
  // last < first is an invalid byte-range-spec (RFC 7233 section 2.1).
  EXPECT_FALSE(parse_range_header("bytes=5-4"));
  // Bare dash selects nothing and has no digits.
  EXPECT_FALSE(parse_range_header("bytes=-"));
  // Non-numeric positions.
  EXPECT_FALSE(parse_range_header("bytes=a-b"));
  EXPECT_FALSE(parse_range_header("bytes=1-2x"));
  EXPECT_FALSE(parse_range_header("bytes=1.5-2"));
  // Negative first position is not grammar (it would parse as suffix "-1"
  // followed by junk).
  EXPECT_FALSE(parse_range_header("bytes=-1-2"));
  // One bad spec poisons the whole header.
  EXPECT_FALSE(parse_range_header("bytes=0-0,5-4"));
  EXPECT_FALSE(parse_range_header("bytes=0-0,oops"));
}

TEST(ParseRange, SuffixZeroParsesButIsUnsatisfiable) {
  // "-0" matches the grammar; satisfiability is a resolution concern.
  const auto set = parse_range_header("bytes=-0");
  ASSERT_TRUE(set);
  EXPECT_FALSE(resolve(set->specs[0], 100).has_value());
}

TEST(ParseRange, RoundTripsThroughToString) {
  for (const char* value :
       {"bytes=0-0", "bytes=-1", "bytes=5-", "bytes=1-1,-2,7-",
        "bytes=0-,0-,0-", "bytes=8388608-16777215"}) {
    const auto set = parse_range_header(value);
    ASSERT_TRUE(set) << value;
    EXPECT_EQ(set->to_string(), value);
    const auto again = parse_range_header(set->to_string());
    ASSERT_TRUE(again);
    EXPECT_EQ(*again, *set);
  }
}

TEST(ParseRange, HugeValuesParse) {
  const auto set = parse_range_header("bytes=18446744073709551614-");
  ASSERT_TRUE(set);
  EXPECT_EQ(*set->specs[0].first, 18446744073709551614ULL);
}

TEST(ParseRange, LengthGuardBoundaries) {
  // A value of exactly the limit parses; one byte more is rejected before
  // any parsing work happens.  Trailing OWS keeps the value well-formed.
  const std::string at_limit =
      "bytes=0-0" + std::string(kMaxRangeHeaderBytes - 9, ' ');
  ASSERT_EQ(at_limit.size(), kMaxRangeHeaderBytes);
  EXPECT_TRUE(parse_range_header(at_limit));
  EXPECT_FALSE(parse_range_header(at_limit + " "));
}

TEST(ParseRange, LengthGuardIsConfigurable) {
  EXPECT_TRUE(parse_range_header("bytes=0-0", 9));
  EXPECT_FALSE(parse_range_header("bytes=0-0", 8));
  // 0 disables the guard entirely.
  const std::string huge =
      "bytes=0-0" + std::string(kMaxRangeHeaderBytes, ' ');
  EXPECT_FALSE(parse_range_header(huge));
  EXPECT_TRUE(parse_range_header(huge, 0));
}

TEST(ParseRange, GuardAdmitsTheLargestExperimentHeader) {
  // The biggest header any RangeAmp experiment emits (StackPath's OBR case,
  // thousands of "0-" specs, ~81 KB) must stay inside the default guard.
  std::string value = "bytes=0-0";
  while (value.size() < 100 * 1024) value += ",0-0";
  const auto set = parse_range_header(value);
  ASSERT_TRUE(set);
  EXPECT_GT(set->count(), 20000u);
}

// ---------------------------------------------------------------------------
// Resolution: RFC 7233 section 2.1 satisfiability
// ---------------------------------------------------------------------------

TEST(Resolve, ClosedWithinBounds) {
  const auto r = resolve(ByteRangeSpec::closed(10, 19), 100);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ResolvedRange{10, 19}));
  EXPECT_EQ(r->length(), 10u);
}

TEST(Resolve, ClosedClampsLastToEnd) {
  const auto r = resolve(ByteRangeSpec::closed(90, 1000), 100);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ResolvedRange{90, 99}));
}

TEST(Resolve, FirstAtOrBeyondSizeIsUnsatisfiable) {
  EXPECT_FALSE(resolve(ByteRangeSpec::closed(100, 100), 100));
  EXPECT_FALSE(resolve(ByteRangeSpec::open(100), 100));
  EXPECT_TRUE(resolve(ByteRangeSpec::closed(99, 99), 100));
}

TEST(Resolve, OpenRunsToEnd) {
  const auto r = resolve(ByteRangeSpec::open(40), 100);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ResolvedRange{40, 99}));
}

TEST(Resolve, SuffixTakesLastBytes) {
  const auto r = resolve(ByteRangeSpec::suffix_of(2), 1000);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ResolvedRange{998, 999}));
}

TEST(Resolve, SuffixLargerThanResourceIsWholeResource) {
  const auto r = resolve(ByteRangeSpec::suffix_of(5000), 100);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ResolvedRange{0, 99}));
}

TEST(Resolve, EmptyResourceSatisfiesNothing) {
  EXPECT_FALSE(resolve(ByteRangeSpec::closed(0, 0), 0));
  EXPECT_FALSE(resolve(ByteRangeSpec::suffix_of(5), 0));
  EXPECT_FALSE(resolve(ByteRangeSpec::open(0), 0));
}

TEST(ResolveAll, DropsUnsatisfiableMembers) {
  RangeSet set;
  set.specs = {ByteRangeSpec::closed(0, 0), ByteRangeSpec::closed(500, 600),
               ByteRangeSpec::suffix_of(1)};
  const auto resolved = resolve_all(set, 100);
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0], (ResolvedRange{0, 0}));
  EXPECT_EQ(resolved[1], (ResolvedRange{99, 99}));
}

TEST(ResolveAll, PreservesRequestOrder) {
  RangeSet set;
  set.specs = {ByteRangeSpec::closed(50, 59), ByteRangeSpec::closed(0, 9)};
  const auto resolved = resolve_all(set, 100);
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0].first, 50u);
  EXPECT_EQ(resolved[1].first, 0u);
}

// ---------------------------------------------------------------------------
// Range-set properties
// ---------------------------------------------------------------------------

TEST(RangeProperties, OverlapDetection) {
  EXPECT_TRUE((ResolvedRange{0, 10}).overlaps({10, 20}));
  EXPECT_TRUE((ResolvedRange{5, 15}).overlaps({0, 30}));
  EXPECT_FALSE((ResolvedRange{0, 9}).overlaps({10, 20}));
  EXPECT_TRUE(any_overlap({{0, 99}, {50, 60}}));
  EXPECT_FALSE(any_overlap({{0, 9}, {10, 19}, {30, 40}}));
  EXPECT_FALSE(any_overlap({}));
  EXPECT_FALSE(any_overlap({{0, 10}}));
}

TEST(RangeProperties, OverlappingPairCount) {
  // n identical open ranges -> n*(n-1)/2 overlapping pairs.
  std::vector<ResolvedRange> same(5, ResolvedRange{0, 99});
  EXPECT_EQ(overlapping_pair_count(same), 10u);
  EXPECT_EQ(overlapping_pair_count({{0, 9}, {10, 19}}), 0u);
}

TEST(RangeProperties, AscendingDisjoint) {
  EXPECT_TRUE(is_ascending_disjoint({{0, 9}, {10, 19}, {30, 40}}));
  EXPECT_FALSE(is_ascending_disjoint({{10, 19}, {0, 9}}));
  EXPECT_FALSE(is_ascending_disjoint({{0, 10}, {10, 20}}));
  EXPECT_TRUE(is_ascending_disjoint({}));
  EXPECT_TRUE(is_ascending_disjoint({{5, 5}}));
}

TEST(RangeProperties, CoalesceMergesOverlappingAndAdjacent) {
  const auto merged = coalesce({{10, 20}, {0, 5}, {6, 9}, {50, 60}, {15, 30}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (ResolvedRange{0, 30}));
  EXPECT_EQ(merged[1], (ResolvedRange{50, 60}));
}

TEST(RangeProperties, CoalesceIdentityOnDisjoint) {
  const std::vector<ResolvedRange> disjoint{{0, 1}, {3, 4}, {100, 200}};
  EXPECT_EQ(coalesce(disjoint), disjoint);
}

TEST(RangeProperties, TotalSelectedBytesCountsOverlapsMultiply) {
  // The OBR payload arithmetic: n copies of the whole resource.
  std::vector<ResolvedRange> ranges(7, ResolvedRange{0, 1023});
  EXPECT_EQ(total_selected_bytes(ranges), 7u * 1024u);
}

// ---------------------------------------------------------------------------
// Content-Range
// ---------------------------------------------------------------------------

TEST(ContentRangeFormat, FormatsAndParses) {
  EXPECT_EQ(content_range({0, 0}, 1000), "bytes 0-0/1000");
  EXPECT_EQ(content_range({998, 999}, 1000), "bytes 998-999/1000");
  EXPECT_EQ(content_range_unsatisfied(100), "bytes */100");

  const auto cr = parse_content_range("bytes 0-0/1000");
  ASSERT_TRUE(cr);
  EXPECT_EQ(cr->range, (ResolvedRange{0, 0}));
  EXPECT_EQ(cr->resource_size, 1000u);
}

TEST(ContentRangeFormat, ParseRejectsNonsense) {
  EXPECT_FALSE(parse_content_range("bytes */100"));  // unsatisfied form
  EXPECT_FALSE(parse_content_range("bytes 5-4/100"));
  EXPECT_FALSE(parse_content_range("bytes 0-100/100"));  // last >= size
  EXPECT_FALSE(parse_content_range("items 0-0/10"));
  EXPECT_FALSE(parse_content_range("bytes 0-0"));
}

TEST(ContentRangeFormat, RoundTrip) {
  const ResolvedRange r{8388608, 16777215};
  const auto cr = parse_content_range(content_range(r, 26214400));
  ASSERT_TRUE(cr);
  EXPECT_EQ(cr->range, r);
  EXPECT_EQ(cr->resource_size, 26214400u);
}

// ---------------------------------------------------------------------------
// Parameterized property sweep: resolution invariants over many sizes
// ---------------------------------------------------------------------------

class ResolveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResolveProperty, ResolvedRangesAlwaysWithinBounds) {
  const std::uint64_t size = GetParam();
  const std::vector<ByteRangeSpec> specs = {
      ByteRangeSpec::closed(0, 0),
      ByteRangeSpec::closed(size / 2, size),
      ByteRangeSpec::closed(size - 1, size + 100),
      ByteRangeSpec::open(0),
      ByteRangeSpec::open(size / 3),
      ByteRangeSpec::suffix_of(1),
      ByteRangeSpec::suffix_of(size),
      ByteRangeSpec::suffix_of(size * 2),
  };
  for (const auto& spec : specs) {
    const auto r = resolve(spec, size);
    if (!r) continue;
    EXPECT_LE(r->first, r->last);
    EXPECT_LT(r->last, size);
    EXPECT_GE(r->length(), 1u);
    EXPECT_LE(r->length(), size);
  }
}

TEST_P(ResolveProperty, CoalesceIsIdempotentAndConserving) {
  const std::uint64_t size = GetParam();
  std::vector<ResolvedRange> ranges;
  for (std::uint64_t i = 0; i + 1 < size && ranges.size() < 20; i += size / 7 + 1) {
    ranges.push_back({i, std::min(size - 1, i + size / 5)});
  }
  const auto once = coalesce(ranges);
  EXPECT_EQ(coalesce(once), once);
  EXPECT_TRUE(is_ascending_disjoint(once));
  // Coalescing never selects more bytes than the raw set.
  EXPECT_LE(total_selected_bytes(once), std::max(total_selected_bytes(ranges),
                                                 static_cast<std::uint64_t>(0)));
  // And never loses coverage: every original first/last is inside some
  // merged range.
  for (const auto& r : ranges) {
    bool first_covered = false, last_covered = false;
    for (const auto& m : once) {
      if (r.first >= m.first && r.first <= m.last) first_covered = true;
      if (r.last >= m.first && r.last <= m.last) last_covered = true;
    }
    EXPECT_TRUE(first_covered && last_covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ResolveProperty,
                         ::testing::Values(1, 2, 3, 16, 100, 1024, 65537,
                                           1u << 20, 26214400));

}  // namespace
}  // namespace rangeamp::http
