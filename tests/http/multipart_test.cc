#include "http/multipart.h"

#include <gtest/gtest.h>

namespace rangeamp::http {
namespace {

constexpr std::string_view kBoundary = "THIS_STRING_SEPARATES";
constexpr std::string_view kType = "image/jpeg";

Body test_entity(std::uint64_t size) { return Body::synthetic(77, 0, size); }

TEST(Multipart, FramingMatchesRfcExample) {
  // The Fig 2d shape of the paper: two parts of a 1000-byte resource.
  const Body entity = test_entity(1000);
  const std::vector<ResolvedRange> ranges{{1, 1}, {998, 999}};
  const Body body = build_multipart_byteranges(entity, ranges, 1000, kType,
                                               kBoundary);
  const std::string bytes = body.materialize();
  EXPECT_NE(bytes.find("--THIS_STRING_SEPARATES\r\n"), std::string::npos);
  EXPECT_NE(bytes.find("Content-Range: bytes 1-1/1000"), std::string::npos);
  EXPECT_NE(bytes.find("Content-Range: bytes 998-999/1000"), std::string::npos);
  EXPECT_TRUE(bytes.ends_with("--THIS_STRING_SEPARATES--\r\n"));
}

TEST(Multipart, SizeHelperMatchesActualBody) {
  const Body entity = test_entity(4096);
  for (const std::size_t parts : {1u, 2u, 5u, 64u}) {
    std::vector<ResolvedRange> ranges(parts, ResolvedRange{0, 4095});
    const Body body =
        build_multipart_byteranges(entity, ranges, 4096, kType, kBoundary);
    EXPECT_EQ(body.size(),
              multipart_byteranges_size(ranges, 4096, kType, kBoundary))
        << parts;
  }
}

TEST(Multipart, ParseRecoversPartsExactly) {
  const Body entity = test_entity(500);
  const std::string all = entity.materialize();
  const std::vector<ResolvedRange> ranges{{0, 9}, {100, 199}, {499, 499}};
  const Body body =
      build_multipart_byteranges(entity, ranges, 500, kType, kBoundary);
  const auto parts = parse_multipart_byteranges(body.materialize(), kBoundary);
  ASSERT_TRUE(parts);
  ASSERT_EQ(parts->size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*parts)[i].range, ranges[i]);
    EXPECT_EQ((*parts)[i].resource_size, 500u);
    EXPECT_EQ((*parts)[i].content_type, kType);
    EXPECT_EQ((*parts)[i].payload.materialize(),
              all.substr(static_cast<std::size_t>(ranges[i].first),
                         static_cast<std::size_t>(ranges[i].length())));
  }
}

TEST(Multipart, OverlappingPartsDuplicatePayload) {
  // The OBR attack body shape: n identical whole-resource parts.
  const Body entity = test_entity(1024);
  const std::size_t n = 16;
  std::vector<ResolvedRange> ranges(n, ResolvedRange{0, 1023});
  const Body body =
      build_multipart_byteranges(entity, ranges, 1024, kType, kBoundary);
  EXPECT_GE(body.size(), n * 1024u);
  const auto parts = parse_multipart_byteranges(body.materialize(), kBoundary);
  ASSERT_TRUE(parts);
  EXPECT_EQ(parts->size(), n);
  const std::string payload = entity.materialize();
  for (const auto& part : *parts) {
    EXPECT_EQ(part.payload.materialize(), payload);
  }
}

TEST(Multipart, PerPartOverheadIsBoundaryPlusHeaders) {
  // Table V arithmetic: per-part cost = len(payload) + len(boundary) + 82
  // with "application/octet-stream" parts of a 1 KB resource.
  const Body entity = test_entity(1024);
  const std::vector<ResolvedRange> one{{0, 1023}};
  const std::vector<ResolvedRange> two{{0, 1023}, {0, 1023}};
  const auto size1 = multipart_byteranges_size(one, 1024,
                                               "application/octet-stream", "b");
  const auto size2 = multipart_byteranges_size(two, 1024,
                                               "application/octet-stream", "b");
  EXPECT_EQ(size2 - size1, 1024u + 1 /*boundary*/ + 82u);
}

TEST(Multipart, ContentTypeHelpers) {
  EXPECT_EQ(multipart_content_type("xyz"), "multipart/byteranges; boundary=xyz");
  EXPECT_EQ(boundary_from_content_type("multipart/byteranges; boundary=xyz"),
            "xyz");
  EXPECT_EQ(boundary_from_content_type("multipart/byteranges; boundary=\"q q\""),
            "q q");
  EXPECT_EQ(
      boundary_from_content_type("multipart/byteranges; boundary=abc; foo=1"),
      "abc");
  EXPECT_FALSE(boundary_from_content_type("image/jpeg"));
  EXPECT_FALSE(boundary_from_content_type("multipart/byteranges"));
  EXPECT_FALSE(boundary_from_content_type("multipart/byteranges; boundary="));
}

TEST(Multipart, BoundaryValidationFollowsRfc2046) {
  // Quoted boundaries may carry bchars the bare form cannot end with.
  EXPECT_EQ(boundary_from_content_type(
                "multipart/byteranges; boundary=\"gc0p4Jq0M:2Yt08j34c0p\""),
            "gc0p4Jq0M:2Yt08j34c0p");
  EXPECT_EQ(boundary_from_content_type(
                "multipart/byteranges; boundary=a'()+_,-./:=?b"),
            "a'()+_,-./:=?b");
  // Exactly 70 characters is the RFC 2046 maximum; 71 is rejected.
  const std::string max(70, 'a');
  EXPECT_EQ(boundary_from_content_type(
                "multipart/byteranges; boundary=" + max),
            max);
  EXPECT_FALSE(boundary_from_content_type(
      "multipart/byteranges; boundary=" + max + "a"));
  // Characters outside bchars must be rejected, not smuggled downstream.
  EXPECT_FALSE(boundary_from_content_type(
      "multipart/byteranges; boundary=bad{boundary}"));
  EXPECT_FALSE(
      boundary_from_content_type("multipart/byteranges; boundary=\"a\rb\""));
  EXPECT_FALSE(
      boundary_from_content_type("multipart/byteranges; boundary=a\"b"));
  // A space is a bchar but may not terminate the boundary.
  EXPECT_FALSE(
      boundary_from_content_type("multipart/byteranges; boundary=\"ab \""));
}

TEST(Multipart, ParseRejectsTruncatedBody) {
  const Body entity = test_entity(100);
  const std::vector<ResolvedRange> ranges{{0, 99}};
  const std::string good =
      build_multipart_byteranges(entity, ranges, 100, kType, kBoundary)
          .materialize();
  // Chop off the closing delimiter.
  EXPECT_FALSE(parse_multipart_byteranges(good.substr(0, good.size() - 26),
                                          kBoundary));
  // Wrong boundary.
  EXPECT_FALSE(parse_multipart_byteranges(good, "WRONG"));
  // Missing Content-Range in a part.
  EXPECT_FALSE(parse_multipart_byteranges(
      "--B\r\nContent-Type: a/b\r\n\r\nxx\r\n--B--\r\n", "B"));
}

TEST(Multipart, EmptyRangeListYieldsOnlyClosingDelimiter) {
  const Body entity = test_entity(10);
  const Body body = build_multipart_byteranges(entity, {}, 10, kType, kBoundary);
  EXPECT_EQ(body.materialize(), "--THIS_STRING_SEPARATES--\r\n");
  const auto parts = parse_multipart_byteranges(body.materialize(), kBoundary);
  ASSERT_TRUE(parts);
  EXPECT_TRUE(parts->empty());
}

}  // namespace
}  // namespace rangeamp::http
