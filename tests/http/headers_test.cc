#include "http/headers.h"

#include <gtest/gtest.h>

namespace rangeamp::http {
namespace {

TEST(IEquals, MatchesCaseInsensitively) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_TRUE(iequals("RANGE", "range"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("Range", "Ranges"));
  EXPECT_FALSE(iequals("Range", "Rang"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(Headers, AddKeepsDuplicatesAndOrder) {
  Headers h;
  h.add("Via", "1.1 a");
  h.add("X-Cache", "MISS");
  h.add("Via", "1.1 b");
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h.fields()[0].value, "1.1 a");
  EXPECT_EQ(h.fields()[1].name, "X-Cache");
  EXPECT_EQ(h.fields()[2].value, "1.1 b");
  const auto all = h.get_all("via");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "1.1 a");
  EXPECT_EQ(all[1], "1.1 b");
}

TEST(Headers, GetIsCaseInsensitive) {
  Headers h{{"Content-Length", "42"}};
  EXPECT_EQ(h.get("content-length"), "42");
  EXPECT_EQ(h.get("CONTENT-LENGTH"), "42");
  EXPECT_FALSE(h.get("Content-Range").has_value());
}

TEST(Headers, GetOrFallsBack) {
  Headers h;
  EXPECT_EQ(h.get_or("Host", "none"), "none");
  h.add("Host", "example.com");
  EXPECT_EQ(h.get_or("Host", "none"), "example.com");
}

TEST(Headers, SetReplacesFirstAndDropsRest) {
  Headers h;
  h.add("Via", "1.1 a");
  h.add("X", "y");
  h.add("Via", "1.1 b");
  h.set("Via", "1.1 c");
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.fields()[0].name, "Via");
  EXPECT_EQ(h.fields()[0].value, "1.1 c");
  EXPECT_EQ(h.fields()[1].name, "X");
}

TEST(Headers, SetAppendsWhenAbsent) {
  Headers h;
  h.set("Range", "bytes=0-0");
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h.get("Range"), "bytes=0-0");
}

TEST(Headers, RemoveDropsAllMatches) {
  Headers h;
  h.add("Via", "a");
  h.add("via", "b");
  h.add("Host", "x");
  EXPECT_EQ(h.remove("VIA"), 2u);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.remove("Nope"), 0u);
}

TEST(Headers, SerializedSizeIsExact) {
  Headers h;
  EXPECT_EQ(h.serialized_size(), 0u);
  h.add("Host", "example.com");  // "Host: example.com\r\n" = 19
  EXPECT_EQ(h.serialized_size(), 19u);
  h.add("Range", "bytes=0-0");  // "Range: bytes=0-0\r\n" = 18
  EXPECT_EQ(h.serialized_size(), 37u);
}

TEST(HeaderField, LineSizeExcludesCrlf) {
  HeaderField f{"Range", "bytes=0-0"};
  // "Range: bytes=0-0" = 5 + 2 + 9
  EXPECT_EQ(f.line_size(), 16u);
}

}  // namespace
}  // namespace rangeamp::http
