#include "http/date.h"

#include <gtest/gtest.h>

namespace rangeamp::http {
namespace {

TEST(HttpDate, FormatsKnownInstants) {
  EXPECT_EQ(format_http_date(0), "Thu, 01 Jan 1970 00:00:00 GMT");
  // The RFC 7231 example instant.
  EXPECT_EQ(format_http_date(784111777), "Sun, 06 Nov 1994 08:49:37 GMT");
  // The testbed's frozen clocks.
  EXPECT_EQ(format_http_date(1594005753), "Mon, 06 Jul 2020 03:22:33 GMT");
}

TEST(HttpDate, ParsesWhatItFormats) {
  for (const std::int64_t ts :
       {0LL, 1LL, 86399LL, 86400LL, 784111777LL, 951868800LL /* 2000-02-29 */,
        1594005753LL, 4102444800LL /* 2100-01-01 */}) {
    const std::string text = format_http_date(ts);
    const auto parsed = parse_http_date(text);
    ASSERT_TRUE(parsed) << text;
    EXPECT_EQ(*parsed, ts) << text;
  }
}

TEST(HttpDate, ParsesRfcExample) {
  const auto parsed = parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, 784111777);
}

TEST(HttpDate, RejectsMalformedDates) {
  EXPECT_FALSE(parse_http_date(""));
  EXPECT_FALSE(parse_http_date("Sun, 06 Nov 1994 08:49:37"));        // no GMT
  EXPECT_FALSE(parse_http_date("Sun, 06 Nov 1994 08:49:37 UTC"));    // not GMT
  EXPECT_FALSE(parse_http_date("Sunday, 06-Nov-94 08:49:37 GMT"));   // RFC 850
  EXPECT_FALSE(parse_http_date("Sun Nov  6 08:49:37 1994"));         // asctime
  EXPECT_FALSE(parse_http_date("Sun, 32 Nov 1994 08:49:37 GMT"));    // day 32
  EXPECT_FALSE(parse_http_date("Sun, 06 Foo 1994 08:49:37 GMT"));    // month
  EXPECT_FALSE(parse_http_date("Sun, 06 Nov 1994 24:49:37 GMT"));    // hour 24
  EXPECT_FALSE(parse_http_date("Xxx, 06 Nov 1994 08:49:37 GMT"));    // weekday
  // Right shape, wrong weekday for the date: rejected by consistency check.
  EXPECT_FALSE(parse_http_date("Mon, 06 Nov 1994 08:49:37 GMT"));
}

TEST(HttpDate, OrderingMatchesInstants) {
  const auto early = parse_http_date("Mon, 06 Jul 2020 11:22:33 GMT");
  const auto late = parse_http_date("Tue, 07 Jul 2020 03:14:15 GMT");
  ASSERT_TRUE(early && late);
  EXPECT_LT(*early, *late);
}

}  // namespace
}  // namespace rangeamp::http
