#include "http/message.h"

#include <gtest/gtest.h>

#include "http/serialize.h"

namespace rangeamp::http {
namespace {

TEST(Message, PathAndQuerySplit) {
  Request req;
  req.target = "/a/b.bin?x=1&y=2";
  EXPECT_EQ(req.path(), "/a/b.bin");
  EXPECT_EQ(req.query(), "x=1&y=2");
  req.target = "/plain";
  EXPECT_EQ(req.path(), "/plain");
  EXPECT_EQ(req.query(), "");
  req.target = "/q?";
  EXPECT_EQ(req.path(), "/q");
  EXPECT_EQ(req.query(), "");
}

TEST(Message, RequestLineSizeMatchesSerializedLine) {
  Request req = make_get("example.com", "/x");
  // "GET /x HTTP/1.1" = 15
  EXPECT_EQ(req.request_line_size(), 15u);
  const std::string bytes = to_bytes(req);
  EXPECT_EQ(bytes.find("\r\n"), req.request_line_size());
}

TEST(Message, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(206), "Partial Content");
  EXPECT_EQ(reason_phrase(416), "Range Not Satisfiable");
  EXPECT_EQ(reason_phrase(431), "Request Header Fields Too Large");
  EXPECT_EQ(reason_phrase(299), "Unknown");
}

TEST(Message, MakeResponseSetsContentLength) {
  const Response resp = make_response(kOk, Body::literal("abcd"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers.get("Content-Length"), "4");
  EXPECT_TRUE(resp.ok());
  EXPECT_FALSE(make_response(kNotFound).ok());
}

TEST(Serialize, RequestBytesAreExact) {
  Request req = make_get("example.com", "/1KB.jpg");
  req.headers.add("Range", "bytes=0-0");
  const std::string bytes = to_bytes(req);
  EXPECT_EQ(bytes,
            "GET /1KB.jpg HTTP/1.1\r\n"
            "Host: example.com\r\n"
            "Range: bytes=0-0\r\n"
            "\r\n");
  EXPECT_EQ(serialized_size(req), bytes.size());
}

TEST(Serialize, ResponseBytesAreExact) {
  Response resp;
  resp.status = kPartialContent;
  resp.headers.add("Content-Length", "1");
  resp.headers.add("Content-Range", "bytes 0-0/1000");
  resp.body = Body::literal("x");
  const std::string bytes = to_bytes(resp);
  EXPECT_EQ(bytes,
            "HTTP/1.1 206 Partial Content\r\n"
            "Content-Length: 1\r\n"
            "Content-Range: bytes 0-0/1000\r\n"
            "\r\nx");
  EXPECT_EQ(serialized_size(resp), bytes.size());
}

TEST(Serialize, SizeOfSyntheticBodyWithoutMaterializing) {
  Response resp = make_response(kOk, Body::synthetic(1, 0, 25u << 20));
  // status line "HTTP/1.1 200 OK" 15 + CRLF 2 +
  // "Content-Length: 26214400\r\n" 26 + blank 2.
  EXPECT_EQ(serialized_size(resp), 15u + 2 + 26 + 2 + (25u << 20));
}

TEST(Serialize, TruncatedSizeCapsBodyOnly) {
  Response resp = make_response(kOk, Body::synthetic(1, 0, 1000));
  const auto full = serialized_size(resp);
  EXPECT_EQ(serialized_size_truncated(resp, 100), full - 900);
  EXPECT_EQ(serialized_size_truncated(resp, 0), full - 1000);
  EXPECT_EQ(serialized_size_truncated(resp, 5000), full);
}

TEST(Parse, RequestRoundTrip) {
  Request req = make_get("h.example", "/p?q=1");
  req.headers.add("Range", "bytes=-2");
  const auto parsed = parse_request(to_bytes(req));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, Method::GET);
  EXPECT_EQ(parsed->target, "/p?q=1");
  EXPECT_EQ(parsed->headers.get("Host"), "h.example");
  EXPECT_EQ(parsed->headers.get("Range"), "bytes=-2");
}

TEST(Parse, ResponseRoundTrip) {
  Response resp = make_response(kPartialContent, Body::literal("abc"));
  resp.headers.add("Content-Range", "bytes 0-2/10");
  const auto parsed = parse_response(to_bytes(resp));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, 206);
  EXPECT_EQ(parsed->body.materialize(), "abc");
  EXPECT_EQ(parsed->headers.get("Content-Range"), "bytes 0-2/10");
}

TEST(Parse, RejectsGarbage) {
  EXPECT_FALSE(parse_request("not http"));
  EXPECT_FALSE(parse_request("GET /\r\n\r\n"));           // missing version
  EXPECT_FALSE(parse_request("BREW /pot HTTP/1.1\r\n\r\n"));  // unknown method
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"));
  EXPECT_FALSE(parse_response("HTTP/1.1 banana OK\r\n\r\n"));
  EXPECT_FALSE(parse_response("HTTP/1.1 99 Too Low\r\n\r\n"));
  // Declared body longer than payload.
  EXPECT_FALSE(parse_response("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc"));
}

TEST(Parse, HeaderValueOwsIsTrimmed) {
  const auto parsed =
      parse_request("GET / HTTP/1.1\r\nHost:   spaced.example  \r\n\r\n");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->headers.get("Host"), "spaced.example");
}

TEST(Parse, MethodNames) {
  for (Method m : {Method::GET, Method::HEAD, Method::POST, Method::PUT,
                   Method::DELETE, Method::OPTIONS}) {
    Request req;
    req.method = m;
    req.headers.add("Host", "x");
    const auto parsed = parse_request(to_bytes(req));
    ASSERT_TRUE(parsed) << method_name(m);
    EXPECT_EQ(parsed->method, m);
  }
}

}  // namespace
}  // namespace rangeamp::http
