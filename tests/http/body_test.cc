#include "http/body.h"

#include <gtest/gtest.h>

#include <vector>

namespace rangeamp::http {
namespace {

TEST(SyntheticByte, DeterministicInSeedAndOffset) {
  EXPECT_EQ(synthetic_byte(1, 0), synthetic_byte(1, 0));
  EXPECT_EQ(synthetic_byte(7, 123456), synthetic_byte(7, 123456));
  // Different seeds/offsets should (for these samples) differ.
  EXPECT_NE(synthetic_byte(1, 0), synthetic_byte(2, 0));
}

TEST(Body, LiteralRoundTrip) {
  const Body b = Body::literal("hello world");
  EXPECT_EQ(b.size(), 11u);
  EXPECT_EQ(b.materialize(), "hello world");
  EXPECT_FALSE(b.empty());
}

TEST(Body, EmptyBody) {
  Body b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.materialize(), "");
}

TEST(Body, SyntheticSizeIsO1AndConsistent) {
  const Body b = Body::synthetic(42, 0, 25u << 20);
  EXPECT_EQ(b.size(), 25u << 20);
  // at() agrees with materialize() on a small body.
  const Body small = Body::synthetic(42, 0, 64);
  const std::string bytes = small.materialize();
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(bytes[i]), small.at(i)) << i;
  }
}

TEST(Body, SliceOfSyntheticEqualsSubstringOfWhole) {
  const Body whole = Body::synthetic(9, 0, 1024);
  const std::string all = whole.materialize();
  const Body slice = whole.slice(100, 200);
  EXPECT_EQ(slice.size(), 200u);
  EXPECT_EQ(slice.materialize(), all.substr(100, 200));
}

TEST(Body, SliceAcrossMixedChunks) {
  Body b = Body::literal("header:");
  b.append_synthetic(5, 0, 100);
  b.append_literal(":footer");
  const std::string all = b.materialize();
  ASSERT_EQ(all.size(), 114u);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> cases{
      {0, 114}, {3, 20}, {6, 2}, {7, 100}, {106, 8}, {113, 1}, {50, 0}};
  for (const auto& [first, len] : cases) {
    EXPECT_EQ(b.slice(first, len).materialize(),
              all.substr(static_cast<std::size_t>(first), static_cast<std::size_t>(len)))
        << first << "+" << len;
  }
}

TEST(Body, AppendMergesAdjacentChunks) {
  Body b;
  b.append_literal("ab");
  b.append_literal("cd");
  EXPECT_EQ(b.chunks().size(), 1u);
  b.append_synthetic(3, 0, 10);
  b.append_synthetic(3, 10, 10);  // contiguous -> merged
  EXPECT_EQ(b.chunks().size(), 2u);
  b.append_synthetic(3, 100, 5);  // gap -> new chunk
  EXPECT_EQ(b.chunks().size(), 3u);
  b.append_synthetic(4, 105, 5);  // different seed -> new chunk
  EXPECT_EQ(b.chunks().size(), 4u);
  EXPECT_EQ(b.size(), 4u + 20u + 5u + 5u);
}

TEST(Body, AppendIgnoresEmptyChunks) {
  Body b;
  b.append_literal("");
  b.append_synthetic(1, 0, 0);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.chunks().empty());
}

TEST(Body, TruncateShortensAndIsIdempotent) {
  Body b = Body::synthetic(8, 0, 1000);
  const std::string before = b.materialize();
  b.truncate(300);
  EXPECT_EQ(b.size(), 300u);
  EXPECT_EQ(b.materialize(), before.substr(0, 300));
  b.truncate(300);
  EXPECT_EQ(b.size(), 300u);
  b.truncate(1000);  // larger than current: no-op
  EXPECT_EQ(b.size(), 300u);
}

TEST(Body, EqualityComparesLogicalBytes) {
  // Same logical bytes, different chunking.
  Body a = Body::synthetic(6, 0, 50);
  Body b;
  b.append_synthetic(6, 0, 20);
  b.append_synthetic(6, 20, 30);
  EXPECT_EQ(a, b);
  Body c = Body::literal(a.materialize());
  EXPECT_EQ(a, c);
  Body d = Body::synthetic(6, 1, 50);
  EXPECT_NE(a, d);
  EXPECT_NE(a, Body::synthetic(6, 0, 49));
}

TEST(Body, AppendBodyConcatenates) {
  Body a = Body::literal("xy");
  Body b = Body::synthetic(2, 0, 8);
  Body c;
  c.append_body(a);
  c.append_body(b);
  EXPECT_EQ(c.size(), 10u);
  EXPECT_EQ(c.materialize(), a.materialize() + b.materialize());
}

TEST(Body, SliceWholeBodyIsIdentity) {
  Body b;
  b.append_literal("head");
  b.append_synthetic(11, 7, 33);
  const Body s = b.slice(0, b.size());
  EXPECT_EQ(s, b);
}

}  // namespace
}  // namespace rangeamp::http
