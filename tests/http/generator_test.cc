#include "http/generator.h"

#include <gtest/gtest.h>

namespace rangeamp::http {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a{123}, b{123}, c{124};
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  Rng a2{123};
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, BetweenStaysInBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.between(5, 5), 5u);
}

TEST(Rng, ChanceZeroAndOne) {
  Rng rng{99};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Generator, CorpusIsDeterministic) {
  const auto a = generate_corpus(2020, 70, 1 << 20);
  const auto b = generate_corpus(2020, 70, 1 << 20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].set, b[i].set) << i;
    EXPECT_EQ(a[i].shape, b[i].shape);
  }
  const auto c = generate_corpus(2021, 70, 1 << 20);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].set == c[i].set)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, CoversAllShapes) {
  const auto corpus = generate_corpus(1, 14, 4096);
  std::size_t shapes_seen = 0;
  for (const auto shape :
       {RangeShape::kSingleClosed, RangeShape::kSingleOpen,
        RangeShape::kSingleSuffix, RangeShape::kTinyClosed,
        RangeShape::kMultiDisjoint, RangeShape::kMultiOverlapping,
        RangeShape::kManySmall}) {
    for (const auto& g : corpus) {
      if (g.shape == shape) {
        ++shapes_seen;
        break;
      }
    }
  }
  EXPECT_EQ(shapes_seen, 7u);
}

TEST(Generator, ShapeNamesAreDistinct) {
  EXPECT_NE(shape_name(RangeShape::kSingleClosed),
            shape_name(RangeShape::kManySmall));
  EXPECT_EQ(shape_name(RangeShape::kTinyClosed), "bytes=k-k");
}

// Property sweep: every generated set is grammar-valid, round-trips, and is
// satisfiable against its resource size; shape-specific invariants hold.
class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(GeneratorProperty, AllGeneratedSetsAreValidAndSatisfiable) {
  const auto [seed, size] = GetParam();
  const auto corpus = generate_corpus(seed, 140, size);
  ASSERT_EQ(corpus.size(), 140u);
  for (const auto& g : corpus) {
    const std::string value = g.set.to_string();
    const auto parsed = parse_range_header(value);
    ASSERT_TRUE(parsed) << value;
    EXPECT_EQ(*parsed, g.set);

    const auto resolved = resolve_all(g.set, size);
    EXPECT_FALSE(resolved.empty()) << value << " size=" << size;

    switch (g.shape) {
      case RangeShape::kTinyClosed:
        ASSERT_EQ(g.set.count(), 1u);
        EXPECT_EQ(resolved[0].length(), 1u);
        break;
      case RangeShape::kMultiDisjoint:
        EXPECT_TRUE(is_ascending_disjoint(resolved)) << value;
        break;
      case RangeShape::kMultiOverlapping:
        EXPECT_GE(g.set.count(), 3u);
        EXPECT_TRUE(any_overlap(resolved)) << value;
        break;
      case RangeShape::kManySmall:
        EXPECT_GE(g.set.count(), 8u);
        for (const auto& r : resolved) EXPECT_EQ(r.length(), 1u);
        break;
      default:
        EXPECT_EQ(g.set.count(), 1u);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, GeneratorProperty,
    ::testing::Combine(::testing::Values(1, 42, 2020, 999983),
                       ::testing::Values(16, 1024, 1u << 20, 25u << 20)));

}  // namespace
}  // namespace rangeamp::http
