#include "http/chunked.h"

#include <gtest/gtest.h>

namespace rangeamp::http {
namespace {

TEST(Chunked, EncodeSmallBody) {
  const Body framed = encode_chunked(Body::literal("hello"), 8);
  EXPECT_EQ(framed.materialize(), "5\r\nhello\r\n0\r\n\r\n");
}

TEST(Chunked, EncodeSplitsAtChunkSize) {
  const Body framed = encode_chunked(Body::literal("abcdefghij"), 4);
  EXPECT_EQ(framed.materialize(),
            "4\r\nabcd\r\n4\r\nefgh\r\n2\r\nij\r\n0\r\n\r\n");
}

TEST(Chunked, EmptyBodyIsJustTerminator) {
  EXPECT_EQ(encode_chunked(Body{}, 8).materialize(), "0\r\n\r\n");
}

TEST(Chunked, SizeHelperMatchesEncoding) {
  for (const std::uint64_t size : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull,
                                   8192ull, 100000ull}) {
    const Body body = Body::synthetic(13, 0, size);
    EXPECT_EQ(encode_chunked(body).size(), chunked_size(size)) << size;
    EXPECT_EQ(encode_chunked(body, 100).size(), chunked_size(size, 100)) << size;
  }
}

TEST(Chunked, RoundTrip) {
  const Body body = Body::synthetic(21, 0, 50000);
  const Body framed = encode_chunked(body);
  const auto decoded = decode_chunked(framed.materialize());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, body);
}

TEST(Chunked, DecodeAcceptsExtensionsAndTrailers) {
  const auto decoded = decode_chunked(
      "5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n");
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->materialize(), "hello");
}

TEST(Chunked, DecodeRejectsFramingErrors) {
  EXPECT_FALSE(decode_chunked("5\r\nhell"));              // truncated payload
  EXPECT_FALSE(decode_chunked("5\r\nhelloXX0\r\n\r\n"));  // missing CRLF
  EXPECT_FALSE(decode_chunked("zz\r\nhello\r\n0\r\n\r\n"));  // bad size
  EXPECT_FALSE(decode_chunked("5\r\nhello\r\n"));         // no terminator
  EXPECT_FALSE(decode_chunked(""));
}

TEST(Chunked, DecodeCapsSizeLineLength) {
  // A size line whose CRLF never arrives within kMaxChunkLineBytes must be a
  // decode error, not an O(input) scan per chunk.
  const std::string long_ext(kMaxChunkLineBytes + 1, 'e');
  EXPECT_FALSE(decode_chunked("5;" + long_ext + "\r\nhello\r\n0\r\n\r\n"));
  // At the cap the extension is still legal.
  const std::string ok_ext(kMaxChunkLineBytes - 2, 'e');
  const auto decoded =
      decode_chunked("5;" + ok_ext + "\r\nhello\r\n0\r\n\r\n");
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->materialize(), "hello");
}

TEST(Chunked, DecodeCapsSizeDigits) {
  // More hex digits than a 64-bit size can need is an attack, not a size.
  const std::string padded(kMaxChunkSizeDigits, '0');
  EXPECT_FALSE(decode_chunked(padded + "5\r\nhello\r\n0\r\n\r\n"));
  const std::string ok_padded(kMaxChunkSizeDigits - 1, '0');
  const auto decoded = decode_chunked(ok_padded + "5\r\nhello\r\n0\r\n\r\n");
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->materialize(), "hello");
}

TEST(Chunked, DecodeCapsTrailerLineLength) {
  const std::string long_trailer(kMaxChunkLineBytes + 8, 't');
  EXPECT_FALSE(
      decode_chunked("5\r\nhello\r\n0\r\n" + long_trailer + "\r\n\r\n"));
}

TEST(Chunked, ResponseCodingHelpers) {
  Response resp = make_response(kOk, Body::synthetic(5, 0, 1000));
  apply_chunked_coding(resp, 256);
  EXPECT_TRUE(is_chunked(resp));
  EXPECT_FALSE(resp.headers.has("Content-Length"));
  EXPECT_EQ(resp.body.size(), chunked_size(1000, 256));

  ASSERT_TRUE(remove_chunked_coding(resp));
  EXPECT_FALSE(is_chunked(resp));
  EXPECT_EQ(resp.headers.get("Content-Length"), "1000");
  EXPECT_EQ(resp.body, Body::synthetic(5, 0, 1000));
}

TEST(Chunked, RemoveCodingIsNoopOnPlainResponses) {
  Response resp = make_response(kOk, Body::literal("xy"));
  EXPECT_TRUE(remove_chunked_coding(resp));
  EXPECT_EQ(resp.body.materialize(), "xy");
}

}  // namespace
}  // namespace rangeamp::http
