// Seeded mutation fuzzing of the parsers.
//
// The parsers sit on the untrusted boundary of every hop; these sweeps feed
// them structured garbage derived from valid messages and assert the safety
// contract: never crash, never accept something that does not re-serialize
// consistently.
#include <gtest/gtest.h>

#include "cdn/shield.h"
#include "http/chunked.h"
#include "http/generator.h"
#include "http/multipart.h"
#include "http/range.h"
#include "http/serialize.h"
#include "http/validate.h"
#include "http2/hpack.h"

namespace rangeamp::http {
namespace {

// Applies one random mutation: flip, insert, delete, truncate or splice.
std::string mutate(Rng& rng, std::string input) {
  if (input.empty()) return input;
  switch (rng.below(5)) {
    case 0: {  // flip a byte
      input[rng.below(input.size())] =
          static_cast<char>(rng.below(256));
      break;
    }
    case 1: {  // insert a byte
      input.insert(input.begin() + static_cast<std::ptrdiff_t>(
                                       rng.below(input.size() + 1)),
                   static_cast<char>(rng.below(256)));
      break;
    }
    case 2: {  // delete a byte
      input.erase(input.begin() + static_cast<std::ptrdiff_t>(
                                      rng.below(input.size())));
      break;
    }
    case 3: {  // truncate
      input.resize(rng.below(input.size() + 1));
      break;
    }
    default: {  // duplicate a random slice somewhere
      const std::size_t from = static_cast<std::size_t>(rng.below(input.size()));
      const std::size_t len = static_cast<std::size_t>(
          rng.below(input.size() - from + 1));
      input += input.substr(from, len);
      break;
    }
  }
  return input;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, RangeHeaderParserIsTotal) {
  Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto generated =
        generate_range(rng, static_cast<RangeShape>(rng.below(7)), 1 << 20);
    std::string value = generated.set.to_string();
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) value = mutate(rng, value);
    const auto parsed = parse_range_header(value);
    if (parsed) {
      // Anything accepted must round-trip through its canonical spelling.
      const auto again = parse_range_header(parsed->to_string());
      ASSERT_TRUE(again) << value;
      EXPECT_EQ(*again, *parsed) << value;
      // And resolution must stay within bounds for arbitrary sizes.
      for (const std::uint64_t size : {0ull, 1ull, 1000ull, 1ull << 40}) {
        for (const auto& r : resolve_all(*parsed, size)) {
          ASSERT_LT(r.last, size);
          ASSERT_LE(r.first, r.last);
        }
      }
    }
  }
}

TEST_P(FuzzSweep, RequestParserIsTotal) {
  Rng rng{GetParam() ^ 0xABCDEF};
  Request base = make_get("fuzz.example.com", "/some/path?q=1");
  base.headers.add("Range", "bytes=0-0");
  base.headers.add("User-Agent", "fuzz/1.0");
  const std::string origin_bytes = to_bytes(base);
  for (int i = 0; i < 2000; ++i) {
    std::string wire = origin_bytes;
    const int mutations = 1 + static_cast<int>(rng.below(6));
    for (int m = 0; m < mutations; ++m) wire = mutate(rng, wire);
    const auto parsed = parse_request(wire);
    if (parsed) {
      // Accepted requests re-serialize and re-parse stably.
      const auto again = parse_request(to_bytes(*parsed));
      ASSERT_TRUE(again) << i;
      EXPECT_EQ(again->target, parsed->target);
      EXPECT_EQ(again->headers.size(), parsed->headers.size());
    }
  }
}

TEST_P(FuzzSweep, ResponseParserIsTotal) {
  Rng rng{GetParam() ^ 0x13579B};
  Response base = make_response(kPartialContent, Body::literal("0123456789"));
  base.headers.add("Content-Range", "bytes 0-9/100");
  const std::string origin_bytes = to_bytes(base);
  for (int i = 0; i < 2000; ++i) {
    std::string wire = origin_bytes;
    for (int m = 0; m < 3; ++m) wire = mutate(rng, wire);
    const auto parsed = parse_response(wire);
    if (parsed) {
      const auto again = parse_response(to_bytes(*parsed));
      ASSERT_TRUE(again) << i;
      EXPECT_EQ(again->status, parsed->status);
      EXPECT_EQ(again->body.size(), parsed->body.size());
    }
  }
}

TEST_P(FuzzSweep, MultipartParserIsTotal) {
  Rng rng{GetParam() ^ 0x2468AC};
  const Body entity = Body::synthetic(55, 0, 512);
  const std::vector<ResolvedRange> ranges{{0, 99}, {100, 299}, {500, 511}};
  const std::string body =
      build_multipart_byteranges(entity, ranges, 512, "a/b", "BNDRY")
          .materialize();
  for (int i = 0; i < 1500; ++i) {
    std::string wire = body;
    for (int m = 0; m < 3; ++m) wire = mutate(rng, wire);
    const auto parts = parse_multipart_byteranges(wire, "BNDRY");
    if (parts) {
      for (const auto& part : *parts) {
        ASSERT_LE(part.range.first, part.range.last);
        ASSERT_EQ(part.payload.size(), part.range.length());
      }
    }
  }
}

TEST_P(FuzzSweep, CdnLoopParserIsTotal) {
  Rng rng{GetParam() ^ 0x8586};
  // A representative chain: bare ids, a parameterized hop, a quoted-string
  // parameter value with escapes and embedded separators.
  const std::string base =
      "fastly, akamai; asn=20940; lb=\"a,b;\\\"c\", cloudflare:443, edge-7";
  for (int i = 0; i < 2000; ++i) {
    std::string value = base;
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) value = mutate(rng, value);
    const auto parsed = cdn::parse_cdn_loop(value);
    if (parsed) {
      // Anything accepted must survive its canonical spelling unchanged:
      // the loop check at the next hop sees exactly the same ids.
      const auto again = cdn::parse_cdn_loop(cdn::cdn_loop_to_string(*parsed));
      ASSERT_TRUE(again) << value;
      EXPECT_EQ(*again, *parsed) << value;
      for (const auto& entry : *parsed) {
        ASSERT_FALSE(entry.id.empty()) << value;
        EXPECT_TRUE(cdn::cdn_loop_contains(*parsed, entry.id));
      }
    }
  }
}

TEST_P(FuzzSweep, HpackDecoderIsTotal) {
  Rng rng{GetParam() ^ 0xFEDCBA};
  http2::Encoder encoder;
  const std::string block = encoder.encode({
      {":method", "GET"},
      {":path", "/p"},
      {"range", "bytes=0-,0-,0-"},
      {"x-custom", "value-value-value"},
  });
  for (int i = 0; i < 2000; ++i) {
    std::string wire = block;
    for (int m = 0; m < 3; ++m) wire = mutate(rng, wire);
    http2::Decoder decoder;  // fresh state: mutations may poison tables
    const auto decoded = decoder.decode(wire);
    if (decoded) {
      for (const auto& h : *decoded) {
        ASSERT_LE(h.name.size(), wire.size() + 64);
      }
    }
  }
}

TEST_P(FuzzSweep, ValidatorIsTotalOnMutatedMultipart) {
  Rng rng{GetParam() ^ 0x77AA55};
  const Body entity = Body::synthetic(77, 0, 2048);
  ResponseValidator validator{ValidationLimits{}};
  for (int i = 0; i < 800; ++i) {
    // A correctly framed multipart 206 for a random requested range set...
    std::vector<ResolvedRange> ranges;
    std::string range_header = "bytes=";
    const int parts = 1 + static_cast<int>(rng.below(4));
    for (int p = 0; p < parts; ++p) {
      const std::uint64_t first = rng.below(2048);
      const std::uint64_t last =
          std::min<std::uint64_t>(2047, first + rng.below(256));
      ranges.push_back({first, last});
      if (p != 0) range_header += ',';
      range_header += std::to_string(first) + "-" + std::to_string(last);
    }
    const auto requested = parse_range_header(range_header);
    ASSERT_TRUE(requested);
    Response response = make_response(
        kPartialContent,
        build_multipart_byteranges(entity, ranges, 2048, "a/b", "BNDRY"));
    response.headers.set("Content-Type",
                         "multipart/byteranges; boundary=BNDRY");
    // ...mangled on the wire before it reaches the validating hop.
    std::string wire = to_bytes(response);
    const int mutations = 1 + static_cast<int>(rng.below(3));
    for (int m = 0; m < mutations; ++m) wire = mutate(rng, wire);
    const auto parsed = parse_response(wire);
    if (!parsed) continue;
    const auto report = validator.validate(*parsed, requested);
    if (report.ok() && parsed->status == kPartialContent) {
      // Anything the validator accepts as a framed multipart must actually
      // parse, with every part inside the entity it claims to slice.
      const auto boundary =
          boundary_from_content_type(parsed->headers.get("Content-Type")
                                         .value_or(""));
      if (boundary) {
        const auto reparsed =
            parse_multipart_byteranges(parsed->body.materialize(), *boundary);
        ASSERT_TRUE(reparsed) << i;
        ASSERT_LE(reparsed->size(), requested->count()) << i;
        for (const auto& part : *reparsed) {
          ASSERT_LT(part.range.last, 2048u) << i;
        }
      }
    }
  }
}

TEST_P(FuzzSweep, ValidatorIsTotalOnMutatedChunked) {
  Rng rng{GetParam() ^ 0x55CC33};
  ResponseValidator validator{ValidationLimits{}};
  for (int i = 0; i < 800; ++i) {
    const std::uint64_t n = 1 + rng.below(4096);
    Response response =
        make_response(kOk, Body::synthetic(rng.next(), 0, n));
    apply_chunked_coding(response, 1 + rng.below(512));
    std::string wire = to_bytes(response);
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) wire = mutate(rng, wire);
    const auto parsed = parse_response(wire);
    if (!parsed) continue;
    const auto report = validator.validate(*parsed, std::nullopt);
    if (report.ok() && is_chunked(*parsed)) {
      // An accepted chunked body must decode, and stay decodable after a
      // serialize/parse round trip (stability of the accept decision).
      ASSERT_TRUE(decode_chunked(parsed->body.materialize())) << i;
      const auto again = parse_response(to_bytes(*parsed));
      ASSERT_TRUE(again) << i;
      EXPECT_TRUE(validator.validate(*again, std::nullopt).ok()) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(0x1001, 0x2002, 0x3003, 0x4004));

}  // namespace
}  // namespace rangeamp::http
