// Unit tests for the observability subsystem: span trees (parentage, early
// returns, JSONL export), the metrics registry (counters, histograms,
// Prometheus exposition, sim-clock sampling), and the shared traffic
// accounting vocabulary (SegmentId, TrafficTotals).
#include <gtest/gtest.h>

#include <string>

#include "net/accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rangeamp {
namespace {

// --- Traffic accounting -----------------------------------------------------

TEST(TrafficTotals, ArithmeticAndAmplification) {
  net::TrafficTotals a{100, 1000};
  const net::TrafficTotals b{10, 24000};
  a += b;
  EXPECT_EQ(a.request_bytes, 110u);
  EXPECT_EQ(a.response_bytes, 25000u);
  EXPECT_EQ(a.total(), 25110u);

  const net::TrafficTotals attacker{500, 250};
  const net::TrafficTotals origin{500, 25000};
  EXPECT_DOUBLE_EQ(net::amplification_factor(origin, attacker), 100.0);
  // A zero-byte denominator must not divide.
  EXPECT_DOUBLE_EQ(net::amplification_factor(origin, net::TrafficTotals{}), 0.0);

  EXPECT_EQ(a, net::TrafficTotals(110, 25000));
  EXPECT_EQ(b + b, net::TrafficTotals(20, 48000));
}

TEST(TrafficTotals, SegmentNamesRoundTrip) {
  using net::SegmentId;
  EXPECT_EQ(net::segment_id_name(SegmentId::kClientCdn), "client-cdn");
  EXPECT_EQ(net::segment_id_name(SegmentId::kFcdnBcdn), "fcdn-bcdn");
  EXPECT_EQ(net::segment_id_name(SegmentId::kCdnOrigin), "cdn-origin");
  EXPECT_EQ(net::segment_id_name(SegmentId::kBcdnOrigin), "bcdn-origin");

  // Recorder names in the tree are free-form; classification is by prefix.
  EXPECT_EQ(net::segment_from_name("client-cdn"), SegmentId::kClientCdn);
  EXPECT_EQ(net::segment_from_name("attacker"), SegmentId::kClientCdn);
  EXPECT_EQ(net::segment_from_name("fcdn-bcdn ingress 3"), SegmentId::kFcdnBcdn);
  EXPECT_EQ(net::segment_from_name("cdn-origin node-0"), SegmentId::kCdnOrigin);
  EXPECT_EQ(net::segment_from_name("bcdn-origin"), SegmentId::kBcdnOrigin);
  EXPECT_EQ(net::segment_from_name("mystery"), SegmentId::kNone);
}

// --- Tracer -----------------------------------------------------------------

TEST(Tracer, NestingBecomesParentage) {
  obs::Tracer tracer;
  const auto root = tracer.begin_span("sbr.request");
  const auto handle = tracer.begin_span("cdn.handle");
  const auto wire =
      tracer.begin_span("net.transfer", net::SegmentId::kCdnOrigin);
  tracer.end_span(wire);
  tracer.end_span(handle);
  tracer.end_span(root);

  ASSERT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.trace_count(), 1u);
  EXPECT_EQ(tracer.spans()[0].parent, 0u);
  EXPECT_EQ(tracer.spans()[1].parent, root);
  EXPECT_EQ(tracer.spans()[2].parent, handle);
  // All three belong to the same trace.
  EXPECT_EQ(tracer.spans()[2].trace, tracer.spans()[0].trace);

  // A second root starts a second trace.
  const auto again = tracer.begin_span("sbr.request");
  tracer.end_span(again);
  EXPECT_EQ(tracer.trace_count(), 2u);
}

TEST(Tracer, EarlyReturnClosesDescendants) {
  obs::Tracer tracer;
  const auto outer = tracer.begin_span("cdn.handle");
  tracer.begin_span("cdn.fetch");
  tracer.begin_span("net.transfer", net::SegmentId::kCdnOrigin);
  // Close the ancestor directly, as an early return through nested
  // SpanScopes would; the stack must fully unwind.
  tracer.end_span(outer);
  EXPECT_EQ(tracer.current(), 0u);
  // Closing again is harmless.
  tracer.end_span(outer);
  EXPECT_EQ(tracer.spans().size(), 3u);
}

TEST(Tracer, SegmentTotalsSumWireSpans) {
  obs::Tracer tracer;
  {
    obs::SpanScope unit(&tracer, "sbr.request");
    obs::SpanScope client(&tracer, "net.transfer", net::SegmentId::kClientCdn);
    client.add_bytes({200, 250});
    obs::SpanScope origin(&tracer, "net.transfer", net::SegmentId::kCdnOrigin);
    origin.add_bytes({180, 24000});
    // Non-wire spans never contribute, whatever bytes they carry.
    unit.add_bytes({9999, 9999});
  }
  {
    obs::SpanScope origin(&tracer, "net.transfer", net::SegmentId::kCdnOrigin);
    origin.add_bytes({180, 1000});
  }
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kClientCdn),
            net::TrafficTotals(200, 250));
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kCdnOrigin),
            net::TrafficTotals(360, 25000));
  EXPECT_EQ(tracer.segment_totals(net::SegmentId::kNone), net::TrafficTotals{});
}

TEST(Tracer, JsonlExportShape) {
  obs::Tracer tracer;
  double t = 1.5;
  tracer.set_clock([&t] { return t; });
  {
    obs::SpanScope span(&tracer, "net.transfer", net::SegmentId::kClientCdn);
    span.note("target", "/index.html?bust=\"7\"");
    span.set_status(206);
    span.add_bytes({100, 2000});
    t = 2.0;
  }
  const std::string jsonl = tracer.to_jsonl();
  EXPECT_NE(jsonl.find("\"trace\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"span\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"parent\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"net.transfer\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"segment\":\"client-cdn\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"start\":1.500000"), std::string::npos);
  EXPECT_NE(jsonl.find("\"end\":2.000000"), std::string::npos);
  EXPECT_NE(jsonl.find("\"status\":206"), std::string::npos);
  EXPECT_NE(jsonl.find("\"request_bytes\":100"), std::string::npos);
  EXPECT_NE(jsonl.find("\"response_bytes\":2000"), std::string::npos);
  // Quotes inside note values are escaped so every line stays valid JSON.
  EXPECT_NE(jsonl.find("\\\"7\\\""), std::string::npos);
  EXPECT_EQ(jsonl.back(), '\n');

  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.trace_count(), 0u);
}

TEST(Tracer, NullScopeIsANoOp) {
  // Every call site threads a possibly-null tracer; the scope must absorb
  // all of it without branching at the call site.
  obs::SpanScope scope(nullptr, "cdn.handle");
  EXPECT_FALSE(static_cast<bool>(scope));
  EXPECT_EQ(scope.id(), 0u);
  scope.note("cache", "hit");
  scope.set_status(200);
  scope.add_bytes({1, 1});
}

// --- Metrics ----------------------------------------------------------------

TEST(Metrics, CounterHandlesAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter& hits = registry.counter("cdn_cache_hits_total", "help");
  hits.inc();
  // Interleave other registrations; the cached reference must survive.
  registry.counter("a_total");
  registry.counter("z_total");
  registry.gauge("g");
  hits.inc(4);
  EXPECT_EQ(registry.counter("cdn_cache_hits_total").value(), 5u);
  EXPECT_EQ(registry.metric_count(), 4u);
}

TEST(Metrics, HistogramBucketsAreCumulative) {
  obs::Histogram h(obs::amplification_buckets());
  h.observe(0.5);       // <= 1
  h.observe(43);        // <= 100
  h.observe(43);        // <= 100
  h.observe(5000);      // <= 10000
  h.observe(2000000);   // +Inf overflow
  const auto c = h.cumulative_counts();
  ASSERT_EQ(c.size(), 7u);  // six bounds + Inf
  EXPECT_EQ(c[0], 1u);      // le=1
  EXPECT_EQ(c[1], 1u);      // le=10
  EXPECT_EQ(c[2], 3u);      // le=100
  EXPECT_EQ(c[4], 4u);      // le=10000
  EXPECT_EQ(c.back(), 5u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 43 + 43 + 5000 + 2000000);
}

TEST(Metrics, PrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.counter("cdn_requests_total{vendor=\"Cloudflare\"}",
                   "requests handled").inc(3);
  registry.gauge("origin_uplink_mbps").set(1000);
  auto& h = registry.histogram("sbr_amplification_factor{vendor=\"KeyCDN\"}",
                               obs::amplification_buckets(), "per-request AF");
  h.observe(43);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# HELP cdn_requests_total requests handled"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cdn_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("cdn_requests_total{vendor=\"Cloudflare\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("origin_uplink_mbps 1000"), std::string::npos);
  // Histogram suffixes splice before the label set, with `le` appended.
  EXPECT_NE(text.find("sbr_amplification_factor_bucket{vendor=\"KeyCDN\","
                      "le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sbr_amplification_factor_bucket{vendor=\"KeyCDN\","
                      "le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sbr_amplification_factor_count{vendor=\"KeyCDN\"} 1"),
            std::string::npos);
}

TEST(Metrics, SimClockSeriesIsDeterministic) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("cdn_requests_total");
  registry.sample(0.0);
  c.inc(2);
  registry.sample(1.0);
  EXPECT_EQ(registry.sample_count(), 2u);
  EXPECT_EQ(registry.series_csv(),
            "t_s,metric,value\n"
            "0.000,cdn_requests_total,0\n"
            "1.000,cdn_requests_total,2\n");
}

}  // namespace
}  // namespace rangeamp
