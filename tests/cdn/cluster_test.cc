#include "cdn/cluster.h"

#include <gtest/gtest.h>

#include "cdn/profiles.h"
#include "origin/origin_server.h"

namespace rangeamp::cdn {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    origin_.resources().add_synthetic("/a.bin", 4096);
  }

  EdgeCluster make_cluster(std::size_t nodes, NodeSelection selection) {
    return EdgeCluster([] { return make_profile(Vendor::kCloudflare); }, nodes,
                       origin_, selection);
  }

  origin::OriginServer origin_;
};

TEST_F(ClusterTest, RoundRobinSpreadsAcrossAllNodes) {
  auto cluster = make_cluster(4, NodeSelection::kRoundRobin);
  for (int i = 0; i < 8; ++i) {
    const auto resp =
        cluster.handle(http::make_get("h.example", "/a.bin?i=" + std::to_string(i)));
    EXPECT_EQ(resp.status, 200);
  }
  EXPECT_EQ(cluster.nodes_touched(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.ingress_traffic(i).exchange_count(), 2u) << i;
  }
}

TEST_F(ClusterTest, PinnedConcentratesOnOneNode) {
  auto cluster = make_cluster(4, NodeSelection::kRoundRobin);
  cluster.pin(2);
  for (int i = 0; i < 6; ++i) {
    cluster.handle(http::make_get("h.example", "/a.bin?i=" + std::to_string(i)));
  }
  EXPECT_EQ(cluster.nodes_touched(), 1u);
  EXPECT_EQ(cluster.ingress_traffic(2).exchange_count(), 6u);
}

TEST_F(ClusterTest, HashByHostIsStable) {
  auto cluster = make_cluster(8, NodeSelection::kHashByHost);
  cluster.handle(http::make_get("alpha.example", "/a.bin?1"));
  cluster.handle(http::make_get("alpha.example", "/a.bin?2"));
  EXPECT_EQ(cluster.nodes_touched(), 1u);
  // A different host (very likely) maps elsewhere; at minimum stability
  // holds per host.
  for (int i = 0; i < 16; ++i) {
    cluster.handle(http::make_get("host-" + std::to_string(i) + ".example",
                                  "/a.bin?x"));
  }
  EXPECT_GT(cluster.nodes_touched(), 2u);
}

TEST_F(ClusterTest, CachesArePerNode) {
  auto cluster = make_cluster(2, NodeSelection::kRoundRobin);
  // Same URL twice: round robin sends it to two different nodes, so both
  // miss and the origin is hit twice.
  cluster.handle(http::make_get("h.example", "/a.bin"));
  cluster.handle(http::make_get("h.example", "/a.bin"));
  EXPECT_EQ(origin_.request_log().size(), 2u);
  // Third request lands on node 0 again: cache hit, no new origin request.
  cluster.handle(http::make_get("h.example", "/a.bin"));
  EXPECT_EQ(origin_.request_log().size(), 2u);
}

TEST_F(ClusterTest, AggregateCountersSumNodes) {
  auto cluster = make_cluster(3, NodeSelection::kRoundRobin);
  for (int i = 0; i < 3; ++i) {
    cluster.handle(http::make_get("h.example", "/a.bin?i=" + std::to_string(i)));
  }
  std::uint64_t upstream_sum = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    upstream_sum += cluster.node(i).upstream_traffic().response_bytes();
  }
  EXPECT_EQ(cluster.total_upstream_response_bytes(), upstream_sum);
  EXPECT_GT(cluster.total_ingress_response_bytes(), 3 * 4096u);
}

TEST_F(ClusterTest, SingleNodeClusterBehavesLikeNode) {
  auto cluster = make_cluster(1, NodeSelection::kRoundRobin);
  const auto resp = cluster.handle(http::make_get("h.example", "/a.bin"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(cluster.nodes_touched(), 1u);
}

TEST_F(ClusterTest, PinBeyondNodeCountClampsInsteadOfIndexingOut) {
  // Regression: a pin taken against a larger deployment (or straight from
  // attacker-controlled input) used to be stored unclamped and only reduced
  // at select() time; pin() now clamps immediately so a stale index can
  // never escape the node vector.
  auto cluster = make_cluster(4, NodeSelection::kRoundRobin);
  cluster.pin(7);  // 7 % 4 == 3
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(
        cluster.handle(http::make_get("h.example", "/a.bin?i=" + std::to_string(i)))
            .status,
        200);
  }
  EXPECT_EQ(cluster.nodes_touched(), 1u);
  EXPECT_EQ(cluster.ingress_traffic(3).exchange_count(), 3u);
}

TEST_F(ClusterTest, ZeroNodeClusterIsClampedToOne) {
  // A zero-node cluster cannot route anything and the selection arithmetic
  // would divide by zero; construction clamps to one node and pin() on the
  // (momentarily) empty vector stays in range.
  auto cluster = make_cluster(0, NodeSelection::kRoundRobin);
  EXPECT_EQ(cluster.node_count(), 1u);
  cluster.pin(5);
  EXPECT_EQ(cluster.handle(http::make_get("h.example", "/a.bin")).status, 200);
  EXPECT_EQ(cluster.nodes_touched(), 1u);
}

}  // namespace
}  // namespace rangeamp::cdn
